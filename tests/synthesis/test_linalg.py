"""Tests for the linear-algebra helpers."""

import numpy as np
import pytest

from repro.circuit import gate, random_unitary
from repro.exceptions import SynthesisError
from repro.synthesis import (
    allclose_up_to_global_phase,
    closest_unitary,
    fidelity_distance,
    global_phase_between,
    is_unitary,
    kron_factor_4x4,
)


class TestPredicates:
    def test_is_unitary_accepts_unitaries(self):
        assert is_unitary(np.eye(3))
        assert is_unitary(gate("h").matrix())
        assert is_unitary(random_unitary(8, seed=0))

    def test_is_unitary_rejects_non_unitaries(self):
        assert not is_unitary(np.ones((2, 2)))
        assert not is_unitary(np.eye(2)[:1])

    def test_global_phase_between(self):
        base = gate("h").matrix()
        phase = global_phase_between(np.exp(0.7j) * base, base)
        assert phase == pytest.approx(0.7)

    def test_global_phase_none_for_unrelated(self):
        assert global_phase_between(gate("h").matrix(), 2 * gate("h").matrix()) is None

    def test_allclose_up_to_global_phase(self):
        base = random_unitary(4, seed=1)
        assert allclose_up_to_global_phase(base, np.exp(1.2j) * base)
        assert not allclose_up_to_global_phase(base, random_unitary(4, seed=2))

    def test_fidelity_distance(self):
        base = random_unitary(4, seed=3)
        assert fidelity_distance(base, base) == pytest.approx(0.0, abs=1e-12)
        assert fidelity_distance(base, np.exp(0.5j) * base) == pytest.approx(0.0, abs=1e-12)
        assert fidelity_distance(np.eye(4), gate("swap").matrix()) > 0.1


class TestClosestUnitary:
    def test_projects_back_to_unitary(self):
        noisy = random_unitary(4, seed=5) + 1e-3 * np.random.default_rng(0).normal(size=(4, 4))
        projected = closest_unitary(noisy)
        assert is_unitary(projected)

    def test_identity_fixed_point(self):
        assert np.allclose(closest_unitary(np.eye(4)), np.eye(4))


class TestKronFactor:
    def test_factor_product_operator(self):
        a = random_unitary(2, seed=11)
        b = random_unitary(2, seed=12)
        g, fa, fb = kron_factor_4x4(np.kron(a, b))
        assert np.allclose(abs(g), 1.0, atol=1e-9)
        assert allclose_up_to_global_phase(np.kron(fa, fb), np.kron(a, b))

    def test_factor_with_global_phase(self):
        a = gate("h").matrix()
        b = gate("t").matrix()
        matrix = np.exp(0.3j) * np.kron(a, b)
        g, fa, fb = kron_factor_4x4(matrix)
        assert np.allclose(g * np.kron(fa, fb), matrix)

    def test_entangling_operator_rejected(self):
        with pytest.raises(SynthesisError):
            kron_factor_4x4(gate("cx").matrix())

    def test_wrong_shape_rejected(self):
        with pytest.raises(SynthesisError):
            kron_factor_4x4(np.eye(2))

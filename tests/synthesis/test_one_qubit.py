"""Tests for single-qubit Euler-angle synthesis."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import gate, random_unitary
from repro.exceptions import SynthesisError
from repro.synthesis import synthesize_zsx, u_params_from_matrix, zyz_decompose
from repro.synthesis.one_qubit import matrix_of_ops, synthesis_error


def _rz(theta):
    return gate("rz", theta).matrix()


def _ry(theta):
    return gate("ry", theta).matrix()


class TestZYZ:
    @pytest.mark.parametrize("name", ["id", "x", "y", "z", "h", "s", "sdg", "t", "sx"])
    def test_reconstruction_of_named_gates(self, name):
        matrix = gate(name).matrix()
        angles = zyz_decompose(matrix)
        rebuilt = np.exp(1j * angles.phase) * (_rz(angles.phi) @ _ry(angles.theta) @ _rz(angles.lam))
        assert np.allclose(rebuilt, matrix, atol=1e-9)

    def test_reconstruction_of_random_unitaries(self):
        for seed in range(25):
            matrix = random_unitary(2, seed=seed)
            angles = zyz_decompose(matrix)
            rebuilt = np.exp(1j * angles.phase) * (
                _rz(angles.phi) @ _ry(angles.theta) @ _rz(angles.lam)
            )
            assert np.allclose(rebuilt, matrix, atol=1e-8)

    def test_u_params_reproduce_matrix(self):
        matrix = random_unitary(2, seed=99)
        theta, phi, lam, gamma = u_params_from_matrix(matrix)
        rebuilt = np.exp(1j * gamma) * gate("u", theta, phi, lam).matrix()
        assert np.allclose(rebuilt, matrix, atol=1e-8)

    def test_rejects_non_unitary(self):
        with pytest.raises(SynthesisError):
            zyz_decompose(np.ones((2, 2)))

    def test_rejects_wrong_shape(self):
        with pytest.raises(SynthesisError):
            zyz_decompose(np.eye(4))

    def test_theta_zero_edge_case(self):
        angles = zyz_decompose(_rz(0.8))
        assert angles.theta == pytest.approx(0.0, abs=1e-9)

    def test_theta_pi_edge_case(self):
        angles = zyz_decompose(gate("x").matrix())
        assert angles.theta == pytest.approx(math.pi, abs=1e-9)


class TestZSXSynthesis:
    @pytest.mark.parametrize("name", ["id", "x", "z", "h", "s", "t", "sx", "y"])
    def test_named_gates(self, name):
        matrix = gate(name).matrix()
        ops = synthesize_zsx(matrix)
        assert synthesis_error(matrix, ops) < 1e-7
        assert all(op_name in ("rz", "sx", "x") for op_name, _ in ops)

    def test_pure_rz_uses_no_sx(self):
        ops = synthesize_zsx(_rz(1.234))
        assert [name for name, _ in ops] == ["rz"]

    def test_at_most_two_sx(self):
        for seed in range(25):
            matrix = random_unitary(2, seed=200 + seed)
            ops = synthesize_zsx(matrix)
            assert sum(1 for name, _ in ops if name == "sx") <= 2
            assert synthesis_error(matrix, ops) < 1e-7

    def test_identity_synthesises_to_nothing(self):
        assert synthesize_zsx(np.eye(2)) == []

    @settings(max_examples=50, deadline=None)
    @given(st.floats(0, math.pi), st.floats(-math.pi, math.pi), st.floats(-math.pi, math.pi))
    def test_property_random_euler_angles(self, theta, phi, lam):
        matrix = gate("u", theta, phi, lam).matrix()
        ops = synthesize_zsx(matrix)
        assert synthesis_error(matrix, ops) < 1e-6


class TestMatrixOfOps:
    def test_application_order(self):
        ops = [("x", ()), ("rz", (0.5,))]
        expected = _rz(0.5) @ gate("x").matrix()
        assert np.allclose(matrix_of_ops(ops), expected)

"""Test package (makes relative imports of conftest helpers work)."""

"""Tests for the Weyl/KAK decomposition and two-qubit synthesis."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import QuantumCircuit, gate, random_unitary
from repro.exceptions import SynthesisError
from repro.synthesis import (
    TwoQubitSynthesizer,
    allclose_up_to_global_phase,
    canonical_matrix,
    canonicalize_coordinates,
    cnot_count,
    cnot_count_from_coordinates,
    synthesize_two_qubit,
    weyl_coordinates,
    weyl_decompose,
)

QUARTER_PI = math.pi / 4


def random_su4(seed: int) -> np.ndarray:
    return random_unitary(4, seed=seed)


class TestWeylCoordinates:
    def test_identity(self):
        assert np.allclose(weyl_coordinates(np.eye(4)), (0, 0, 0), atol=1e-7)

    def test_cnot_class(self):
        assert np.allclose(weyl_coordinates(gate("cx").matrix()), (QUARTER_PI, 0, 0), atol=1e-7)

    def test_cz_same_class_as_cnot(self):
        assert np.allclose(
            weyl_coordinates(gate("cz").matrix()), weyl_coordinates(gate("cx").matrix()), atol=1e-7
        )

    def test_swap_class(self):
        assert np.allclose(
            weyl_coordinates(gate("swap").matrix()),
            (QUARTER_PI, QUARTER_PI, QUARTER_PI),
            atol=1e-7,
        )

    def test_iswap_class(self):
        coords = weyl_coordinates(gate("iswap").matrix())
        assert np.allclose(coords, (QUARTER_PI, QUARTER_PI, 0), atol=1e-7)

    def test_local_gates_are_identity_class(self):
        matrix = np.kron(random_unitary(2, seed=1), random_unitary(2, seed=2))
        assert np.allclose(weyl_coordinates(matrix), (0, 0, 0), atol=1e-6)

    def test_invariance_under_local_gates(self):
        target = random_su4(5)
        locals_before = np.kron(random_unitary(2, seed=6), random_unitary(2, seed=7))
        locals_after = np.kron(random_unitary(2, seed=8), random_unitary(2, seed=9))
        assert np.allclose(
            weyl_coordinates(target),
            weyl_coordinates(locals_after @ target @ locals_before),
            atol=1e-6,
        )

    def test_rzz_angle_maps_to_coordinate(self):
        circuit = QuantumCircuit(2)
        circuit.rzz(0.8, 0, 1)
        coords = weyl_coordinates(circuit.to_matrix())
        assert coords[0] == pytest.approx(0.4, abs=1e-7)
        assert coords[1] == pytest.approx(0.0, abs=1e-7)

    def test_rejects_non_unitary(self):
        with pytest.raises(SynthesisError):
            weyl_coordinates(np.ones((4, 4)))


class TestCanonicalizeCoordinates:
    def test_already_canonical(self):
        assert canonicalize_coordinates((0.3, 0.2, 0.1)) == pytest.approx((0.3, 0.2, 0.1))

    def test_sorting(self):
        assert canonicalize_coordinates((0.1, 0.3, 0.2)) == pytest.approx((0.3, 0.2, 0.1))

    def test_half_pi_shift_is_identity_class(self):
        assert canonicalize_coordinates((math.pi / 2, 0, 0)) == pytest.approx((0, 0, 0), abs=1e-9)

    def test_chamber_fold(self):
        # x + y > pi/2 must fold back into the chamber.
        x, y, z = canonicalize_coordinates((0.5 * math.pi * 0.9, 0.5 * math.pi * 0.8, 0.1))
        assert x + y <= math.pi / 2 + 1e-9
        assert x >= y >= z >= 0

    def test_negative_coordinates(self):
        assert canonicalize_coordinates((-0.2, 0.2, 0.0)) == pytest.approx((0.2, 0.2, 0.0), abs=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(st.tuples(st.floats(-4, 4), st.floats(-4, 4), st.floats(-4, 4)))
    def test_property_output_in_chamber(self, coords):
        x, y, z = canonicalize_coordinates(coords)
        assert x >= y >= z >= -1e-9
        assert x + y <= math.pi / 2 + 1e-6
        assert x <= math.pi / 2

    def test_canonical_matrix_matches_coordinates(self):
        coords = (0.31, 0.22, 0.05)
        assert np.allclose(weyl_coordinates(canonical_matrix(*coords)), coords, atol=1e-7)


class TestCnotCount:
    @pytest.mark.parametrize(
        "name,expected",
        [("cx", 1), ("cz", 1), ("swap", 3), ("iswap", 2), ("dcx", 2), ("ch", 1)],
    )
    def test_named_gates(self, name, expected):
        assert cnot_count(gate(name).matrix()) == expected

    def test_identity_and_local(self):
        assert cnot_count(np.eye(4)) == 0
        assert cnot_count(np.kron(gate("h").matrix(), gate("t").matrix())) == 0

    def test_cx_followed_by_swap_costs_two(self):
        # The paper's Figure 1(b): a SWAP merged into an adjacent CNOT block costs one extra CNOT.
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.swap(0, 1)
        assert cnot_count(circuit.to_matrix()) == 2

    def test_three_cnot_block_absorbs_swap(self):
        # A generic 3-CNOT block times SWAP stays within 3 CNOTs ("free" SWAP, Sec. III).
        block = random_su4(17)
        assert cnot_count(gate("swap").matrix() @ block) <= 3

    def test_two_cnot_circuits_classified(self):
        for seed in range(5):
            circuit = QuantumCircuit(2)
            rng = np.random.default_rng(seed)
            circuit.cx(0, 1)
            circuit.rz(rng.uniform(0.3, 1.0), 0)
            circuit.ry(rng.uniform(0.3, 1.0), 1)
            circuit.cx(0, 1)
            assert cnot_count(circuit.to_matrix()) <= 2

    def test_generic_unitary_needs_three(self):
        counts = [cnot_count(random_su4(seed)) for seed in range(10)]
        assert all(c == 3 for c in counts)

    def test_count_from_coordinates(self):
        assert cnot_count_from_coordinates((0, 0, 0)) == 0
        assert cnot_count_from_coordinates((QUARTER_PI, 0, 0)) == 1
        assert cnot_count_from_coordinates((0.3, 0.2, 0)) == 2
        assert cnot_count_from_coordinates((0.3, 0.2, 0.1)) == 3


class TestWeylDecompose:
    def test_reconstruction_named_gates(self):
        for name in ("cx", "cz", "swap", "iswap", "dcx", "ch"):
            matrix = gate(name).matrix()
            decomposition = weyl_decompose(matrix)
            assert np.allclose(decomposition.matrix(), matrix, atol=1e-6)

    def test_reconstruction_random(self):
        for seed in range(20):
            matrix = random_su4(seed)
            decomposition = weyl_decompose(matrix)
            assert np.allclose(decomposition.matrix(), matrix, atol=1e-6)

    def test_coordinates_in_chamber(self):
        for seed in range(10):
            decomposition = weyl_decompose(random_su4(100 + seed))
            x, y, z = decomposition.coords
            assert x >= y >= z >= -1e-9
            assert x + y <= math.pi / 2 + 1e-6

    def test_local_factors_are_single_qubit_unitaries(self):
        decomposition = weyl_decompose(random_su4(55))
        for factor in (decomposition.k1_q0, decomposition.k1_q1,
                       decomposition.k2_q0, decomposition.k2_q1):
            assert factor.shape == (2, 2)
            assert np.allclose(factor @ factor.conj().T, np.eye(2), atol=1e-7)

    def test_coordinates_match_fast_path(self):
        for seed in range(10):
            matrix = random_su4(200 + seed)
            assert np.allclose(
                weyl_decompose(matrix).coords, weyl_coordinates(matrix), atol=1e-6
            )

    def test_rejects_wrong_shape(self):
        with pytest.raises(SynthesisError):
            weyl_decompose(np.eye(2))


class TestSynthesis:
    def test_named_gates_get_optimal_counts(self):
        expectations = {"cx": 1, "cz": 1, "swap": 3, "iswap": 2, "dcx": 2}
        for name, expected in expectations.items():
            matrix = gate(name).matrix()
            result = TwoQubitSynthesizer().synthesize(matrix)
            assert result.cnot_count == expected
            assert allclose_up_to_global_phase(result.circuit.to_matrix(), matrix, 1e-6)

    def test_random_unitaries_synthesise_with_three_cnots(self):
        synthesizer = TwoQubitSynthesizer()
        for seed in range(15):
            matrix = random_su4(300 + seed)
            result = synthesizer.synthesize(matrix)
            assert result.cnot_count == 3
            assert result.optimal
            assert allclose_up_to_global_phase(result.circuit.to_matrix(), matrix, 1e-6)

    def test_local_unitary_needs_no_cnots(self):
        matrix = np.kron(random_unitary(2, seed=31), random_unitary(2, seed=32))
        result = TwoQubitSynthesizer().synthesize(matrix)
        assert result.cnot_count == 0
        assert allclose_up_to_global_phase(result.circuit.to_matrix(), matrix, 1e-6)

    def test_two_cnot_class_synthesis(self):
        circuit = QuantumCircuit(2)
        circuit.rzz(0.7, 0, 1)
        circuit.rxx(0.4, 0, 1)
        matrix = circuit.to_matrix()
        result = TwoQubitSynthesizer().synthesize(matrix)
        assert result.cnot_count == 2
        assert allclose_up_to_global_phase(result.circuit.to_matrix(), matrix, 1e-6)

    def test_synthesised_gate_names(self):
        result = TwoQubitSynthesizer().synthesize(random_su4(77))
        assert set(inst.name for inst in result.circuit.data) <= {"cx", "u", "rx", "rz", "ry",
                                                                  "s", "sdg"}

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_property_synthesis_reproduces_unitary(self, seed):
        matrix = random_su4(seed)
        circuit = synthesize_two_qubit(matrix)
        assert circuit.cx_count() <= 3
        assert allclose_up_to_global_phase(circuit.to_matrix(), matrix, 1e-5)

    @settings(max_examples=25, deadline=None)
    @given(
        st.floats(0, math.pi / 4), st.floats(0, math.pi / 4), st.floats(0, math.pi / 4)
    )
    def test_property_canonical_gates_synthesise_exactly(self, a, b, c):
        coords = tuple(sorted((a, b, c), reverse=True))
        matrix = canonical_matrix(*coords)
        circuit = synthesize_two_qubit(matrix)
        assert allclose_up_to_global_phase(circuit.to_matrix(), matrix, 1e-5)
        assert circuit.cx_count() <= 3

"""Tests for the batch transpilation service layer."""

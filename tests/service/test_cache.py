"""Tests for the content-addressed result cache (LRU + on-disk JSON store)."""

import json
import os

import pytest

from repro.service.cache import CacheStats, ResultCache


def payload(tag: str) -> dict:
    return {"qasm": f"// {tag}", "metrics": {"cx_count": len(tag)}}


class TestMemoryCache:
    def test_miss_then_hit(self):
        cache = ResultCache()
        assert cache.get("a" * 64) is None
        cache.put("a" * 64, payload("a"))
        assert cache.get("a" * 64) == payload("a")
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_lru_eviction_order(self):
        cache = ResultCache(max_entries=2)
        cache.put("k1", payload("1"))
        cache.put("k2", payload("2"))
        assert cache.get("k1") is not None  # k1 becomes most-recent
        cache.put("k3", payload("3"))  # evicts k2
        assert cache.stats.evictions == 1
        assert cache.get("k2") is None
        assert cache.get("k1") is not None
        assert cache.get("k3") is not None

    def test_len_and_clear(self):
        cache = ResultCache()
        cache.put("k1", payload("1"))
        cache.put("k2", payload("2"))
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.get("k1") is None

    def test_max_entries_validation(self):
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)


class TestDiskCache:
    def test_round_trip_through_disk(self, tmp_path):
        directory = str(tmp_path / "cache")
        writer = ResultCache(directory=directory)
        writer.put("f" * 64, payload("disk"))
        assert writer.disk_entries() == 1

        # A second cache instance (fresh process in real use) reads the same entry.
        reader = ResultCache(directory=directory)
        assert reader.get("f" * 64) == payload("disk")
        assert reader.stats.disk_hits == 1
        assert reader.stats.misses == 0
        # The entry was promoted into memory: next lookup is a memory hit.
        assert reader.get("f" * 64) == payload("disk")
        assert reader.stats.hits == 1

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        directory = str(tmp_path / "cache")
        os.makedirs(directory)
        cache = ResultCache(directory=directory)
        with open(os.path.join(directory, "bad.json"), "w", encoding="utf-8") as handle:
            handle.write("{not json")
        assert cache.get("bad") is None
        assert cache.stats.misses == 1

    def test_directory_created_lazily_on_first_write(self, tmp_path):
        directory = str(tmp_path / "cache")
        cache = ResultCache(directory=directory)
        # Read-only use (e.g. `repro cache stats`) must not create the directory.
        assert cache.get("a" * 64) is None
        assert cache.disk_entries() == 0
        assert not os.path.isdir(directory)
        cache.put("a" * 64, payload("lazy"))
        assert os.path.isdir(directory)
        assert cache.disk_entries() == 1

    def test_clear_removes_disk_files(self, tmp_path):
        directory = str(tmp_path / "cache")
        cache = ResultCache(directory=directory)
        cache.put("k1", payload("1"))
        cache.put("k2", payload("2"))
        removed = cache.clear()
        assert removed >= 2
        assert cache.disk_entries() == 0

    def test_disk_files_are_valid_json(self, tmp_path):
        directory = str(tmp_path / "cache")
        cache = ResultCache(directory=directory)
        cache.put("k1", payload("json"))
        (path,) = [p for p in os.listdir(directory) if p.endswith(".json")]
        with open(os.path.join(directory, path), encoding="utf-8") as handle:
            assert json.load(handle) == payload("json")


class TestConcurrentWriters:
    """The server and the batch CLI share one cache directory; writers must not corrupt
    each other and readers must never observe partial JSON."""

    def test_parallel_writers_to_same_directory(self, tmp_path):
        import threading

        directory = str(tmp_path / "cache")
        caches = [ResultCache(directory=directory) for _ in range(4)]
        errors = []

        def writer(cache, worker):
            try:
                for round_index in range(25):
                    # Half the keys are shared across every writer (maximum contention).
                    key = f"shared-{round_index % 5}" if round_index % 2 else f"w{worker}-{round_index}"
                    cache.put(key, payload(f"{worker}-{round_index}"))
                    cache.get(key)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(cache, index))
            for index, cache in enumerate(caches)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # No temp litter left behind, and every published file is complete JSON.
        leftovers = [name for name in os.listdir(directory) if ".tmp." in name]
        assert leftovers == []
        for name in os.listdir(directory):
            with open(os.path.join(directory, name), encoding="utf-8") as handle:
                json.load(handle)  # raises on a partial write

    def test_partial_json_on_disk_is_treated_as_miss(self, tmp_path):
        directory = str(tmp_path / "cache")
        cache = ResultCache(directory=directory)
        cache.put("whole", payload("whole"))
        # Simulate a torn write from a non-atomic writer crashing mid-file.
        with open(os.path.join(directory, "torn.json"), "w", encoding="utf-8") as handle:
            handle.write('{"qasm": "// tru')
        fresh = ResultCache(directory=directory)
        assert fresh.get("torn") is None
        assert fresh.stats.misses == 1
        assert fresh.get("whole") == payload("whole")

    def test_concurrent_instances_see_each_others_writes(self, tmp_path):
        directory = str(tmp_path / "cache")
        writer = ResultCache(directory=directory)
        reader = ResultCache(directory=directory)
        writer.put("k", payload("shared"))
        assert reader.get("k") == payload("shared")
        assert reader.stats.disk_hits == 1


class TestCacheStats:
    def test_to_dict_and_reset(self):
        stats = CacheStats(hits=2, disk_hits=1, misses=1, stores=3, evictions=1)
        data = stats.to_dict()
        assert data["hits"] == 2 and data["hit_rate"] == pytest.approx(0.75)
        assert stats.total_hits == 3 and stats.lookups == 4
        stats.reset()
        assert stats.lookups == 0 and stats.hit_rate == 0.0

"""Tests for the content-addressed result cache (LRU + on-disk JSON store)."""

import json
import os

import pytest

from repro.service.cache import CacheStats, ResultCache


def payload(tag: str) -> dict:
    return {"qasm": f"// {tag}", "metrics": {"cx_count": len(tag)}}


class TestMemoryCache:
    def test_miss_then_hit(self):
        cache = ResultCache()
        assert cache.get("a" * 64) is None
        cache.put("a" * 64, payload("a"))
        assert cache.get("a" * 64) == payload("a")
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_lru_eviction_order(self):
        cache = ResultCache(max_entries=2)
        cache.put("k1", payload("1"))
        cache.put("k2", payload("2"))
        assert cache.get("k1") is not None  # k1 becomes most-recent
        cache.put("k3", payload("3"))  # evicts k2
        assert cache.stats.evictions == 1
        assert cache.get("k2") is None
        assert cache.get("k1") is not None
        assert cache.get("k3") is not None

    def test_len_and_clear(self):
        cache = ResultCache()
        cache.put("k1", payload("1"))
        cache.put("k2", payload("2"))
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.get("k1") is None

    def test_max_entries_validation(self):
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)


class TestDiskCache:
    def test_round_trip_through_disk(self, tmp_path):
        directory = str(tmp_path / "cache")
        writer = ResultCache(directory=directory)
        writer.put("f" * 64, payload("disk"))
        assert writer.disk_entries() == 1

        # A second cache instance (fresh process in real use) reads the same entry.
        reader = ResultCache(directory=directory)
        assert reader.get("f" * 64) == payload("disk")
        assert reader.stats.disk_hits == 1
        assert reader.stats.misses == 0
        # The entry was promoted into memory: next lookup is a memory hit.
        assert reader.get("f" * 64) == payload("disk")
        assert reader.stats.hits == 1

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        directory = str(tmp_path / "cache")
        os.makedirs(directory)
        cache = ResultCache(directory=directory)
        with open(os.path.join(directory, "bad.json"), "w", encoding="utf-8") as handle:
            handle.write("{not json")
        assert cache.get("bad") is None
        assert cache.stats.misses == 1

    def test_directory_created_lazily_on_first_write(self, tmp_path):
        directory = str(tmp_path / "cache")
        cache = ResultCache(directory=directory)
        # Read-only use (e.g. `repro cache stats`) must not create the directory.
        assert cache.get("a" * 64) is None
        assert cache.disk_entries() == 0
        assert not os.path.isdir(directory)
        cache.put("a" * 64, payload("lazy"))
        assert os.path.isdir(directory)
        assert cache.disk_entries() == 1

    def test_clear_removes_disk_files(self, tmp_path):
        directory = str(tmp_path / "cache")
        cache = ResultCache(directory=directory)
        cache.put("k1", payload("1"))
        cache.put("k2", payload("2"))
        removed = cache.clear()
        assert removed >= 2
        assert cache.disk_entries() == 0

    def test_disk_files_are_valid_json(self, tmp_path):
        directory = str(tmp_path / "cache")
        cache = ResultCache(directory=directory)
        cache.put("k1", payload("json"))
        (path,) = [p for p in os.listdir(directory) if p.endswith(".json")]
        with open(os.path.join(directory, path), encoding="utf-8") as handle:
            assert json.load(handle) == payload("json")


class TestCacheStats:
    def test_to_dict_and_reset(self):
        stats = CacheStats(hits=2, disk_hits=1, misses=1, stores=3, evictions=1)
        data = stats.to_dict()
        assert data["hits"] == 2 and data["hit_rate"] == pytest.approx(0.75)
        assert stats.total_hits == 3 and stats.lookups == 4
        stats.reset()
        assert stats.lookups == 0 and stats.hit_rate == 0.0

"""Tests for the ``python -m repro`` CLI and executor-backed experiment regeneration."""

import json

import pytest

from repro import QuantumCircuit
from repro.benchlib import BenchmarkCase
from repro.benchlib.grover import grover_n4
from repro.circuit import qasm
from repro.service import BatchTranspiler, ResultCache
from repro.service.cli import main
from repro.evaluation import run_table_experiment

SMALL = [BenchmarkCase("grover_n4", 4, grover_n4)]


class TestTranspileCommand:
    @pytest.fixture()
    def qasm_file(self, tmp_path):
        circuit = QuantumCircuit(3, name="cli")
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.cx(0, 2)
        path = tmp_path / "input.qasm"
        path.write_text(qasm.dumps(circuit))
        return str(path)

    def test_writes_routed_qasm_and_metrics(self, qasm_file, tmp_path, capsys):
        out = tmp_path / "routed.qasm"
        metrics = tmp_path / "metrics.json"
        code = main([
            "transpile", qasm_file, "--device", "linear", "--num-qubits", "3",
            "--routing", "nassc", "--seed", "0",
            "--out", str(out), "--metrics", str(metrics),
        ])
        assert code == 0
        routed = qasm.loads(out.read_text())
        assert routed.num_qubits == 3
        payload = json.loads(metrics.read_text())
        assert payload["routing"] == "nassc"
        assert payload["cx_count"] == routed.cx_count()
        assert payload["device"].startswith("linear")
        assert len(payload["fingerprint"]) == 64

    def test_best_of_flag_runs_the_ensemble(self, qasm_file, tmp_path, capsys):
        out = tmp_path / "routed.qasm"
        metrics = tmp_path / "metrics.json"
        code = main([
            "transpile", qasm_file, "--device", "linear", "--num-qubits", "3",
            "--routing", "sabre", "--seed", "0", "--best-of", "3",
            "--out", str(out), "--metrics", str(metrics),
        ])
        assert code == 0
        payload = json.loads(metrics.read_text())
        assert payload["cx_count"] > 0
        # Reruns are deterministic: the same --best-of invocation hits the cache
        # only for an identical K (best_of enters the fingerprint).
        assert len(payload["fingerprint"]) == 64

    def test_failure_returns_nonzero(self, qasm_file, capsys):
        # 3-qubit circuit on a 2-qubit device: the job fails, the CLI reports it.
        code = main([
            "transpile", qasm_file, "--device", "linear", "--num-qubits", "2", "--out", "-",
        ])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_stdout_output(self, qasm_file, capsys):
        code = main([
            "transpile", qasm_file, "--device", "linear", "--num-qubits", "3", "--out", "-",
        ])
        assert code == 0
        assert "OPENQASM 2.0;" in capsys.readouterr().out


class TestTableCommand:
    def test_report_and_artifacts(self, tmp_path, capsys):
        csv_path = tmp_path / "table.csv"
        json_path = tmp_path / "table.json"
        code = main([
            "table", "--device", "linear", "--num-qubits", "5",
            "--benchmarks", "grover_n4", "--workers", "1",
            "--csv", str(csv_path), "--json", str(json_path), "--depth",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "grover_n4" in out and "geomean" in out
        assert "sabre_depth" in out  # --depth adds the Table II style report
        assert "delta_cx_added_pct" in csv_path.read_text()
        payload = json.loads(json_path.read_text())
        assert payload["rows"][0]["name"] == "grover_n4"
        assert "geomean" in payload

    def test_warm_cache_rerun_zero_misses(self, tmp_path, capsys):
        """Acceptance: a warm-cache rerun performs zero new transpile calls."""
        cache_dir = str(tmp_path / "cache")
        argv = [
            "table", "--device", "linear", "--num-qubits", "5",
            "--benchmarks", "grover_n4", "--workers", "2", "--cache-dir", cache_dir,
        ]
        assert main(argv) == 0
        cold = capsys.readouterr()
        assert main(argv) == 0
        warm = capsys.readouterr()
        assert cold.out == warm.out  # identical report from cached results
        assert "0 misses" in warm.err
        assert "100% hit rate" in warm.err

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["table", "--benchmarks", "not_a_benchmark"])

    def test_routing_choice_from_registry(self, capsys):
        """--routing accepts any registered method; self-vs-self comparison yields 0%."""
        code = main([
            "table", "--device", "linear", "--num-qubits", "5",
            "--benchmarks", "grover_n4", "--routing", "sabre", "--baseline", "sabre",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Qiskit+SABRE vs Qiskit+SABRE" in out

    def test_unregistered_routing_rejected(self):
        with pytest.raises(SystemExit):
            main(["table", "--routing", "not_a_method"])


class TestAblationCommand:
    def test_panel_regeneration(self, tmp_path, capsys):
        json_path = tmp_path / "ablation.json"
        code = main([
            "ablation", "--device", "linear", "--num-qubits", "5",
            "--benchmarks", "grover_n4", "--json", str(json_path),
        ])
        assert code == 0
        assert "grover_n4" in capsys.readouterr().out
        payload = json.loads(json_path.read_text())
        assert len(payload[0]["cx_by_combination"]) == 8


class TestNoiseCommand:
    def test_small_noise_run(self, capsys):
        code = main([
            "noise", "--benchmarks", "grover_n4", "--shots", "128",
            "--realizations", "8",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "sr_nassc" in out and "grover_n4" in out


class TestMethodsCommand:
    def test_lists_routings_and_levels(self, capsys):
        assert main(["methods"]) == 0
        out = capsys.readouterr().out
        for name in ("none", "sabre", "nassc"):
            assert name in out
        for level in ("O0", "O1", "O2", "O3"):
            assert level in out
        assert "builtin" in out
        assert "best-of-N" in out and "single" in out

    def test_lists_registered_plugin(self, capsys):
        from repro.transpiler.registry import get_routing, register_routing, unregister_routing

        def factory(target, options, distance_matrix=None):
            return get_routing("sabre").factory(target, options, distance_matrix=distance_matrix)

        register_routing("cli_listed_router", factory, description="cli plugin probe")
        try:
            assert main(["methods"]) == 0
            out = capsys.readouterr().out
            assert "cli_listed_router" in out and "plugin" in out
        finally:
            unregister_routing("cli_listed_router")


class TestOptimizationLevelFlag:
    def test_transpile_level_flag(self, tmp_path, capsys):
        circuit = QuantumCircuit(3, name="lvl")
        circuit.h(0)
        circuit.ccx(0, 1, 2)
        path = tmp_path / "lvl.qasm"
        path.write_text(qasm.dumps(circuit))
        metrics = tmp_path / "m.json"
        code = main([
            "transpile", str(path), "--device", "linear", "--num-qubits", "3",
            "--routing", "sabre", "--level", "O0", "--out", "-", "--metrics", str(metrics),
        ])
        assert code == 0
        payload = json.loads(metrics.read_text())
        assert payload["level"] == "O0"


class TestCustomRouterThroughService:
    """Acceptance: a router registered via register_routing works by name through the
    CLI, the batch service, and the content-addressed cache."""

    @staticmethod
    def _register(name):
        from repro.transpiler.registry import get_routing, register_routing

        def factory(target, options, distance_matrix=None):
            return get_routing("sabre").factory(target, options, distance_matrix=distance_matrix)

        register_routing(name, factory, description="custom e2e router")

    def test_cli_and_cache_roundtrip(self, tmp_path, capsys):
        from repro.transpiler.registry import unregister_routing

        self._register("custom_e2e")
        try:
            circuit = QuantumCircuit(3, name="custom")
            circuit.h(0)
            circuit.cx(0, 2)
            path = tmp_path / "c.qasm"
            path.write_text(qasm.dumps(circuit))
            cache_dir = str(tmp_path / "cache")
            argv = [
                "transpile", str(path), "--device", "linear", "--num-qubits", "3",
                "--routing", "custom_e2e", "--out", "-", "--cache-dir", cache_dir,
            ]
            assert main(argv) == 0
            cold = capsys.readouterr()
            assert "OPENQASM 2.0;" in cold.out
            assert main(argv) == 0
            warm = capsys.readouterr()
            assert warm.out == cold.out
            assert "0 misses" in warm.err
        finally:
            unregister_routing("custom_e2e")

    def test_batch_executor_runs_custom_router(self):
        from repro.service.jobs import TranspileJob
        from repro.transpiler.registry import unregister_routing
        from repro.hardware import linear_coupling_map

        self._register("custom_batch")
        try:
            circuit = QuantumCircuit(3)
            circuit.h(0)
            circuit.cx(0, 2)
            job = TranspileJob.from_circuit(
                circuit, linear_coupling_map(3), routing="custom_batch", seed=0
            )
            executor = BatchTranspiler(max_workers=1)
            first = executor.run([job])[0]
            assert first.ok and not first.from_cache
            second = executor.run([job])[0]
            assert second.ok and second.from_cache
            assert second.unwrap().cx_count == first.unwrap().cx_count
        finally:
            unregister_routing("custom_batch")


class TestCacheCommand:
    def test_stats_and_clear(self, tmp_path, capsys):
        import json as json_module

        cache_dir = str(tmp_path / "cache")
        ResultCache(directory=cache_dir).put("a" * 64, {"qasm": "//"})
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        payload = json_module.loads(capsys.readouterr().out)
        assert payload["directory"] == cache_dir
        assert payload["exists"] is True
        assert payload["disk_entries"] == 1
        assert payload["stats"]["hit_rate"] == 0.0
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out  # "removed ..." line from clear, then the JSON
        payload = json_module.loads(out[out.index("{"):])
        assert payload["disk_entries"] == 0

    def test_cache_requires_directory(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert main(["cache", "stats"]) == 1


class TestExperimentsThroughExecutor:
    def test_table_experiment_serial_vs_parallel_identical(self):
        serial = run_table_experiment(
            "linear", cases=SMALL, seeds=(0, 1), num_device_qubits=5,
            executor=BatchTranspiler(max_workers=1),
        )
        parallel = run_table_experiment(
            "linear", cases=SMALL, seeds=(0, 1), num_device_qubits=5,
            executor=BatchTranspiler(max_workers=2),
        )
        row_s, row_p = serial.rows[0], parallel.rows[0]
        assert (row_s.sabre_cx, row_s.nassc_cx, row_s.sabre_depth, row_s.nassc_depth) == (
            row_p.sabre_cx, row_p.nassc_cx, row_p.sabre_depth, row_p.nassc_depth,
        )

    def test_table_experiment_warm_executor_zero_misses(self):
        executor = BatchTranspiler(max_workers=1)
        first = run_table_experiment(
            "linear", cases=SMALL, seeds=(0,), num_device_qubits=5, executor=executor,
        )
        cold_misses = executor.stats.misses
        assert cold_misses > 0
        second = run_table_experiment(
            "linear", cases=SMALL, seeds=(0,), num_device_qubits=5, executor=executor,
        )
        # Zero new transpile calls on the warm rerun, identical table.
        assert executor.stats.misses == cold_misses
        assert second.rows[0].nassc_cx == first.rows[0].nassc_cx


class TestScheduleCLI:
    @pytest.fixture()
    def qasm_file(self, tmp_path):
        circuit = QuantumCircuit(3, name="timed")
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.cx(0, 2)
        circuit.cx(1, 2)
        path = tmp_path / "timed.qasm"
        path.write_text(qasm.dumps(circuit))
        return str(path)

    def test_transpile_schedule_flag_emits_duration_metrics(self, qasm_file, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        code = main([
            "transpile", qasm_file, "--device", "linear", "--num-qubits", "3",
            "--routing", "sabre", "--seed", "0", "--schedule", "asap",
            "--metrics", str(metrics),
        ])
        assert code == 0
        payload = json.loads(metrics.read_text())
        assert payload["schedule_mode"] == "asap"
        assert payload["schedule_duration_ns"] > 0
        assert payload["schedule_idle_ns"] >= 0

    def test_schedule_subcommand_prints_timeline(self, qasm_file, capsys):
        code = main([
            "schedule", qasm_file, "--device", "linear", "--num-qubits", "3",
            "--routing", "sabre", "--seed", "0", "--mode", "alap",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "q0" in out and "critical path" in out.lower()
        assert "idle" in out.lower()

    def test_schedule_subcommand_json(self, qasm_file, capsys):
        code = main([
            "schedule", qasm_file, "--device", "linear", "--num-qubits", "3",
            "--routing", "sabre", "--seed", "0", "--mode", "asap", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "asap" and payload["unit"] == "ns"
        assert payload["duration"] > 0 and payload["instructions"]

    def test_ns_route_cost_flag(self, qasm_file, tmp_path, capsys):
        out = tmp_path / "routed.qasm"
        code = main([
            "transpile", qasm_file, "--device", "linear", "--num-qubits", "3",
            "--routing", "sabre", "--seed", "0", "--route-cost", "ns",
            "--out", str(out),
        ])
        assert code == 0
        assert qasm.loads(out.read_text()).num_qubits == 3

    def test_methods_lists_schedule_modes(self, capsys):
        assert main(["methods"]) == 0
        out = capsys.readouterr().out
        assert "schedule modes:" in out
        assert "asap" in out and "alap" in out

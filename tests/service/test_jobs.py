"""Tests for TranspileJob specs: fingerprints, serialization, and execution."""

import json
import os
import subprocess
import sys

import pytest

from repro import QuantumCircuit, linear_coupling_map
from repro.core.nassc import NASSCConfig
from repro.core.pipeline import TranspileResult, transpile
from repro.hardware.calibration import fake_montreal_calibration
from repro.hardware.topologies import montreal_coupling_map
from repro.service.jobs import JobError, TranspileJob


def small_circuit(name: str = "small") -> QuantumCircuit:
    circuit = QuantumCircuit(4, name=name)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.cx(0, 3)
    circuit.crx(0.3, 1, 3)
    return circuit


class TestFingerprint:
    def test_deterministic_for_identical_content(self):
        coupling = linear_coupling_map(5)
        job_a = TranspileJob.from_circuit(small_circuit(), coupling, routing="sabre", seed=0)
        job_b = TranspileJob.from_circuit(small_circuit(), coupling, routing="sabre", seed=0)
        assert job_a.fingerprint() == job_b.fingerprint()

    def test_name_does_not_enter_fingerprint(self):
        coupling = linear_coupling_map(5)
        job_a = TranspileJob.from_circuit(small_circuit("a"), coupling, seed=0, name="first")
        job_b = TranspileJob.from_circuit(small_circuit("b"), coupling, seed=0, name="second")
        assert job_a.fingerprint() == job_b.fingerprint()

    @pytest.mark.parametrize(
        "change",
        [
            {"routing": "nassc"},
            {"seed": 1},
            {"nassc_config": NASSCConfig(True, False, True)},
            {"noise_aware": True, "calibration": "montreal"},
        ],
    )
    def test_content_changes_change_fingerprint(self, change):
        coupling = montreal_coupling_map()
        base = TranspileJob.from_circuit(small_circuit(), coupling, routing="sabre", seed=0)
        kwargs = dict(routing="sabre", seed=0)
        if change.get("calibration") == "montreal":
            change = dict(change, calibration=fake_montreal_calibration())
        kwargs.update(change)
        other = TranspileJob.from_circuit(small_circuit(), coupling, **kwargs)
        assert base.fingerprint() != other.fingerprint()

    def test_circuit_changes_change_fingerprint(self):
        coupling = linear_coupling_map(5)
        base = TranspileJob.from_circuit(small_circuit(), coupling, seed=0)
        circuit = small_circuit()
        circuit.x(2)
        other = TranspileJob.from_circuit(circuit, coupling, seed=0)
        assert base.fingerprint() != other.fingerprint()

    def test_pipeline_version_enters_fingerprint(self):
        """A pipeline refactor (version bump) must never serve pre-refactor cache entries."""
        import repro.service.jobs as jobs_module

        coupling = linear_coupling_map(5)
        job = TranspileJob.from_circuit(small_circuit(), coupling, seed=0)
        assert job.content_dict()["pipeline_version"] == jobs_module.PIPELINE_VERSION
        before = job.fingerprint()
        original = jobs_module.PIPELINE_VERSION
        jobs_module.PIPELINE_VERSION = original + 1
        try:
            assert job.fingerprint() != before
        finally:
            jobs_module.PIPELINE_VERSION = original
        assert job.fingerprint() == before

    def test_pipeline_version_bump_misses_result_cache(self):
        """End to end: a cached result is not served once the pipeline version changes."""
        import repro.service.jobs as jobs_module
        from repro.service.cache import ResultCache

        coupling = linear_coupling_map(5)
        job = TranspileJob.from_circuit(small_circuit(), coupling, routing="none", seed=0)
        cache = ResultCache()
        cache.put(job.fingerprint(), job.run().to_dict())
        assert cache.get(job.fingerprint()) is not None
        original = jobs_module.PIPELINE_VERSION
        jobs_module.PIPELINE_VERSION = original + 1
        try:
            assert cache.get(job.fingerprint()) is None
        finally:
            jobs_module.PIPELINE_VERSION = original

    def test_stable_across_processes(self):
        """The fingerprint is a pure content hash: a fresh interpreter computes the same."""
        coupling = linear_coupling_map(5)
        job = TranspileJob.from_circuit(
            small_circuit(), coupling, routing="nassc", seed=3,
            nassc_config=NASSCConfig(True, True, False),
        )
        script = (
            "import json, sys\n"
            "from repro.service.jobs import TranspileJob\n"
            "job = TranspileJob.from_dict(json.load(sys.stdin))\n"
            "print(job.fingerprint())\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
        env["PYTHONHASHSEED"] = "12345"  # prove independence from hash randomisation
        proc = subprocess.run(
            [sys.executable, "-c", script],
            input=json.dumps(job.to_dict()),
            capture_output=True, text=True, env=env, check=True,
        )
        assert proc.stdout.strip() == job.fingerprint()


class TestSerialization:
    def test_job_round_trip(self):
        coupling = montreal_coupling_map()
        job = TranspileJob.from_circuit(
            small_circuit(), coupling, routing="nassc", seed=7,
            nassc_config=NASSCConfig(False, True, True),
            calibration=fake_montreal_calibration(), noise_aware=True, name="rt",
        )
        clone = TranspileJob.from_dict(json.loads(json.dumps(job.to_dict())))
        assert clone == job
        assert clone.fingerprint() == job.fingerprint()

    def test_job_error_round_trip(self):
        error = JobError("f" * 64, "job", "ValueError", "boom", "trace")
        clone = JobError.from_dict(error.to_dict())
        assert clone == error
        assert "boom" in str(clone)


class TestExecution:
    def test_run_matches_direct_transpile(self):
        coupling = linear_coupling_map(5)
        circuit = small_circuit()
        direct = transpile(circuit, coupling, routing="nassc", seed=0)
        via_job = TranspileJob.from_circuit(circuit, coupling, routing="nassc", seed=0).run()
        assert via_job.cx_count == direct.cx_count
        assert via_job.depth == direct.depth
        assert via_job.num_swaps == direct.num_swaps
        assert via_job.final_layout == direct.final_layout

    def test_routing_none_needs_no_coupling_map(self):
        result = TranspileJob.from_circuit(small_circuit(), None, routing="none").run()
        assert result.routing == "none"
        assert result.coupling_map is None


class TestTranspileResultRoundTrip:
    def test_to_dict_from_dict(self):
        coupling = linear_coupling_map(5)
        result = transpile(small_circuit(), coupling, routing="nassc", seed=1)
        clone = TranspileResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert clone.cx_count == result.cx_count
        assert clone.depth == result.depth
        assert clone.num_swaps == result.num_swaps
        assert clone.routing == result.routing
        assert clone.initial_layout == result.initial_layout
        assert clone.final_layout == result.final_layout
        assert clone.coupling_map.edges == result.coupling_map.edges
        assert clone.count_ops() == result.count_ops()
        assert clone.transpile_time == pytest.approx(result.transpile_time)

    def test_metrics_embedded_in_payload(self):
        coupling = linear_coupling_map(5)
        result = transpile(small_circuit(), coupling, routing="sabre", seed=0)
        payload = result.to_dict()
        assert payload["metrics"]["cx_count"] == result.cx_count
        assert payload["metrics"]["depth"] == result.depth

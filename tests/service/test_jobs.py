"""Tests for TranspileJob specs: fingerprints, serialization, and execution."""

import json
import os
import subprocess
import sys

import pytest

from repro import QuantumCircuit, Target, TranspileOptions, linear_coupling_map
from repro.core.nassc import NASSCConfig
from repro.core.pipeline import TranspileResult, transpile
from repro.exceptions import TranspilerError
from repro.hardware.calibration import fake_montreal_calibration
from repro.hardware.topologies import montreal_coupling_map
from repro.service.jobs import JobError, TranspileJob


def small_circuit(name: str = "small") -> QuantumCircuit:
    circuit = QuantumCircuit(4, name=name)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.cx(0, 3)
    circuit.crx(0.3, 1, 3)
    return circuit


class TestFingerprint:
    def test_deterministic_for_identical_content(self):
        coupling = linear_coupling_map(5)
        job_a = TranspileJob.from_circuit(small_circuit(), coupling, routing="sabre", seed=0)
        job_b = TranspileJob.from_circuit(small_circuit(), coupling, routing="sabre", seed=0)
        assert job_a.fingerprint() == job_b.fingerprint()

    def test_name_does_not_enter_fingerprint(self):
        coupling = linear_coupling_map(5)
        job_a = TranspileJob.from_circuit(small_circuit("a"), coupling, seed=0, name="first")
        job_b = TranspileJob.from_circuit(small_circuit("b"), coupling, seed=0, name="second")
        assert job_a.fingerprint() == job_b.fingerprint()

    @pytest.mark.parametrize(
        "change",
        [
            {"routing": "nassc"},
            {"seed": 1},
            {"best_of": 4},
            {"nassc_config": NASSCConfig(True, False, True)},
            {"noise_aware": True, "calibration": "montreal"},
        ],
    )
    def test_content_changes_change_fingerprint(self, change):
        coupling = montreal_coupling_map()
        base = TranspileJob.from_circuit(small_circuit(), coupling, routing="sabre", seed=0)
        kwargs = dict(routing="sabre", seed=0)
        if change.get("calibration") == "montreal":
            change = dict(change, calibration=fake_montreal_calibration())
        kwargs.update(change)
        other = TranspileJob.from_circuit(small_circuit(), coupling, **kwargs)
        assert base.fingerprint() != other.fingerprint()

    def test_circuit_changes_change_fingerprint(self):
        coupling = linear_coupling_map(5)
        base = TranspileJob.from_circuit(small_circuit(), coupling, seed=0)
        circuit = small_circuit()
        circuit.x(2)
        other = TranspileJob.from_circuit(circuit, coupling, seed=0)
        assert base.fingerprint() != other.fingerprint()

    def test_pipeline_version_enters_fingerprint(self):
        """A pipeline refactor (version bump) must never serve pre-refactor cache entries."""
        import repro.service.jobs as jobs_module

        coupling = linear_coupling_map(5)
        job = TranspileJob.from_circuit(small_circuit(), coupling, seed=0)
        assert job.content_dict()["pipeline_version"] == jobs_module.PIPELINE_VERSION
        before = job.fingerprint()
        original = jobs_module.PIPELINE_VERSION
        jobs_module.PIPELINE_VERSION = original + 1
        try:
            assert job.fingerprint() != before
        finally:
            jobs_module.PIPELINE_VERSION = original
        assert job.fingerprint() == before

    def test_pipeline_version_bump_misses_result_cache(self):
        """End to end: a cached result is not served once the pipeline version changes."""
        import repro.service.jobs as jobs_module
        from repro.service.cache import ResultCache

        coupling = linear_coupling_map(5)
        job = TranspileJob.from_circuit(small_circuit(), coupling, routing="none", seed=0)
        cache = ResultCache()
        cache.put(job.fingerprint(), job.run().to_dict())
        assert cache.get(job.fingerprint()) is not None
        original = jobs_module.PIPELINE_VERSION
        jobs_module.PIPELINE_VERSION = original + 1
        try:
            assert cache.get(job.fingerprint()) is None
        finally:
            jobs_module.PIPELINE_VERSION = original

    def test_stable_across_processes(self):
        """The fingerprint is a pure content hash: a fresh interpreter computes the same."""
        coupling = linear_coupling_map(5)
        job = TranspileJob.from_circuit(
            small_circuit(), coupling, routing="nassc", seed=3,
            nassc_config=NASSCConfig(True, True, False),
        )
        script = (
            "import json, sys\n"
            "from repro.service.jobs import TranspileJob\n"
            "job = TranspileJob.from_dict(json.load(sys.stdin))\n"
            "print(job.fingerprint())\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
        env["PYTHONHASHSEED"] = "12345"  # prove independence from hash randomisation
        proc = subprocess.run(
            [sys.executable, "-c", script],
            input=json.dumps(job.to_dict()),
            capture_output=True, text=True, env=env, check=True,
        )
        assert proc.stdout.strip() == job.fingerprint()


class TestTargetOptionsFingerprint:
    """The Target/TranspileOptions canonical dicts are the fingerprint input (v3 schema)."""

    def test_target_options_equivalent_to_legacy_kwargs(self):
        """A job built from a Target+options fingerprints like the flat legacy build."""
        coupling = linear_coupling_map(5)
        via_target = TranspileJob.from_circuit(
            small_circuit(), Target(coupling_map=coupling),
            TranspileOptions(routing="nassc", seed=3),
        )
        via_kwargs = TranspileJob.from_circuit(
            small_circuit(), coupling, routing="nassc", seed=3
        )
        assert via_target.fingerprint() == via_kwargs.fingerprint()

    def test_content_dict_nests_target_and_options(self):
        job = TranspileJob.from_circuit(small_circuit(), linear_coupling_map(5), seed=0)
        content = job.content_dict()
        assert content["target"] == job.target().content_dict()
        assert content["options"] == job.options().content_dict()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("level", "O2"),
            ("final_basis", "u"),
            ("extended_set_size", 10),
            ("extended_set_weight", 0.75),
            ("layout_iterations", 3),
        ],
    )
    def test_option_and_target_field_changes_change_fingerprint(self, field, value):
        coupling = linear_coupling_map(5)
        base = TranspileJob.from_circuit(small_circuit(), coupling, seed=0)
        import dataclasses

        changed = dataclasses.replace(base, **{field: value})
        assert base.fingerprint() != changed.fingerprint()

    def test_adding_calibration_to_target_changes_fingerprint(self):
        coupling = montreal_coupling_map()
        plain = TranspileJob.from_circuit(small_circuit(), Target(coupling_map=coupling))
        calibrated = TranspileJob.from_circuit(
            small_circuit(),
            Target(coupling_map=coupling, calibration=fake_montreal_calibration()),
        )
        assert plain.fingerprint() != calibrated.fingerprint()

    def test_changed_options_miss_result_cache(self):
        """End to end: an O1 cache entry is not served to an O2 job (and vice versa)."""
        from repro.service.cache import ResultCache

        coupling = linear_coupling_map(5)
        o1 = TranspileJob.from_circuit(small_circuit(), coupling, routing="none", seed=0)
        o2 = TranspileJob.from_circuit(
            small_circuit(), coupling, routing="none", seed=0, level="O2"
        )
        cache = ResultCache()
        cache.put(o1.fingerprint(), o1.run().to_dict())
        assert cache.get(o1.fingerprint()) is not None
        assert cache.get(o2.fingerprint()) is None

    def test_legacy_coupling_map_keyword_still_accepted(self):
        coupling = linear_coupling_map(5)
        by_keyword = TranspileJob.from_circuit(
            small_circuit(), coupling_map=coupling, routing="sabre", seed=0
        )
        positional = TranspileJob.from_circuit(small_circuit(), coupling, routing="sabre", seed=0)
        assert by_keyword.fingerprint() == positional.fingerprint()
        with pytest.raises(TypeError, match="not both"):
            TranspileJob.from_circuit(
                small_circuit(), Target(coupling_map=coupling), coupling_map=coupling
            )

    def test_final_basis_kwarg_with_target_rejected(self):
        with pytest.raises(TypeError, match="on the Target"):
            TranspileJob.from_circuit(
                small_circuit(), Target(coupling_map=linear_coupling_map(5)), final_basis="u"
            )

    def test_unregistered_routing_rejected_at_construction(self):
        with pytest.raises(TranspilerError, match="unknown routing method"):
            TranspileJob(qasm="OPENQASM 2.0;", routing="not_registered")

    def test_level_normalised_at_construction(self):
        job = TranspileJob(qasm="OPENQASM 2.0;", routing="none", level=2)
        assert job.level == "O2"

    def test_job_run_honours_level(self):
        coupling = linear_coupling_map(5)
        o0 = TranspileJob.from_circuit(
            small_circuit(), coupling, routing="sabre", seed=0, level="O0"
        ).run()
        o1 = TranspileJob.from_circuit(
            small_circuit(), coupling, routing="sabre", seed=0, level="O1"
        ).run()
        assert o0.level == "O0" and o1.level == "O1"
        assert o0.cx_count >= o1.cx_count


class TestSerialization:
    def test_job_round_trip(self):
        coupling = montreal_coupling_map()
        job = TranspileJob.from_circuit(
            small_circuit(), coupling, routing="nassc", seed=7,
            nassc_config=NASSCConfig(False, True, True),
            calibration=fake_montreal_calibration(), noise_aware=True, name="rt",
        )
        clone = TranspileJob.from_dict(json.loads(json.dumps(job.to_dict())))
        assert clone == job
        assert clone.fingerprint() == job.fingerprint()

    def test_best_of_round_trips(self):
        coupling = linear_coupling_map(5)
        job = TranspileJob.from_circuit(
            small_circuit(), coupling, routing="sabre", seed=0, best_of=4
        )
        clone = TranspileJob.from_dict(json.loads(json.dumps(job.to_dict())))
        assert clone == job
        assert clone.best_of == 4
        assert clone.options().effective_best_of == 4
        assert clone.fingerprint() == job.fingerprint()

    def test_pre_target_flat_dict_still_loads(self):
        """Job specs saved before the Target redesign (no ``level`` key) still load."""
        coupling = linear_coupling_map(5)
        legacy = TranspileJob.from_circuit(small_circuit(), coupling, routing="sabre", seed=1)
        data = legacy.to_dict()
        del data["level"]
        clone = TranspileJob.from_dict(data)
        assert clone.level == "O1"
        assert clone.fingerprint() == legacy.fingerprint()

    def test_target_built_from_job_round_trips(self):
        target = Target(
            coupling_map=montreal_coupling_map(), calibration=fake_montreal_calibration(),
            final_basis="u",
        )
        job = TranspileJob.from_circuit(small_circuit(), target, noise_aware=True)
        assert job.target() == target

    def test_job_error_round_trip(self):
        error = JobError("f" * 64, "job", "ValueError", "boom", "trace")
        clone = JobError.from_dict(error.to_dict())
        assert clone == error
        assert "boom" in str(clone)


class TestExecution:
    def test_run_matches_direct_transpile(self):
        coupling = linear_coupling_map(5)
        circuit = small_circuit()
        direct = transpile(circuit, coupling, routing="nassc", seed=0)
        via_job = TranspileJob.from_circuit(circuit, coupling, routing="nassc", seed=0).run()
        assert via_job.cx_count == direct.cx_count
        assert via_job.depth == direct.depth
        assert via_job.num_swaps == direct.num_swaps
        assert via_job.final_layout == direct.final_layout

    def test_routing_none_needs_no_coupling_map(self):
        result = TranspileJob.from_circuit(small_circuit(), None, routing="none").run()
        assert result.routing == "none"
        assert result.coupling_map is None


class TestTranspileResultRoundTrip:
    def test_to_dict_from_dict(self):
        coupling = linear_coupling_map(5)
        result = transpile(small_circuit(), coupling, routing="nassc", seed=1)
        clone = TranspileResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert clone.cx_count == result.cx_count
        assert clone.depth == result.depth
        assert clone.num_swaps == result.num_swaps
        assert clone.routing == result.routing
        assert clone.initial_layout == result.initial_layout
        assert clone.final_layout == result.final_layout
        assert clone.coupling_map.edges == result.coupling_map.edges
        assert clone.count_ops() == result.count_ops()
        assert clone.transpile_time == pytest.approx(result.transpile_time)

    def test_metrics_embedded_in_payload(self):
        coupling = linear_coupling_map(5)
        result = transpile(small_circuit(), coupling, routing="sabre", seed=0)
        payload = result.to_dict()
        assert payload["metrics"]["cx_count"] == result.cx_count
        assert payload["metrics"]["depth"] == result.depth

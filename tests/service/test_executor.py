"""Tests for the batch executor: determinism, caching, dedup, and error isolation."""

import pytest

from repro import QuantumCircuit, linear_coupling_map
from repro.circuit import qasm
from repro.service import BatchTranspiler, ResultCache, TranspileJob, transpile_batch


def small_circuit() -> QuantumCircuit:
    circuit = QuantumCircuit(4, name="exec")
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.cx(0, 3)
    circuit.crx(0.3, 1, 3)
    circuit.cx(2, 0)
    return circuit


def batch_jobs(seeds=(0, 1)) -> list:
    coupling = linear_coupling_map(5)
    circuit = small_circuit()
    return [
        TranspileJob.from_circuit(circuit, coupling, routing=routing, seed=seed)
        for routing in ("sabre", "nassc")
        for seed in seeds
    ]


def metrics(outcomes):
    return [
        (o.result.cx_count, o.result.depth, o.result.num_swaps, qasm.dumps(o.result.circuit))
        for o in outcomes
    ]


class TestDeterminism:
    def test_parallel_results_bit_identical_to_serial(self):
        """Regression: fixed seeds must give the same circuits serial vs parallel."""
        jobs = batch_jobs()
        serial = BatchTranspiler(max_workers=1).run(jobs)
        parallel = BatchTranspiler(max_workers=2, chunksize=1).run(jobs)
        assert all(o.ok for o in serial + parallel)
        assert metrics(serial) == metrics(parallel)

    def test_outcomes_preserve_job_order(self):
        jobs = batch_jobs()
        outcomes = BatchTranspiler(max_workers=2).run(jobs)
        assert [o.job for o in outcomes] == jobs
        assert [o.fingerprint for o in outcomes] == [j.fingerprint() for j in jobs]


class TestCaching:
    def test_warm_rerun_is_all_cache_hits(self):
        executor = BatchTranspiler(max_workers=1)
        jobs = batch_jobs()
        cold = executor.run(jobs)
        assert not any(o.from_cache for o in cold)
        warm = executor.run(jobs)
        assert all(o.from_cache for o in warm)
        assert executor.stats.misses == len(jobs)
        assert executor.stats.hits == len(jobs)
        assert metrics(cold) == metrics(warm)

    def test_duplicate_jobs_in_one_batch_execute_once(self):
        cache = ResultCache()
        executor = BatchTranspiler(max_workers=1, cache=cache)
        job = batch_jobs(seeds=(0,))[0]
        outcomes = executor.run([job, job, job])
        assert all(o.ok for o in outcomes)
        # One execution, one store: the duplicates were deduped inside the batch.
        assert cache.stats.stores == 1
        assert len({o.result.cx_count for o in outcomes}) == 1

    def test_shared_disk_cache_across_executors(self, tmp_path):
        directory = str(tmp_path / "cache")
        jobs = batch_jobs(seeds=(0,))
        first = BatchTranspiler(max_workers=1, cache=ResultCache(directory=directory))
        first.run(jobs)
        second = BatchTranspiler(max_workers=1, cache=ResultCache(directory=directory))
        outcomes = second.run(jobs)
        assert all(o.from_cache for o in outcomes)
        assert second.stats.misses == 0
        assert second.stats.disk_hits == len(jobs)


class TestErrorIsolation:
    def test_failed_job_does_not_kill_the_batch(self):
        coupling = linear_coupling_map(5)
        too_big = QuantumCircuit(6)
        too_big.cx(0, 5)
        bad = TranspileJob.from_circuit(too_big, coupling, routing="sabre", seed=0)
        jobs = [bad] + batch_jobs(seeds=(0,))
        for workers in (1, 2):
            outcomes = BatchTranspiler(max_workers=workers).run(jobs)
            assert not outcomes[0].ok
            assert outcomes[0].error is not None
            assert outcomes[0].error.exc_type == "TranspilerError"
            assert all(o.ok for o in outcomes[1:])

    def test_unwrap_raises_with_job_context(self):
        coupling = linear_coupling_map(5)
        too_big = QuantumCircuit(6, name="too_big")
        too_big.cx(0, 5)
        bad = TranspileJob.from_circuit(too_big, coupling, routing="sabre", seed=0)
        outcome = BatchTranspiler(max_workers=1).run_one(bad)
        with pytest.raises(RuntimeError, match="too_big"):
            outcome.unwrap()

    def test_worker_traceback_propagates_into_outcome(self):
        """The full worker-side traceback must cross the process boundary so the online
        server can return actionable error bodies, not bare exception class names."""
        coupling = linear_coupling_map(5)
        too_big = QuantumCircuit(6, name="too_big")
        too_big.cx(0, 5)
        bad = TranspileJob.from_circuit(too_big, coupling, routing="sabre", seed=0)
        for workers in (1, 2):
            # workers=2 with a multi-job batch forces the real process-pool path, so the
            # traceback demonstrably crosses the process boundary.
            outcome = BatchTranspiler(max_workers=workers).run(
                [bad] + batch_jobs(seeds=(workers,))
            )[0]
            assert outcome.error is not None
            assert "Traceback (most recent call last)" in outcome.error.traceback
            assert "TranspilerError" in outcome.error.traceback
            # and it survives the JSON round trip the server/cache layers use
            from repro.service.jobs import JobError

            assert JobError.from_dict(outcome.error.to_dict()).traceback == outcome.error.traceback

    def test_errors_are_not_cached(self):
        coupling = linear_coupling_map(5)
        too_big = QuantumCircuit(6)
        too_big.cx(0, 5)
        bad = TranspileJob.from_circuit(too_big, coupling, routing="sabre", seed=0)
        executor = BatchTranspiler(max_workers=1)
        executor.run([bad])
        assert executor.stats.stores == 0
        rerun = executor.run([bad])
        assert not rerun[0].from_cache


class TestProgressAndHelpers:
    def test_progress_callback_sees_every_job(self):
        jobs = batch_jobs()
        seen = []
        BatchTranspiler(max_workers=2).run(
            jobs, progress=lambda done, total, outcome: seen.append((done, total, outcome.ok))
        )
        assert len(seen) == len(jobs)
        assert [entry[0] for entry in sorted(seen)] == list(range(1, len(jobs) + 1))
        assert all(entry[1] == len(jobs) for entry in seen)

    def test_progress_callback_exception_propagates(self):
        """A raising callback is the caller's bug: it must surface, not be swallowed
        by the pool-failure fallback (which would re-execute and double-settle)."""
        jobs = batch_jobs(seeds=(0,))

        def bad_callback(done, total, outcome):
            raise KeyError("callback bug")

        for workers in (1, 2):
            with pytest.raises(KeyError, match="callback bug"):
                BatchTranspiler(max_workers=workers).run(jobs, progress=bad_callback)

    def test_cached_results_carry_each_jobs_own_name(self):
        """Dedup/cache shares payloads between identical jobs, but never their labels."""
        coupling = linear_coupling_map(5)
        job_a = TranspileJob.from_circuit(small_circuit(), coupling, seed=0, name="first")
        job_b = TranspileJob.from_circuit(small_circuit(), coupling, seed=0, name="second")
        assert job_a.fingerprint() == job_b.fingerprint()
        outcomes = BatchTranspiler(max_workers=1).run([job_a, job_b])
        assert outcomes[1].from_cache or outcomes[1].ok
        assert outcomes[0].result.circuit.name == "first"
        assert outcomes[1].result.circuit.name == "second"

    def test_transpile_batch_helper(self):
        outcomes = transpile_batch(batch_jobs(seeds=(0,)), max_workers=1)
        assert all(o.ok for o in outcomes)

    def test_results_unwraps_in_order(self):
        jobs = batch_jobs(seeds=(0,))
        results = BatchTranspiler(max_workers=1).results(jobs)
        assert [r.routing for r in results] == ["sabre", "nassc"]

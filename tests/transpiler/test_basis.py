"""Tests for gate decomposition into the routable gate set."""

import numpy as np
import pytest

from repro.circuit import QuantumCircuit, random_unitary
from repro.exceptions import TranspilerError
from repro.synthesis import allclose_up_to_global_phase
from repro.transpiler import PassManager, PropertySet
from repro.transpiler.passes import CheckRoutable, Decompose

from ..conftest import assert_unitary_equiv


def decompose(circuit: QuantumCircuit, keep_swaps: bool = True) -> QuantumCircuit:
    return PassManager([Decompose(keep_swaps=keep_swaps)]).run(circuit)


class TestDecompose:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda c: c.cz(0, 1),
            lambda c: c.cy(0, 1),
            lambda c: c.ch(0, 1),
            lambda c: c.cp(0.7, 0, 1),
            lambda c: c.crx(0.5, 0, 1),
            lambda c: c.cry(1.1, 0, 1),
            lambda c: c.crz(0.9, 0, 1),
            lambda c: c.rzz(0.4, 0, 1),
            lambda c: c.rxx(0.8, 0, 1),
            lambda c: c.ryy(0.3, 0, 1),
            lambda c: c.iswap(0, 1),
        ],
        ids=["cz", "cy", "ch", "cp", "crx", "cry", "crz", "rzz", "rxx", "ryy", "iswap"],
    )
    def test_two_qubit_gates_preserved(self, builder):
        circuit = QuantumCircuit(2)
        builder(circuit)
        decomposed = decompose(circuit)
        assert_unitary_equiv(circuit, decomposed)
        assert all(inst.name == "cx" or len(inst.qubits) == 1 for inst in decomposed.data)

    def test_ccx_equivalence_and_count(self):
        circuit = QuantumCircuit(3)
        circuit.ccx(0, 1, 2)
        decomposed = decompose(circuit)
        assert_unitary_equiv(circuit, decomposed)
        assert decomposed.cx_count() == 6

    def test_cswap_equivalence(self):
        circuit = QuantumCircuit(3)
        circuit.cswap(0, 1, 2)
        decomposed = decompose(circuit)
        assert_unitary_equiv(circuit, decomposed)

    def test_swap_kept_by_default(self):
        circuit = QuantumCircuit(2)
        circuit.swap(0, 1)
        assert decompose(circuit).count_gate("swap") == 1

    def test_swap_lowered_when_requested(self):
        circuit = QuantumCircuit(2)
        circuit.swap(0, 1)
        decomposed = decompose(circuit, keep_swaps=False)
        assert decomposed.count_gate("swap") == 0
        assert decomposed.cx_count() == 3
        assert_unitary_equiv(circuit, decomposed)

    def test_explicit_unitary_gates(self):
        circuit = QuantumCircuit(2)
        circuit.unitary(random_unitary(4, seed=5), [0, 1])
        circuit.unitary(random_unitary(2, seed=6), [1])
        decomposed = decompose(circuit)
        assert_unitary_equiv(circuit, decomposed)
        assert decomposed.count_gate("unitary") == 0

    def test_directives_pass_through(self):
        circuit = QuantumCircuit(2, 2)
        circuit.barrier()
        circuit.measure(0, 0)
        decomposed = decompose(circuit)
        assert decomposed.count_gate("measure") == 1
        assert decomposed.count_gate("barrier") == 1

    def test_mixed_circuit_equivalence(self):
        circuit = QuantumCircuit(4)
        circuit.h(0)
        circuit.ccx(0, 1, 2)
        circuit.cp(0.3, 2, 3)
        circuit.swap(1, 3)
        circuit.crz(1.2, 3, 0)
        decomposed = decompose(circuit, keep_swaps=False)
        assert_unitary_equiv(circuit, decomposed)


class TestCheckRoutable:
    def test_accepts_routable_circuit(self):
        circuit = QuantumCircuit(2, 1)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.swap(0, 1)
        circuit.measure(0, 0)
        CheckRoutable().run_circuit(circuit, PropertySet())

    def test_rejects_three_qubit_gate(self):
        circuit = QuantumCircuit(3)
        circuit.ccx(0, 1, 2)
        with pytest.raises(TranspilerError):
            CheckRoutable().run_circuit(circuit, PropertySet())

    def test_rejects_unroutable_two_qubit_gate(self):
        circuit = QuantumCircuit(2)
        circuit.cp(0.5, 0, 1)
        with pytest.raises(TranspilerError):
            CheckRoutable().run_circuit(circuit, PropertySet())

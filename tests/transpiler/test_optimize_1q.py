"""Tests for single-qubit gate optimization."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import QuantumCircuit, random_circuit
from repro.transpiler import PassManager
from repro.transpiler.passes import Optimize1qGates, RemoveIdentities

from ..conftest import assert_unitary_equiv


class TestOptimize1qGates:
    def test_merges_run_into_single_u(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        circuit.t(0)
        circuit.rz(0.3, 0)
        circuit.sx(0)
        optimized = PassManager([Optimize1qGates(output="u")]).run(circuit)
        assert optimized.size() == 1
        assert optimized.data[0].name == "u"
        assert_unitary_equiv(circuit, optimized)

    def test_identity_run_removed(self):
        circuit = QuantumCircuit(1)
        circuit.x(0)
        circuit.x(0)
        optimized = PassManager([Optimize1qGates()]).run(circuit)
        assert optimized.size() == 0

    def test_runs_split_by_two_qubit_gates(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.h(0)
        optimized = PassManager([Optimize1qGates()]).run(circuit)
        assert optimized.cx_count() == 1
        assert optimized.count_gate("u") == 2
        assert_unitary_equiv(circuit, optimized)

    def test_runs_split_by_measure(self):
        circuit = QuantumCircuit(1, 1)
        circuit.h(0)
        circuit.measure(0, 0)
        circuit.h(0)
        optimized = PassManager([Optimize1qGates()]).run(circuit)
        assert optimized.count_gate("u") == 2

    def test_zsx_output_uses_hardware_basis(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        circuit.t(0)
        optimized = PassManager([Optimize1qGates(output="zsx")]).run(circuit)
        assert set(inst.name for inst in optimized.data) <= {"rz", "sx", "x"}
        assert_unitary_equiv(circuit, optimized)

    def test_invalid_output_format_rejected(self):
        from repro.exceptions import TranspilerError

        with pytest.raises(TranspilerError):
            Optimize1qGates(output="xyz")

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_property_random_circuits_preserved(self, seed):
        circuit = random_circuit(3, 6, seed=seed, two_qubit_prob=0.3)
        optimized = PassManager([Optimize1qGates(output="u")]).run(circuit)
        assert_unitary_equiv(circuit, optimized)
        assert optimized.size() <= circuit.size() + 2


class TestRemoveIdentities:
    def test_removes_id_and_zero_rotations(self):
        circuit = QuantumCircuit(1)
        circuit.id(0)
        circuit.rz(0.0, 0)
        circuit.rz(0.4, 0)
        cleaned = PassManager([RemoveIdentities()]).run(circuit)
        assert cleaned.size() == 1
        assert cleaned.data[0].gate.params == (0.4,)

    def test_keeps_everything_else(self):
        circuit = QuantumCircuit(2, 1)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.barrier()
        circuit.measure(0, 0)
        cleaned = PassManager([RemoveIdentities()]).run(circuit)
        assert cleaned.count_ops() == circuit.count_ops()

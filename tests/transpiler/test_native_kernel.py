"""Tests for the optional native scoring kernel (repro.nativeext)."""

import ctypes
import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro import nativeext
from repro.nativeext import (
    NATIVE_ENV,
    build_native_library,
    native_active,
    native_status,
    numpy_front_ext_sums,
)


def _have_compiler():
    return nativeext._find_compiler() is not None


needs_compiler = pytest.mark.skipif(
    not _have_compiler(), reason="no C compiler on PATH"
)


def _random_tables(rng, n, rows, cols):
    return (
        rng.integers(0, n, size=(rows, cols)),
        rng.integers(0, n, size=(rows, cols)),
    )


class TestNumpyKernel:
    def test_matches_scalar_reference(self):
        rng = np.random.default_rng(1)
        n = 7
        distance = np.ascontiguousarray(np.abs(rng.normal(size=(n, n))))
        a, b = _random_tables(rng, n, rows=5, cols=6)
        front, ext = numpy_front_ext_sums(distance, a, b, front_cols=4)
        for row in range(5):
            want_front = 0.0
            for col in range(4):
                want_front += distance[a[row, col], b[row, col]]
            want_ext = 0.0
            for col in range(4, 6):
                want_ext += distance[a[row, col], b[row, col]]
            assert front[row] == want_front
            assert ext[row] == want_ext

    def test_all_front_or_all_ext(self):
        rng = np.random.default_rng(2)
        distance = np.ascontiguousarray(np.abs(rng.normal(size=(5, 5))))
        a, b = _random_tables(rng, 5, rows=3, cols=4)
        front, ext = numpy_front_ext_sums(distance, a, b, front_cols=4)
        assert np.all(ext == 0.0)
        front2, ext2 = numpy_front_ext_sums(distance, a, b, front_cols=0)
        assert np.all(front2 == 0.0)
        assert ext2.tobytes() == front.tobytes()


@needs_compiler
class TestNativeKernel:
    @pytest.fixture()
    def native_fn(self):
        """The raw C entry point, loaded regardless of REPRO_NATIVE."""
        return nativeext._load_native()

    def _call_native(self, native_fn, distance, a, b, front_cols):
        a = np.ascontiguousarray(a, dtype=np.int64)
        b = np.ascontiguousarray(b, dtype=np.int64)
        rows, cols = a.shape
        front = np.empty(rows)
        ext = np.empty(rows)
        double_p = ctypes.POINTER(ctypes.c_double)
        int64_p = ctypes.POINTER(ctypes.c_int64)
        native_fn(
            distance.ctypes.data_as(double_p),
            ctypes.c_int64(distance.shape[0]),
            a.ctypes.data_as(int64_p),
            b.ctypes.data_as(int64_p),
            ctypes.c_int64(rows),
            ctypes.c_int64(cols),
            ctypes.c_int64(front_cols),
            front.ctypes.data_as(double_p),
            ext.ctypes.data_as(double_p),
        )
        return front, ext

    def test_build_is_cached(self):
        first = build_native_library()
        second = build_native_library()
        assert first == second
        assert os.path.exists(first)

    def test_bit_identical_to_numpy_on_random_tables(self, native_fn):
        rng = np.random.default_rng(3)
        for trial in range(25):
            n = int(rng.integers(2, 30))
            # Irrational-ish magnitudes make accumulation-order differences visible.
            distance = np.ascontiguousarray(np.abs(rng.normal(size=(n, n))) * np.pi)
            rows = int(rng.integers(1, 40))
            cols = int(rng.integers(1, 30))
            front_cols = int(rng.integers(0, cols + 1))
            a, b = _random_tables(rng, n, rows, cols)
            want = numpy_front_ext_sums(distance, a, b, front_cols)
            got = self._call_native(native_fn, distance, a, b, front_cols)
            assert got[0].tobytes() == want[0].tobytes(), f"front mismatch, trial {trial}"
            assert got[1].tobytes() == want[1].tobytes(), f"ext mismatch, trial {trial}"

    def test_env_activates_native_dispatch(self):
        # A subprocess imports with REPRO_NATIVE=1 and must (a) report "active" and
        # (b) produce byte-identical kernel output to this process's numpy path.
        rng = np.random.default_rng(4)
        n = 11
        distance = np.ascontiguousarray(np.abs(rng.normal(size=(n, n))))
        a, b = _random_tables(rng, n, rows=6, cols=8)
        want_front, want_ext = numpy_front_ext_sums(distance, a, b, 5)
        script = (
            "import json, sys\n"
            "import numpy as np\n"
            "from repro import nativeext\n"
            "data = json.loads(sys.stdin.read())\n"
            "front, ext = nativeext.front_ext_sums(\n"
            "    np.ascontiguousarray(data['distance']),\n"
            "    np.array(data['a']), np.array(data['b']), data['front_cols'])\n"
            "print(json.dumps({'status': nativeext.native_status(),\n"
            "                  'active': nativeext.native_active(),\n"
            "                  'front': front.tolist(), 'ext': ext.tolist()}))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = ":".join(p for p in sys.path if p)
        env[NATIVE_ENV] = "1"
        proc = subprocess.run(
            [sys.executable, "-c", script],
            input=json.dumps({
                "distance": distance.tolist(),
                "a": a.tolist(),
                "b": b.tolist(),
                "front_cols": 5,
            }),
            capture_output=True, text=True, check=True, env=env,
        )
        out = json.loads(proc.stdout)
        assert out["status"] == "active"
        assert out["active"] is True
        assert np.array(out["front"]).tobytes() == want_front.tobytes()
        assert np.array(out["ext"]).tobytes() == want_ext.tobytes()


class TestStatusReporting:
    def test_default_is_disabled_or_active(self):
        # This test process was started with whatever REPRO_NATIVE the environment
        # had; the status string must agree with the dispatch state either way.
        status = native_status()
        if native_active():
            assert status == "active"
        else:
            assert status == "disabled" or status.startswith("failed:")

    def test_disabled_subprocess_reports_disabled(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = ":".join(p for p in sys.path if p)
        env[NATIVE_ENV] = "0"
        proc = subprocess.run(
            [sys.executable, "-c",
             "from repro import nativeext; "
             "print(nativeext.native_status(), nativeext.native_active())"],
            capture_output=True, text=True, check=True, env=env,
        )
        assert proc.stdout.split() == ["disabled", "False"]

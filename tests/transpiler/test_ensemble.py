"""Tests for best-of-N ensemble routing (repro.transpiler.ensemble)."""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.circuit import qasm, random_cx_circuit
from repro.core.options import O3_DEFAULT_BEST_OF, TranspileOptions
from repro.core.pipeline import transpile
from repro.exceptions import TranspilerError
from repro.hardware import linear_coupling_map
from repro.nativeext import front_ext_sums
from repro.obs import COUNTERS, Tracer, use_tracer
from repro.transpiler.ensemble import (
    EnsembleRouting,
    _stacked_sums,
    trial_stage_seeds,
)
from repro.transpiler.passes import coupling_violations


def _bench_circuit(seed=7, qubits=6, gates=30):
    return random_cx_circuit(qubits, gates, seed=seed)


class TestTrialStageSeeds:
    def test_deterministic_and_prefix_stable(self):
        a = trial_stage_seeds(42, 8)
        b = trial_stage_seeds(42, 8)
        assert a == b
        # The first K seeds are a prefix of the first K+n seeds: trial identity does
        # not depend on the ensemble size, which is what fan-out chunking relies on.
        assert trial_stage_seeds(42, 4) == a[:4]

    def test_independent_per_trial_and_stage(self):
        seeds = trial_stage_seeds(0, 16)
        flat = [s for pair in seeds for s in pair]
        assert len(set(flat)) == len(flat)

    def test_master_seed_changes_everything(self):
        assert trial_stage_seeds(0, 4) != trial_stage_seeds(1, 4)


class TestOptionsBestOf:
    def test_default_is_single_trial(self):
        assert TranspileOptions().effective_best_of == 1

    def test_o3_defaults_to_ensemble(self):
        assert TranspileOptions(level="O3").effective_best_of == O3_DEFAULT_BEST_OF

    def test_explicit_overrides_o3_default(self):
        assert TranspileOptions(level="O3", best_of=1).effective_best_of == 1
        assert TranspileOptions(level="O1", best_of=6).effective_best_of == 6

    @pytest.mark.parametrize("bad", [0, -1, 2.5, "4", True])
    def test_invalid_best_of_rejected(self, bad):
        with pytest.raises(TranspilerError):
            TranspileOptions(best_of=bad)

    def test_round_trip_preserves_raw_value(self):
        options = TranspileOptions(level="O3")
        assert TranspileOptions.from_dict(options.to_dict()) == options
        explicit = TranspileOptions(best_of=5)
        assert TranspileOptions.from_dict(explicit.to_dict()) == explicit

    def test_content_dict_canonicalizes(self):
        # O3-with-default and O3-with-explicit-4 must share a fingerprint.
        implicit = TranspileOptions(level="O3").content_dict()
        explicit = TranspileOptions(level="O3", best_of=4).content_dict()
        assert implicit == explicit


class TestEnsembleTranspile:
    @pytest.mark.parametrize("routing", ["sabre", "nassc"])
    def test_reproducible_across_runs(self, routing):
        circuit = _bench_circuit()
        coupling = linear_coupling_map(8)
        first = transpile(circuit, coupling, routing=routing, seed=0, best_of=4)
        second = transpile(circuit, coupling, routing=routing, seed=0, best_of=4)
        assert qasm.dumps(first.circuit) == qasm.dumps(second.circuit)
        assert first.ensemble == second.ensemble
        assert first.best_of == 4

    @pytest.mark.parametrize("routing", ["sabre", "nassc"])
    def test_valid_routing_and_diagnostics(self, routing):
        circuit = _bench_circuit()
        coupling = linear_coupling_map(8)
        result = transpile(circuit, coupling, routing=routing, seed=3, best_of=4)
        assert not coupling_violations(result.circuit, coupling)
        ensemble = result.ensemble
        assert ensemble["num_trials"] == 4
        assert ensemble["executed_trials"] == [0, 1, 2, 3]
        assert ensemble["winner"] in range(4)
        assert len(ensemble["trials"]) == 4
        finished = [t for t in ensemble["trials"] if not t["pruned"]]
        assert finished, "at least one trial must finish"
        winner = ensemble["trials"][ensemble["winner"]]
        assert not winner["pruned"]
        assert winner["est_two_qubit"] == min(t["est_two_qubit"] for t in finished)
        assert list(ensemble["winner_key"])[0] == winner["est_two_qubit"]

    def test_never_worse_than_best_independent_trial(self):
        # Property: the ensemble winner equals the best of the same K trials run
        # one at a time (identical seeds via trial_subset), so best_of=K can never
        # be worse than any single trial it contains.
        circuit = _bench_circuit(seed=11)
        coupling = linear_coupling_map(8)
        ensemble = transpile(circuit, coupling, routing="sabre", seed=5, best_of=4)
        solo_keys = []
        for index in range(4):
            solo = transpile(
                circuit, coupling, routing="sabre", seed=5, best_of=4,
                _trial_subset=[index],
            )
            solo_keys.append(tuple(solo.ensemble["winner_key"]))
        assert tuple(ensemble.ensemble["winner_key"]) == min(solo_keys)
        assert ensemble.ensemble["winner_key"][0] <= min(k[0] for k in solo_keys)

    def test_fanout_partition_reduces_to_whole_run(self):
        # The server splits trials into chunks and takes the min winner_key; any
        # partition must reproduce the whole-ensemble result bit-for-bit.
        circuit = _bench_circuit(seed=13)
        coupling = linear_coupling_map(8)
        whole = transpile(circuit, coupling, routing="nassc", seed=2, best_of=4)
        chunks = [
            transpile(circuit, coupling, routing="nassc", seed=2, best_of=4,
                      _trial_subset=subset)
            for subset in ([0, 1], [2, 3])
        ]
        best = min(chunks, key=lambda r: tuple(r.ensemble["winner_key"]))
        assert tuple(best.ensemble["winner_key"]) == tuple(whole.ensemble["winner_key"])
        assert qasm.dumps(best.circuit) == qasm.dumps(whole.circuit)

    def test_reproducible_across_processes(self):
        circuit = _bench_circuit(seed=17)
        here = transpile(
            circuit, linear_coupling_map(8), routing="sabre", seed=9, best_of=3
        )
        script = (
            "import json, sys\n"
            "from repro.circuit import qasm, random_cx_circuit\n"
            "from repro.core.pipeline import transpile\n"
            "from repro.hardware import linear_coupling_map\n"
            "c = random_cx_circuit(6, 30, seed=17)\n"
            "r = transpile(c, linear_coupling_map(8), routing='sabre', seed=9, best_of=3)\n"
            "print(json.dumps({'qasm': qasm.dumps(r.circuit),"
            " 'key': r.ensemble['winner_key']}))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = ":".join(p for p in sys.path if p)
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True, cwd="/",
            env=env,
        )
        other = json.loads(proc.stdout)
        assert other["qasm"] == qasm.dumps(here.circuit)
        assert other["key"] == here.ensemble["winner_key"]

    def test_best_of_one_identical_to_default_path(self):
        # best_of=1 must bypass the ensemble entirely: bit-identical circuit,
        # no ensemble diagnostics (the golden O1 hashes depend on this).
        circuit = _bench_circuit(seed=23)
        coupling = linear_coupling_map(8)
        plain = transpile(circuit, coupling, routing="sabre", seed=0)
        pinned = transpile(circuit, coupling, routing="sabre", seed=0, best_of=1)
        assert qasm.dumps(plain.circuit) == qasm.dumps(pinned.circuit)
        assert plain.best_of == 1 and pinned.best_of == 1
        assert plain.ensemble is None and pinned.ensemble is None

    def test_routing_none_ignores_best_of(self):
        result = transpile(_bench_circuit(), None, routing="none", best_of=8)
        assert result.best_of == 1
        assert result.ensemble is None

    def test_pruning_counters_and_flags(self):
        circuit = _bench_circuit(seed=29, qubits=8, gates=60)
        coupling = linear_coupling_map(10)
        before = COUNTERS.get("routing.ensemble.trials")
        result = transpile(circuit, coupling, routing="sabre", seed=1, best_of=6)
        assert COUNTERS.get("routing.ensemble.trials") - before == 6
        pruned = [t for t in result.ensemble["trials"] if t["pruned"]]
        for t in pruned:
            assert t["est_two_qubit"] is None
            assert t["num_swaps"] is not None

    def test_batched_kernel_is_exercised(self):
        circuit = _bench_circuit(seed=31)
        before = COUNTERS.get("routing.ensemble.batched_requests")
        transpile(circuit, linear_coupling_map(8), routing="sabre", seed=0, best_of=4)
        assert COUNTERS.get("routing.ensemble.batched_requests") > before

    def test_per_trial_spans(self):
        circuit = _bench_circuit(seed=37)
        tracer = Tracer()
        with use_tracer(tracer):
            result = transpile(
                circuit, linear_coupling_map(8), routing="sabre", seed=4, best_of=3
            )
        spans = {s["name"]: s for s in tracer.span_dicts()
                 if s["name"].startswith("routing.trial")}
        assert set(spans) == {"routing.trial0", "routing.trial1", "routing.trial2"}
        for trial in result.ensemble["trials"]:
            attrs = spans[f"routing.trial{trial['trial']}"]["attrs"]
            assert attrs["layout_seed"] == trial["layout_seed"]
            assert attrs["routing_seed"] == trial["routing_seed"]
            assert attrs["num_swaps"] == trial["num_swaps"]
            if not trial["pruned"]:
                assert attrs["est_two_qubit"] == trial["est_two_qubit"]


class TestEnsemblePass:
    def test_rejects_bad_trial_counts(self):
        coupling = linear_coupling_map(4)
        with pytest.raises(TranspilerError):
            EnsembleRouting(coupling, num_trials=0)
        with pytest.raises(TranspilerError):
            EnsembleRouting(coupling, num_trials=4, trial_subset=[4])
        with pytest.raises(TranspilerError):
            EnsembleRouting(coupling, num_trials=4, trial_subset=[])

    def test_pruning_never_changes_the_winner(self):
        # Pruning is an optimization, not a heuristic: the winner (and its routed
        # circuit) must be identical with pruning on and off.
        from repro.transpiler import PassManager

        circuit = _bench_circuit(seed=41, qubits=8, gates=60)
        coupling = linear_coupling_map(10)
        results = {}
        for prune in (True, False):
            manager = PassManager([
                EnsembleRouting(coupling, num_trials=5, seed=1, prune=prune)
            ])
            routed = manager.run(circuit)
            results[prune] = (qasm.dumps(routed), manager.property_set["ensemble"])
        assert not any(t["pruned"] for t in results[False][1]["trials"])
        assert results[True][0] == results[False][0]
        assert results[True][1]["winner_key"] == results[False][1]["winner_key"]


class TestStackedSums:
    def test_bit_identical_to_solo_kernel_calls(self):
        rng = np.random.default_rng(0)
        n = 9
        distance = np.abs(rng.normal(size=(n, n)))
        distance = np.ascontiguousarray((distance + distance.T) / 2.0)
        np.fill_diagonal(distance, 0.0)
        tables = []
        for rows, cols in [(3, 4), (5, 2), (1, 7), (4, 4)]:
            tables.append((
                rng.integers(0, n, size=(rows, cols)).astype(np.intp),
                rng.integers(0, n, size=(rows, cols)).astype(np.intp),
            ))
        stacked = _stacked_sums(distance, tables)
        for (a, b), got in zip(tables, stacked):
            solo, _ = front_ext_sums(distance, a, b, a.shape[1])
            assert got.tobytes() == solo.tobytes()

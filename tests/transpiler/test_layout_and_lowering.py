"""Tests for layouts, SWAP lowering and coupling-map checking."""

import numpy as np
import pytest

from repro.circuit import QuantumCircuit
from repro.exceptions import TranspilerError
from repro.transpiler import PassManager, PropertySet
from repro.transpiler.passes import (
    ApplyLayout,
    CheckMap,
    Layout,
    SetLayout,
    SwapLowering,
    TrivialLayout,
    coupling_violations,
    lower_swap,
    swap_orientation,
)
from repro.hardware import linear_coupling_map

from ..conftest import assert_unitary_equiv


class TestLayout:
    def test_trivial(self):
        layout = Layout.trivial(3)
        assert [layout.physical(q) for q in range(3)] == [0, 1, 2]

    def test_random_is_injective_and_seeded(self):
        a = Layout.random(4, 10, seed=3)
        b = Layout.random(4, 10, seed=3)
        assert a == b
        assert len({a.physical(q) for q in range(4)}) == 4

    def test_random_rejects_too_small_device(self):
        with pytest.raises(TranspilerError):
            Layout.random(5, 3)

    def test_from_physical_list(self):
        layout = Layout.from_physical_list([4, 2, 7])
        assert layout.physical(1) == 2
        assert layout.logical(7) == 2
        assert layout.logical(3) is None

    def test_non_injective_rejected(self):
        with pytest.raises(TranspilerError):
            Layout({0: 1, 1: 1})

    def test_swap_physical_moves_logical_qubits(self):
        layout = Layout.from_physical_list([0, 1])
        layout.swap_physical(1, 2)
        assert layout.physical(1) == 2
        layout.swap_physical(0, 2)
        assert layout.physical(0) == 2 and layout.physical(1) == 0

    def test_copy_is_independent(self):
        layout = Layout.trivial(2)
        other = layout.copy()
        other.swap_physical(0, 1)
        assert layout.physical(0) == 0


class TestLayoutPasses:
    def test_trivial_layout_pass(self, linear5):
        props = PropertySet()
        TrivialLayout(linear5).run_circuit(QuantumCircuit(3), props)
        assert props["layout"].physical(2) == 2

    def test_trivial_layout_rejects_oversized_circuit(self, linear5):
        with pytest.raises(TranspilerError):
            TrivialLayout(linear5).run_circuit(QuantumCircuit(9), PropertySet())

    def test_apply_layout_remaps_and_widens(self, linear5):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        props = PropertySet()
        SetLayout(Layout.from_physical_list([3, 1])).run_circuit(circuit, props)
        mapped = ApplyLayout(linear5).run_circuit(circuit, props)
        assert mapped.num_qubits == 5
        assert mapped.data[0].qubits == (3, 1)

    def test_apply_layout_defaults_to_trivial(self, linear5):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        mapped = ApplyLayout(linear5).run_circuit(circuit, PropertySet())
        assert mapped.data[0].qubits == (0, 1)


class TestSwapLowering:
    def test_fixed_orientation(self):
        circuit = QuantumCircuit(2)
        circuit.swap(0, 1)
        lowered = PassManager([SwapLowering()]).run(circuit)
        assert [inst.qubits for inst in lowered.data] == [(0, 1), (1, 0), (0, 1)]
        assert_unitary_equiv(circuit, lowered)

    def test_labelled_orientation(self):
        circuit = QuantumCircuit(2)
        circuit.swap(0, 1, label="ctrl:1")
        lowered = PassManager([SwapLowering()]).run(circuit)
        assert [inst.qubits for inst in lowered.data] == [(1, 0), (0, 1), (1, 0)]
        assert_unitary_equiv(circuit, lowered)

    def test_labels_ignored_when_disabled(self):
        circuit = QuantumCircuit(2)
        circuit.swap(0, 1, label="ctrl:1")
        lowered = PassManager([SwapLowering(use_labels=False)]).run(circuit)
        assert lowered.data[0].qubits == (0, 1)

    def test_invalid_label_falls_back(self):
        assert swap_orientation("ctrl:9", (0, 1)) == 0
        assert swap_orientation("garbage", (0, 1)) == 0
        assert swap_orientation(None, (2, 5)) == 2

    def test_lower_swap_helper(self):
        insts = lower_swap(3, 4, control_first=4)
        assert [i.qubits for i in insts] == [(4, 3), (3, 4), (4, 3)]

    def test_other_gates_untouched(self):
        circuit = QuantumCircuit(2, 1)
        circuit.h(0)
        circuit.swap(0, 1)
        circuit.measure(1, 0)
        lowered = PassManager([SwapLowering()]).run(circuit)
        assert lowered.count_gate("swap") == 0
        assert lowered.count_gate("measure") == 1
        assert lowered.cx_count() == 3


class TestCheckMap:
    def test_valid_circuit_passes(self, linear5):
        circuit = QuantumCircuit(5)
        circuit.cx(0, 1)
        circuit.cx(3, 4)
        props = PropertySet()
        CheckMap(linear5).run_circuit(circuit, props)
        assert props["is_mapped"]

    def test_violation_raises(self, linear5):
        circuit = QuantumCircuit(5)
        circuit.cx(0, 4)
        with pytest.raises(TranspilerError):
            CheckMap(linear5).run_circuit(circuit, PropertySet())

    def test_coupling_violations_lists_offenders(self, linear5):
        circuit = QuantumCircuit(5)
        circuit.cx(0, 1)
        circuit.cx(0, 3)
        circuit.cx(2, 4)
        violations = coupling_violations(circuit, linear5)
        assert [v[0] for v in violations] == [1, 2]

"""Tests for the SABRE routing baseline."""

import numpy as np
import pytest

from repro.circuit import QuantumCircuit, random_cx_circuit
from repro.exceptions import TranspilerError
from repro.hardware import grid_coupling_map, linear_coupling_map
from repro.transpiler import PassManager, PropertySet
from repro.transpiler.passes import (
    Layout,
    SabreLayoutSelection,
    SabreRouting,
    SabreSwapRouter,
    coupling_violations,
)


def all_gates_mapped(circuit, coupling):
    return not coupling_violations(circuit, coupling)


class TestSabreSwapRouter:
    def test_already_mapped_circuit_needs_no_swaps(self, linear5):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        result = SabreSwapRouter(linear5, seed=0).route(circuit)
        assert result.num_swaps == 0
        assert result.circuit.cx_count() == 2

    def test_distant_gate_gets_swaps(self, linear5):
        circuit = QuantumCircuit(5)
        circuit.cx(0, 4)
        result = SabreSwapRouter(linear5, seed=0).route(circuit)
        assert result.num_swaps >= 3
        assert all_gates_mapped(result.circuit, linear5)

    def test_output_width_is_device_width(self, linear10):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 2)
        result = SabreSwapRouter(linear10, seed=1).route(circuit)
        assert result.circuit.num_qubits == 10

    def test_final_layout_tracks_swaps(self, linear5):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 2)
        result = SabreSwapRouter(linear5, seed=0).route(circuit)
        final_positions = {result.final_layout.physical(q) for q in range(3)}
        assert len(final_positions) == 3

    def test_gate_count_preserved_apart_from_swaps(self, grid9):
        circuit = random_cx_circuit(6, 20, seed=3)
        result = SabreSwapRouter(grid9, seed=3).route(circuit)
        assert result.circuit.cx_count() == 20
        assert result.circuit.count_gate("swap") == result.num_swaps

    def test_measures_and_barriers_routed(self, linear5):
        circuit = QuantumCircuit(3, 3)
        circuit.cx(0, 2)
        circuit.barrier()
        circuit.measure(0, 0)
        result = SabreSwapRouter(linear5, seed=0).route(circuit)
        assert result.circuit.count_gate("measure") == 1
        assert result.circuit.count_gate("barrier") == 1

    def test_respects_initial_layout(self, linear5):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        layout = Layout.from_physical_list([0, 4])
        result = SabreSwapRouter(linear5, seed=0).route(circuit, layout)
        assert result.num_swaps >= 3
        assert result.initial_layout.physical(1) == 4

    def test_rejects_oversized_circuit(self, linear5):
        with pytest.raises(TranspilerError):
            SabreSwapRouter(linear5).route(QuantumCircuit(6))

    def test_rejects_multi_qubit_gates(self, linear5):
        circuit = QuantumCircuit(3)
        circuit.ccx(0, 1, 2)
        with pytest.raises(TranspilerError):
            SabreSwapRouter(linear5).route(circuit)

    def test_deterministic_for_fixed_seed(self, grid9):
        circuit = random_cx_circuit(7, 30, seed=9)
        first = SabreSwapRouter(grid9, seed=5).route(circuit)
        second = SabreSwapRouter(grid9, seed=5).route(circuit)
        assert first.num_swaps == second.num_swaps
        assert [i.qubits for i in first.circuit.data] == [i.qubits for i in second.circuit.data]

    @pytest.mark.parametrize("seed", range(4))
    def test_every_routed_gate_respects_coupling(self, seed, linear10):
        circuit = random_cx_circuit(8, 40, seed=seed)
        result = SabreSwapRouter(linear10, seed=seed).route(circuit)
        assert all_gates_mapped(result.circuit, linear10)

    def test_grid_uses_fewer_swaps_than_line_on_average(self):
        circuit = random_cx_circuit(9, 60, seed=13)
        line = SabreSwapRouter(linear_coupling_map(9), seed=0).route(circuit)
        grid = SabreSwapRouter(grid_coupling_map(3, 3), seed=0).route(circuit)
        assert grid.num_swaps <= line.num_swaps


class TestRoutingPasses:
    def test_sabre_routing_pass_sets_properties(self, linear5):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 2)
        props = PropertySet()
        routed = SabreRouting(linear5, seed=2).run_circuit(circuit, props)
        assert "final_layout" in props and "num_swaps" in props
        assert all_gates_mapped(routed, linear5)

    def test_layout_selection_produces_valid_layout(self, grid9):
        circuit = random_cx_circuit(6, 15, seed=2)
        props = PropertySet()
        SabreLayoutSelection(grid9, seed=4).run_circuit(circuit, props)
        layout = props["layout"]
        physical = {layout.physical(q) for q in range(6)}
        assert len(physical) == 6
        assert all(0 <= p < 9 for p in physical)

    def test_layout_selection_reduces_swaps_vs_random(self, grid9):
        circuit = random_cx_circuit(7, 40, seed=21)
        random_layout = Layout.random(7, 9, seed=0)
        baseline = SabreSwapRouter(grid9, seed=0).route(circuit, random_layout)
        props = PropertySet()
        SabreLayoutSelection(grid9, iterations=3, seed=0).run_circuit(circuit, props)
        refined = SabreSwapRouter(grid9, seed=0).route(circuit, props["layout"])
        assert refined.num_swaps <= baseline.num_swaps + 2

    def test_layout_selection_handles_no_two_qubit_gates(self, linear5):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        props = PropertySet()
        SabreLayoutSelection(linear5, seed=1).run_circuit(circuit, props)
        assert props["layout"].num_logical() == 3


class TestWireHistoryBound:
    """The router's per-wire position history is bounded (no growth on long circuits)."""

    def test_bound_dominates_estimator_scan_depths(self):
        """Bounding is exactly equivalent to unbounded history as long as the bound
        covers the deepest backward scan any estimator performs (one merged position is
        consumed per yield, at most one per wire)."""
        from repro.core.estimators import MAX_BLOCK_GATES, MAX_COMMUTE_SCAN
        from repro.transpiler.passes.sabre import WIRE_HISTORY_BOUND

        assert WIRE_HISTORY_BOUND >= MAX_COMMUTE_SCAN + 1
        assert WIRE_HISTORY_BOUND >= MAX_BLOCK_GATES + 1

    @pytest.mark.parametrize("router_factory", [
        lambda coupling: SabreSwapRouter(coupling, seed=0),
        lambda coupling: __import__("repro.core.nassc", fromlist=["NASSCSwapRouter"])
        .NASSCSwapRouter(coupling, seed=0),
    ], ids=["sabre", "nassc"])
    def test_history_stays_bounded_on_10k_gate_circuit(self, router_factory):
        from repro.circuit.random import random_circuit
        from repro.transpiler.passes.sabre import WIRE_HISTORY_BOUND

        circuit = random_circuit(
            10, 1450, seed=7, two_qubit_prob=0.4, gate_names=("cx", "cz", "swap")
        )
        assert len(circuit.data) >= 10000
        coupling = linear_coupling_map(10)
        router = router_factory(coupling)
        result = router.route(circuit)
        assert result.num_swaps > 0
        lengths = [len(history) for history in router._wire_history.values()]
        assert max(lengths) <= WIRE_HISTORY_BOUND
        # Every wire saw far more operations than it retains.
        assert len(result.dag) > 10000

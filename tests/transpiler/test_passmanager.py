"""Tests for the DAG-native pass-manager framework and its flow control."""

import pytest

from repro.circuit import DAGCircuit, QuantumCircuit
from repro.circuit.gates import gate as make_gate
from repro.exceptions import TranspilerError
from repro.transpiler import (
    AnalysisPass,
    ConditionalController,
    DoWhile,
    FixedPoint,
    PassManager,
    PropertySet,
    TransformationPass,
    TranspilerPass,
)


class _CountingPass(AnalysisPass):
    name = "counting"

    def run(self, dag, property_set):
        property_set["count"] = property_set.get("count", 0) + 1


class _AddGatePass(TransformationPass):
    def run(self, dag, property_set):
        dag.add_node(make_gate("x"), (0,))
        return dag


class _BrokenPass(TransformationPass):
    def run(self, dag, property_set):
        return None


class _RemoveOneXPass(TransformationPass):
    """Removes a single x gate per invocation (converges when none are left)."""

    def run(self, dag, property_set):
        for node in dag.op_nodes("x"):
            dag.remove_op_node(node)
            break
        return dag


class TestPassManager:
    def test_runs_passes_in_order(self):
        pm = PassManager([_CountingPass(), _AddGatePass(), _AddGatePass()])
        result = pm.run(QuantumCircuit(1))
        assert result.count_gate("x") == 2
        assert pm.property_set["count"] == 1

    def test_append_and_extend(self):
        pm = PassManager()
        pm.append(_CountingPass()).extend([_CountingPass()])
        pm.run(QuantumCircuit(1))
        assert pm.property_set["count"] == 2

    def test_timings_recorded(self):
        pm = PassManager([_CountingPass(), _AddGatePass()])
        pm.run(QuantumCircuit(1))
        assert "counting" in pm.timings
        assert pm.total_time() >= 0.0

    def test_timing_log_keeps_repeated_instances_separate(self):
        pm = PassManager([_AddGatePass(), _AddGatePass(), _CountingPass()])
        pm.run(QuantumCircuit(1))
        names = [name for name, _ in pm.timing_log]
        assert names == ["_AddGatePass", "_AddGatePass", "counting"]
        assert pm.timings["_AddGatePass"] == pytest.approx(
            sum(t for name, t in pm.timing_log if name == "_AddGatePass")
        )

    def test_none_return_raises(self):
        pm = PassManager([_BrokenPass()])
        with pytest.raises(TranspilerError):
            pm.run(QuantumCircuit(1))

    def test_property_set_is_shared(self):
        class Writer(AnalysisPass):
            def run(self, dag, property_set):
                property_set["token"] = 42

        class Reader(AnalysisPass):
            def run(self, dag, property_set):
                assert property_set["token"] == 42

        PassManager([Writer(), Reader()]).run(QuantumCircuit(1))

    def test_property_set_is_a_dict(self):
        assert isinstance(PropertySet(), dict)

    def test_run_dag_round_trip(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        dag = DAGCircuit.from_circuit(circuit)
        out = PassManager([_AddGatePass()]).run_dag(dag)
        assert out.count_gate("x") == 1
        assert out.count_gate("cx") == 1

    def test_analysis_pass_may_not_mutate(self):
        class Mutator(AnalysisPass):
            def run(self, dag, property_set):
                dag.add_node(make_gate("x"), (0,))

        with pytest.raises(TranspilerError):
            PassManager([Mutator()]).run(QuantumCircuit(1))

    def test_run_circuit_compat_boundary(self):
        props = PropertySet()
        circuit = _AddGatePass().run_circuit(QuantumCircuit(1), props)
        assert circuit.count_gate("x") == 1


class TestInvalidation:
    def test_transformation_invalidates_stale_analysis(self):
        class FakeAnalysis(AnalysisPass):
            def run(self, dag, property_set):
                property_set["block_list"] = ["sentinel"]

        pm = PassManager([FakeAnalysis(), _AddGatePass()])
        pm.run(QuantumCircuit(1))
        assert "block_list" not in pm.property_set

    def test_unchanged_transformation_preserves_analysis(self):
        class NoOp(TransformationPass):
            def run(self, dag, property_set):
                return dag

        class FakeAnalysis(AnalysisPass):
            def run(self, dag, property_set):
                property_set["block_list"] = ["sentinel"]

        pm = PassManager([FakeAnalysis(), NoOp()])
        pm.run(QuantumCircuit(1))
        assert pm.property_set["block_list"] == ["sentinel"]

    def test_preserves_protects_declared_keys(self):
        class FakeAnalysis(AnalysisPass):
            def run(self, dag, property_set):
                property_set["commutation_sets"] = {"k": 1}
                property_set["block_list"] = ["sentinel"]

        class Preserving(TransformationPass):
            preserves = ("commutation_sets",)

            def run(self, dag, property_set):
                dag.add_node(make_gate("x"), (0,))
                return dag

        pm = PassManager([FakeAnalysis(), Preserving()])
        pm.run(QuantumCircuit(1))
        assert pm.property_set["commutation_sets"] == {"k": 1}
        assert "block_list" not in pm.property_set

    def test_non_analysis_keys_survive_transformations(self):
        class SetsLayout(AnalysisPass):
            def run(self, dag, property_set):
                property_set["layout"] = "keep-me"

        pm = PassManager([SetsLayout(), _AddGatePass()])
        pm.run(QuantumCircuit(1))
        assert pm.property_set["layout"] == "keep-me"


class TestFlowControl:
    def test_fixed_point_converges(self):
        circuit = QuantumCircuit(1)
        for _ in range(3):
            circuit.x(0)
        pm = PassManager([FixedPoint([_RemoveOneXPass()], max_iterations=50)])
        result = pm.run(circuit)
        assert result.count_gate("x") == 0
        # Three removing iterations plus the one that confirms the fixed point.
        assert len(pm.timing_log) == 4

    def test_fixed_point_stops_immediately_when_stable(self):
        class NoOp(TransformationPass):
            def run(self, dag, property_set):
                return dag

        pm = PassManager([FixedPoint([NoOp()], max_iterations=50)])
        pm.run(QuantumCircuit(1))
        assert len(pm.timing_log) == 1

    def test_fixed_point_respects_max_iterations(self):
        pm = PassManager([FixedPoint([_AddGatePass()], max_iterations=3)])
        result = pm.run(QuantumCircuit(1))
        assert result.count_gate("x") == 3

    def test_fixed_point_rejects_zero_iterations(self):
        with pytest.raises(TranspilerError):
            FixedPoint([_AddGatePass()], max_iterations=0)

    def test_do_while_loops_on_condition(self):
        pm = PassManager(
            [
                DoWhile(
                    [_CountingPass()],
                    condition=lambda props: props.get("count", 0) < 5,
                )
            ]
        )
        pm.run(QuantumCircuit(1))
        assert pm.property_set["count"] == 5

    def test_conditional_controller_runs_when_true(self):
        class Arm(AnalysisPass):
            def run(self, dag, property_set):
                property_set["armed"] = True

        pm = PassManager(
            [
                Arm(),
                ConditionalController(
                    [_AddGatePass()], condition=lambda props: props.get("armed", False)
                ),
                ConditionalController(
                    [_AddGatePass()], condition=lambda props: props.get("missing", False)
                ),
            ]
        )
        result = pm.run(QuantumCircuit(1))
        assert result.count_gate("x") == 1

"""Tests for the pass-manager framework."""

import pytest

from repro.circuit import QuantumCircuit
from repro.exceptions import TranspilerError
from repro.transpiler import PassManager, PropertySet, TranspilerPass


class _CountingPass(TranspilerPass):
    name = "counting"

    def run(self, circuit, property_set):
        property_set["count"] = property_set.get("count", 0) + 1
        return circuit


class _AddGatePass(TranspilerPass):
    def run(self, circuit, property_set):
        out = circuit.copy()
        out.x(0)
        return out


class _BrokenPass(TranspilerPass):
    def run(self, circuit, property_set):
        return None


class TestPassManager:
    def test_runs_passes_in_order(self):
        pm = PassManager([_CountingPass(), _AddGatePass(), _AddGatePass()])
        result = pm.run(QuantumCircuit(1))
        assert result.count_gate("x") == 2
        assert pm.property_set["count"] == 1

    def test_append_and_extend(self):
        pm = PassManager()
        pm.append(_CountingPass()).extend([_CountingPass()])
        pm.run(QuantumCircuit(1))
        assert pm.property_set["count"] == 2

    def test_timings_recorded(self):
        pm = PassManager([_CountingPass(), _AddGatePass()])
        pm.run(QuantumCircuit(1))
        assert "counting" in pm.timings
        assert pm.total_time() >= 0.0

    def test_none_return_raises(self):
        pm = PassManager([_BrokenPass()])
        with pytest.raises(TranspilerError):
            pm.run(QuantumCircuit(1))

    def test_property_set_is_shared(self):
        class Writer(TranspilerPass):
            def run(self, circuit, property_set):
                property_set["token"] = 42
                return circuit

        class Reader(TranspilerPass):
            def run(self, circuit, property_set):
                assert property_set["token"] == 42
                return circuit

        PassManager([Writer(), Reader()]).run(QuantumCircuit(1))

    def test_property_set_is_a_dict(self):
        assert isinstance(PropertySet(), dict)

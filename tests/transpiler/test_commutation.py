"""Tests for commutation analysis and commutative cancellation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import Instruction, QuantumCircuit, gate, random_circuit
from repro.transpiler import PassManager, PropertySet
from repro.transpiler.passes import CommutationAnalysis, CommutativeCancellation, gates_commute

from ..conftest import assert_unitary_equiv


def _inst(name, qubits, *params):
    return Instruction(gate(name, *params), qubits)


class TestGatesCommute:
    def test_disjoint_supports_commute(self):
        assert gates_commute(_inst("x", (0,)), _inst("h", (1,)))
        assert gates_commute(_inst("cx", (0, 1)), _inst("cx", (2, 3)))

    def test_cx_sharing_control_commute(self):
        assert gates_commute(_inst("cx", (0, 1)), _inst("cx", (0, 2)))

    def test_cx_sharing_target_commute(self):
        assert gates_commute(_inst("cx", (0, 2)), _inst("cx", (1, 2)))

    def test_cx_chained_do_not_commute(self):
        assert not gates_commute(_inst("cx", (0, 1)), _inst("cx", (1, 2)))

    def test_identical_cx_commute(self):
        assert gates_commute(_inst("cx", (0, 1)), _inst("cx", (0, 1)))

    def test_rz_commutes_with_cx_control(self):
        assert gates_commute(_inst("rz", (0,), 0.5), _inst("cx", (0, 1)))

    def test_rz_does_not_commute_with_cx_target(self):
        assert not gates_commute(_inst("rz", (1,), 0.5), _inst("cx", (0, 1)))

    def test_x_commutes_with_cx_target(self):
        assert gates_commute(_inst("x", (1,)), _inst("cx", (0, 1)))

    def test_h_does_not_commute_with_cx(self):
        assert not gates_commute(_inst("h", (0,)), _inst("cx", (0, 1)))

    def test_diagonal_gates_commute(self):
        assert gates_commute(_inst("cz", (0, 1)), _inst("rz", (1,), 0.3))
        assert gates_commute(_inst("cp", (0, 1), 0.4), _inst("cz", (1, 2)))

    def test_directives_never_commute(self):
        assert not gates_commute(_inst("measure", (0,)), _inst("x", (0,)))

    def test_matrix_fallback_crx(self):
        # crx commutes with an x on its target but not with an x on its control.
        assert gates_commute(_inst("crx", (0, 1), 0.7), _inst("x", (1,)))
        assert not gates_commute(_inst("crx", (0, 1), 0.7), _inst("x", (0,)))


class TestCommutationAnalysis:
    def test_commuting_cx_grouped_together(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.cx(0, 2)
        circuit.cx(0, 1)
        props = PropertySet()
        CommutationAnalysis().run_circuit(circuit, props)
        index = props["commutation_index"]
        assert index[(0, 0)] == index[(0, 1)] == index[(0, 2)]

    def test_non_commuting_split(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.h(0)
        circuit.cx(0, 1)
        props = PropertySet()
        CommutationAnalysis().run_circuit(circuit, props)
        index = props["commutation_index"]
        assert index[(0, 0)] != index[(0, 2)]

    def test_directives_split_sets(self):
        circuit = QuantumCircuit(1, 1)
        circuit.rz(0.1, 0)
        circuit.measure(0, 0)
        circuit.rz(0.2, 0)
        props = PropertySet()
        CommutationAnalysis().run_circuit(circuit, props)
        index = props["commutation_index"]
        assert index[(0, 0)] != index[(0, 2)]

    def test_large_sets_are_split_conservatively(self):
        circuit = QuantumCircuit(1)
        for _ in range(50):
            circuit.rz(0.01, 0)
        props = PropertySet()
        CommutationAnalysis().run_circuit(circuit, props)
        sets = props["commutation_sets"][0]
        assert all(len(group) <= CommutationAnalysis.MAX_SET_SIZE for group in sets)


class TestCommutativeCancellation:
    def run_pass(self, circuit):
        return PassManager([CommutativeCancellation()]).run(circuit)

    def test_adjacent_cx_pair_cancels(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.cx(0, 1)
        assert self.run_pass(circuit).cx_count() == 0

    def test_cx_cancel_through_commuting_gate(self):
        # The paper's Fig. 4: the CNOTs commute through a CNOT sharing the same target.
        circuit = QuantumCircuit(3)
        circuit.cx(0, 2)
        circuit.cx(1, 2)
        circuit.cx(0, 2)
        optimized = self.run_pass(circuit)
        assert optimized.cx_count() == 1
        assert_unitary_equiv(circuit, optimized)

    def test_cx_blocked_by_non_commuting_gate(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.h(1)
        circuit.cx(0, 1)
        assert self.run_pass(circuit).cx_count() == 2

    def test_odd_number_keeps_one(self):
        circuit = QuantumCircuit(2)
        for _ in range(3):
            circuit.cx(0, 1)
        optimized = self.run_pass(circuit)
        assert optimized.cx_count() == 1
        assert_unitary_equiv(circuit, optimized)

    def test_single_qubit_self_inverse_cancel(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        circuit.h(0)
        circuit.x(0)
        circuit.x(0)
        assert self.run_pass(circuit).size() == 0

    def test_rz_rotations_merge(self):
        circuit = QuantumCircuit(2)
        circuit.rz(0.25, 0)
        circuit.cx(0, 1)  # rz on the control commutes through
        circuit.rz(0.5, 0)
        optimized = self.run_pass(circuit)
        rz_gates = [inst for inst in optimized.data if inst.name == "rz"]
        assert len(rz_gates) == 1
        assert rz_gates[0].gate.params[0] == pytest.approx(0.75)
        assert_unitary_equiv(circuit, optimized)

    def test_cz_symmetric_cancellation(self):
        circuit = QuantumCircuit(2)
        circuit.cz(0, 1)
        circuit.cz(1, 0)
        optimized = self.run_pass(circuit)
        assert optimized.count_gate("cz") == 0
        assert_unitary_equiv(circuit, optimized)

    def test_swap_lowered_plus_cx_scenario(self):
        # CNOT followed by an adjacent SWAP lowered with matching orientation loses one CNOT.
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.cx(0, 1)
        circuit.cx(1, 0)
        circuit.cx(0, 1)
        optimized = self.run_pass(circuit)
        assert optimized.cx_count() == 2
        assert_unitary_equiv(circuit, optimized)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_property_preserves_unitary(self, seed):
        circuit = random_circuit(4, 6, seed=seed)
        optimized = self.run_pass(circuit)
        assert_unitary_equiv(circuit, optimized)
        assert optimized.cx_count() <= circuit.cx_count()

"""Tests for the staged pipeline builder, optimization levels, and the routing registry."""

import json
import sys
import textwrap

import pytest

from repro import QuantumCircuit, Target, TranspileOptions, transpile
from repro.benchlib import adder_n10, grover_n4
from repro.circuit import qasm
from repro.exceptions import TranspilerError
from repro.hardware import linear_coupling_map, montreal_coupling_map
from repro.transpiler import PipelineBuilder
from repro.transpiler.registry import (
    PLUGINS_ENV,
    RoutingPlan,
    available_routings,
    get_routing,
    register_routing,
    registered_methods,
    routing_registered,
    unregister_routing,
)


def sabre_clone_factory(target, options, distance_matrix=None):
    """A 'third-party' method that simply reuses the sabre plan (for plug-in tests)."""
    return get_routing("sabre").factory(target, options, distance_matrix=distance_matrix)


@pytest.fixture()
def custom_routing():
    name = "sabre_clone"
    register_routing(name, sabre_clone_factory, description="test clone of sabre")
    yield name
    unregister_routing(name)


class TestRegistry:
    def test_builtins_registered_at_import(self):
        assert set(available_routings()) >= {"none", "sabre", "nassc"}
        assert all(m.builtin for m in registered_methods() if m.name in ("none", "sabre", "nassc"))

    def test_unknown_method_rejected(self):
        with pytest.raises(TranspilerError, match="unknown routing method"):
            get_routing("definitely_not_registered")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(TranspilerError, match="already registered"):
            register_routing("sabre", sabre_clone_factory)

    def test_builtin_cannot_be_unregistered(self):
        with pytest.raises(TranspilerError, match="cannot be unregistered"):
            unregister_routing("sabre")

    def test_register_and_unregister(self, custom_routing):
        assert routing_registered(custom_routing)
        assert custom_routing in available_routings()

    def test_custom_method_matches_cloned_builtin(self, custom_routing):
        coupling = linear_coupling_map(5)
        target = Target(coupling_map=coupling)
        base = transpile(grover_n4(), target, TranspileOptions(routing="sabre", seed=0))
        clone = transpile(grover_n4(), target, TranspileOptions(routing=custom_routing, seed=0))
        assert qasm.dumps(clone.circuit) == qasm.dumps(base.circuit)

    def test_env_plugin_module_loaded_on_lookup(self, tmp_path, monkeypatch):
        """The third-party entry path: REPRO_ROUTING_PLUGINS names a module to import."""
        module = tmp_path / "repro_test_plugin_mod.py"
        module.write_text(textwrap.dedent("""
            from repro.transpiler.registry import get_routing, register_routing

            def factory(target, options, distance_matrix=None):
                return get_routing("sabre").factory(
                    target, options, distance_matrix=distance_matrix
                )

            register_routing("env_plugin_router", factory, description="from env plugin")
        """))
        monkeypatch.syspath_prepend(str(tmp_path))
        monkeypatch.setenv(PLUGINS_ENV, "repro_test_plugin_mod")
        try:
            assert routing_registered("env_plugin_router")
            method = get_routing("env_plugin_router")
            assert not method.builtin
        finally:
            if routing_registered("env_plugin_router"):
                unregister_routing("env_plugin_router")
            sys.modules.pop("repro_test_plugin_mod", None)


class TestBuilderStages:
    def test_stage_names_and_contents(self):
        builder = PipelineBuilder(
            Target(coupling_map=linear_coupling_map(5)), TranspileOptions(routing="nassc")
        )
        assert tuple(builder.stages) == PipelineBuilder.STAGES
        names = [type(item).__name__ for item in builder.stage("routing")]
        assert names == ["NASSCRouting", "CommuteSingleQubitsThroughSwap"]
        assert [type(i).__name__ for i in builder.stage("layout")] == ["SabreLayoutSelection"]
        assert type(builder.stage("finalize")[0]).__name__ == "CheckMap"

    def test_override_stage(self):
        target = Target(coupling_map=linear_coupling_map(5))
        builder = PipelineBuilder(target, TranspileOptions(routing="sabre"))
        builder.override_stage("finalize", [])
        assert builder.stage("finalize") == []
        assert "CheckMap" not in [type(i).__name__ for i in builder.passes]
        with pytest.raises(TranspilerError, match="unknown stage"):
            builder.override_stage("not_a_stage", [])

    def test_routing_requires_coupling(self):
        with pytest.raises(TranspilerError, match="coupling map"):
            PipelineBuilder(Target(), TranspileOptions(routing="sabre"))

    def test_none_routing_skips_layout_and_check(self):
        builder = PipelineBuilder(Target(), TranspileOptions(routing="none"))
        assert builder.stage("layout") == [] and builder.stage("routing") == []
        assert builder.stage("finalize") == []

    def test_o3_noise_aware_only_with_calibration(self):
        plain = PipelineBuilder(
            Target(coupling_map=linear_coupling_map(5)), TranspileOptions(level="O3")
        )
        assert not plain.noise_aware
        calibrated = PipelineBuilder(
            Target.from_topology("linear", 5, calibrated=True), TranspileOptions(level="O3")
        )
        assert calibrated.noise_aware

    def test_noise_aware_without_calibration_rejected(self):
        with pytest.raises(TranspilerError, match="calibration"):
            PipelineBuilder(
                Target(coupling_map=linear_coupling_map(5)),
                TranspileOptions(noise_aware=True),
            )


class TestTranspileOptions:
    def test_frozen(self):
        options = TranspileOptions()
        with pytest.raises(Exception):
            options.routing = "nassc"

    def test_level_normalisation(self):
        assert TranspileOptions(level=2).level == "O2"
        assert TranspileOptions(level="o0").level == "O0"
        assert TranspileOptions(level="3").level == "O3"
        with pytest.raises(TranspilerError, match="unknown optimization level"):
            TranspileOptions(level="O9")

    def test_round_trip(self):
        from repro import NASSCConfig

        options = TranspileOptions(
            routing="nassc", level="O2", seed=7, nassc_config=NASSCConfig(True, False, True),
            noise_aware=False, extended_set_size=10, extended_set_weight=0.25,
        )
        clone = TranspileOptions.from_dict(json.loads(json.dumps(options.to_dict())))
        assert clone == options

    def test_replace(self):
        options = TranspileOptions(seed=1)
        other = options.replace(routing="nassc", level="O2")
        assert (other.routing, other.level, other.seed) == ("nassc", "O2", 1)
        assert options.routing == "sabre"  # original untouched


class TestOptimizationLevels:
    CASES = [grover_n4, adder_n10]

    @pytest.mark.parametrize("coupling_factory", [
        lambda: linear_coupling_map(25), montreal_coupling_map,
    ], ids=["linear", "montreal"])
    @pytest.mark.parametrize("case", CASES, ids=[c.__name__ for c in CASES])
    def test_o0_never_beats_o1(self, coupling_factory, case):
        """O0 (decompose+route only) must not produce fewer CNOTs than O1 (paper pipeline)."""
        target = Target(coupling_map=coupling_factory())
        circuit = case()
        o0 = transpile(circuit, target, TranspileOptions(routing="nassc", seed=0, level="O0"))
        o1 = transpile(circuit, target, TranspileOptions(routing="nassc", seed=0, level="O1"))
        assert o0.cx_count >= o1.cx_count
        assert o0.level == "O0" and o1.level == "O1"

    @pytest.mark.parametrize("coupling_factory", [
        lambda: linear_coupling_map(25), montreal_coupling_map,
    ], ids=["linear", "montreal"])
    @pytest.mark.parametrize("routing", ["sabre", "nassc"])
    def test_o1_bit_identical_to_legacy_pipeline(self, coupling_factory, routing):
        """The staged O1 pipeline reproduces the flat legacy signature bit-for-bit."""
        coupling = coupling_factory()
        circuit = grover_n4()
        staged = transpile(
            circuit, Target(coupling_map=coupling),
            TranspileOptions(routing=routing, seed=0, level="O1"),
        )
        with pytest.deprecated_call():
            legacy = transpile(circuit, coupling, routing=routing, seed=0)
        assert qasm.dumps(staged.circuit) == qasm.dumps(legacy.circuit)
        assert staged.num_swaps == legacy.num_swaps
        assert staged.final_layout == legacy.final_layout

    def test_o3_equals_explicit_noise_aware_o2(self):
        # best_of=1 pins O3 to a single trial: this test isolates the noise-aware
        # equivalence, not the ensemble default (covered in test_ensemble.py).
        target = Target.from_topology("montreal", calibrated=True)
        circuit = grover_n4()
        o3 = transpile(
            circuit, target,
            TranspileOptions(routing="nassc", seed=0, level="O3", best_of=1),
        )
        explicit = transpile(
            circuit, target,
            TranspileOptions(routing="nassc", seed=0, level="O2", noise_aware=True),
        )
        assert qasm.dumps(o3.circuit) == qasm.dumps(explicit.circuit)

    def test_o0_output_still_routed(self):
        from repro.transpiler.passes import coupling_violations

        coupling = linear_coupling_map(5)
        result = transpile(
            grover_n4(), Target(coupling_map=coupling),
            TranspileOptions(routing="sabre", seed=0, level="O0"),
        )
        assert not coupling_violations(result.circuit, coupling)


class TestNewTranspileSignature:
    def test_keyword_overrides_on_options(self):
        target = Target(coupling_map=linear_coupling_map(5))
        base = TranspileOptions(routing="sabre", seed=0)
        result = transpile(grover_n4(), target, base, routing="nassc")
        assert result.routing == "nassc"

    def test_device_kwargs_with_target_rejected(self):
        from repro.hardware import fake_montreal_calibration

        with pytest.raises(TranspilerError, match="on the Target"):
            transpile(
                QuantumCircuit(2), Target(coupling_map=linear_coupling_map(3)),
                calibration=fake_montreal_calibration(),
            )

    def test_legacy_coupling_map_warns(self):
        with pytest.deprecated_call():
            transpile(QuantumCircuit(2), linear_coupling_map(3), routing="sabre", seed=0)

    def test_legacy_coupling_map_keyword_still_accepted(self):
        coupling = linear_coupling_map(5)
        with pytest.deprecated_call():
            by_keyword = transpile(grover_n4(), coupling_map=coupling, routing="sabre", seed=0)
        with pytest.deprecated_call():
            positional = transpile(grover_n4(), coupling, routing="sabre", seed=0)
        assert qasm.dumps(by_keyword.circuit) == qasm.dumps(positional.circuit)
        with pytest.raises(TranspilerError, match="not both"):
            transpile(grover_n4(), Target(coupling_map=coupling), coupling_map=coupling)

    def test_compare_routings_kwargs_override_options(self):
        from repro import compare_routings

        target = Target(coupling_map=linear_coupling_map(5))
        merged = compare_routings(
            grover_n4(), target, seed=7, options=TranspileOptions(level="O2"),
        )
        direct = transpile(
            grover_n4(), target, TranspileOptions(routing="nassc", seed=7, level="O2")
        )
        assert qasm.dumps(merged["nassc"].circuit) == qasm.dumps(direct.circuit)

    def test_compare_routings_forwards_noise_options(self):
        from repro import compare_routings

        target = Target.from_topology("linear", 5, calibrated=True)
        results = compare_routings(grover_n4(), target, seed=0, noise_aware=True)
        for method in ("sabre", "nassc"):
            direct = transpile(
                grover_n4(), target,
                TranspileOptions(routing=method, seed=0, noise_aware=True),
            )
            assert qasm.dumps(results[method].circuit) == qasm.dumps(direct.circuit)

    def test_import_repro_with_plugin_env_set_does_not_load_plugins(self, tmp_path):
        """`import repro` must not import REPRO_ROUTING_PLUGINS modules (they typically
        import repro back, which would deadlock on partial initialisation)."""
        import os
        import subprocess
        import sys as _sys

        module = tmp_path / "repro_selfimporting_plugin.py"
        module.write_text(textwrap.dedent("""
            from repro import Target  # imports repro back while it may be initialising
            from repro.transpiler.registry import get_routing, register_routing

            def factory(target, options, distance_matrix=None):
                return get_routing("sabre").factory(
                    target, options, distance_matrix=distance_matrix
                )

            register_routing("selfimporting", factory)
        """))
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join([os.path.abspath(src), str(tmp_path)])
        env[PLUGINS_ENV] = "repro_selfimporting_plugin"
        script = (
            "import repro\n"
            "from repro.transpiler.registry import routing_registered\n"
            "assert routing_registered('selfimporting')\n"
            "print('ok')\n"
        )
        proc = subprocess.run(
            [_sys.executable, "-c", script], capture_output=True, text=True, env=env,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "ok"

"""Determinism regression: O1 output is bit-identical to the pinned golden hashes.

The golden file (``golden_o1_hashes.json``) pins the sha256 of the emitted OpenQASM text
for every device x benchmark x routing-method case at level O1 / seed 0, recorded on the
*pre-vectorization* hot path.  Any hot-path change that alters compiled output — SWAP
choice, tie-breaking, rotation angles, gate order, labels — flips a hash and fails here.

Regenerate with ``python benchmarks/gen_golden_hashes.py`` only when an output change is
intended.
"""

import hashlib
import json
import os

import pytest

from repro import Target, TranspileOptions, transpile
from repro.benchlib import table_benchmarks
from repro.circuit import qasm
from repro.hardware import evaluation_devices
from repro.transpiler.registry import available_routings

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_o1_hashes.json")

with open(GOLDEN_PATH, encoding="utf-8") as _handle:
    GOLDEN = json.load(_handle)


@pytest.fixture(scope="module")
def targets():
    devices = evaluation_devices()
    assert set(GOLDEN["devices"]) == set(devices), (
        "the shared evaluation grid changed; regenerate the goldens "
        "(python benchmarks/gen_golden_hashes.py)"
    )
    return {
        name: Target(coupling_map=devices[name], name=name)
        for name in GOLDEN["devices"]
    }


@pytest.fixture(scope="module")
def circuits():
    return {
        case.name: case.build()
        for case in table_benchmarks(names=GOLDEN["benchmarks"])
    }


def test_golden_file_covers_all_registered_builtin_methods():
    """Every built-in routing method is pinned; new methods must be added to the goldens."""
    assert set(GOLDEN["methods"]) == {
        m for m in available_routings(load_plugins=False) if m in ("none", "sabre", "nassc")
    }
    expected = len(GOLDEN["devices"]) * len(GOLDEN["benchmarks"]) * len(GOLDEN["methods"])
    assert len(GOLDEN["cases"]) == expected


@pytest.mark.parametrize("key", sorted(GOLDEN["cases"]))
def test_o1_output_matches_golden_hash(key, targets, circuits):
    device_name, bench_name, method = key.split("|")
    expected = GOLDEN["cases"][key]
    result = transpile(
        circuits[bench_name],
        targets[device_name],
        TranspileOptions(routing=method, seed=GOLDEN["seed"], level=GOLDEN["level"]),
    )
    text = qasm.dumps(result.circuit)
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
    assert digest == expected["qasm_sha256"], (
        f"{key}: O1 output drifted from the pinned golden hash "
        f"(cx {result.cx_count} vs {expected['cx_count']}, "
        f"swaps {result.num_swaps} vs {expected['num_swaps']})"
    )
    assert result.cx_count == expected["cx_count"]
    assert result.depth == expected["depth"]
    assert result.num_swaps == expected["num_swaps"]

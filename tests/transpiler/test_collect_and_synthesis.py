"""Tests for two-qubit block collection and block re-synthesis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import QuantumCircuit, random_circuit
from repro.transpiler import PassManager, PropertySet
from repro.transpiler.passes import Collect2qBlocks, UnitarySynthesis, block_cx_weight, block_matrix

from ..conftest import assert_unitary_equiv


def collect(circuit):
    props = PropertySet()
    Collect2qBlocks().run_circuit(circuit, props)
    return props


class TestCollect2qBlocks:
    def test_simple_block(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.rz(0.3, 1)
        circuit.cx(0, 1)
        props = collect(circuit)
        assert len(props["block_list"]) == 1
        assert props["block_list"][0] == [0, 1, 2, 3]
        assert props["block_pairs"][0] == (0, 1)

    def test_blocks_split_by_third_qubit(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        circuit.cx(0, 1)
        props = collect(circuit)
        assert len(props["block_list"]) == 3

    def test_blocks_split_by_barrier(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.barrier()
        circuit.cx(0, 1)
        props = collect(circuit)
        assert len(props["block_list"]) == 2

    def test_floating_1q_gates_absorbed_into_next_block(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.t(1)
        circuit.cx(0, 1)
        props = collect(circuit)
        assert props["block_list"][0] == [0, 1, 2]

    def test_trailing_1q_gates_joined_while_block_open(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.h(0)
        circuit.h(1)
        props = collect(circuit)
        assert props["block_list"][0] == [0, 1, 2]

    def test_block_id_mapping(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        props = collect(circuit)
        assert props["block_id"][0] == 0
        assert props["block_id"][1] == 1

    def test_block_matrix_and_weight_helpers(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.swap(0, 1)
        props = collect(circuit)
        positions = props["block_list"][0]
        assert block_cx_weight(circuit, positions) == 4  # cx (1) + swap (3)
        matrix = block_matrix(circuit, positions, (0, 1))
        assert matrix.shape == (4, 4)


class TestUnitarySynthesis:
    def run_pass(self, circuit):
        return PassManager([UnitarySynthesis()]).run(circuit)

    def test_swap_adjacent_to_cx_resynthesised_to_two_cnots(self):
        # Paper Fig. 1(b): CNOT + SWAP on the same pair costs 2 CNOTs after re-synthesis.
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.swap(0, 1)
        optimized = self.run_pass(circuit)
        assert optimized.cx_count() == 2
        assert_unitary_equiv(circuit, optimized)

    def test_three_cnot_block_plus_swap_stays_at_three(self):
        # Paper Sec. III: a SWAP following a generic 3-CNOT block is free.
        rng = np.random.default_rng(1)
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.rz(rng.uniform(0.2, 1.0), 0)
        circuit.ry(rng.uniform(0.2, 1.0), 1)
        circuit.cx(1, 0)
        circuit.rz(rng.uniform(0.2, 1.0), 1)
        circuit.cx(0, 1)
        circuit.swap(0, 1)
        optimized = self.run_pass(circuit)
        assert optimized.cx_count() <= 3
        assert_unitary_equiv(circuit, optimized)

    def test_redundant_cnot_pair_removed(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.cx(0, 1)
        optimized = self.run_pass(circuit)
        assert optimized.cx_count() == 0
        assert_unitary_equiv(circuit, optimized)

    def test_single_cx_left_untouched(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        optimized = self.run_pass(circuit)
        assert optimized.cx_count() == 1

    def test_never_increases_cx_count(self):
        for seed in range(5):
            circuit = random_circuit(4, 8, seed=seed)
            baseline = PassManager([]).run(circuit)
            optimized = self.run_pass(circuit)
            swap_weight = 3 * baseline.count_gate("swap") + 2 * (
                baseline.num_nonlocal_gates()
                - baseline.cx_count()
                - baseline.count_gate("swap")
            )
            assert optimized.cx_count() <= baseline.cx_count() + swap_weight

    def test_multi_block_circuit_equivalence(self):
        circuit = QuantumCircuit(4)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        circuit.swap(1, 2)
        circuit.cx(2, 3)
        circuit.rz(0.4, 3)
        circuit.cx(2, 3)
        optimized = self.run_pass(circuit)
        assert_unitary_equiv(circuit, optimized)
        assert optimized.cx_count() <= 2 + 3 + 2

    def test_measurement_blocks_are_untouched(self):
        circuit = QuantumCircuit(2, 2)
        circuit.cx(0, 1)
        circuit.measure(0, 0)
        circuit.cx(0, 1)
        optimized = self.run_pass(circuit)
        assert optimized.count_gate("measure") == 1
        assert optimized.cx_count() == 2

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_property_preserves_unitary(self, seed):
        circuit = random_circuit(4, 7, seed=seed)
        optimized = self.run_pass(circuit)
        assert_unitary_equiv(circuit, optimized)

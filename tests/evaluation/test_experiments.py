"""Tests for the experiment runners (small configurations of the paper's tables/figures)."""

import numpy as np
import pytest

from repro.benchlib import BenchmarkCase, bv_n5, grover_n4, noise_benchmarks
from repro.core.nassc import NASSCConfig
from repro.evaluation import (
    AblationRow,
    NOISE_METHODS,
    cnot_table_to_csv,
    compare_benchmark,
    depth_table_to_csv,
    format_ablation,
    format_cnot_table,
    format_depth_table,
    format_noise_experiment,
    run_noise_experiment,
    run_optimization_ablation,
    run_table_experiment,
)
from repro.hardware import linear_coupling_map

SMALL_CASES = [
    BenchmarkCase("grover_n4", 4, grover_n4),
    BenchmarkCase("bv_n5", 5, bv_n5),
]


@pytest.fixture(scope="module")
def small_table():
    return run_table_experiment("linear", cases=SMALL_CASES, seeds=(0,), num_device_qubits=6)


class TestTableExperiment:
    def test_rows_and_names(self, small_table):
        assert [row.name for row in small_table.rows] == ["grover_n4", "bv_n5"]
        assert small_table.topology.startswith("linear")

    def test_added_counts_are_nonnegative(self, small_table):
        for row in small_table.rows:
            assert row.sabre_cx >= row.original_cx
            assert row.nassc_cx >= row.original_cx

    def test_delta_columns_consistent(self, small_table):
        row = small_table.rows[0]
        assert row.delta_cx_total == pytest.approx(100 * (1 - row.nassc_cx / row.sabre_cx))

    def test_geomeans_finite(self, small_table):
        assert np.isfinite(small_table.geomean_delta_cx_total)
        assert np.isfinite(small_table.geomean_delta_cx_added)
        assert np.isfinite(small_table.geomean_time_ratio)

    def test_formatting_contains_all_rows(self, small_table):
        text = format_cnot_table(small_table)
        assert "grover_n4" in text and "geomean" in text
        depth_text = format_depth_table(small_table)
        assert "sabre_depth" in depth_text

    def test_csv_export(self, small_table):
        csv_text = cnot_table_to_csv(small_table)
        assert csv_text.count("\n") >= 4
        assert "delta_cx_added_pct" in csv_text.splitlines()[0]
        assert "bv_n5" in csv_text
        assert "original_depth" in depth_table_to_csv(small_table).splitlines()[0]

    def test_benchmarks_larger_than_device_skipped(self):
        result = run_table_experiment(
            "linear",
            cases=[BenchmarkCase("bv_n5", 5, bv_n5)],
            seeds=(0,),
            num_device_qubits=3,
        )
        assert result.rows == []

    def test_compare_benchmark_averages_over_seeds(self):
        case = BenchmarkCase("grover_n4", 4, grover_n4)
        row = compare_benchmark(case, linear_coupling_map(5), seeds=(0, 1))
        assert row.sabre_cx > 0 and row.nassc_cx > 0


class TestAblation:
    def test_eight_combinations_per_row(self):
        rows = run_optimization_ablation(
            "linear", cases=[BenchmarkCase("grover_n4", 4, grover_n4)], seeds=(0,),
            num_device_qubits=5,
        )
        assert len(rows) == 1
        assert len(rows[0].cx_by_combination) == 8

    def test_best_at_least_all_enabled(self):
        rows = run_optimization_ablation(
            "linear", cases=SMALL_CASES, seeds=(0,), num_device_qubits=6
        )
        for row in rows:
            assert row.best_reduction >= row.all_enabled_reduction - 1e-9

    def test_combination_key_format(self):
        key = AblationRow.combination_key(NASSCConfig(True, False, True))
        assert key == "2q+--+c2"

    def test_formatting(self):
        rows = run_optimization_ablation(
            "linear", cases=[BenchmarkCase("grover_n4", 4, grover_n4)], seeds=(0,),
            num_device_qubits=5,
        )
        text = format_ablation(rows, "linear")
        assert "grover_n4" in text


class TestNoiseExperiment:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_noise_experiment(
            cases=noise_benchmarks()[:2], shots=512, seed=0, realizations=16
        )

    def test_all_methods_present(self, rows):
        for row in rows:
            assert set(row.added_cx) == set(NOISE_METHODS)
            assert set(row.success_rate) == set(NOISE_METHODS)

    def test_success_rates_in_range(self, rows):
        for row in rows:
            for rate in row.success_rate.values():
                assert 0.0 <= rate <= 1.0

    def test_success_rates_nontrivial(self, rows):
        # With the synthetic calibration the small oracles should succeed most of the time.
        assert max(rows[0].success_rate.values()) > 0.3

    def test_formatting(self, rows):
        text = format_noise_experiment(rows)
        assert "sr_nassc" in text and rows[0].name in text


class TestScheduledTable:
    @pytest.fixture(scope="class")
    def timed_table(self):
        return run_table_experiment(
            "linear", cases=SMALL_CASES, seeds=(0,), num_device_qubits=6, schedule="asap",
        )

    def test_rows_carry_durations(self, timed_table):
        assert timed_table.has_durations
        for row in timed_table.rows:
            assert row.has_durations
            assert row.sabre_duration_ns > 0 and row.nassc_duration_ns > 0
            assert np.isfinite(row.delta_duration)

    def test_duration_table_formatting(self, timed_table):
        from repro.evaluation import format_duration_table

        text = format_duration_table(timed_table)
        assert "sabre_ns" in text and "nassc_ns" in text
        for row in timed_table.rows:
            assert row.name in text

    def test_json_export_includes_durations(self, timed_table):
        from repro.evaluation import table_result_to_dict

        payload = table_result_to_dict(timed_table)
        for row in payload["rows"]:
            assert row["sabre_duration_ns"] > 0
            assert row["nassc_duration_ns"] > 0
            assert "delta_duration_pct" in row
        assert "delta_duration_pct" in payload["geomean"]

    def test_unscheduled_table_has_no_durations(self, small_table):
        assert not small_table.has_durations
        from repro.evaluation import table_result_to_dict

        payload = table_result_to_dict(small_table)
        assert "sabre_duration_ns" not in payload["rows"][0]

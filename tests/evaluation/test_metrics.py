"""Tests for evaluation metrics."""

import pytest

from repro.benchlib import grover_n4
from repro.circuit import QuantumCircuit
from repro.core import optimize_logical, transpile
from repro.evaluation import (
    collect_metrics,
    count_summary,
    geometric_mean_reduction,
    is_equivalent_after_routing,
    percentage_change,
    routed_state_fidelity,
)
from repro.hardware import linear_coupling_map


class TestScalarMetrics:
    def test_percentage_change(self):
        assert percentage_change(100, 80) == pytest.approx(20.0)
        assert percentage_change(100, 120) == pytest.approx(-20.0)
        assert percentage_change(0, 10) == 0.0

    def test_geometric_mean_reduction(self):
        # Two benchmarks, both reduced to half the baseline: 50% geometric-mean reduction.
        assert geometric_mean_reduction([10, 100], [5, 50]) == pytest.approx(50.0)

    def test_geometric_mean_mixed(self):
        value = geometric_mean_reduction([10, 10], [5, 20])
        assert value == pytest.approx(0.0, abs=1e-9)

    def test_geometric_mean_empty(self):
        assert geometric_mean_reduction([], []) == 0.0

    def test_count_summary(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        summary = count_summary(circuit)
        assert summary["cx"] == 1
        assert summary["single_qubit"] == 1
        assert summary["depth"] == 2


class TestRoutingMetrics:
    def test_collect_metrics_fields(self):
        circuit = grover_n4()
        coupling = linear_coupling_map(5)
        optimized = optimize_logical(circuit)
        result = transpile(circuit, coupling, routing="sabre", seed=0)
        metrics = collect_metrics("grover_n4", circuit, optimized, result)
        assert metrics.added_cx == result.cx_count - optimized.cx_count()
        assert metrics.added_depth == result.depth - optimized.depth()
        assert metrics.num_qubits == 4

    def test_fidelity_of_identity_routing(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.cx(0, 1)
        coupling = linear_coupling_map(4)
        result = transpile(circuit, coupling, routing="sabre", seed=0)
        assert routed_state_fidelity(circuit, result) == pytest.approx(1.0, abs=1e-7)
        assert is_equivalent_after_routing(circuit, result)

    def test_fidelity_detects_corruption(self):
        circuit = QuantumCircuit(2)
        circuit.x(0)
        coupling = linear_coupling_map(3)
        result = transpile(circuit, coupling, routing="sabre", seed=0)
        # Corrupt the routed circuit on purpose.
        result.circuit.x(result.final_layout.physical(0))
        assert routed_state_fidelity(circuit, result) < 0.5

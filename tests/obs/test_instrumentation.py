"""Pipeline instrumentation tests: pass spans, DAG deltas, and the no-op contract.

The no-op contract test is the tier-1 guard ISSUE 6 asks for: it proves *by counter*,
not by timing (timing-based overhead assertions flake in CI), that disabled tracing
creates zero spans anywhere in a full ``transpile()`` call.
"""

import pytest

from repro import QuantumCircuit, Target, Tracer, transpile, use_tracer
from repro.circuit import qasm
from repro.obs import tracer as tracer_mod


def ghz(n: int = 4) -> QuantumCircuit:
    circuit = QuantumCircuit(n, name=f"ghz{n}")
    circuit.h(0)
    for q in range(n - 1):
        circuit.cx(q, q + 1)
    return circuit


@pytest.fixture(autouse=True)
def _no_ambient_tracer():
    tracer_mod.set_tracer(None)
    tracer_mod._reset_env_tracer_for_tests()
    yield
    tracer_mod.set_tracer(None)
    tracer_mod._reset_env_tracer_for_tests()


class TestNoOpContract:
    def test_disabled_tracing_starts_zero_spans(self, monkeypatch):
        """With no tracer installed, a full compile must not allocate a single Span."""
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        tracer_mod._reset_env_tracer_for_tests()
        transpile(ghz(), Target.from_topology("linear", 4), level="O1")  # warm caches
        before = tracer_mod.SPANS_STARTED
        result = transpile(ghz(5), Target.from_topology("linear", 5), level="O1")
        assert tracer_mod.SPANS_STARTED == before
        assert result.trace == []
        assert "trace" not in result.to_dict()


class TestTracedTranspile:
    def test_span_tree_matches_timing_log(self):
        tracer = Tracer()
        with use_tracer(tracer):
            result = transpile(ghz(), Target.from_topology("linear", 4), level="O1")
        names = [span.name for span in tracer.finished]
        assert names[-1] == "transpile"  # root closes last
        pass_names = [n[len("pass:"):] for n in names if n.startswith("pass:")]
        assert pass_names == [name for name, _ in result.pass_timing_log]
        root = tracer.finished[-1]
        assert root.attrs["circuit"] == "ghz4"
        assert root.attrs["gates"] == len(result.circuit.data)
        assert root.attrs["depth"] == result.depth

    def test_pass_spans_carry_dag_deltas(self):
        from repro.benchlib.qft import qft

        tracer = Tracer()
        with use_tracer(tracer):
            transpile(qft(5), Target.from_topology("linear", 5), level="O1",
                      routing="sabre")
        changed = [
            span for span in tracer.finished
            if span.name.startswith("pass:") and span.attrs.get("changed")
        ]
        assert changed, "at least one pass must modify a 5q QFT on a line"
        for span in changed:
            for key in ("gates", "depth", "two_qubit", "d_gates", "d_depth"):
                assert key in span.attrs, (span.name, key)
        routing = next(s for s in changed if s.name == "pass:SabreRouting")
        assert routing.attrs["swaps_inserted"] >= 1

    def test_result_trace_round_trips(self):
        target = Target.from_topology("linear", 5)
        # routing="none" keeps both compiles deterministic: the SABRE path is
        # sensitive to process history (global memo caches, hash seed) and can take
        # different optimisation-loop iteration counts between two identical calls,
        # which is routing variance, not tracing overhead.  A chain GHZ needs no SWAPs
        # on a line, so CheckMap still validates the unrouted output.
        untraced = transpile(ghz(5), target, level="O1", routing="none")
        tracer = Tracer()
        with use_tracer(tracer):
            traced = transpile(ghz(5), target, level="O1", routing="none")
        # Tracing is observation-only: the traced compile runs the same schedule and
        # produces an equivalent result shape.  Exact-QASM equality is deliberately not
        # asserted: compile output is already history-sensitive without tracing.
        assert [n for n, _ in traced.pass_timing_log] == [n for n, _ in untraced.pass_timing_log]
        assert traced.circuit.num_qubits == untraced.circuit.num_qubits
        assert qasm.dumps(traced.circuit)  # serialisable, routed output
        assert traced.trace and untraced.trace == []
        payload = traced.to_dict()
        assert payload["trace"] == traced.trace
        from repro.core.pipeline import TranspileResult

        clone = TranspileResult.from_dict(payload)
        assert clone.trace == traced.trace

    def test_consecutive_calls_get_separate_traces(self):
        tracer = Tracer()
        with use_tracer(tracer):
            first = transpile(ghz(4), Target.from_topology("linear", 4), level="O0")
            second = transpile(ghz(5), Target.from_topology("linear", 5), level="O0")
        # Each result carries only its own spans even on a shared tracer.
        first_names = {span["span_id"] for span in first.trace}
        second_names = {span["span_id"] for span in second.trace}
        assert not first_names & second_names
        assert len(first.trace) + len(second.trace) == len(tracer.finished)

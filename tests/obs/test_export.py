"""Tests for :mod:`repro.obs.export` — Chrome trace output, loaders, self-time analysis."""

import json

import pytest

from repro.obs import (
    Tracer,
    chrome_trace,
    format_tree,
    load_trace_file,
    self_times,
    top_spans,
    write_chrome_trace,
    write_jsonl,
)


def make_spans():
    """A tiny two-level tree: root (100 ms) with children of 30 ms and 20 ms."""
    tracer = Tracer(process="client")
    root = tracer.make_span("root", start=10.0)
    child_a = tracer.make_span("child_a", parent_id=root.span_id, start=10.01, cost=1)
    child_b = tracer.make_span("child_b", parent_id=root.span_id, start=10.05)
    child_a.finish(10.04)   # 30 ms
    child_b.finish(10.07)   # 20 ms
    root.finish(10.10)      # 100 ms total, 50 ms self
    for span in (root, child_a, child_b):
        tracer.record(span)
    return tracer.span_dicts()


class TestChromeTrace:
    def test_structure(self):
        doc = chrome_trace(make_spans(), counters={"cache.demo.hits": 3})
        assert doc["displayTimeUnit"] == "ms"
        duration_events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        meta_events = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert len(duration_events) == 3
        assert meta_events and meta_events[0]["name"] == "process_name"
        root = next(e for e in duration_events if e["name"] == "root")
        assert root["ts"] == pytest.approx(10.0 * 1e6)
        assert root["dur"] == pytest.approx(0.10 * 1e6)
        assert "span_id" in root["args"]
        assert doc["otherData"]["counters"] == {"cache.demo.hits": 3}
        json.dumps(doc)  # must be JSON-serialisable as-is

    def test_round_trip_preserves_tree(self, tmp_path):
        spans = make_spans()
        path = str(tmp_path / "trace.json")
        write_chrome_trace(path, spans)
        loaded = load_trace_file(path)
        assert {s["name"] for s in loaded} == {"root", "child_a", "child_b"}
        by_name = {s["name"]: s for s in loaded}
        assert by_name["child_a"]["parent_id"] == by_name["root"]["span_id"]
        assert by_name["child_a"]["attrs"]["cost"] == 1
        assert abs(by_name["root"]["end"] - by_name["root"]["start"] - 0.10) < 1e-6


class TestOtherLoaders:
    def test_jsonl_round_trip(self, tmp_path):
        spans = make_spans()
        path = str(tmp_path / "spans.jsonl")
        write_jsonl(path, spans)
        assert load_trace_file(path) == spans

    def test_spans_document_and_bare_list(self, tmp_path):
        spans = make_spans()
        doc_path = str(tmp_path / "doc.json")
        with open(doc_path, "w") as handle:
            json.dump({"spans": spans}, handle)
        assert load_trace_file(doc_path) == spans
        list_path = str(tmp_path / "list.json")
        with open(list_path, "w") as handle:
            json.dump(spans, handle)
        assert load_trace_file(list_path) == spans


class TestAnalysis:
    def test_self_times_subtracts_children(self):
        by_name = {span["name"]: t for span, t in self_times(make_spans())}
        assert abs(by_name["root"] - 0.05) < 1e-6       # 100 - 30 - 20 ms
        assert abs(by_name["child_a"] - 0.03) < 1e-6    # leaf: self == duration
        assert abs(by_name["child_b"] - 0.02) < 1e-6

    def test_top_spans_orders_by_self_time(self):
        ranked = top_spans(make_spans(), n=2)
        assert [span["name"] for span, _ in ranked] == ["root", "child_a"]

    def test_format_tree_indents_children(self):
        text = format_tree(make_spans())
        lines = text.splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  child_a")
        assert "[cost=1]" in lines[1]
        assert lines[2].startswith("  child_b")

"""Unit tests for :mod:`repro.obs.counters` — the unified counter registry."""

from repro.obs.counters import COUNTERS, CounterRegistry, hit_rate


class TestCounterRegistry:
    def test_inc_and_get(self):
        registry = CounterRegistry()
        registry.inc("a.hits")
        registry.inc("a.hits", 4)
        assert registry.get("a.hits") == 5
        assert registry.get("never.touched") == 0

    def test_snapshot_merges_providers(self):
        registry = CounterRegistry()
        registry.inc("pushed", 3)
        registry.register_provider("cache.demo", lambda: {"hits": 7, "misses": 2})
        snap = registry.snapshot()
        assert snap["pushed"] == 3
        assert snap["cache.demo.hits"] == 7
        assert snap["cache.demo.misses"] == 2

    def test_provider_exceptions_are_swallowed(self):
        registry = CounterRegistry()

        def broken():
            raise RuntimeError("provider died")

        registry.register_provider("bad", broken)
        registry.inc("ok")
        assert registry.snapshot()["ok"] == 1

    def test_reset_clears_pushed_only(self):
        registry = CounterRegistry()
        registry.inc("pushed")
        registry.register_provider("pull", lambda: {"value": 9})
        registry.reset()
        snap = registry.snapshot()
        assert "pushed" not in snap
        assert snap["pull.value"] == 9

    def test_hit_rate_helper(self):
        snap = {"c.hits": 3, "c.misses": 1, "d.hits": 0, "d.misses": 0}
        assert hit_rate(snap, "c") == 0.75
        assert hit_rate(snap, "d") == 0.0
        assert hit_rate(snap, "absent") is None


class TestGlobalRegistry:
    def test_repo_caches_register_providers(self):
        # Importing the instrumented modules registers their pull-providers, so the
        # global snapshot exposes the unified cache counter families after one compile.
        from repro import QuantumCircuit, Target, transpile

        circuit = QuantumCircuit(3, name="ghz3")
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        transpile(circuit, Target.from_topology("linear", 3), level="O1", routing="sabre")

        snap = COUNTERS.snapshot()
        for prefix in ("cache.commutation.", "cache.gate_matrix.", "cache.kak_memo."):
            assert any(name.startswith(prefix) for name in snap), prefix
        assert snap.get("routing.swaps_inserted", 0) >= 0

"""Unit tests for :mod:`repro.obs.tracer` — spans, parenting, propagation, env toggle."""

import pytest

from repro.obs import tracer as tracer_mod
from repro.obs.tracer import (
    Span,
    Tracer,
    active_tracer,
    current_tracer,
    env_trace_path,
    format_traceparent,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    set_tracer,
    use_tracer,
)


@pytest.fixture(autouse=True)
def _clean_ambient():
    """Every test starts and ends with no ambient tracer and no memoised env tracer."""
    set_tracer(None)
    tracer_mod._reset_env_tracer_for_tests()
    yield
    set_tracer(None)
    tracer_mod._reset_env_tracer_for_tests()


class TestIds:
    def test_trace_id_is_32_hex(self):
        tid = new_trace_id()
        assert len(tid) == 32
        int(tid, 16)

    def test_span_id_is_16_hex(self):
        sid = new_span_id()
        assert len(sid) == 16
        int(sid, 16)

    def test_ids_are_unique(self):
        assert len({new_span_id() for _ in range(64)}) == 64


class TestTraceparent:
    def test_round_trip(self):
        tid, sid = new_trace_id(), new_span_id()
        ctx = parse_traceparent(format_traceparent(tid, sid))
        assert ctx == {"trace_id": tid, "parent_id": sid}

    @pytest.mark.parametrize(
        "header",
        [
            None,
            "",
            "garbage",
            "00-short-abcdef1234567890-01",               # bad trace id length
            "00-" + "a" * 32 + "-zzzzzzzzzzzzzzzz-01",    # non-hex span id
            "00-" + "g" * 32 + "-" + "a" * 16 + "-01",    # non-hex trace id
            "00-" + "a" * 32 + "-" + "a" * 16,            # missing flags part
        ],
    )
    def test_rejects_malformed(self, header):
        assert parse_traceparent(header) is None


class TestSpan:
    def test_lifecycle_and_dict_round_trip(self):
        span = Span(trace_id=new_trace_id(), span_id=new_span_id(), name="work",
                    parent_id=None, process="test")
        span.set("answer", 42)
        span.finish()
        assert span.duration >= 0.0
        clone = Span.from_dict(span.to_dict())
        assert clone.to_dict() == span.to_dict()
        assert clone.attrs["answer"] == 42

    def test_spans_started_counter_increments(self):
        before = tracer_mod.SPANS_STARTED
        tracer = Tracer()
        with tracer.span("a"):
            pass
        assert tracer_mod.SPANS_STARTED == before + 1


class TestTracer:
    def test_stack_parenting(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        names = {span.name: span for span in tracer.finished}
        assert names["outer"].parent_id is None
        assert names["inner"].parent_id == names["outer"].span_id

    def test_span_records_exception_as_attrs(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("broken"):
                raise RuntimeError("boom")
        (span,) = tracer.finished
        assert span.attrs["error"].startswith("RuntimeError")
        assert "boom" in span.attrs["error"]

    def test_end_span_pops_abandoned_children(self):
        tracer = Tracer()
        outer = tracer.start_span("outer")
        tracer.start_span("abandoned")
        tracer.end_span(outer)
        assert all(span.end is not None for span in tracer.finished)

    def test_span_dicts_since(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        mark = len(tracer.finished)
        with tracer.span("second"):
            pass
        assert [d["name"] for d in tracer.span_dicts(since=mark)] == ["second"]

    def test_explicit_parent_record(self):
        tracer = Tracer(trace_id="ab" * 16, parent_id="cd" * 8, process="worker")
        with tracer.span("root"):
            pass
        (span,) = tracer.finished
        assert span.trace_id == "ab" * 16
        assert span.parent_id == "cd" * 8
        assert span.process == "worker"


class TestAmbient:
    def test_default_is_noop(self):
        assert current_tracer() is None
        assert active_tracer() is None

    def test_use_tracer_restores(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert current_tracer() is tracer
        assert current_tracer() is None

    def test_set_tracer(self):
        tracer = Tracer()
        set_tracer(tracer)
        assert current_tracer() is tracer


class TestEnvToggle:
    def test_repro_trace_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        tracer_mod._reset_env_tracer_for_tests()
        tracer = active_tracer()
        assert tracer is not None
        assert active_tracer() is tracer  # memoised — same instance every call
        assert env_trace_path() is None   # "1" is a toggle, not a path

    @pytest.mark.parametrize("value", ["", "0", "false", "no", "off"])
    def test_falsey_values_stay_off(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_TRACE", value)
        tracer_mod._reset_env_tracer_for_tests()
        assert active_tracer() is None

    def test_json_value_doubles_as_export_path(self, monkeypatch, tmp_path):
        out = str(tmp_path / "trace.json")
        monkeypatch.setenv("REPRO_TRACE", out)
        tracer_mod._reset_env_tracer_for_tests()
        assert active_tracer() is not None
        assert env_trace_path() == out

    def test_explicit_tracer_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        tracer_mod._reset_env_tracer_for_tests()
        mine = Tracer()
        with use_tracer(mine):
            assert active_tracer() is mine

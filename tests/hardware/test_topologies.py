"""Tests for the paper's device topologies."""

import pytest

from repro.hardware import (
    fully_connected_coupling_map,
    get_topology,
    grid_coupling_map,
    heavy_hex_coupling_map,
    linear_coupling_map,
    montreal_coupling_map,
)


class TestMontreal:
    def test_qubit_and_edge_count(self):
        cmap = montreal_coupling_map()
        assert cmap.num_qubits == 27
        assert len(cmap.edges) == 28

    def test_heavy_hex_degree_bound(self):
        # Heavy-hex lattices have maximum degree 3.
        cmap = montreal_coupling_map()
        assert max(cmap.degree(q) for q in range(cmap.num_qubits)) == 3

    def test_connected(self):
        assert montreal_coupling_map().is_fully_connected_graph()

    def test_heavy_hex_alias(self):
        assert heavy_hex_coupling_map().num_qubits == 27
        with pytest.raises(NotImplementedError):
            heavy_hex_coupling_map(distance=5)


class TestLinearAndGrid:
    def test_linear_default_is_25_qubits(self):
        cmap = linear_coupling_map()
        assert cmap.num_qubits == 25
        assert len(cmap.edges) == 24
        assert cmap.diameter() == 24

    def test_grid_default_is_5x5(self):
        cmap = grid_coupling_map()
        assert cmap.num_qubits == 25
        assert len(cmap.edges) == 2 * 5 * 4  # 40 edges in a 5x5 grid
        assert cmap.diameter() == 8

    def test_grid_rectangular(self):
        cmap = grid_coupling_map(2, 3)
        assert cmap.num_qubits == 6
        assert cmap.is_connected(0, 3)
        assert not cmap.is_connected(0, 4)

    def test_fully_connected(self):
        cmap = fully_connected_coupling_map(6)
        assert len(cmap.edges) == 15
        assert cmap.diameter() == 1


class TestGetTopology:
    @pytest.mark.parametrize("name,qubits", [("montreal", 27), ("linear", 25), ("grid", 25)])
    def test_lookup(self, name, qubits):
        assert get_topology(name, 25).num_qubits == qubits

    def test_full_lookup(self):
        assert get_topology("full", 7).num_qubits == 7

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            get_topology("torus")

"""Tests for coupling maps and distance matrices."""

import numpy as np
import pytest

from repro.exceptions import CouplingError
from repro.hardware import CouplingMap, linear_coupling_map


class TestCouplingMap:
    def test_edges_are_normalised_and_deduplicated(self):
        cmap = CouplingMap([(1, 0), (0, 1), (1, 2)])
        assert cmap.edges == ((0, 1), (1, 2))
        assert cmap.num_qubits == 3

    def test_neighbors_and_degree(self):
        cmap = linear_coupling_map(4)
        assert cmap.neighbors(0) == [1]
        assert cmap.neighbors(1) == [0, 2]
        assert cmap.degree(1) == 2

    def test_is_connected(self):
        cmap = linear_coupling_map(4)
        assert cmap.is_connected(1, 2)
        assert cmap.is_connected(2, 1)
        assert not cmap.is_connected(0, 2)

    def test_self_loop_rejected(self):
        with pytest.raises(CouplingError):
            CouplingMap([(0, 0)])

    def test_num_qubits_too_small_rejected(self):
        with pytest.raises(CouplingError):
            CouplingMap([(0, 5)], num_qubits=3)

    def test_out_of_range_query_rejected(self):
        cmap = linear_coupling_map(3)
        with pytest.raises(CouplingError):
            cmap.neighbors(7)

    def test_isolated_qubits_allowed(self):
        cmap = CouplingMap([(0, 1)], num_qubits=4)
        assert cmap.degree(3) == 0
        assert not cmap.is_fully_connected_graph()


class TestDistances:
    def test_linear_distances(self):
        cmap = linear_coupling_map(5)
        dist = cmap.distance_matrix()
        assert dist[0, 4] == 4
        assert dist[2, 2] == 0
        assert np.allclose(dist, dist.T)

    def test_distance_method(self):
        cmap = linear_coupling_map(5)
        assert cmap.distance(0, 3) == 3

    def test_diameter(self):
        assert linear_coupling_map(6).diameter() == 5

    def test_shortest_path_endpoints_and_adjacency(self):
        cmap = linear_coupling_map(6)
        path = cmap.shortest_path(0, 4)
        assert path[0] == 0 and path[-1] == 4
        assert len(path) == 5
        for a, b in zip(path, path[1:]):
            assert cmap.is_connected(a, b)

    def test_shortest_path_same_qubit(self):
        assert linear_coupling_map(3).shortest_path(1, 1) == [1]

    def test_shortest_path_disconnected_raises(self):
        cmap = CouplingMap([(0, 1)], num_qubits=4)
        with pytest.raises(CouplingError):
            cmap.shortest_path(0, 3)

    def test_distance_matrix_cached(self):
        cmap = linear_coupling_map(4)
        assert cmap.distance_matrix() is cmap.distance_matrix()

"""Edge cases for the distance-matrix builders and calibration completeness checks."""

import numpy as np
import pytest

from repro.exceptions import CalibrationError
from repro.hardware import (
    CouplingMap,
    hop_distance_matrix,
    linear_coupling_map,
    noise_aware_distance_matrix,
    swap_duration_on_edge,
    synthetic_calibration,
)
from repro.hardware.calibration import DEFAULT_MEASURE_DURATION, DeviceCalibration
from repro.hardware.noise_distance import duration_distance_matrix


class TestEdgeCases:
    def test_empty_calibration_no_edges(self):
        """A device with qubits but no links: only the diagonal is reachable."""
        coupling = CouplingMap([], num_qubits=3)
        calibration = DeviceCalibration(coupling_map=coupling)
        matrix = noise_aware_distance_matrix(calibration)
        assert matrix.shape == (3, 3)
        assert np.all(np.diag(matrix) == 0.0)
        off_diagonal = matrix[~np.eye(3, dtype=bool)]
        assert np.all(np.isinf(off_diagonal))

    def test_single_edge_coupling(self):
        coupling = CouplingMap([(0, 1)])
        calibration = synthetic_calibration(coupling, seed=5)
        matrix = noise_aware_distance_matrix(calibration)
        assert matrix.shape == (2, 2)
        assert matrix[0, 0] == matrix[1, 1] == 0.0
        # With a single edge both normalised terms are 1, so the weight is alpha1+alpha3.
        assert matrix[0, 1] == pytest.approx(1.0)
        assert matrix[0, 1] == matrix[1, 0]

    def test_disconnected_coupling_map(self):
        """Two components: cross-component distances stay infinite, not garbage."""
        coupling = CouplingMap([(0, 1), (2, 3)], num_qubits=4)
        calibration = synthetic_calibration(coupling, seed=5)
        matrix = noise_aware_distance_matrix(calibration)
        assert np.isfinite(matrix[0, 1]) and np.isfinite(matrix[2, 3])
        for a in (0, 1):
            for b in (2, 3):
                assert np.isinf(matrix[a, b])
                assert np.isinf(matrix[b, a])

    def test_hop_matrix_copy_is_private(self):
        coupling = linear_coupling_map(4)
        matrix = hop_distance_matrix(coupling)
        matrix[0, 1] = 99.0
        assert hop_distance_matrix(coupling)[0, 1] == 1.0


class TestDurationDistance:
    def test_reduces_to_hops_when_alpha_zero(self):
        coupling = linear_coupling_map(6)
        calibration = synthetic_calibration(coupling, seed=2)
        matrix = duration_distance_matrix(calibration, alpha_duration=0.0)
        np.testing.assert_allclose(matrix, hop_distance_matrix(coupling))

    def test_slow_link_costs_more(self):
        coupling = linear_coupling_map(3)
        calibration = synthetic_calibration(coupling, seed=2)
        calibration.cx_duration[(0, 1)] = 1.0e-6
        calibration.cx_duration[(1, 2)] = 2.0e-7
        matrix = duration_distance_matrix(calibration, alpha_duration=0.5)
        assert matrix[0, 1] > matrix[1, 2]

    def test_symmetric_and_metric(self):
        coupling = linear_coupling_map(8)
        calibration = synthetic_calibration(coupling, seed=9)
        matrix = duration_distance_matrix(calibration)
        np.testing.assert_allclose(matrix, matrix.T)
        num = coupling.num_qubits
        for i in range(num):
            for j in range(num):
                for k in range(num):
                    assert matrix[i, j] <= matrix[i, k] + matrix[k, j] + 1e-12

    def test_swap_duration_is_three_cx(self):
        coupling = linear_coupling_map(3)
        calibration = synthetic_calibration(coupling, seed=1)
        assert swap_duration_on_edge(calibration, 1, 0) == pytest.approx(
            3.0 * calibration.cx_gate_time(0, 1)
        )


class TestValidateFor:
    def test_complete_calibration_passes(self):
        coupling = linear_coupling_map(5)
        synthetic_calibration(coupling, seed=0).validate_for(coupling)

    def test_missing_edge_listed(self):
        coupling = linear_coupling_map(5)
        calibration = synthetic_calibration(coupling, seed=0)
        del calibration.cx_duration[(2, 3)]
        with pytest.raises(CalibrationError, match=r"\(2, 3\)"):
            calibration.validate_for(coupling)

    def test_missing_qubit_listed(self):
        coupling = linear_coupling_map(5)
        calibration = synthetic_calibration(coupling, seed=0)
        del calibration.single_qubit_duration[4]
        with pytest.raises(CalibrationError, match="single_qubit_duration"):
            calibration.validate_for(coupling)

    def test_all_problems_reported_at_once(self):
        coupling = linear_coupling_map(4)
        calibration = DeviceCalibration(coupling_map=coupling)
        with pytest.raises(CalibrationError) as excinfo:
            calibration.validate_for(coupling)
        message = str(excinfo.value)
        assert "cx_duration" in message and "single_qubit_duration" in message

    def test_measure_duration_defaults(self):
        coupling = linear_coupling_map(3)
        calibration = DeviceCalibration(coupling_map=coupling)
        assert calibration.measure_duration_for(0) == DEFAULT_MEASURE_DURATION
        calibration.measure_duration[0] = 1.5e-6
        assert calibration.measure_duration_for(0) == 1.5e-6
        assert calibration.measure_duration_for(1) == DEFAULT_MEASURE_DURATION

"""Tests for the Target device description: immutability, round trips, lazy analysis."""

import dataclasses
import json

import numpy as np
import pytest

from repro.exceptions import ReproError
from repro.hardware import (
    Target,
    fake_montreal_calibration,
    linear_coupling_map,
    montreal_coupling_map,
    noise_aware_distance_matrix,
)


class TestConstruction:
    def test_name_and_qubits_derived_from_coupling(self):
        target = Target(coupling_map=montreal_coupling_map())
        assert target.name == "ibmq_montreal"
        assert target.num_qubits == 27
        assert target.has_coupling and not target.has_calibration

    def test_abstract_target(self):
        target = Target()
        assert target.name == "abstract"
        assert target.num_qubits is None
        assert not target.has_coupling

    def test_calibration_provides_coupling_map(self):
        calibration = fake_montreal_calibration()
        target = Target(calibration=calibration)
        assert target.coupling_map is calibration.coupling_map
        assert target.num_qubits == 27

    def test_from_topology(self):
        target = Target.from_topology("linear", 7, calibrated=True, final_basis="u")
        assert target.num_qubits == 7
        assert target.has_calibration
        assert target.final_basis == "u"
        # Deterministic synthetic calibration: same topology+seed, same data.
        again = Target.from_topology("linear", 7, calibrated=True, final_basis="u")
        assert target == again

    def test_immutable(self):
        target = Target(coupling_map=linear_coupling_map(5))
        with pytest.raises(dataclasses.FrozenInstanceError):
            target.final_basis = "u"
        with pytest.raises(dataclasses.FrozenInstanceError):
            target.coupling_map = None


class TestDerivedData:
    def test_distance_matrix_requires_coupling(self):
        with pytest.raises(ReproError):
            Target().distance_matrix()

    def test_noise_distance_requires_calibration(self):
        with pytest.raises(ReproError):
            Target(coupling_map=linear_coupling_map(5)).noise_distance_matrix()

    def test_noise_distance_matches_standalone_builder(self):
        calibration = fake_montreal_calibration()
        target = Target(calibration=calibration)
        np.testing.assert_allclose(
            target.noise_distance_matrix(), noise_aware_distance_matrix(calibration)
        )

    def test_noise_distance_memoised(self):
        target = Target(calibration=fake_montreal_calibration())
        first = target.noise_distance_matrix()
        assert target.noise_distance_matrix() is first


class TestSerialization:
    def test_round_trip_uncalibrated(self):
        target = Target(coupling_map=linear_coupling_map(6), final_basis="u")
        clone = Target.from_dict(json.loads(json.dumps(target.to_dict())))
        assert clone == target
        assert clone.fingerprint() == target.fingerprint()
        assert clone.num_qubits == 6

    def test_round_trip_calibrated(self):
        target = Target.from_topology("montreal", calibrated=True)
        clone = Target.from_dict(json.loads(json.dumps(target.to_dict())))
        assert clone == target
        assert clone.has_calibration
        np.testing.assert_allclose(
            clone.noise_distance_matrix(), target.noise_distance_matrix()
        )

    def test_fingerprint_sensitive_to_device_fields(self):
        base = Target(coupling_map=linear_coupling_map(6))
        assert base.fingerprint() != Target(coupling_map=linear_coupling_map(7)).fingerprint()
        assert (
            base.fingerprint()
            != Target(coupling_map=linear_coupling_map(6), final_basis="u").fingerprint()
        )
        calibrated = Target.from_topology("linear", 6, calibrated=True)
        assert base.fingerprint() != calibrated.fingerprint()

    def test_display_name_not_part_of_content(self):
        """`name` is display-only: it must not affect equality or the fingerprint."""
        coupling = linear_coupling_map(6)
        a = Target(coupling_map=coupling, name="devA")
        b = Target(coupling_map=coupling, name="devB")
        assert a == b
        assert a.fingerprint() == b.fingerprint()
        assert "name" not in a.content_dict()
        assert a.to_dict()["name"] == "devA"  # still serialised for display

    def test_memoised_matrix_not_part_of_equality(self):
        a = Target(calibration=fake_montreal_calibration())
        b = Target(calibration=fake_montreal_calibration())
        a.noise_distance_matrix()  # warm a's cache only
        assert a == b
        assert hash(a) == hash(b)

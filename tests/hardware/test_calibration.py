"""Tests for synthetic calibration data and the noise-aware (HA) distance matrix."""

import numpy as np
import pytest

from repro.hardware import (
    fake_montreal_calibration,
    hop_distance_matrix,
    linear_coupling_map,
    montreal_coupling_map,
    noise_aware_distance_matrix,
    swap_error_on_edge,
    synthetic_calibration,
)


class TestSyntheticCalibration:
    def test_every_edge_and_qubit_covered(self):
        cmap = montreal_coupling_map()
        calib = synthetic_calibration(cmap, seed=3)
        assert set(calib.cx_error) == set(cmap.edges)
        assert set(calib.readout_error) == set(range(cmap.num_qubits))

    def test_deterministic_for_a_seed(self):
        cmap = linear_coupling_map(5)
        a = synthetic_calibration(cmap, seed=11)
        b = synthetic_calibration(cmap, seed=11)
        assert a.cx_error == b.cx_error
        assert a.readout_error == b.readout_error

    def test_value_ranges(self):
        calib = fake_montreal_calibration()
        assert all(6e-3 <= v <= 1.5e-2 for v in calib.cx_error.values())
        assert all(2e-4 <= v <= 5e-4 for v in calib.single_qubit_error.values())
        assert all(1e-2 <= v <= 3e-2 for v in calib.readout_error.values())

    def test_cx_error_symmetric_lookup(self):
        calib = fake_montreal_calibration()
        a, b = calib.coupling_map.edges[0]
        assert calib.cx_error_rate(a, b) == calib.cx_error_rate(b, a)

    def test_gate_error_dispatch(self):
        calib = fake_montreal_calibration()
        a, b = calib.coupling_map.edges[0]
        assert calib.gate_error("cx", (a, b)) == calib.cx_error_rate(a, b)
        assert calib.gate_error("x", (a,)) == calib.single_qubit_error[a]

    def test_best_qubit(self):
        calib = fake_montreal_calibration()
        best = calib.best_qubit()
        assert calib.readout_error[best] == min(calib.readout_error.values())

    def test_swap_error_larger_than_cx_error(self):
        calib = fake_montreal_calibration()
        a, b = calib.coupling_map.edges[0]
        assert swap_error_on_edge(calib, a, b) > calib.cx_error_rate(a, b)


class TestNoiseAwareDistance:
    def test_shape_and_zero_diagonal(self):
        calib = fake_montreal_calibration()
        matrix = noise_aware_distance_matrix(calib)
        assert matrix.shape == (27, 27)
        assert np.allclose(np.diag(matrix), 0.0)

    def test_symmetric(self):
        calib = fake_montreal_calibration()
        matrix = noise_aware_distance_matrix(calib)
        assert np.allclose(matrix, matrix.T)

    def test_pure_hop_weights_recover_hop_distance(self):
        calib = synthetic_calibration(linear_coupling_map(6), seed=1)
        matrix = noise_aware_distance_matrix(calib, alpha1=0.0, alpha2=0.0, alpha3=1.0)
        assert np.allclose(matrix, hop_distance_matrix(calib.coupling_map))

    def test_error_term_orders_links(self):
        cmap = linear_coupling_map(3)
        calib = synthetic_calibration(cmap, seed=5)
        # Make link (0,1) much noisier than (1,2).
        calib.cx_error[(0, 1)] = 0.05
        calib.cx_error[(1, 2)] = 0.001
        matrix = noise_aware_distance_matrix(calib, alpha1=1.0, alpha2=0.0, alpha3=0.0)
        assert matrix[0, 1] > matrix[1, 2]

    def test_monotone_under_paths(self):
        calib = fake_montreal_calibration()
        matrix = noise_aware_distance_matrix(calib)
        hop = hop_distance_matrix(calib.coupling_map)
        # Farther (in hops) pairs should on average have larger noise-aware distance.
        far = matrix[hop == hop.max()].mean()
        near = matrix[hop == 1].mean()
        assert far > near

"""Tests for the benchmark circuit generators."""

import numpy as np
import pytest

from repro.benchlib import (
    REVLIB_SPECS,
    adder_n10,
    apply_mcx,
    bernstein_vazirani,
    bv_n19,
    cuccaro_adder,
    get_benchmark,
    grover,
    grover_n4,
    grover_n6,
    mct_network,
    multiplier,
    multiplier_n25,
    noise_benchmarks,
    qft,
    qpe,
    revlib_benchmark,
    table_benchmarks,
    vqe_ansatz,
)
from repro.circuit import QuantumCircuit
from repro.exceptions import CircuitError
from repro.simulator import StatevectorSimulator


SIM = StatevectorSimulator()


def most_likely(circuit, measured=None):
    counts = SIM.sample_counts(circuit, shots=2048, seed=0, measured_qubits=measured)
    return max(counts, key=counts.get)


class TestMCX:
    def test_two_controls_is_toffoli(self):
        circuit = QuantumCircuit(3)
        apply_mcx(circuit, [0, 1], 2)
        assert circuit.count_ops() == {"ccx": 1}

    def test_three_controls_with_ancilla(self):
        circuit = QuantumCircuit(5)
        for q in range(3):
            circuit.x(q)
        apply_mcx(circuit, [0, 1, 2], 3, ancillas=[4])
        state = SIM.run(circuit)
        assert abs(state[0b01111]) == pytest.approx(1.0)  # target flipped, ancilla restored

    def test_three_controls_not_all_set(self):
        circuit = QuantumCircuit(5)
        circuit.x(0)
        circuit.x(1)
        apply_mcx(circuit, [0, 1, 2], 3, ancillas=[4])
        state = SIM.run(circuit)
        assert abs(state[0b00011]) == pytest.approx(1.0)  # target unchanged

    def test_missing_ancillas_rejected(self):
        circuit = QuantumCircuit(4)
        with pytest.raises(CircuitError):
            apply_mcx(circuit, [0, 1, 2], 3)


class TestGrover:
    @pytest.mark.parametrize("num_qubits", [4, 6])
    def test_sizes(self, num_qubits):
        circuit = grover(num_qubits)
        assert circuit.num_qubits == num_qubits
        assert circuit.cx_count() == 0  # only ccx/h/x before decomposition
        assert circuit.count_gate("ccx") > 0

    def test_amplifies_marked_state(self):
        circuit = grover_n4()
        search = 3  # 3 search qubits for the 4-qubit instance
        counts = SIM.sample_counts(circuit, shots=4096, seed=1, measured_qubits=list(range(search)))
        assert max(counts, key=counts.get) == "1" * search
        assert counts["1" * search] / 4096 > 0.7

    def test_iterations_override(self):
        assert grover(4, iterations=1).size() < grover(4, iterations=3).size()


class TestVQE:
    def test_cx_count_matches_paper(self):
        assert vqe_ansatz(8).cx_count() == 84
        assert vqe_ansatz(12).cx_count() == 198

    def test_parameters_are_seeded(self):
        a = vqe_ansatz(6, seed=3)
        b = vqe_ansatz(6, seed=3)
        assert [i.gate.params for i in a.data] == [i.gate.params for i in b.data]


class TestBV:
    def test_cx_count_equals_secret_weight(self):
        assert bv_n19().cx_count() == 18
        assert bernstein_vazirani(6, secret=[1, 0, 1, 0, 1]).cx_count() == 3

    def test_recovers_secret(self):
        secret = [1, 0, 1, 1]
        circuit = bernstein_vazirani(5, secret=secret)
        outcome = most_likely(circuit, measured=list(range(4)))
        assert outcome == "".join(str(b) for b in reversed(secret))


class TestQFTQPE:
    def test_qft_gate_counts(self):
        circuit = qft(5)
        assert circuit.count_gate("h") == 5
        assert circuit.count_gate("cp") == 10

    def test_qft_unitary_matches_dft(self):
        n = 3
        circuit = qft(n, do_swaps=True)
        matrix = circuit.to_matrix()
        dim = 2 ** n
        dft = np.array(
            [[np.exp(2j * np.pi * i * j / dim) for j in range(dim)] for i in range(dim)]
        ) / np.sqrt(dim)
        assert np.allclose(matrix, dft, atol=1e-9)

    def test_qft_inverse_is_identity(self):
        circuit = qft(4).compose(qft(4).inverse())
        assert np.allclose(circuit.to_matrix(), np.eye(16), atol=1e-9)

    def test_qpe_estimates_phase(self):
        # phase 1/4 is exactly representable with 3 counting qubits -> counting register = 010.
        circuit = qpe(3, phase=0.25)
        outcome = most_likely(circuit, measured=[0, 1, 2])
        assert outcome == "010"

    def test_qpe_qubit_count(self):
        assert qpe(8).num_qubits == 9


class TestArithmetic:
    def test_adder_n10_size(self):
        circuit = adder_n10()
        assert circuit.num_qubits == 10
        assert circuit.count_gate("ccx") > 0

    @pytest.mark.parametrize("a,b", [(0, 0), (1, 2), (3, 3), (2, 1)])
    def test_cuccaro_adder_adds(self, a, b):
        bits = 2
        circuit = QuantumCircuit(2 * bits + 2)
        a_qubits = [1 + 2 * i for i in range(bits)]
        b_qubits = [2 + 2 * i for i in range(bits)]
        for i in range(bits):
            if (a >> i) & 1:
                circuit.x(a_qubits[i])
            if (b >> i) & 1:
                circuit.x(b_qubits[i])
        adder = cuccaro_adder(bits)
        combined = circuit.compose(adder)
        state = SIM.run(combined)
        outcome = int(np.argmax(np.abs(state)))
        result_bits = [(outcome >> q) & 1 for q in b_qubits]
        carry = (outcome >> (2 * bits + 1)) & 1
        total = sum(bit << i for i, bit in enumerate(result_bits)) + (carry << bits)
        assert total == a + b

    def test_multiplier_is_carryless_product(self):
        bits = 2
        circuit = QuantumCircuit(4 * bits + 1)
        a_val, b_val = 0b11, 0b10
        for i in range(bits):
            if (a_val >> i) & 1:
                circuit.x(i)
            if (b_val >> i) & 1:
                circuit.x(bits + i)
        combined = circuit.compose(multiplier(bits))
        state = SIM.run(combined)
        outcome = int(np.argmax(np.abs(state)))
        product = 0
        for j in range(2 * bits):
            product |= ((outcome >> (2 * bits + j)) & 1) << j
        # Carry-less product of 0b11 and 0b10 is 0b110.
        assert product == 0b110

    def test_multiplier_n25_shape(self):
        circuit = multiplier_n25()
        assert circuit.num_qubits == 25
        assert circuit.count_gate("ccx") == 36


class TestRevLib:
    def test_specs_cover_paper_benchmarks(self):
        assert {"sqn_258", "rd84_253", "co14_215", "sym9_193"} <= set(REVLIB_SPECS)

    def test_scaled_cnot_volume(self):
        circuit = revlib_benchmark("sqn_258", scale=0.1)
        from repro.core import optimize_logical
        # The MCT network's CX volume (after ccx decomposition) should be near 10% of 4459.
        from repro.transpiler import PassManager
        from repro.transpiler.passes import Decompose
        decomposed = PassManager([Decompose()]).run(circuit)
        assert 0.04 * 4459 < decomposed.cx_count() < 0.25 * 4459

    def test_deterministic(self):
        a = revlib_benchmark("rd84_253", scale=0.05)
        b = revlib_benchmark("rd84_253", scale=0.05)
        assert [i.name for i in a.data] == [i.name for i in b.data]

    def test_mct_network_gate_set(self):
        circuit = mct_network(5, 40, seed=2)
        assert set(circuit.count_ops()) <= {"x", "cx", "ccx"}


class TestSuite:
    def test_table_benchmarks_count(self):
        assert len(table_benchmarks()) == 15

    def test_qubit_filter(self):
        small = table_benchmarks(max_qubits=10)
        assert all(case.num_qubits <= 10 for case in small)

    def test_name_filter(self):
        cases = table_benchmarks(names=["grover_n4", "qft_n15"])
        assert [c.name for c in cases] == ["grover_n4", "qft_n15"]

    def test_noise_benchmarks(self):
        assert len(noise_benchmarks()) == 5

    def test_get_benchmark_builds_named_circuit(self):
        circuit = get_benchmark("adder_n10")
        assert circuit.name == "adder_n10"
        assert circuit.num_qubits == 10

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            get_benchmark("nope")

    def test_declared_qubit_counts_match_circuits(self):
        for case in table_benchmarks():
            assert case.build().num_qubits == case.num_qubits

"""Shared fixtures and helpers for the test suite."""

import numpy as np
import pytest

from repro.circuit import QuantumCircuit
from repro.hardware import grid_coupling_map, linear_coupling_map, montreal_coupling_map
from repro.synthesis import allclose_up_to_global_phase


@pytest.fixture
def linear5():
    return linear_coupling_map(5)


@pytest.fixture
def linear10():
    return linear_coupling_map(10)


@pytest.fixture
def grid9():
    return grid_coupling_map(3, 3)


@pytest.fixture
def montreal():
    return montreal_coupling_map()


def assert_unitary_equiv(circuit_a: QuantumCircuit, circuit_b: QuantumCircuit, tol: float = 1e-6):
    """Assert two circuits implement the same unitary up to a global phase."""
    mat_a = circuit_a.without_directives().to_matrix()
    mat_b = circuit_b.without_directives().to_matrix()
    assert allclose_up_to_global_phase(mat_a, mat_b, tol), "circuits are not equivalent"


def bell_pair() -> QuantumCircuit:
    circuit = QuantumCircuit(2)
    circuit.h(0)
    circuit.cx(0, 1)
    return circuit

"""Consistent-hash ring properties: uniformity, bounded remapping, determinism."""

from __future__ import annotations

import hashlib
import json
import subprocess
import sys
from collections import Counter

import pytest

from repro.fleet.ring import HashRing, _position

KEYS = [hashlib.sha256(f"job-{i}".encode()).hexdigest() for i in range(8000)]


def owner_map(ring: HashRing) -> dict:
    return {key: ring.owner(key) for key in KEYS}


class TestDistribution:
    def test_uniform_across_synthetic_fingerprints(self):
        """Per-node share stays near K/N (vnodes smooth the ring)."""
        nodes = [f"node-{i}" for i in range(4)]
        ring = HashRing(nodes)
        counts = Counter(ring.owner(key) for key in KEYS)
        assert set(counts) == set(nodes), "every node must own some keys"
        expected = len(KEYS) / len(nodes)
        for node, count in counts.items():
            assert 0.6 * expected <= count <= 1.4 * expected, (
                f"{node} owns {count} of {len(KEYS)} keys "
                f"(expected ~{expected:.0f} +/- 40%)"
            )

    def test_more_vnodes_tighten_the_spread(self):
        keys = KEYS[:4000]

        def spread(vnodes: int) -> float:
            ring = HashRing([f"n{i}" for i in range(5)], vnodes=vnodes)
            counts = Counter(ring.owner(key) for key in keys)
            expected = len(keys) / 5
            return max(abs(count - expected) for count in counts.values()) / expected

        assert spread(128) < spread(4)


class TestBoundedRemapping:
    def test_join_moves_only_to_the_new_node_and_about_k_over_n(self):
        ring = HashRing([f"node-{i}" for i in range(4)])
        before = owner_map(ring)
        ring.add("node-new")
        after = owner_map(ring)
        moved = [key for key in KEYS if before[key] != after[key]]
        # Defining property: an addition only *steals* keys — every moved key moves
        # onto the new node, nothing shuffles between the old nodes.
        assert all(after[key] == "node-new" for key in moved)
        # And it steals about K/N of them (generous factor-2 statistical margin).
        expected = len(KEYS) / 5
        assert 0 < len(moved) <= 2.0 * expected

    def test_leave_moves_only_the_departed_nodes_keys(self):
        ring = HashRing([f"node-{i}" for i in range(5)])
        before = owner_map(ring)
        ring.remove("node-2")
        after = owner_map(ring)
        moved = {key for key in KEYS if before[key] != after[key]}
        # Exactly the departed node's keys remap; everything else is untouched.
        assert moved == {key for key in KEYS if before[key] == "node-2"}
        assert all(after[key] != "node-2" for key in moved)

    def test_join_then_leave_round_trips(self):
        ring = HashRing(["a", "b", "c"])
        before = owner_map(ring)
        ring.add("d")
        ring.remove("d")
        assert owner_map(ring) == before


class TestDeterminism:
    def test_placement_is_deterministic_across_processes(self):
        """sha256 positions (not ``hash()``) make every process agree on placement."""
        nodes = ["alpha", "beta", "gamma"]
        keys = KEYS[:64]
        ring = HashRing(nodes)
        local = {key: ring.owners(key, count=2) for key in keys}
        script = (
            "import json, sys\n"
            "from repro.fleet.ring import HashRing\n"
            "nodes, keys = json.load(sys.stdin)\n"
            "ring = HashRing(nodes)\n"
            "print(json.dumps({k: ring.owners(k, count=2) for k in keys}))\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            input=json.dumps([nodes, keys]),
            capture_output=True,
            text=True,
            check=True,
        )
        assert json.loads(proc.stdout) == local

    def test_position_is_stable(self):
        # Pin the hash construction itself: a silent change here would remap every
        # fingerprint in every deployed cache tier.
        assert _position("node-0#0") == int.from_bytes(
            hashlib.sha256(b"node-0#0").digest()[:8], "big"
        )

    def test_membership_order_does_not_matter(self):
        forward = HashRing(["a", "b", "c", "d"])
        backward = HashRing(["d", "c", "b", "a"])
        assert all(
            forward.owners(key, count=3) == backward.owners(key, count=3)
            for key in KEYS[:200]
        )


class TestOwners:
    def test_owner_matches_first_of_owners(self):
        ring = HashRing(["a", "b", "c"])
        for key in KEYS[:100]:
            assert ring.owner(key) == ring.owners(key, count=2)[0]

    def test_owners_are_distinct_and_capped_by_membership(self):
        ring = HashRing(["a", "b", "c"])
        for key in KEYS[:100]:
            owners = ring.owners(key, count=10)
            assert len(owners) == 3
            assert len(set(owners)) == 3

    def test_empty_ring(self):
        ring = HashRing()
        assert ring.owner("anything") is None
        assert ring.owners("anything") == []
        assert len(ring) == 0

    def test_add_remove_idempotent(self):
        ring = HashRing(["a"])
        ring.add("a")
        assert len(ring) == 1
        ring.remove("missing")
        assert ring.nodes == frozenset({"a"})

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            HashRing(vnodes=0)
        with pytest.raises(ValueError):
            HashRing().add("")

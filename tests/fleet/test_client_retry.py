"""Client retry policy: backoff + jitter on 429 and transient connection errors."""

from __future__ import annotations

import json

import pytest

from repro.client import ReproClient, RetriesExhausted, ServerError


class ScriptedTransport:
    """Replaces ``ReproClient._raw_request`` with a canned response sequence."""

    def __init__(self, client: ReproClient, responses):
        self.responses = list(responses)
        self.calls = 0
        self.sleeps = []
        client._raw_request = self._raw_request
        client._sleep = self.sleeps.append
        client._random = lambda: 1.0  # deterministic "jitter": the full backoff

    def _raw_request(self, method, path, payload=None, *, timeout=None, extra_headers=None):
        self.calls += 1
        outcome = self.responses.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome


def ok(payload):
    return (200, json.dumps(payload).encode(), {})


def too_many(retry_after=None, body=None):
    headers = {} if retry_after is None else {"retry-after": retry_after}
    doc = body if body is not None else {"error": {"status": 429, "message": "full"}}
    return (429, json.dumps(doc).encode(), headers)


def unreachable():
    return ServerError("cannot reach transpilation server at http://x:1: refused")


class TestBackoffOn429:
    def test_retries_until_success(self):
        client = ReproClient(max_retries=3)
        transport = ScriptedTransport(client, [too_many(), too_many(), ok({"a": 1})])
        assert client._request("GET", "/v1/jobs") == {"a": 1}
        assert transport.calls == 3
        assert len(transport.sleeps) == 2

    def test_backoff_grows_exponentially(self):
        client = ReproClient(max_retries=3, backoff_base=0.25)
        transport = ScriptedTransport(client, [too_many()] * 3 + [ok({})])
        client._request("GET", "/v1/jobs")
        assert transport.sleeps == [0.25, 0.5, 1.0]

    def test_retry_after_is_a_floor_on_the_delay(self):
        client = ReproClient(max_retries=1, backoff_base=0.25)
        transport = ScriptedTransport(client, [too_many(retry_after="3"), ok({})])
        client._request("GET", "/v1/jobs")
        assert transport.sleeps == [3.0]

    def test_backoff_cap(self):
        client = ReproClient(max_retries=5, backoff_base=1.0, backoff_cap=2.0)
        transport = ScriptedTransport(client, [too_many()] * 5 + [ok({})])
        client._request("GET", "/v1/jobs")
        assert max(transport.sleeps) == 2.0

    def test_exhaustion_preserves_the_last_response(self):
        client = ReproClient(max_retries=2)
        last = {"error": {"status": 429, "message": "full", "queue_depth": 7}}
        ScriptedTransport(client, [too_many(), too_many(), too_many(body=last)])
        with pytest.raises(RetriesExhausted) as excinfo:
            client._request("POST", "/v1/jobs", {"qasm": "x"})
        error = excinfo.value
        assert error.status == 429
        assert error.attempts == 3
        assert json.loads(error.last_body) == last
        assert isinstance(error, ServerError)  # existing handlers keep working


class TestTransientConnectionErrors:
    def test_connection_error_then_success(self):
        client = ReproClient(max_retries=2)
        transport = ScriptedTransport(client, [unreachable(), ok({"b": 2})])
        assert client._request("GET", "/healthz") == {"b": 2}
        assert transport.calls == 2

    def test_exhaustion_keeps_the_cannot_reach_diagnostic(self):
        client = ReproClient(max_retries=1)
        ScriptedTransport(client, [unreachable(), unreachable()])
        with pytest.raises(RetriesExhausted) as excinfo:
            client._request("GET", "/healthz")
        assert "cannot reach" in str(excinfo.value)
        assert excinfo.value.status == 0
        assert excinfo.value.last_body == b""

    def test_mixed_429_and_connection_errors_share_one_budget(self):
        client = ReproClient(max_retries=2)
        transport = ScriptedTransport(client, [too_many(), unreachable(), too_many()])
        with pytest.raises(RetriesExhausted) as excinfo:
            client._request("GET", "/v1/jobs")
        assert transport.calls == 3
        assert excinfo.value.status == 429  # the last outcome wins


class TestNoRetry:
    def test_max_retries_zero_surfaces_the_plain_error(self):
        client = ReproClient(max_retries=0)
        transport = ScriptedTransport(client, [unreachable()])
        with pytest.raises(ServerError) as excinfo:
            client._request("GET", "/healthz")
        assert not isinstance(excinfo.value, RetriesExhausted)
        assert "cannot reach" in str(excinfo.value)
        assert transport.calls == 1
        assert transport.sleeps == []

    def test_max_retries_zero_on_429_raises_retries_exhausted_immediately(self):
        client = ReproClient(max_retries=0)
        transport = ScriptedTransport(client, [too_many()])
        with pytest.raises(ServerError) as excinfo:
            client._request("POST", "/v1/jobs", {})
        assert excinfo.value.status == 429
        assert transport.calls == 1

    def test_http_errors_other_than_429_never_retry(self):
        client = ReproClient(max_retries=3)
        body = json.dumps({"error": {"status": 404, "message": "unknown job"}}).encode()
        transport = ScriptedTransport(client, [(404, body, {})])
        with pytest.raises(ServerError) as excinfo:
            client._request("GET", "/v1/jobs/nope")
        assert excinfo.value.status == 404
        assert transport.calls == 1
        assert transport.sleeps == []

    def test_successful_requests_make_exactly_one_attempt(self):
        client = ReproClient(max_retries=3)
        transport = ScriptedTransport(client, [ok({"ok": True})])
        assert client._request("GET", "/healthz") == {"ok": True}
        assert transport.calls == 1

"""PeerCacheTier unit tests with an injected fetcher (no sockets)."""

from __future__ import annotations

import pytest

from repro.fleet.peercache import PeerCacheTier
from repro.fleet.ring import HashRing
from repro.obs.counters import COUNTERS
from repro.service.cache import ResultCache

PAYLOAD = {"qasm": "OPENQASM 2.0;", "cx_count": 3}


class RecordingFetcher:
    """Scripted peer: remembers who was asked, answers from a canned store."""

    def __init__(self, store=None, error=None):
        self.store = store or {}
        self.error = error
        self.calls = []

    def __call__(self, base_url, fingerprint, timeout):
        self.calls.append((base_url, fingerprint, timeout))
        if self.error is not None:
            raise self.error
        return self.store.get((base_url, fingerprint))


def make_tier(fetcher, *, self_node="self", replicas=2, nodes=None):
    tier = PeerCacheTier(ResultCache(), replicas=replicas, fetcher=fetcher)
    topology = nodes or {
        "self": "http://127.0.0.1:1",
        "peer-a": "http://127.0.0.1:2",
        "peer-b": "http://127.0.0.1:3",
    }
    tier.update_topology(topology, self_node=self_node)
    return tier


def counter(name: str) -> int:
    return COUNTERS.snapshot().get(name, 0)


class TestLocalTier:
    def test_local_hit_never_fetches(self):
        fetcher = RecordingFetcher()
        tier = make_tier(fetcher)
        tier.put("fp1", PAYLOAD)
        assert tier.get("fp1") == PAYLOAD
        assert fetcher.calls == []

    def test_get_local_never_fetches_even_on_miss(self):
        """The /v1/cache endpoint uses get_local — peer recursion is impossible."""
        fetcher = RecordingFetcher()
        tier = make_tier(fetcher)
        assert tier.get_local("fp-missing") is None
        assert fetcher.calls == []

    def test_delegation(self):
        tier = make_tier(RecordingFetcher())
        tier.put("fp1", PAYLOAD)
        assert tier.contains("fp1")
        assert tier.stats.hits >= 0
        tier.clear()
        assert not tier.contains("fp1")
        assert tier.disk_entries() == 0


class TestPeerFetch:
    def test_peer_hit_is_promoted_locally(self):
        ring = HashRing({"self": "", "peer-a": "", "peer-b": ""})
        fingerprint = "fp-peer-hit"
        owners = [n for n in ring.owners(fingerprint, count=3) if n != "self"]
        urls = {"peer-a": "http://127.0.0.1:2", "peer-b": "http://127.0.0.1:3"}
        fetcher = RecordingFetcher(store={(urls[owners[0]], fingerprint): PAYLOAD})
        tier = make_tier(fetcher)
        hits_before = counter("cache.peer.hits")

        assert tier.get(fingerprint) == PAYLOAD
        assert counter("cache.peer.hits") == hits_before + 1
        # Promotion: the next lookup is local, no second fetch.
        calls = len(fetcher.calls)
        assert tier.get(fingerprint) == PAYLOAD
        assert len(fetcher.calls) == calls

    def test_miss_everywhere_counts_one_peer_miss(self):
        fetcher = RecordingFetcher()
        tier = make_tier(fetcher)
        misses_before = counter("cache.peer.misses")
        assert tier.get("fp-nowhere") is None
        assert counter("cache.peer.misses") == misses_before + 1
        assert 1 <= len(fetcher.calls) <= 2  # replicas=2 peers at most

    def test_peer_error_degrades_to_recompute(self):
        fetcher = RecordingFetcher(error=ConnectionError("peer down"))
        tier = make_tier(fetcher)
        errors_before = counter("cache.peer.errors")
        assert tier.get("fp-x") is None  # caller recomputes; no exception escapes
        assert counter("cache.peer.errors") > errors_before

    def test_self_is_never_consulted(self):
        fetcher = RecordingFetcher()
        tier = make_tier(fetcher)
        for i in range(50):
            tier.get(f"fp-{i}")
        own_url = "http://127.0.0.1:1"
        assert all(base_url != own_url for base_url, _, _ in fetcher.calls)

    def test_no_topology_means_no_fetches(self):
        fetcher = RecordingFetcher()
        tier = PeerCacheTier(ResultCache(), fetcher=fetcher)
        misses_before = counter("cache.peer.misses")
        assert tier.get("fp") is None
        assert fetcher.calls == []
        # No peers were even candidates — this is not a peer-tier miss.
        assert counter("cache.peer.misses") == misses_before


class TestTopology:
    def test_peers_follow_ring_owners(self):
        tier = make_tier(RecordingFetcher(), replicas=2)
        reference = HashRing({"self": "", "peer-a": "", "peer-b": ""})
        for i in range(30):
            fingerprint = f"fp-{i}"
            expected = [
                {"peer-a": "http://127.0.0.1:2", "peer-b": "http://127.0.0.1:3"}[n]
                for n in reference.owners(fingerprint, count=3)
                if n != "self"
            ][:2]
            assert tier.peers_for(fingerprint) == expected

    def test_update_topology_replaces_membership(self):
        fetcher = RecordingFetcher()
        tier = make_tier(fetcher)
        tier.update_topology({"self": "http://127.0.0.1:1"}, self_node="self")
        assert tier.peers_for("anything") == []

    def test_replicas_can_shrink_via_gossip(self):
        tier = make_tier(RecordingFetcher(), replicas=2)
        tier.update_topology(
            {
                "self": "http://127.0.0.1:1",
                "peer-a": "http://127.0.0.1:2",
                "peer-b": "http://127.0.0.1:3",
            },
            self_node="self",
            replicas=1,
        )
        assert all(len(tier.peers_for(f"fp-{i}")) <= 1 for i in range(20))

    @pytest.mark.parametrize("replicas", [0, -3])
    def test_replicas_floor_at_one(self, replicas):
        tier = PeerCacheTier(ResultCache(), replicas=replicas, fetcher=RecordingFetcher())
        assert tier.replicas == 1

"""End-to-end fleet tests: a live coordinator plus worker nodes over real sockets.

Everything runs in one process (servers in background event-loop threads, thread
pools for execution), but all traffic crosses real TCP sockets through the real
wire protocol — exactly what `repro fleet coordinator` / `repro fleet worker`
processes would exchange.
"""

from __future__ import annotations

import asyncio
import json
import time

import pytest

from repro import QuantumCircuit, Target, TranspileOptions, transpile
from repro.circuit import qasm
from repro.client import ReproClient, ServerError
from repro.fleet import FleetCoordinator, FleetWorkerServer
from repro.fleet.ring import HashRing
from repro.obs.counters import COUNTERS
from repro.obs.tracer import Tracer, use_tracer
from repro.server.http import ThreadedServer
from repro.server.metrics import parse_metric

HEARTBEAT = 0.2


def small_circuit(name: str = "fleet3") -> QuantumCircuit:
    circuit = QuantumCircuit(3, name=name)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.cx(0, 2)
    circuit.cx(1, 2)
    return circuit


def linear_target(qubits: int = 5) -> Target:
    return Target.from_topology("linear", qubits)


def options(seed: int = 0) -> TranspileOptions:
    return TranspileOptions(routing="sabre", seed=seed)


def start_coordinator(**kwargs):
    kwargs.setdefault("port", 0)
    kwargs.setdefault("heartbeat_interval", HEARTBEAT)
    return ThreadedServer(FleetCoordinator(**kwargs)).start()

def start_worker(coordinator_url: str, node_id: str, **kwargs):
    kwargs.setdefault("port", 0)
    kwargs.setdefault("use_processes", False)
    kwargs.setdefault("max_workers", 2)
    # The 2s production default can expire under full-suite CPU contention, silently
    # degrading a peer-cache hit into a local recompute and flaking the assertions.
    kwargs.setdefault("peer_timeout", 30.0)
    worker = FleetWorkerServer(coordinator_url, node_id=node_id, **kwargs)
    return ThreadedServer(worker).start()


def wait_for(predicate, timeout: float = 10.0, interval: float = 0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def wait_for_nodes(client: ReproClient, count: int) -> None:
    assert wait_for(lambda: client.healthz().get("nodes_alive", 0) >= count), (
        f"fleet never reached {count} alive nodes: {client.healthz()}"
    )


def crash(handle: ThreadedServer) -> None:
    """Kill a worker without the graceful deregister+drain path (simulates a crash)."""
    server = handle.server

    async def _die():
        if server._heartbeat_task is not None:
            server._heartbeat_task.cancel()
        server.registered = False  # the coordinator must detect this, not be told
        if server._server is not None:
            server._server.close()

    asyncio.run_coroutine_threadsafe(_die(), handle.loop).result(timeout=5)


@pytest.fixture(scope="module")
def fleet():
    """A coordinator fronting two executing worker nodes."""
    coordinator = start_coordinator()
    workers = [start_worker(coordinator.url, f"node-{i}") for i in range(2)]
    client = ReproClient(coordinator.url, client_id="fleet-tests")
    wait_for_nodes(client, 2)
    yield {"coordinator": coordinator, "workers": workers, "client": client}
    for handle in workers:
        try:
            handle.stop(drain=False, timeout=5)
        except Exception:  # noqa: BLE001 - some tests crash workers on purpose
            pass
    coordinator.stop(timeout=5)


class TestMembership:
    def test_nodes_register_and_gossip_health(self, fleet):
        status, body, _ = _raw(fleet["coordinator"], "GET", "/fleet/v1/nodes")
        assert status == 200
        doc = json.loads(body)
        nodes = {node["id"]: node for node in doc["nodes"]}
        assert {"node-0", "node-1"} <= set(nodes)
        for node in nodes.values():
            assert node["alive"] is True
            assert node["health"]["role"] == "fleet-worker"
            assert "queue_depth" in node["health"]

    def test_coordinator_healthz_is_a_fleet_summary(self, fleet):
        payload = fleet["client"].healthz()
        assert payload["role"] == "coordinator"
        assert payload["ready"] is True
        assert payload["nodes_alive"] >= 2
        assert payload["workers"] >= 2

    def test_worker_healthz_carries_readiness_fields(self, fleet):
        worker = fleet["workers"][0]
        payload = ReproClient(worker.url).healthz()
        assert payload["ready"] is True
        assert payload["shedding"] is False
        assert payload["workers"] == 2
        assert payload["admitted_depth"] == payload["queue_depth"] + payload["in_flight"]

    def test_metadata_served_by_the_coordinator_itself(self, fleet):
        client = fleet["client"]
        methods = client.methods()
        assert any(m["name"] == "nassc" for m in methods["routing_methods"])
        assert any(t["topology"] == "linear" for t in client.targets())


class TestPlacementAndResults:
    def test_fleet_result_is_bit_identical_to_local_transpile(self, fleet):
        circuit, target = small_circuit("identical"), linear_target()
        handle = fleet["client"].submit(circuit, target, options(seed=7))
        remote = handle.result(timeout=120)
        local = transpile(circuit, target, routing="sabre", seed=7)
        assert qasm.dumps(remote.circuit) == qasm.dumps(local.circuit)
        assert handle._summary["node"] in ("node-0", "node-1")

    def test_resubmission_hits_the_affinity_nodes_cache(self, fleet):
        circuit, target = small_circuit("affinity"), linear_target()
        first = fleet["client"].submit(circuit, target, options(seed=11))
        first.result(timeout=120)
        again = fleet["client"].submit(circuit, target, options(seed=11))
        status = again.status()
        assert status["state"] == "done"
        assert status["from_cache"] is True
        assert again._summary["node"] == first._summary["node"]

    def test_placement_follows_the_public_hash_ring(self, fleet):
        """Clients can predict placement from /fleet/v1/nodes + HashRing alone."""
        doc = json.loads(_raw(fleet["coordinator"], "GET", "/fleet/v1/nodes")[1])
        ring = HashRing([node["id"] for node in doc["nodes"]], vnodes=doc["vnodes"])
        for seed in range(20, 24):
            handle = fleet["client"].submit(
                small_circuit("predict"), linear_target(), options(seed=seed)
            )
            assert handle._summary["node"] == ring.owner(handle.fingerprint)

    def test_batch_through_the_coordinator(self, fleet):
        from repro.service.jobs import TranspileJob

        jobs = [
            TranspileJob.from_circuit(
                small_circuit(f"batch{i}"), linear_target(), options(seed=30 + i)
            )
            for i in range(3)
        ]
        handles = fleet["client"].submit_batch(jobs)
        assert len(handles) == 3
        assert all(handle.result(timeout=120).cx_count > 0 for handle in handles)

    def test_events_stream_proxies_to_the_terminal_state(self, fleet):
        handle = fleet["client"].submit(
            small_circuit("events"), linear_target(), options(seed=41)
        )
        states = [event["state"] for event in handle.events()]
        assert states[-1] == "done"

    def test_trace_is_one_tree_through_the_coordinator(self, fleet):
        tracer = Tracer(process="client")
        with use_tracer(tracer):
            handle = fleet["client"].submit(
                small_circuit("traced"), linear_target(), options(seed=43)
            )
            result = handle.result(timeout=120)
        names = {span["name"] for span in result.trace}
        assert "client.submit" in names
        assert "coordinator.place" in names
        assert "server.job" in names
        assert {span["trace_id"] for span in result.trace} == {tracer.trace_id}


class TestPeerCacheTier:
    def test_off_owner_submission_is_served_by_peer_fetch(self, fleet):
        """A node that does not own a cached fingerprint fetches it from the owner
        instead of recomputing."""
        circuit, target = small_circuit("peerfetch"), linear_target()
        handle = fleet["client"].submit(circuit, target, options(seed=51))
        handle.result(timeout=120)
        owner = handle._summary["node"]
        other = next(
            w for w in fleet["workers"] if w.server.node_id != owner
        )
        hits_before = COUNTERS.snapshot().get("cache.peer.hits", 0)
        direct = ReproClient(other.url).submit(circuit, target, options(seed=51))
        status = direct.status()
        assert status["state"] == "done"
        assert status["from_cache"] is True
        assert COUNTERS.snapshot().get("cache.peer.hits", 0) == hits_before + 1
        # The peer endpoint now shows a hit on the owner's metrics page.
        owner_handle = next(
            w for w in fleet["workers"] if w.server.node_id == owner
        )
        text = ReproClient(owner_handle.url).metrics_text()
        assert parse_metric(
            text, "repro_peer_cache_requests_total", {"outcome": "hit"}
        ) >= 1


class TestFleetMetrics:
    def test_scrape_has_membership_and_placement_series(self, fleet):
        text = fleet["client"].metrics_text()
        assert parse_metric(text, "repro_fleet_nodes_alive") >= 2
        total_placed = sum(
            parse_metric(text, "repro_fleet_placements_total", {"node": node})
            for node in ("node-0", "node-1")
        )
        assert total_placed >= 1
        assert parse_metric(text, "repro_fleet_node_up", {"node": "node-0"}) in (0, 1)


class TestSheddingAndBackpressure:
    def test_saturated_fleet_sheds_with_429_and_retry_after(self):
        coordinator = start_coordinator()
        worker = start_worker(
            coordinator.url, "frozen-node", concurrency=0, queue_bound=1
        )
        client = ReproClient(coordinator.url, max_retries=0)
        try:
            wait_for_nodes(client, 1)
            client.submit(small_circuit("fill"), linear_target(), options(seed=61))
            with pytest.raises(ServerError) as excinfo:
                client.submit(small_circuit("shed"), linear_target(), options(seed=62))
            assert excinfo.value.status == 429
            # The shed and the node's gossiped saturation both show on the scrape.
            text = client.metrics_text()
            assert parse_metric(text, "repro_fleet_sheds_total") >= 1
            assert wait_for(lambda: client.healthz()["shedding"] is True), (
                "gossip never marked the fleet as shedding"
            )
        finally:
            worker.stop(drain=False, timeout=5)
            coordinator.stop(timeout=5)

    def test_client_retries_ride_out_a_transient_429(self):
        """With retries on (the default), a briefly-full queue is invisible."""
        coordinator = start_coordinator()
        worker = start_worker(coordinator.url, "burst-node", queue_bound=1)
        client = ReproClient(coordinator.url)  # default: retries with backoff
        try:
            wait_for_nodes(client, 1)
            handles = [
                client.submit(small_circuit(f"burst{i}"), linear_target(), options(seed=70 + i))
                for i in range(4)
            ]
            assert all(h.result(timeout=120).cx_count > 0 for h in handles)
        finally:
            worker.stop(drain=False, timeout=5)
            coordinator.stop(timeout=5)


class TestFailover:
    def test_graceful_stop_deregisters_the_node(self):
        coordinator = start_coordinator()
        w0 = start_worker(coordinator.url, "leaver-0")
        w1 = start_worker(coordinator.url, "leaver-1")
        client = ReproClient(coordinator.url)
        try:
            wait_for_nodes(client, 2)
            w1.stop(timeout=10)
            assert wait_for(lambda: client.healthz()["nodes"] == 1), (
                "graceful shutdown must deregister immediately, not wait for the TTL"
            )
        finally:
            w0.stop(drain=False, timeout=5)
            coordinator.stop(timeout=5)

    def test_dead_node_job_reroutes_without_client_visible_failure(self):
        coordinator = start_coordinator()
        w0 = start_worker(coordinator.url, "victim-0")
        w1 = start_worker(coordinator.url, "victim-1")
        client = ReproClient(coordinator.url, client_id="failover")
        try:
            wait_for_nodes(client, 2)
            circuit, target = small_circuit("failover"), linear_target()
            handle = client.submit(circuit, target, options(seed=81))
            handle.result(timeout=120)
            victim_id = handle._summary["node"]
            victim = w0 if w0.server.node_id == victim_id else w1
            crash(victim)
            # The same client keeps polling the same job id; the coordinator reroutes
            # to the survivor and the result is still the deterministic compile.
            status = client.job(handle.id, wait=60)
            assert status["state"] == "done"
            assert status["id"] == handle.id
            assert status["node"] != victim_id
            local = transpile(circuit, target, routing="sabre", seed=81)
            remote = handle.result(timeout=120)
            assert qasm.dumps(remote.circuit) == qasm.dumps(local.circuit)
            text = client.metrics_text()
            assert parse_metric(text, "repro_fleet_reroutes_total") >= 1
        finally:
            for handle_ in (w0, w1):
                try:
                    handle_.stop(drain=False, timeout=5)
                except Exception:  # noqa: BLE001 - the victim's loop may be dead
                    pass
            coordinator.stop(timeout=5)


def _raw(handle: ThreadedServer, method: str, path: str, body=None):
    import http.client

    connection = http.client.HTTPConnection("127.0.0.1", handle.server.port, timeout=30)
    try:
        connection.request(method, path, body=body)
        response = connection.getresponse()
        return response.status, response.read(), dict(response.getheaders())
    finally:
        connection.close()

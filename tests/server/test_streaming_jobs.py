"""Server-side streaming: ``routed_chunk`` events and the bounded event history.

Covers satellite behaviours of the streaming subsystem: a ``"stream": true``
submission runs through the streaming O0 pipeline and emits routed QASM chunks on the
NDJSON event stream; the per-job event history is a capped tail whose drops are
counted and surfaced instead of growing without bound.
"""

import json
import urllib.request

import pytest

from repro import Target, TranspileOptions, transpile
from repro.circuit import qasm, random_circuit
from repro.server import ReproServer
from repro.server.queue import JobRecord
from repro.service import TranspileJob


def start_server(**kwargs):
    kwargs.setdefault("port", 0)
    kwargs.setdefault("use_processes", False)
    kwargs.setdefault("max_workers", 2)
    return ReproServer(**kwargs).run_in_thread()


@pytest.fixture(scope="module")
def live():
    handle = start_server()
    yield handle
    handle.stop(drain=False, timeout=5)


def submit_stream(handle, payload):
    req = urllib.request.Request(
        f"{handle.url}/v1/jobs",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req) as resp:
        return json.loads(resp.read())


def read_events(handle, job_id):
    events = []
    with urllib.request.urlopen(f"{handle.url}/v1/jobs/{job_id}/events") as resp:
        for line in resp:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def stream_payload(circuit, **extra):
    payload = {
        "qasm": qasm.dumps(circuit),
        "target": {"topology": "grid", "num_qubits": 25},
        "options": {"routing": "sabre", "level": "O0", "seed": 0},
        "stream": True,
    }
    payload.update(extra)
    return payload


class TestStreamingJobs:
    def test_routed_chunks_assemble_to_in_memory_result(self, live):
        circuit = random_circuit(7, 18, seed=1)
        circuit.measure_all()
        sub = submit_stream(live, stream_payload(circuit, window_gates=64, chunk_gates=16))
        events = read_events(live, sub["id"])
        states = [event["state"] for event in events]
        assert states[0] == "queued"
        assert states[-1] == "done"
        chunks = {
            event["detail"]["seq"]: event["detail"]["qasm"]
            for event in events
            if event["state"] == "routed_chunk"
        }
        assert chunks, "streaming job produced no routed_chunk events"
        assembled = "".join(chunks[i] for i in sorted(chunks))
        ref = transpile(
            circuit,
            Target.from_topology("grid", 25),
            options=TranspileOptions(
                routing="sabre", level="O0", layout_iterations=0, seed=0
            ),
        )
        assert assembled == qasm.dumps(ref.circuit)

    def test_status_carries_streaming_summary(self, live):
        circuit = random_circuit(5, 8, seed=2)
        sub = submit_stream(live, stream_payload(circuit))
        with urllib.request.urlopen(
            f"{live.url}/v1/jobs/{sub['id']}?wait=30"
        ) as resp:
            status = json.loads(resp.read())
        assert status["state"] == "done"
        assert status["streaming"]["window_gates"] > 0
        assert status["result"]["streamed"] is True
        assert status["result"]["summary"]["num_swaps"] >= 0
        assert "dropped_events" in status

    def test_streaming_bypasses_result_cache(self, live):
        circuit = random_circuit(5, 8, seed=3)
        first = submit_stream(live, stream_payload(circuit))
        read_events(live, first["id"])  # run to completion
        second = submit_stream(live, stream_payload(circuit))
        # a cached completion would come back state=done without re-running
        assert second["from_cache"] is False
        events = read_events(live, second["id"])
        assert any(event["state"] == "routed_chunk" for event in events)


class TestBoundedEventHistory:
    def make_record(self):
        circuit = random_circuit(3, 3, seed=0)
        job = TranspileJob.from_circuit(circuit, Target(), TranspileOptions())
        return JobRecord(job)

    def test_history_is_a_capped_tail(self):
        record = self.make_record()
        for seq in range(JobRecord.MAX_EVENTS + 100):
            record.record_chunk(seq, f"chunk-{seq}\n")
        assert len(record.events) == JobRecord.MAX_EVENTS
        # the queued lifecycle event plus the oldest 100 chunks were dropped
        assert record.dropped_events == 101
        assert record.events_base == 101
        # the newest events survive; the oldest were dropped from the front
        assert record.events[-1]["detail"]["seq"] == JobRecord.MAX_EVENTS + 99
        assert record.to_dict()["dropped_events"] == 101

    def test_overflowed_stream_surfaces_drop_notice(self, live, monkeypatch):
        monkeypatch.setattr(JobRecord, "MAX_EVENTS", 16)
        circuit = random_circuit(7, 20, seed=4)
        circuit.measure_all()
        sub = submit_stream(live, stream_payload(circuit, chunk_gates=4))
        with urllib.request.urlopen(
            f"{live.url}/v1/jobs/{sub['id']}?wait=30"
        ) as resp:
            status = json.loads(resp.read())
        assert status["state"] == "done"
        assert status["dropped_events"] > 0
        # a late reader sees only the retained tail, terminal event included
        events = read_events(live, sub["id"])
        assert len(events) <= 16
        assert events[-1]["state"] == "done"

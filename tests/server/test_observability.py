"""Observability tests for the online server: trace propagation, timings, metrics.

Covers the ISSUE 6 acceptance path end-to-end: a traced remote submission must yield
ONE merged span tree — client submit → server job → queue wait → worker execution →
every pass instance — exportable as valid Chrome trace-event JSON.  Also the satellite
regressions: Prometheus label escaping with hostile values and the queued/running
seconds surfaced in job payloads.
"""

import json

import pytest

from repro import QuantumCircuit, Target, TranspileOptions, Tracer, use_tracer
from repro.obs import chrome_trace, tracer as tracer_mod
from repro.server import ReproServer
from repro.server.metrics import (
    Counter,
    LabeledHistogram,
    ServerMetrics,
    _escape_label_value,
    _labels,
    parse_metric,
)


def start_server(**kwargs):
    kwargs.setdefault("port", 0)
    kwargs.setdefault("use_processes", False)
    kwargs.setdefault("max_workers", 2)
    return ReproServer(**kwargs).run_in_thread()


@pytest.fixture(scope="module")
def live():
    handle = start_server()
    yield handle
    handle.stop(drain=False, timeout=5)


@pytest.fixture(autouse=True)
def _no_ambient_tracer():
    tracer_mod.set_tracer(None)
    tracer_mod._reset_env_tracer_for_tests()
    yield
    tracer_mod.set_tracer(None)
    tracer_mod._reset_env_tracer_for_tests()


def small_circuit(name: str = "obs3") -> QuantumCircuit:
    circuit = QuantumCircuit(3, name=name)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.cx(1, 2)
    return circuit


def linear_target(qubits: int = 5) -> Target:
    return Target.from_topology("linear", qubits)


class TestMergedTraceTree:
    def test_client_to_pass_span_tree(self, live):
        tracer = Tracer(process="client")
        with use_tracer(tracer):
            handle = live.client().submit(
                small_circuit("traced-tree"), linear_target(),
                TranspileOptions(seed=11, level="O1"),
            )
        result = handle.result(timeout=60)
        spans = result.trace
        assert spans, "traced submission must return a merged span tree"

        by_name = {span["name"]: span for span in spans}
        # One trace id across every process tier.
        assert len({span["trace_id"] for span in spans}) == 1
        assert {span["process"] for span in spans} >= {"client", "server", "worker"}
        # Parentage: client.submit -> server.job -> {queue wait, worker transpile}.
        client_span = by_name["client.submit"]
        server_span = by_name["server.job"]
        queue_span = by_name["server.queue_wait"]
        root_span = by_name["transpile"]
        assert client_span["parent_id"] is None
        assert server_span["parent_id"] == client_span["span_id"]
        assert queue_span["parent_id"] == server_span["span_id"]
        assert root_span["parent_id"] == server_span["span_id"]
        # Every executed pass hangs off the worker's transpile root.
        pass_spans = [s for s in spans if s["name"].startswith("pass:")]
        assert pass_spans
        assert all(s["parent_id"] == root_span["span_id"] for s in pass_spans)
        assert [s["name"][len("pass:"):] for s in pass_spans] == [
            name for name, _ in result.pass_timing_log
        ]

        # The merged tree must export as valid Chrome trace-event JSON.
        doc = chrome_trace(spans)
        encoded = json.loads(json.dumps(doc))
        x_events = [e for e in encoded["traceEvents"] if e["ph"] == "X"]
        assert len(x_events) == len(spans)
        assert all(e["dur"] >= 0 for e in x_events)
        pids = {e["pid"] for e in x_events}
        assert len(pids) >= 3  # client / server / worker rows

    def test_trace_endpoint_and_stability(self, live):
        tracer = Tracer(process="client")
        with use_tracer(tracer):
            handle = live.client().submit(
                small_circuit("trace-endpoint"), linear_target(),
                TranspileOptions(seed=12, level="O1"),
            )
        handle.result(timeout=60)
        first = handle.trace()
        second = handle.trace()
        assert first["trace_id"] == second["trace_id"]
        assert first["state"] in ("done", "cached")
        names = {span["name"] for span in first["spans"]}
        assert {"server.job", "server.queue_wait", "transpile"} <= names
        # Span ids are fixed at admission: repeated reads return the same tree.
        assert {s["span_id"] for s in first["spans"]} == {
            s["span_id"] for s in second["spans"]
        }

    def test_untraced_submission_stays_untraced(self, live):
        handle = live.client().submit(
            small_circuit("untraced"), linear_target(),
            TranspileOptions(seed=13, level="O1"),
        )
        result = handle.result(timeout=60)
        assert result.trace == []
        payload = handle.trace()
        names = {span["name"] for span in payload["spans"]}
        assert "transpile" not in names  # no worker tracer ran
        assert "client.submit" not in names

    def test_trace_endpoint_unknown_job(self, live):
        from repro.client import ServerError

        with pytest.raises(ServerError):
            live.client().trace("no-such-job")


class TestQueueTimings:
    def test_job_payload_has_queued_and_running_seconds(self, live):
        handle = live.client().submit(
            small_circuit("timings"), linear_target(),
            TranspileOptions(seed=14, level="O1"),
        )
        handle.result(timeout=60)
        status = handle.status()
        assert status["queued_seconds"] >= 0.0
        assert status["running_seconds"] >= 0.0

    def test_queue_wait_histogram_series(self, live):
        handle = live.client().submit(
            small_circuit("qwait"), linear_target(),
            TranspileOptions(seed=15, level="O1"),
        )
        handle.result(timeout=60)
        text = live.client().metrics_text()
        assert "repro_server_queue_wait_seconds_bucket" in text
        assert parse_metric(text, "repro_server_queue_wait_seconds_count") >= 1
        # Per-pass latency histograms fed from the worker timing log.
        assert "repro_pass_seconds_bucket" in text
        # The obs counter bridge (thread-pool workers share the server process).
        assert "repro_obs_counter" in text


class TestLabelEscaping:
    @pytest.mark.parametrize(
        "hostile,expected",
        [
            ('with"quote', 'with\\"quote'),
            ("back\\slash", "back\\\\slash"),
            ("new\nline", "new\\nline"),
            ('all\\"of\nthem', 'all\\\\\\"of\\nthem'),
        ],
    )
    def test_escape_label_value(self, hostile, expected):
        assert _escape_label_value(hostile) == expected

    def test_labels_render_is_single_line_and_parseable(self):
        rendered = _labels({"pass": 'Evil"Pass\\Name\nInjected'})
        assert "\n" not in rendered
        assert rendered == '{pass="Evil\\"Pass\\\\Name\\nInjected"}'

    def test_counter_with_hostile_label_round_trips(self):
        counter = Counter("repro_test_total", "test")
        counter.inc(outcome='we"ird\\label\nvalue')
        text = "\n".join(counter.render())
        for line in text.splitlines():
            assert line.startswith("#") or len(line.split(" ")) == 2
        assert parse_metric(text, "repro_test_total",
                            {"outcome": 'we"ird\\label\nvalue'}) == 1.0

    def test_labeled_histogram_escapes_pass_names(self):
        histogram = LabeledHistogram("repro_test_seconds", "test", "pass", buckets=[1.0])
        histogram.observe('Pass"With\nHostile\\Chars', 0.5)
        text = "\n".join(histogram.render())
        assert "\n\n" not in text
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            # Every sample line must still be "<name+labels> <value>".
            assert len(line.rsplit(" ", 1)) == 2
        assert 'pass="Pass\\"With\\nHostile\\\\Chars"' in text

    def test_render_page_with_hostile_pass_name(self):
        metrics = ServerMetrics()
        metrics.observe_pass_timings([('Weird"Pass\nName', 0.01)])
        page = metrics.render(queue_depth=0, in_flight=0, cache_stats={})
        # The hostile name must not produce an unparseable or multi-sample line.
        for line in page.splitlines():
            if not line or line.startswith("#"):
                continue
            float(line.rsplit(" ", 1)[1])

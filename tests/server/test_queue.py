"""Unit tests of the server's asyncio job queue: priority, fairness, admission,
idempotent resubmission, cancellation, and event streaming."""

import asyncio

import pytest

from repro import QuantumCircuit
from repro.service import TranspileJob
from repro.server import CANCELLED, DONE, QUEUED, RUNNING, JobQueue, QueueFull


def make_job(seed: int = 0, *, name: str = "") -> TranspileJob:
    circuit = QuantumCircuit(3, name=name or f"q{seed}")
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.cx(1, 2)
    return TranspileJob.from_circuit(circuit, None, routing="none", seed=seed, name=name)


def run(coro):
    return asyncio.run(coro)


class TestSubmission:
    def test_submit_returns_queued_record(self):
        async def scenario():
            queue = JobQueue()
            record, resubmitted = queue.submit(make_job(0))
            assert record.state == QUEUED
            assert not resubmitted
            assert queue.pending_count() == 1
            assert record.events[0]["state"] == QUEUED

        run(scenario())

    def test_identical_submission_dedupes_onto_live_record(self):
        async def scenario():
            queue = JobQueue()
            first, _ = queue.submit(make_job(0))
            second, resubmitted = queue.submit(make_job(0))
            assert resubmitted
            assert second is first
            assert queue.pending_count() == 1
            assert queue.deduplicated == 1

        run(scenario())

    def test_different_seeds_do_not_dedupe(self):
        async def scenario():
            queue = JobQueue()
            first, _ = queue.submit(make_job(0))
            second, resubmitted = queue.submit(make_job(1))
            assert not resubmitted
            assert second is not first

        run(scenario())

    def test_admission_control_raises_queue_full(self):
        async def scenario():
            queue = JobQueue(max_pending=2)
            queue.submit(make_job(0))
            queue.submit(make_job(1))
            with pytest.raises(QueueFull):
                queue.submit(make_job(2))
            assert queue.rejected == 1

        run(scenario())

    def test_terminal_record_does_not_dedupe(self):
        async def scenario():
            queue = JobQueue()
            record, _ = queue.submit(make_job(0))
            popped = await queue.pop()
            assert popped is record
            popped.finish({"qasm": "", "metrics": {}})
            queue.task_done(popped)
            # A done record no longer coalesces: the server re-admits via the cache.
            assert queue.find_fingerprint(record.fingerprint) is None

        run(scenario())

    def test_admit_completed_bypasses_queue(self):
        async def scenario():
            queue = JobQueue(max_pending=1)
            queue.submit(make_job(0))  # fills the only slot
            record = queue.admit_completed(make_job(1), {"qasm": "", "metrics": {}})
            assert record.state == DONE
            assert record.from_cache
            assert queue.pending_count() == 1  # cached record consumed no slot

        run(scenario())


class TestScheduling:
    def test_pop_highest_priority_first(self):
        async def scenario():
            queue = JobQueue()
            low, _ = queue.submit(make_job(0), priority=0)
            high, _ = queue.submit(make_job(1), priority=10)
            assert await queue.pop() is high
            assert await queue.pop() is low

        run(scenario())



    def test_fifo_within_priority(self):
        async def scenario():
            queue = JobQueue()
            first, _ = queue.submit(make_job(0))
            second, _ = queue.submit(make_job(1))
            assert await queue.pop() is first
            assert await queue.pop() is second

        run(scenario())

    def test_round_robin_across_clients(self):
        async def scenario():
            queue = JobQueue()
            a1, _ = queue.submit(make_job(0), client="alice")
            a2, _ = queue.submit(make_job(1), client="alice")
            a3, _ = queue.submit(make_job(2), client="alice")
            b1, _ = queue.submit(make_job(3), client="bob")
            order = [await queue.pop() for _ in range(4)]
            # bob's single job must not wait behind alice's whole backlog
            assert order.index(b1) <= 1
            assert [r for r in order if r.client == "alice"] == [a1, a2, a3]

        run(scenario())

    def test_priority_beats_fairness(self):
        async def scenario():
            queue = JobQueue()
            queue.submit(make_job(0), client="alice", priority=0)
            urgent, _ = queue.submit(make_job(1), client="bob", priority=5)
            assert await queue.pop() is urgent

        run(scenario())

    def test_pop_waits_for_submission(self):
        async def scenario():
            queue = JobQueue()

            async def submit_later():
                await asyncio.sleep(0.01)
                return queue.submit(make_job(0))[0]

            popper = asyncio.create_task(queue.pop())
            submitted = await submit_later()
            popped = await asyncio.wait_for(popper, timeout=2)
            assert popped is submitted
            assert popped.state == RUNNING

        run(scenario())


class TestCancellation:
    def test_cancel_queued_job(self):
        async def scenario():
            queue = JobQueue()
            record, _ = queue.submit(make_job(0))
            cancelled = queue.cancel(record.id)
            assert cancelled.state == CANCELLED
            assert queue.pending_count() == 0

        run(scenario())

    def test_cancelled_job_is_never_popped(self):
        async def scenario():
            queue = JobQueue()
            doomed, _ = queue.submit(make_job(0))
            survivor, _ = queue.submit(make_job(1))
            queue.cancel(doomed.id)
            assert await queue.pop() is survivor

        run(scenario())

    def test_cancel_running_job_is_best_effort(self):
        async def scenario():
            queue = JobQueue()
            record, _ = queue.submit(make_job(0))
            await queue.pop()
            after = queue.cancel(record.id)
            assert after.state == RUNNING
            assert after.cancel_requested

        run(scenario())

    def test_cancel_unknown_id_raises(self):
        async def scenario():
            queue = JobQueue()
            with pytest.raises(KeyError):
                queue.cancel("job-missing")

        run(scenario())

    def test_cancelled_fingerprint_is_resubmittable(self):
        async def scenario():
            queue = JobQueue()
            record, _ = queue.submit(make_job(0))
            queue.cancel(record.id)
            fresh, resubmitted = queue.submit(make_job(0))
            assert not resubmitted
            assert fresh is not record
            assert fresh.state == QUEUED

        run(scenario())


class TestEvents:
    def test_events_record_transitions_with_timestamps(self):
        async def scenario():
            queue = JobQueue()
            record, _ = queue.submit(make_job(0))
            await queue.pop()
            record.finish({"qasm": "", "metrics": {"cx_count": 1, "depth": 2}})
            states = [event["state"] for event in record.events]
            assert states == [QUEUED, RUNNING, DONE]
            times = [event["at"] for event in record.events]
            assert times == sorted(times)

        run(scenario())

    def test_stream_events_replays_then_follows_live(self):
        async def scenario():
            queue = JobQueue()
            record, _ = queue.submit(make_job(0))

            async def consume():
                return [event["state"] async for event in record.stream_events()]

            consumer = asyncio.create_task(consume())
            await asyncio.sleep(0.01)
            await queue.pop()
            await asyncio.sleep(0.01)
            record.finish({"qasm": "", "metrics": {}})
            states = await asyncio.wait_for(consumer, timeout=2)
            assert states == [QUEUED, RUNNING, DONE]

        run(scenario())

    def test_wait_terminal_times_out(self):
        async def scenario():
            queue = JobQueue()
            record, _ = queue.submit(make_job(0))
            assert not await record.wait_terminal(timeout=0.05)
            record.cancel()
            assert await record.wait_terminal(timeout=1)

        run(scenario())


class TestHistory:
    def test_history_trim_evicts_oldest_terminal_records(self):
        async def scenario():
            queue = JobQueue(history_limit=3)
            records = []
            for seed in range(5):
                record, _ = queue.submit(make_job(seed))
                popped = await queue.pop()
                popped.finish({"qasm": "", "metrics": {}})
                queue.task_done(popped)
                records.append(record)
            assert queue.get(records[0].id) is None  # oldest evicted
            assert queue.get(records[-1].id) is records[-1]

        run(scenario())

    def test_queued_records_survive_history_trim(self):
        async def scenario():
            queue = JobQueue(history_limit=1)
            kept, _ = queue.submit(make_job(0))
            queue.submit(make_job(1))
            assert queue.get(kept.id) is kept  # non-terminal records are never evicted

        run(scenario())

"""Server-side best-of-N: chunk planning, fanned execution, and the methods catalog."""

import json
import urllib.request

import pytest

from repro import QuantumCircuit, Target, TranspileJob, TranspileOptions, transpile
from repro.circuit import qasm
from repro.server import ReproServer, parse_metric
from repro.server.queue import JobQueue
from repro.server.runner import JobRunner
from repro.service.cache import ResultCache
from repro.service.executor import _execute_trials


def ensemble_circuit(name: str = "spread6") -> QuantumCircuit:
    circuit = QuantumCircuit(6, name=name)
    for a in range(6):
        for b in range(a + 1, 6):
            circuit.cx(a, b)
    return circuit


def linear_target(qubits: int = 8) -> Target:
    return Target.from_topology("linear", qubits)


def make_runner(**kwargs) -> JobRunner:
    kwargs.setdefault("use_processes", False)
    return JobRunner(JobQueue(), ResultCache(), **kwargs)


class FakePool:
    """Truthy stand-in so chunk planning runs without a real executor."""


class TestChunkPlanning:
    def record(self, best_of=None, routing="sabre", level="O1"):
        job = TranspileJob.from_circuit(
            ensemble_circuit(),
            linear_target(),
            TranspileOptions(routing=routing, level=level, best_of=best_of),
        )
        record, _ = self.runner.queue.submit(job)
        return record

    def setup_method(self):
        self.runner = make_runner(max_workers=4, ensemble_fanout_threshold=4)
        self.runner._pool = FakePool()

    def test_small_ensembles_run_whole(self):
        assert self.runner._ensemble_chunks(self.record(best_of=3)) is None
        assert self.runner._ensemble_chunks(self.record()) is None

    def test_unsupported_routing_runs_whole(self):
        assert self.runner._ensemble_chunks(self.record(best_of=8, routing="none")) is None

    def test_no_pool_runs_whole(self):
        self.runner._pool = None
        assert self.runner._ensemble_chunks(self.record(best_of=8)) is None

    def test_single_worker_runs_whole(self):
        runner = make_runner(max_workers=1, ensemble_fanout_threshold=4)
        runner._pool = FakePool()
        assert runner._ensemble_chunks(self.record(best_of=8)) is None

    def test_chunks_partition_all_trials_balanced(self):
        chunks = self.runner._ensemble_chunks(self.record(best_of=10))
        assert [i for chunk in chunks for i in chunk] == list(range(10))
        assert len(chunks) == 4
        sizes = [len(chunk) for chunk in chunks]
        assert max(sizes) - min(sizes) <= 1

    def test_more_workers_than_trials_caps_at_trials(self):
        chunks = self.runner._ensemble_chunks(self.record(best_of=4))
        assert chunks == [[0], [1], [2], [3]]

    def test_o3_default_ensemble_triggers_fanout(self):
        chunks = self.runner._ensemble_chunks(self.record(level="O3"))
        assert chunks is not None
        assert [i for chunk in chunks for i in chunk] == list(range(4))


class TestExecuteTrialsWorker:
    def test_subset_payload_contract(self):
        job = TranspileJob.from_circuit(
            ensemble_circuit(), linear_target(),
            TranspileOptions(routing="sabre", best_of=4, seed=0),
        )
        raw = _execute_trials(job.to_dict(), [1, 3])
        assert raw["ok"]
        ensemble = raw["result"]["ensemble"]
        assert ensemble["executed_trials"] == [1, 3]
        assert ensemble["num_trials"] == 4
        assert ensemble["winner"] in (1, 3)

    def test_error_isolation(self):
        job = TranspileJob.from_circuit(
            ensemble_circuit(), linear_target(),
            TranspileOptions(routing="sabre", best_of=4, seed=0),
        )
        raw = _execute_trials(job.to_dict(), [99])
        assert not raw["ok"]
        assert raw["error"]["exc_type"] == "TranspilerError"


class TestFannedServer:
    @pytest.fixture(scope="class")
    def fanned(self):
        handle = ReproServer(
            port=0, use_processes=False, max_workers=2,
            ensemble_fanout_threshold=2,
        ).run_in_thread()
        yield handle
        handle.stop(drain=False, timeout=5)

    def test_fanned_job_matches_local_run(self, fanned):
        client = fanned.client()
        circuit = ensemble_circuit()
        target = linear_target()
        options = TranspileOptions(routing="sabre", seed=0, best_of=4)
        handle = client.submit(circuit, target, options)
        result = handle.result(timeout=60)

        local = transpile(circuit, target, options=options)
        assert qasm.dumps(result.circuit) == qasm.dumps(local.circuit)
        assert result.ensemble["winner_key"] == local.ensemble["winner_key"]
        assert result.ensemble["fanned_chunks"] == [[0, 1], [2, 3]]
        assert [t["trial"] for t in result.ensemble["trials"]] == [0, 1, 2, 3]
        assert result.best_of == 4

        text = client.metrics_text()
        assert parse_metric(text, "repro_ensemble_fanout_total") >= 1
        assert parse_metric(text, "repro_ensemble_trials_total") >= 4

    def test_methods_advertise_best_of_support(self, fanned):
        url = f"http://127.0.0.1:{fanned.server.port}/v1/methods"
        with urllib.request.urlopen(url, timeout=30) as response:
            payload = json.loads(response.read())
        support = {
            method["name"]: method["supports_best_of"]
            for method in payload["routing_methods"]
        }
        assert support["sabre"] is True
        assert support["nassc"] is True
        assert support["none"] is False

"""End-to-end tests of the online transpilation server over a real socket.

A :class:`ReproServer` runs on an ephemeral port inside a background event-loop thread;
tests talk to it through :class:`repro.client.ReproClient` and raw ``http.client``
requests exactly as external callers would.
"""

import http.client
import json

import pytest

from repro import (
    QuantumCircuit,
    ResultCache,
    Target,
    TranspileJob,
    TranspileOptions,
    transpile,
)
from repro.circuit import qasm
from repro.client import JobFailed, ServerError
from repro.server import ReproServer, parse_metric
from repro.service import BatchTranspiler


def start_server(**kwargs):
    """Boot a server in a background thread (the shared ThreadedServer harness)."""
    kwargs.setdefault("port", 0)
    kwargs.setdefault("use_processes", False)  # threads: no fork cost in tests
    kwargs.setdefault("max_workers", 2)
    return ReproServer(**kwargs).run_in_thread()


@pytest.fixture(scope="module")
def live():
    """A server that actually executes jobs (thread pool, 2 workers)."""
    handle = start_server()
    yield handle
    handle.stop(drain=False, timeout=5)


@pytest.fixture()
def frozen():
    """A server whose runner never starts jobs — submissions stay QUEUED forever."""
    handle = start_server(concurrency=0, queue_bound=2)
    yield handle
    handle.stop(drain=False, timeout=5)


def small_circuit(name: str = "bell3") -> QuantumCircuit:
    circuit = QuantumCircuit(3, name=name)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.cx(0, 2)
    circuit.cx(1, 2)
    return circuit


def linear_target(qubits: int = 5) -> Target:
    return Target.from_topology("linear", qubits)


def raw_request(handle, method, path, body=None, headers=None):
    connection = http.client.HTTPConnection("127.0.0.1", handle.server.port, timeout=30)
    try:
        connection.request(method, path, body=body, headers=headers or {})
        response = connection.getresponse()
        return response.status, response.read(), dict(response.getheaders())
    finally:
        connection.close()


class TestHealthAndMetadata:
    def test_healthz(self, live):
        payload = live.client().healthz()
        assert payload["status"] == "ok"
        assert payload["pool"] == "thread"
        assert payload["queue_bound"] == 256

    def test_methods_lists_registry(self, live):
        methods = live.client().methods()
        names = [method["name"] for method in methods["routing_methods"]]
        assert {"none", "sabre", "nassc"} <= set(names)
        levels = [level["name"] for level in methods["optimization_levels"]]
        assert levels == ["O0", "O1", "O2", "O3"]

    def test_targets_catalog(self, live):
        topologies = {target["topology"] for target in live.client().targets()}
        assert {"montreal", "linear", "grid", "full"} <= topologies

    def test_unknown_route_404(self, live):
        status, body, _ = raw_request(live, "GET", "/v1/nonsense")
        assert status == 404
        assert json.loads(body)["error"]["status"] == 404

    def test_wrong_method_405_with_allow(self, live):
        status, _, headers = raw_request(live, "PUT", "/v1/jobs")
        assert status == 405
        assert "GET" in headers.get("Allow", "") and "POST" in headers.get("Allow", "")


class TestSubmitPollResult:
    def test_end_to_end_matches_local_transpile(self, live):
        circuit = small_circuit()
        target = linear_target()
        options = TranspileOptions(routing="sabre", seed=3)
        client = live.client(client_id="e2e")
        handle = client.submit(circuit, target, options, name="bell3")
        remote = handle.result(timeout=120)
        local = transpile(circuit, target, options)
        assert qasm.dumps(remote.circuit) == qasm.dumps(local.circuit)
        assert remote.cx_count == local.cx_count
        assert remote.num_swaps == local.num_swaps

    def test_client_fingerprint_matches_local_job(self, live):
        circuit = small_circuit()
        target = linear_target()
        options = TranspileOptions(routing="nassc", seed=1)
        handle = live.client().submit(circuit, target, options)
        local = TranspileJob.from_circuit(circuit, target, options)
        assert handle.fingerprint == local.fingerprint()
        status = handle.status()
        assert status["fingerprint"] == local.fingerprint()

    def test_qasm_payload_submission(self, live):
        """Submission via raw QASM + target/options JSON (no client-side objects)."""
        payload = {
            "qasm": qasm.dumps(small_circuit()),
            "target": {"topology": "linear", "num_qubits": 5},
            "options": {"routing": "sabre", "seed": 7},
            "name": "raw-json",
        }
        status, body, _ = raw_request(
            live, "POST", "/v1/jobs", body=json.dumps(payload),
            headers={"Content-Type": "application/json"},
        )
        assert status in (200, 202)
        job_id = json.loads(body)["id"]
        final = live.client().job(job_id, wait=60)
        assert final["state"] == "done"
        assert final["result"]["metrics"]["cx_count"] > 0

    def test_long_poll_wait_returns_terminal_state(self, live):
        handle = live.client().submit(
            small_circuit("waiter"), linear_target(), TranspileOptions(routing="sabre", seed=11)
        )
        status = live.client().job(handle.id, wait=60)
        assert status["state"] == "done"

    def test_job_listing_contains_submissions(self, live):
        client = live.client()
        handle = client.submit(
            small_circuit("lister"), linear_target(), TranspileOptions(routing="sabre", seed=13)
        )
        handle.result(timeout=120)
        assert handle.id in {entry["id"] for entry in client.jobs()}


class TestCacheFastPath:
    def test_resubmission_is_served_from_cache(self, live):
        circuit = small_circuit("cached")
        target = linear_target()
        options = TranspileOptions(routing="sabre", seed=21)
        client = live.client()
        first = client.submit(circuit, target, options)
        first_result = first.result(timeout=120)

        before = parse_metric(client.metrics_text(), "repro_cache_hits")
        second = client.submit(circuit, target, options)
        status = second.status()
        assert status["state"] == "done"
        assert status["from_cache"] is True
        assert second.id != first.id
        assert qasm.dumps(second.result(timeout=10).circuit) == qasm.dumps(first_result.circuit)

        text = client.metrics_text()
        assert parse_metric(text, "repro_cache_hits") > before
        assert parse_metric(text, "repro_cache_hit_rate") > 0.0
        assert parse_metric(text, "repro_jobs_finished_total", {"outcome": "cached"}) >= 1

    def test_server_serves_results_prewarmed_by_batch_cli(self, tmp_path):
        """The server and the offline batch path share one on-disk cache."""
        circuit = small_circuit("prewarmed")
        target = linear_target()
        options = TranspileOptions(routing="sabre", seed=33)
        job = TranspileJob.from_circuit(circuit, target, options, name="prewarmed")
        cache_dir = str(tmp_path / "shared-cache")
        offline = BatchTranspiler(max_workers=1, cache=ResultCache(directory=cache_dir))
        offline_result = offline.run_one(job).unwrap()

        handle = start_server(cache=ResultCache(directory=cache_dir))
        try:
            remote = handle.client().submit(circuit, target, options)
            status = remote.status()
            assert status["state"] == "done"
            assert status["from_cache"] is True
            assert qasm.dumps(remote.result(timeout=10).circuit) == qasm.dumps(
                offline_result.circuit
            )
        finally:
            handle.stop(drain=False, timeout=5)


class TestBackpressureAndCancellation:
    def test_admission_control_returns_429(self, frozen):
        client = frozen.client()
        target = linear_target()
        for seed in range(2):  # queue_bound=2
            client.submit(small_circuit(), target, TranspileOptions(routing="sabre", seed=seed))
        with pytest.raises(ServerError) as excinfo:
            client.submit(small_circuit(), target, TranspileOptions(routing="sabre", seed=99))
        assert excinfo.value.status == 429

    def test_429_carries_retry_after(self, frozen):
        client = frozen.client()
        target = linear_target()
        handles = [
            client.submit(small_circuit(), target, TranspileOptions(routing="sabre", seed=seed))
            for seed in range(2)
        ]
        assert handles
        payload = {"job": TranspileJob.from_circuit(
            small_circuit(), target, TranspileOptions(routing="sabre", seed=98)
        ).to_dict()}
        status, body, headers = raw_request(
            frozen, "POST", "/v1/jobs", body=json.dumps(payload),
        )
        assert status == 429
        assert headers.get("Retry-After") == "1"
        assert json.loads(body)["error"]["queue_bound"] == 2

    def test_cancel_queued_job(self, frozen):
        client = frozen.client()
        handle = client.submit(
            small_circuit(), linear_target(), TranspileOptions(routing="sabre", seed=41)
        )
        assert handle.cancel() is True
        status = handle.status()
        assert status["state"] == "cancelled"
        states = [event["state"] for event in client.events(handle.id)]
        assert states == ["queued", "cancelled"]

    def test_cancel_finished_job_returns_conflict(self, live):
        client = live.client()
        handle = client.submit(
            small_circuit("done-cancel"), linear_target(),
            TranspileOptions(routing="sabre", seed=45),
        )
        handle.result(timeout=120)
        assert handle.cancel() is False  # 409 under the hood
        status, body, _ = raw_request(live, "POST", f"/v1/jobs/{handle.id}/cancel")
        assert status == 409
        assert json.loads(body)["error"]["state"] == "done"

    def test_cancelled_slot_is_freed_for_admission(self, frozen):
        client = frozen.client()
        target = linear_target()
        first = client.submit(small_circuit(), target, TranspileOptions(routing="sabre", seed=51))
        client.submit(small_circuit(), target, TranspileOptions(routing="sabre", seed=52))
        first.cancel()
        replacement = client.submit(
            small_circuit(), target, TranspileOptions(routing="sabre", seed=53)
        )
        assert replacement.status()["state"] == "queued"


class TestErrorHandling:
    def test_malformed_json_400(self, live):
        status, body, _ = raw_request(live, "POST", "/v1/jobs", body=b"{not json")
        assert status == 400
        assert "malformed JSON" in json.loads(body)["error"]["message"]

    def test_missing_fields_400(self, live):
        status, body, _ = raw_request(live, "POST", "/v1/jobs", body=json.dumps({"foo": 1}))
        assert status == 400

    def test_unknown_routing_400(self, live):
        payload = {"qasm": qasm.dumps(small_circuit()), "options": {"routing": "teleport"}}
        status, body, _ = raw_request(live, "POST", "/v1/jobs", body=json.dumps(payload))
        assert status == 400
        assert "teleport" in json.loads(body)["error"]["message"]

    def test_unknown_job_404(self, live):
        with pytest.raises(ServerError) as excinfo:
            live.client().job("job-doesnotexist")
        assert excinfo.value.status == 404

    def test_failed_job_carries_worker_traceback(self, live):
        # 6-qubit circuit on a 5-qubit device: fails inside the worker, not at admission.
        wide = QuantumCircuit(6, name="too-wide")
        wide.h(0)
        for qubit in range(5):
            wide.cx(qubit, qubit + 1)
        handle = live.client().submit(
            wide, linear_target(5), TranspileOptions(routing="sabre")
        )
        with pytest.raises(JobFailed) as excinfo:
            handle.result(timeout=120)
        assert excinfo.value.traceback, "worker traceback must propagate to the client"
        assert "Traceback (most recent call last)" in excinfo.value.traceback
        status = handle.status()
        assert status["state"] == "failed"
        assert status["error"]["traceback"]


class TestBatchAndEvents:
    def test_batch_submission_round_trip(self, live):
        target = linear_target()
        jobs = [
            TranspileJob.from_circuit(
                small_circuit(f"batch{seed}"), target,
                TranspileOptions(routing="sabre", seed=seed + 60),
            )
            for seed in range(3)
        ]
        handles = live.client().submit_batch(jobs)
        assert len(handles) == 3
        results = [handle.result(timeout=120) for handle in handles]
        assert all(result.cx_count > 0 for result in results)
        assert {handle.fingerprint for handle in handles} == {job.fingerprint() for job in jobs}

    def test_batch_rejected_atomically_when_over_bound(self, frozen):
        target = linear_target()
        jobs = [
            TranspileJob.from_circuit(
                small_circuit(), target, TranspileOptions(routing="sabre", seed=seed + 70)
            )
            for seed in range(3)  # bound is 2
        ]
        with pytest.raises(ServerError) as excinfo:
            frozen.client().submit_batch(jobs)
        assert excinfo.value.status == 429
        assert frozen.server.queue.pending_count() == 0  # nothing partially admitted

    def test_batch_dedupe_does_not_consume_headroom(self, frozen):
        """Resubmitting a full queue's worth of jobs coalesces instead of 429ing."""
        target = linear_target()
        jobs = [
            TranspileJob.from_circuit(
                small_circuit(), target, TranspileOptions(routing="sabre", seed=seed + 80)
            )
            for seed in range(2)  # exactly the bound
        ]
        client = frozen.client()
        first = client.submit_batch(jobs)
        assert all(not handle.resubmitted for handle in first)
        again = client.submit_batch(jobs)  # queue is full, but nothing new is needed
        assert all(handle.resubmitted for handle in again)
        assert {handle.id for handle in again} == {handle.id for handle in first}

    def test_event_stream_has_timing_breakdown(self, live):
        handle = live.client().submit(
            small_circuit("events"), linear_target(), TranspileOptions(routing="sabre", seed=81)
        )
        events = list(handle.events())
        states = [event["state"] for event in events]
        assert states[0] == "queued"
        assert states[-1] == "done"
        done = events[-1]["detail"]
        assert done["pass_timing_log"], "terminal event must carry the pass-timing breakdown"
        assert done["cx_count"] > 0
        running = [event for event in events if event["state"] == "running"]
        assert running and running[0]["detail"]["queue_wait_seconds"] >= 0


class TestCliIntegration:
    def test_repro_submit_against_live_server(self, live, tmp_path, capsys):
        from repro.service.cli import main

        source = tmp_path / "circ.qasm"
        source.write_text(qasm.dumps(small_circuit()))
        out_path = tmp_path / "routed.qasm"
        metrics_path = tmp_path / "metrics.json"
        rc = main([
            "submit", str(source), "--url", live.url,
            "--device", "linear", "--num-qubits", "5",
            "--routing", "sabre", "--seed", "17",
            "--out", str(out_path), "--metrics", str(metrics_path),
        ])
        assert rc == 0
        assert "OPENQASM 2.0" in out_path.read_text()
        metrics = json.loads(metrics_path.read_text())
        assert metrics["cx_count"] > 0
        assert metrics["fingerprint"]

    def test_repro_submit_unreachable_server_fails_cleanly(self, tmp_path, capsys):
        from repro.service.cli import main

        source = tmp_path / "circ.qasm"
        source.write_text(qasm.dumps(small_circuit()))
        rc = main([
            "submit", str(source), "--url", "http://127.0.0.1:1",
            "--device", "linear", "--num-qubits", "5",
        ])
        assert rc == 2
        assert "cannot reach" in capsys.readouterr().err

    def test_serve_subcommand_boots_and_answers(self, tmp_path):
        """`python -m repro serve` as a real subprocess: boot, /healthz, SIGTERM drain."""
        import os
        import re
        import signal
        import subprocess
        import sys
        import time
        import urllib.request

        env = dict(os.environ)
        src_dir = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src_dir) + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0", "--threads",
             "--workers", "1"],
            stderr=subprocess.PIPE, text=True, env=env,
        )
        try:
            banner = process.stderr.readline()
            match = re.search(r"http://127\.0\.0\.1:(\d+)", banner)
            assert match, f"no listen banner in {banner!r}"
            port = int(match.group(1))
            deadline = time.time() + 10
            payload = None
            while time.time() < deadline:
                try:
                    with urllib.request.urlopen(
                        f"http://127.0.0.1:{port}/healthz", timeout=5
                    ) as response:
                        payload = json.loads(response.read())
                    break
                except OSError:
                    time.sleep(0.1)
            assert payload is not None and payload["status"] == "ok"
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=15) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)


class TestGracefulShutdown:
    def test_drain_finishes_inflight_jobs(self):
        handle = start_server(max_workers=1, concurrency=1)
        client = handle.client()
        submitted = client.submit(
            small_circuit("drain"), linear_target(), TranspileOptions(routing="sabre", seed=91)
        )
        handle.stop(drain=True, timeout=60)
        record = handle.server.queue.get(submitted.id)
        # Drained to done — or, if shutdown won the race before the pop, settled as a
        # ServerShutdown failure (never left dangling in "queued").
        assert record is not None and record.state in ("done", "failed")

    def test_draining_server_rejects_new_jobs_with_503(self, frozen):
        frozen.server.draining = True
        try:
            with pytest.raises(ServerError) as excinfo:
                frozen.client().submit(
                    small_circuit(), linear_target(), TranspileOptions(routing="sabre", seed=95)
                )
            assert excinfo.value.status == 503
        finally:
            frozen.server.draining = False


class TestScheduleSurface:
    def test_methods_advertise_schedule_modes(self, live):
        methods = live.client().methods()
        modes = [mode["name"] for mode in methods["schedule_modes"]]
        assert modes == ["asap", "alap"]
        assert all(mode["description"] for mode in methods["schedule_modes"])

    def test_scheduled_job_returns_schedule_and_metric(self, live):
        target = Target.from_topology("linear", 5, calibrated=True)
        options = TranspileOptions(routing="sabre", seed=33, schedule="asap")
        client = live.client()
        handle = client.submit(small_circuit("timed"), target, options, name="timed")
        remote = handle.result(timeout=120)
        assert remote.schedule is not None
        assert remote.schedule.mode == "asap"
        assert remote.schedule.duration > 0
        remote.schedule.validate()
        status = handle.status()
        assert status["result"]["schedule"]["unit"] == "ns"
        text = client.metrics_text()
        assert parse_metric(
            text, "repro_schedule_duration_seconds_count"
        ) >= 1

    def test_schedule_via_raw_json_spec(self, live):
        payload = {
            "qasm": qasm.dumps(small_circuit("raw-timed")),
            "target": {"topology": "linear", "num_qubits": 5, "calibrated": True},
            "options": {"routing": "sabre", "seed": 7, "schedule": "alap", "route_cost": "ns"},
            "name": "raw-timed",
        }
        status, body, _ = raw_request(
            live, "POST", "/v1/jobs", body=json.dumps(payload),
            headers={"Content-Type": "application/json"},
        )
        assert status in (200, 202)
        job_id = json.loads(body)["id"]
        final = live.client().job(job_id, wait=60)
        assert final["state"] == "done"
        schedule = final["result"]["schedule"]
        assert schedule["mode"] == "alap" and schedule["duration"] > 0

    def test_unscheduled_job_has_no_schedule_key(self, live):
        handle = live.client().submit(
            small_circuit("untimed"), linear_target(), TranspileOptions(routing="sabre", seed=3)
        )
        handle.result(timeout=120)
        assert "schedule" not in handle.status()["result"]

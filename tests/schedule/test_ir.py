"""Unit tests for the timed-schedule IR (TimedInstruction, Schedule)."""

import json

import pytest

from repro.exceptions import ScheduleError
from repro.schedule import IdleWindow, Schedule, TimedInstruction


def make_schedule(mode="asap"):
    return Schedule(
        num_qubits=3,
        mode=mode,
        instructions=(
            TimedInstruction("h", (0,), 0, 35),
            TimedInstruction("cx", (0, 1), 35, 300),
            TimedInstruction("x", (2,), 0, 35),
            TimedInstruction("cx", (1, 2), 335, 250),
            TimedInstruction("measure", (1,), 585, 3000, clbits=(0,)),
        ),
    )


class TestTimedInstruction:
    def test_end_and_coercion(self):
        inst = TimedInstruction("cx", [0, 1], 10.0, 20.0)
        assert inst.end == 30
        assert inst.qubits == (0, 1)
        assert isinstance(inst.start, int) and isinstance(inst.duration, int)

    def test_list_round_trip(self):
        inst = TimedInstruction("u", (2,), 5, 35, params=(0.1, 0.2, 0.3), clbits=(1,))
        assert TimedInstruction.from_list(inst.to_list()) == inst

    def test_negative_start_rejected(self):
        with pytest.raises(ScheduleError):
            TimedInstruction("h", (0,), -1, 35)

    def test_negative_duration_rejected(self):
        with pytest.raises(ScheduleError):
            TimedInstruction("h", (0,), 0, -5)


class TestSchedule:
    def test_duration_is_makespan(self):
        sched = make_schedule()
        assert sched.duration == 3585
        assert sched.duration_ns == sched.duration
        assert Schedule(num_qubits=2, mode="asap").duration == 0

    def test_qubit_timelines_ordered(self):
        sched = make_schedule()
        names = [inst.name for inst in sched.qubit_timeline(1)]
        assert names == ["cx", "cx", "measure"]
        starts = [inst.start for inst in sched.qubit_timeline(1)]
        assert starts == sorted(starts)

    def test_timeline_out_of_range(self):
        with pytest.raises(ScheduleError):
            make_schedule().qubit_timeline(99)

    def test_qubit_outside_schedule_rejected(self):
        sched = Schedule(
            num_qubits=1, mode="asap",
            instructions=(TimedInstruction("cx", (0, 5), 0, 100),),
        )
        with pytest.raises(ScheduleError):
            sched.qubit_timelines()

    def test_critical_path_sums_to_duration(self):
        sched = make_schedule()
        chain = sched.critical_path()
        assert sum(inst.duration for inst in chain) == sched.duration
        # The chain follows wire dependencies: h -> cx(0,1) -> cx(1,2) -> measure.
        assert [inst.name for inst in chain] == ["h", "cx", "cx", "measure"]

    def test_idle_windows_exclude_leading_and_trailing(self):
        sched = make_schedule()
        windows = sched.idle_windows()
        # Only q2 has an interior gap: x ends at 35, cx(1,2) starts at 335.
        assert windows == (IdleWindow(2, 35, 300 + 35),)
        assert sched.total_idle == 300

    def test_validate_accepts_consistent(self):
        make_schedule().validate()

    def test_validate_rejects_overlap(self):
        sched = Schedule(
            num_qubits=1, mode="asap",
            instructions=(
                TimedInstruction("x", (0,), 0, 100),
                TimedInstruction("y", (0,), 50, 100),
            ),
        )
        with pytest.raises(ScheduleError, match="overlaps"):
            sched.validate()

    def test_dict_round_trip_bit_identical(self):
        sched = make_schedule()
        data = json.loads(json.dumps(sched.to_dict()))
        rebuilt = Schedule.from_dict(data)
        assert rebuilt.to_dict() == sched.to_dict()
        assert rebuilt.fingerprint() == sched.fingerprint()

    def test_fingerprint_sensitive_to_content(self):
        base = make_schedule()
        other = make_schedule(mode="alap")
        assert base.fingerprint() != other.fingerprint()

    def test_len(self):
        assert len(make_schedule()) == 5

"""Schedule wiring across options, pipeline builder, results, and the service layer."""

import pytest

from repro import QuantumCircuit, Target, TranspileOptions, transpile
from repro.circuit import qasm
from repro.core.options import ROUTE_COSTS
from repro.core.pipeline import TranspileResult
from repro.exceptions import TranspilerError
from repro.schedule import Schedule
from repro.service.jobs import TranspileJob
from repro.transpiler.builder import PipelineBuilder, STAGES


def bell_pair(extra_depth=3):
    qc = QuantumCircuit(4, 4)
    qc.h(0)
    qc.cx(0, 1)
    for _ in range(extra_depth):
        qc.cx(1, 2)
        qc.cx(2, 3)
        qc.h(3)
    qc.measure(0, 0)
    qc.measure(3, 3)
    return qc


class TestOptions:
    def test_defaults(self):
        options = TranspileOptions()
        assert options.schedule is None
        assert options.route_cost == "hops"
        assert "hops" in ROUTE_COSTS and "ns" in ROUTE_COSTS

    def test_mode_is_normalised(self):
        assert TranspileOptions(schedule="ASAP ").schedule == "asap"
        assert TranspileOptions(schedule="Alap").schedule == "alap"

    def test_unknown_mode_rejected(self):
        with pytest.raises(TranspilerError, match="schedule mode"):
            TranspileOptions(schedule="eager")

    def test_unknown_route_cost_rejected(self):
        with pytest.raises(TranspilerError, match="route_cost"):
            TranspileOptions(route_cost="minutes")

    def test_ns_and_noise_aware_mutually_exclusive(self):
        with pytest.raises(TranspilerError, match="mutually exclusive"):
            TranspileOptions(route_cost="ns", noise_aware=True)

    def test_content_dict_and_fingerprint_track_new_knobs(self):
        base = TranspileOptions()
        scheduled = TranspileOptions(schedule="asap")
        timed = TranspileOptions(route_cost="ns")
        assert base.content_dict()["schedule"] is None
        assert scheduled.content_dict()["schedule"] == "asap"
        assert timed.content_dict()["route_cost"] == "ns"
        dicts = [o.content_dict() for o in (base, scheduled, timed)]
        assert dicts[0] != dicts[1] and dicts[0] != dicts[2] and dicts[1] != dicts[2]

    def test_dict_round_trip(self):
        options = TranspileOptions(schedule="alap", route_cost="ns", level="O2")
        rebuilt = TranspileOptions.from_dict(options.to_dict())
        assert rebuilt.schedule == "alap"
        assert rebuilt.route_cost == "ns"
        assert rebuilt.content_dict() == options.content_dict()


class TestBuilder:
    def test_schedule_is_a_named_stage(self):
        assert STAGES[-1] == "schedule"

    def test_stage_empty_by_default(self):
        target = Target.from_topology("linear", 4)
        builder = PipelineBuilder(target, TranspileOptions())
        pm = builder.build()
        assert builder.stages["schedule"] == []
        result = pm.run(bell_pair())
        assert result is not None

    def test_stage_populated_when_requested(self):
        target = Target.from_topology("linear", 4, calibrated=True)
        builder = PipelineBuilder(target, TranspileOptions(schedule="alap"))
        builder.build()
        names = [type(p).__name__ for p in builder.stages["schedule"]]
        assert names == ["ScheduleAnalysis"]

    def test_schedule_requires_calibration(self):
        target = Target.from_topology("linear", 4)
        with pytest.raises(TranspilerError, match="calibration"):
            PipelineBuilder(target, TranspileOptions(schedule="asap")).build()

    def test_ns_cost_requires_calibration(self):
        target = Target.from_topology("linear", 4)
        with pytest.raises(TranspilerError, match="calibration"):
            PipelineBuilder(target, TranspileOptions(route_cost="ns")).build()


class TestTranspileResult:
    def test_schedule_attached_and_round_tripped(self):
        target = Target.from_topology("linear", 5, calibrated=True)
        result = transpile(bell_pair(), target, routing="sabre", seed=7, schedule="asap")
        assert isinstance(result.schedule, Schedule)
        assert result.schedule.mode == "asap"
        assert result.schedule.duration > 0
        rebuilt = TranspileResult.from_dict(result.to_dict())
        assert rebuilt.schedule is not None
        assert rebuilt.schedule.fingerprint() == result.schedule.fingerprint()

    def test_default_path_has_no_schedule(self):
        target = Target.from_topology("linear", 5, calibrated=True)
        result = transpile(bell_pair(), target, routing="sabre", seed=7)
        assert result.schedule is None
        assert "schedule" not in result.to_dict()

    def test_schedule_does_not_perturb_compiled_circuit(self):
        target = Target.from_topology("linear", 5, calibrated=True)
        plain = transpile(bell_pair(), target, routing="sabre", seed=7)
        timed = transpile(bell_pair(), target, routing="sabre", seed=7, schedule="alap")
        assert qasm.dumps(plain.circuit) == qasm.dumps(timed.circuit)

    def test_ns_routing_produces_executable_circuit(self):
        target = Target.from_topology("montreal", 27, calibrated=True)
        result = transpile(
            bell_pair(), target, routing="sabre", seed=7, route_cost="ns", schedule="asap"
        )
        result.schedule.validate()
        assert result.circuit.num_qubits == 27


class TestServiceLayer:
    def test_job_round_trip_carries_schedule_knobs(self):
        target = Target.from_topology("linear", 5, calibrated=True)
        job = TranspileJob.from_circuit(
            bell_pair(), target, routing="sabre", seed=3,
            schedule="alap", route_cost="ns", name="timed",
        )
        rebuilt = TranspileJob.from_dict(job.to_dict())
        assert rebuilt.schedule == "alap"
        assert rebuilt.route_cost == "ns"
        assert rebuilt.fingerprint() == job.fingerprint()

    def test_fingerprint_sensitive_to_schedule(self):
        target = Target.from_topology("linear", 5, calibrated=True)
        plain = TranspileJob.from_circuit(bell_pair(), target, routing="sabre", seed=3)
        timed = TranspileJob.from_circuit(
            bell_pair(), target, routing="sabre", seed=3, schedule="asap"
        )
        assert plain.fingerprint() != timed.fingerprint()

    def test_job_run_returns_schedule(self):
        target = Target.from_topology("linear", 5, calibrated=True)
        job = TranspileJob.from_circuit(
            bell_pair(), target, routing="sabre", seed=3, schedule="asap"
        )
        result = job.run()
        assert result.schedule is not None and result.schedule.mode == "asap"

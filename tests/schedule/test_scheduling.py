"""Property tests of ASAP/ALAP lowering over the benchmark grid."""

import json
import os
import subprocess
import sys

import pytest

from repro import QuantumCircuit, transpile
from repro.benchlib.suite import table_benchmarks
from repro.exceptions import CalibrationError, ScheduleError
from repro.hardware.calibration import synthetic_calibration
from repro.hardware.target import Target
from repro.hardware.topologies import get_topology
from repro.schedule import (
    Schedule,
    decoherence_exposure,
    instruction_duration_ns,
    schedule_circuit,
)

BENCH_NAMES = ["grover_n4", "vqe_n8", "adder_n10"]
TOPOLOGIES = [("linear", 25), ("montreal", 25)]


def bench_cases():
    return table_benchmarks(names=BENCH_NAMES)


@pytest.fixture(scope="module")
def compiled_grid():
    """Compiled circuit + calibration for every (benchmark, topology) pair."""
    grid = []
    for topology, qubits in TOPOLOGIES:
        target = Target.from_topology(topology, qubits, calibrated=True)
        for case in bench_cases():
            result = transpile(case.build(), target, routing="sabre", seed=0)
            grid.append((case.name, topology, result.circuit, target.calibration))
    return grid


class TestProperties:
    def test_asap_and_alap_share_total_duration(self, compiled_grid):
        for name, topology, circuit, calibration in compiled_grid:
            asap = schedule_circuit(circuit, calibration, "asap")
            alap = schedule_circuit(circuit, calibration, "alap")
            assert asap.duration == alap.duration, (name, topology)

    def test_no_overlap_and_topological_order(self, compiled_grid):
        for name, topology, circuit, calibration in compiled_grid:
            for mode in ("asap", "alap"):
                schedule = schedule_circuit(circuit, calibration, mode)
                schedule.validate()  # raises on per-qubit overlap / order violations
                assert len(schedule) == len(circuit.data), (name, topology, mode)

    def test_alap_never_starts_earlier_than_asap(self, compiled_grid):
        for name, topology, circuit, calibration in compiled_grid:
            asap = schedule_circuit(circuit, calibration, "asap")
            alap = schedule_circuit(circuit, calibration, "alap")
            for a, l in zip(asap.instructions, alap.instructions):
                assert (a.name, a.qubits) == (l.name, l.qubits)
                assert l.start >= a.start, (name, topology, a)

    def test_json_round_trip_bit_identical(self, compiled_grid):
        for name, topology, circuit, calibration in compiled_grid:
            schedule = schedule_circuit(circuit, calibration, "asap")
            text = json.dumps(schedule.to_dict(), sort_keys=True)
            rebuilt = Schedule.from_dict(json.loads(text))
            assert json.dumps(rebuilt.to_dict(), sort_keys=True) == text, (name, topology)

    def test_critical_path_sums_to_duration(self, compiled_grid):
        for name, topology, circuit, calibration in compiled_grid:
            schedule = schedule_circuit(circuit, calibration, "asap")
            chain = schedule.critical_path()
            assert sum(i.duration for i in chain) == schedule.duration, (name, topology)

    def test_decoherence_exposure_nonnegative(self, compiled_grid):
        for _, _, circuit, calibration in compiled_grid:
            schedule = schedule_circuit(circuit, calibration, "asap")
            report = decoherence_exposure(schedule, calibration)
            assert report.total >= 0.0
            assert report.total_idle_ns == schedule.total_idle


class TestLoweringEdges:
    def test_unknown_mode_rejected(self):
        coupling = get_topology("linear", 4)
        calibration = synthetic_calibration(coupling)
        with pytest.raises(ScheduleError):
            schedule_circuit(QuantumCircuit(2), calibration, "soon")

    def test_circuit_larger_than_device_rejected(self):
        coupling = get_topology("linear", 3)
        calibration = synthetic_calibration(coupling)
        with pytest.raises(ScheduleError, match="has only 3"):
            schedule_circuit(QuantumCircuit(5), calibration, "asap")

    def test_incomplete_calibration_rejected(self):
        coupling = get_topology("linear", 4)
        calibration = synthetic_calibration(coupling)
        del calibration.cx_duration[(0, 1)]
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        with pytest.raises(CalibrationError):
            schedule_circuit(qc, calibration, "asap")

    def test_barrier_takes_zero_time(self):
        coupling = get_topology("linear", 3)
        calibration = synthetic_calibration(coupling)
        assert instruction_duration_ns(calibration, "barrier", (0, 1, 2)) == 0
        qc = QuantumCircuit(2)
        qc.x(0)
        qc.barrier()
        qc.x(1)
        schedule = schedule_circuit(qc, calibration, "asap")
        barrier = next(i for i in schedule.instructions if i.name == "barrier")
        assert barrier.duration == 0
        # The barrier still synchronises: x(1) cannot start before x(0) ends.
        assert schedule.instructions[-1].start >= schedule.instructions[0].end

    def test_empty_circuit(self):
        coupling = get_topology("linear", 3)
        calibration = synthetic_calibration(coupling)
        schedule = schedule_circuit(QuantumCircuit(3), calibration, "alap")
        assert schedule.duration == 0 and len(schedule) == 0
        assert schedule.idle_windows() == ()


DETERMINISM_SNIPPET = """
from repro import transpile
from repro.benchlib import grover_n4
from repro.hardware.target import Target
result = transpile(grover_n4(), Target.from_topology("linear", 10, calibrated=True),
                   routing="sabre", seed=0, schedule="asap")
print(result.schedule.fingerprint())
"""


class TestDeterminism:
    def test_fingerprint_stable_across_processes(self):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
        runs = [
            subprocess.run(
                [sys.executable, "-c", DETERMINISM_SNIPPET],
                capture_output=True, text=True, env=env, check=True,
            ).stdout.strip()
            for _ in range(2)
        ]
        assert runs[0] and runs[0] == runs[1]

"""Tests for streaming transpilation (:func:`repro.transpile_stream`).

The core guarantee under test: windowed routing over a :class:`StreamingDAG` makes the
*same decisions* as whole-circuit routing — a window that covers the circuit is
byte-identical to ``qasm.dumps(transpile(...).circuit)`` at the equivalent O0
configuration, and narrow windows (thanks to tail-aware lookahead spill) still produce
identical gate counts, depth and SWAP counts.  A hypothesis property pins the window
invariance across random circuits on the evaluation grid device.
"""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    QuantumCircuit,
    Target,
    TranspileOptions,
    stream_to,
    transpile,
    transpile_stream,
)
from repro.circuit import qasm, random_circuit, random_circuit_stream
from repro.exceptions import TranspilerError


GRID_TARGET = Target.from_topology("grid", 25)

O0 = dict(level="O0", layout_iterations=0, seed=0)


def stream_text(source, target, options, **kwargs):
    """Run transpile_stream to completion; returns (emitted_text, summary)."""
    buf = io.StringIO()
    summary = stream_to(transpile_stream(source, target, options=options, **kwargs), buf)
    return buf.getvalue(), summary


def routed_reference(circuit, target, options):
    result = transpile(circuit, target, options=options)
    return qasm.dumps(result.circuit), result


class TestValidation:
    def test_rejects_non_o0_levels(self):
        circ = random_circuit(4, 3, seed=0)
        opts = TranspileOptions(routing="sabre", level="O1", seed=0)
        with pytest.raises(TranspilerError, match="O0"):
            next(transpile_stream(circ, GRID_TARGET, options=opts))

    def test_rejects_layout_iterations(self):
        circ = random_circuit(4, 3, seed=0)
        opts = TranspileOptions(routing="sabre", level="O0", layout_iterations=2, seed=0)
        with pytest.raises(TranspilerError, match="layout_iterations"):
            next(transpile_stream(circ, GRID_TARGET, options=opts))

    def test_rejects_best_of_ensembles(self):
        circ = random_circuit(4, 3, seed=0)
        opts = TranspileOptions(routing="sabre", best_of=4, **O0)
        with pytest.raises(TranspilerError, match="best_of"):
            next(transpile_stream(circ, GRID_TARGET, options=opts))

    def test_rejects_schedule(self):
        circ = random_circuit(4, 3, seed=0)
        opts = TranspileOptions(routing="sabre", schedule="asap", **O0)
        with pytest.raises(TranspilerError, match="schedule"):
            next(transpile_stream(circ, Target.from_topology("grid", 25, calibrated=True),
                                  options=opts))

    def test_rejects_routerless_method(self):
        circ = random_circuit(4, 3, seed=0)
        opts = TranspileOptions(routing="none", **O0)
        with pytest.raises(TranspilerError, match="router"):
            next(transpile_stream(circ, Target(), options=opts))

    def test_bare_iterable_needs_num_qubits(self):
        opts = TranspileOptions(routing="sabre", **O0)
        source = random_circuit_stream(4, 10, seed=0)
        with pytest.raises(TranspilerError, match="num_qubits"):
            next(transpile_stream(source, GRID_TARGET, options=opts))


class TestWholeWindowByteIdentity:
    @pytest.mark.parametrize("num_qubits,depth,seed", [(5, 20, 0), (10, 30, 1), (4, 15, 7)])
    def test_sabre_matches_in_memory_transpile(self, num_qubits, depth, seed):
        circ = random_circuit(num_qubits, depth, seed=seed)
        circ.measure_all()
        opts = TranspileOptions(routing="sabre", **O0)
        ref_text, ref = routed_reference(circ, GRID_TARGET, opts)
        text, summary = stream_text(circ, GRID_TARGET, opts, window_gates=10**6)
        assert text == ref_text
        assert summary["num_swaps"] == ref.num_swaps
        assert summary["depth"] == ref.circuit.depth()
        assert summary["cx_count"] == ref.circuit.cx_count()

    def test_emitted_text_reparses_to_consistent_metrics(self):
        circ = random_circuit(6, 12, seed=3)
        circ.measure_all()
        opts = TranspileOptions(routing="sabre", **O0)
        text, summary = stream_text(circ, GRID_TARGET, opts, window_gates=128)
        reparsed = qasm.loads(text)
        assert summary["depth"] == reparsed.depth()
        assert summary["cx_count"] == reparsed.cx_count()
        assert summary["emitted_gates"] == sum(
            1 for inst in reparsed.data if inst.name != "barrier"
        )

    def test_nassc_windowed_metrics_match_whole_window(self):
        # nassc's in-memory pipeline appends a whole-DAG cleanup pass, so streaming is
        # pinned against its own whole-window run instead of transpile().
        circ = random_circuit(6, 15, seed=2)
        opts = TranspileOptions(routing="nassc", **O0)
        whole, whole_summary = stream_text(circ, GRID_TARGET, opts, window_gates=10**6)
        narrow, narrow_summary = stream_text(circ, GRID_TARGET, opts, window_gates=64)
        assert narrow == whole
        drop = lambda s: {k: v for k, v in s.items() if k != "window_gates"}  # noqa: E731
        assert drop(narrow_summary) == drop(whole_summary)


class TestStreamingSources:
    def test_qasm_stream_reader_source(self):
        circ = random_circuit(5, 10, seed=4)
        circ.measure_all()
        opts = TranspileOptions(routing="sabre", **O0)
        ref_text, _ = routed_reference(circ, GRID_TARGET, opts)
        reader = qasm.loads_stream(qasm.dumps(circ))
        text, _ = stream_text(reader, GRID_TARGET, opts, window_gates=10**6)
        assert text == ref_text

    def test_generator_source_with_explicit_width(self):
        opts = TranspileOptions(routing="sabre", **O0)
        gates = list(random_circuit_stream(5, 40, seed=1))
        circ = QuantumCircuit(5)
        for inst in gates:
            circ.append(inst.gate, inst.qubits)
        ref_text, _ = routed_reference(circ, GRID_TARGET, opts)
        text, summary = stream_text(
            iter(gates), GRID_TARGET, opts, window_gates=10**6, num_qubits=5
        )
        assert text == ref_text
        assert summary["source_gates"] == 40

    def test_chunk_gates_controls_emission_granularity(self):
        circ = random_circuit(5, 15, seed=5)
        opts = TranspileOptions(routing="sabre", **O0)
        chunks = list(transpile_stream(circ, GRID_TARGET, options=opts, chunk_gates=8))
        assert len(chunks) > 1
        whole, _ = stream_text(circ, GRID_TARGET, opts)
        assert "".join(chunks) == whole


# Satellite (c): streaming transpile over W in {64, 512, whole-circuit} is invariant —
# identical gate count, depth and SWAP count vs whole-circuit transpile() for seed-0
# SABRE on the evaluation device grid.
@settings(max_examples=10, deadline=None)
@given(
    num_qubits=st.integers(min_value=4, max_value=10),
    depth=st.integers(min_value=4, max_value=20),
    circuit_seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_window_size_invariance_property(num_qubits, depth, circuit_seed):
    circ = random_circuit(num_qubits, depth, seed=circuit_seed)
    circ.measure_all()
    opts = TranspileOptions(routing="sabre", **O0)
    ref_text, ref = routed_reference(circ, GRID_TARGET, opts)
    expected_gates = sum(1 for inst in ref.circuit.data if inst.name != "barrier")
    for window in (64, 512, 10**6):
        text, summary = stream_text(circ, GRID_TARGET, opts, window_gates=window)
        assert text == ref_text, f"window={window} diverged from whole-circuit routing"
        assert summary["emitted_gates"] == expected_gates
        assert summary["depth"] == ref.circuit.depth()
        assert summary["num_swaps"] == ref.num_swaps

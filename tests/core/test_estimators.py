"""Tests for the NASSC CNOT-reduction estimators (C2q, Ccommute1, Ccommute2)."""

import pytest

from repro.circuit import QuantumCircuit
from repro.circuit.gates import gate as make_gate
from repro.core.estimators import OptimizationEstimator, SwapEstimate


def make_history(circuit):
    history = {q: [] for q in range(circuit.num_qubits)}
    for pos, inst in enumerate(circuit.data):
        for q in inst.qubits:
            history[q].append(pos)
    return history


class TestTrailingBlock:
    def test_collects_contiguous_pair_gates(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.rz(0.3, 1)
        circuit.cx(0, 1)
        estimator = OptimizationEstimator()
        block = estimator.trailing_block(circuit, make_history(circuit), 0, 1)
        assert block == [0, 1, 2]

    def test_stops_at_foreign_qubit_gate(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        estimator = OptimizationEstimator()
        block = estimator.trailing_block(circuit, make_history(circuit), 0, 1)
        assert block == []

    def test_stops_at_barrier(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.barrier()
        estimator = OptimizationEstimator()
        assert estimator.trailing_block(circuit, make_history(circuit), 0, 1) == []

    def test_empty_wires(self):
        circuit = QuantumCircuit(2)
        estimator = OptimizationEstimator()
        assert estimator.trailing_block(circuit, make_history(circuit), 0, 1) == []


class TestC2q:
    def test_single_cx_block_gives_reduction_two(self):
        # cx + swap re-synthesises to 2 CNOTs instead of 1 + 3: reduction = 2 (paper Fig. 1b).
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        estimator = OptimizationEstimator()
        assert estimator.estimate_c2q(circuit, make_history(circuit), 0, 1) == 2

    def test_three_cnot_block_gives_full_reduction(self):
        # Once the trailing block already needs three CNOTs the SWAP is free (reduction 3).
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.rz(0.4, 0)
        circuit.ry(0.7, 1)
        circuit.cx(1, 0)
        circuit.rz(1.1, 1)
        circuit.cx(0, 1)
        estimator = OptimizationEstimator()
        assert estimator.estimate_c2q(circuit, make_history(circuit), 0, 1) == 3

    def test_no_block_gives_zero(self):
        circuit = QuantumCircuit(3)
        circuit.cx(1, 2)
        estimator = OptimizationEstimator()
        assert estimator.estimate_c2q(circuit, make_history(circuit), 0, 1) == 0

    def test_only_single_qubit_gates_gives_zero(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.t(1)
        estimator = OptimizationEstimator()
        assert estimator.estimate_c2q(circuit, make_history(circuit), 0, 1) == 0

    def test_cache_reused(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        estimator = OptimizationEstimator()
        history = make_history(circuit)
        estimator.estimate_c2q(circuit, history, 0, 1)
        size_before = len(estimator._count_cache)
        estimator.estimate_c2q(circuit, history, 0, 1)
        assert len(estimator._count_cache) == size_before


class TestCommutationEstimates:
    def test_cancellable_cx_found(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        estimator = OptimizationEstimator()
        c1, c2, orientation = estimator.estimate_commutation(circuit, make_history(circuit), 0, 1)
        assert c1 == 2 and c2 == 0
        assert orientation == 0

    def test_orientation_follows_cx_direction(self):
        circuit = QuantumCircuit(2)
        circuit.cx(1, 0)
        estimator = OptimizationEstimator()
        _, _, orientation = estimator.estimate_commutation(circuit, make_history(circuit), 0, 1)
        assert orientation == 1

    def test_single_qubit_gates_are_skipped(self):
        # Single-qubit gates before the SWAP are moved through it, so they do not block.
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.rz(0.3, 0)
        circuit.h(1)
        estimator = OptimizationEstimator()
        c1, _, orientation = estimator.estimate_commutation(circuit, make_history(circuit), 0, 1)
        assert c1 == 2 and orientation == 0

    def test_commuting_cx_does_not_block(self):
        # A CNOT sharing the target commutes with the SWAP's first CNOT (paper Fig. 4).
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.cx(2, 1)
        estimator = OptimizationEstimator()
        c1, _, orientation = estimator.estimate_commutation(circuit, make_history(circuit), 0, 1)
        assert c1 == 2 and orientation == 0

    def test_non_commuting_gate_blocks(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.cx(1, 2)  # does not commute with cx(0,1) and touches qubit 1
        estimator = OptimizationEstimator()
        c1, c2, orientation = estimator.estimate_commutation(circuit, make_history(circuit), 0, 1)
        assert c1 == 0 and c2 == 0

    def test_previous_swap_detected_for_ccommute2(self):
        circuit = QuantumCircuit(3)
        circuit.swap(0, 1)
        circuit.cx(0, 2)  # commutes with cx(0,1) (shared control)
        estimator = OptimizationEstimator()
        c1, c2, orientation = estimator.estimate_commutation(circuit, make_history(circuit), 0, 1)
        assert c1 == 0 and c2 == 2
        assert orientation == 0

    def test_empty_circuit_gives_zero(self):
        circuit = QuantumCircuit(2)
        estimator = OptimizationEstimator()
        assert estimator.estimate_commutation(circuit, make_history(circuit), 0, 1) == (0, 0, None)


class TestFullEstimate:
    def test_enable_flags_respected(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        estimator = OptimizationEstimator()
        history = make_history(circuit)
        full = estimator.estimate(circuit, history, 0, 1)
        assert full.c2q == 2 and full.ccommute1 == 2
        disabled = estimator.estimate(
            circuit, history, 0, 1, enable_2q=False, enable_commute1=False, enable_commute2=False
        )
        assert disabled.total() == 0

    def test_total_respects_flags(self):
        estimate = SwapEstimate(c2q=2, ccommute1=2, ccommute2=0)
        assert estimate.total() == 4
        assert estimate.total(enable_2q=False) == 2
        assert estimate.total(enable_commute1=False) == 2

"""Tests for the NASSC router and its configuration."""

import pytest

from repro.circuit import QuantumCircuit, random_cx_circuit
from repro.core import NASSCConfig
from repro.core.nassc import NASSCRouting, NASSCSwapRouter
from repro.hardware import linear_coupling_map
from repro.transpiler import PropertySet
from repro.transpiler.passes import SabreSwapRouter, coupling_violations


class TestNASSCConfig:
    def test_default_enables_everything(self):
        config = NASSCConfig()
        assert config.as_tuple() == (True, True, True)

    def test_all_combinations_has_eight_unique_entries(self):
        combos = NASSCConfig.all_combinations()
        assert len(combos) == 8
        assert len({c.as_tuple() for c in combos}) == 8


class TestNASSCSwapRouter:
    def test_routes_respect_coupling(self, linear10):
        circuit = random_cx_circuit(8, 30, seed=4)
        result = NASSCSwapRouter(linear10, seed=4).route(circuit)
        assert not coupling_violations(result.circuit, linear10)
        assert result.circuit.cx_count() == 30

    def test_mapped_circuit_needs_no_swaps(self, linear5):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        result = NASSCSwapRouter(linear5, seed=0).route(circuit)
        assert result.num_swaps == 0

    def test_deterministic_with_seed(self, linear10):
        circuit = random_cx_circuit(6, 25, seed=8)
        first = NASSCSwapRouter(linear10, seed=3).route(circuit)
        second = NASSCSwapRouter(linear10, seed=3).route(circuit)
        assert [i.qubits for i in first.circuit.data] == [i.qubits for i in second.circuit.data]

    def test_labels_recorded_for_cancellable_swaps(self, linear5):
        # cx(0,1) then a gate needing a swap right next to it: the chosen swap should carry
        # an orientation label when a cancellation opportunity exists.
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.cx(0, 2)
        circuit.cx(0, 1)
        router = NASSCSwapRouter(linear_coupling_map(3), seed=0)
        result = router.route(circuit)
        swap_instructions = [inst for inst in result.circuit.data if inst.name == "swap"]
        if swap_instructions:
            assert any(inst.gate.label for inst in swap_instructions) or not result.swap_labels

    def test_prefers_swap_adjacent_to_existing_block(self):
        # Paper Fig. 1: with two equal-distance SWAP options NASSC picks the one next to an
        # existing CNOT so the SWAP can be absorbed.
        coupling = linear_coupling_map(3)
        circuit = QuantumCircuit(3)
        circuit.cx(1, 2)
        circuit.cx(0, 1)
        circuit.cx(0, 2)
        nassc = NASSCSwapRouter(coupling, seed=0).route(circuit)
        assert nassc.num_swaps >= 1
        assert not coupling_violations(nassc.circuit, coupling)

    def test_disabled_config_matches_plain_distance_choice(self, linear10):
        # With every optimization disabled the cost function reduces to 3x the SABRE distance
        # term, so the swap count should match SABRE's for the same seed.
        circuit = random_cx_circuit(7, 20, seed=12)
        config = NASSCConfig(False, False, False)
        nassc = NASSCSwapRouter(linear10, seed=7, config=config).route(circuit)
        sabre = SabreSwapRouter(linear10, seed=7).route(circuit)
        assert nassc.num_swaps == sabre.num_swaps

    @pytest.mark.parametrize("config", NASSCConfig.all_combinations())
    def test_all_configurations_produce_valid_routes(self, config, linear5):
        circuit = random_cx_circuit(5, 12, seed=1)
        result = NASSCSwapRouter(linear5, seed=1, config=config).route(circuit)
        assert not coupling_violations(result.circuit, linear5)


class TestNASSCRoutingPass:
    def test_pass_sets_properties(self, linear5):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 2)
        props = PropertySet()
        routed = NASSCRouting(linear5, seed=0).run_circuit(circuit, props)
        assert "final_layout" in props
        assert props["num_swaps"] >= 1
        assert not coupling_violations(routed, linear5)

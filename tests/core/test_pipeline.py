"""Integration tests for the full SABRE and NASSC compilation pipelines."""

import numpy as np
import pytest

from repro.benchlib import adder_n10, bv_n5, grover_n4, mod5mils_65, qft, qpe, vqe_ansatz
from repro.circuit import QuantumCircuit, random_circuit
from repro.core import NASSCConfig, compare_routings, optimize_logical, transpile
from repro.evaluation.metrics import is_equivalent_after_routing, routed_state_fidelity
from repro.exceptions import TranspilerError
from repro.hardware import (
    fake_montreal_calibration,
    grid_coupling_map,
    linear_coupling_map,
    montreal_coupling_map,
)
from repro.transpiler.passes import coupling_violations


SMALL_BENCHMARKS = [
    ("bv_n5", bv_n5()),
    ("grover_n4", grover_n4()),
    ("mod5mils_65", mod5mils_65()),
    ("qpe_5", qpe(4)),
    ("qft_5", qft(5)),
]


class TestTranspileBasics:
    def test_unknown_routing_rejected(self):
        with pytest.raises(TranspilerError):
            transpile(QuantumCircuit(2), linear_coupling_map(3), routing="magic")

    def test_coupling_map_required(self):
        with pytest.raises(TranspilerError):
            transpile(QuantumCircuit(2), None, routing="sabre")

    def test_noise_aware_requires_calibration(self):
        with pytest.raises(TranspilerError):
            transpile(QuantumCircuit(2), linear_coupling_map(3), routing="sabre", noise_aware=True)

    def test_routing_none_only_optimizes(self):
        circuit = grover_n4()
        result = transpile(circuit, routing="none")
        assert result.num_swaps == 0
        assert result.circuit.num_qubits == circuit.num_qubits

    def test_output_uses_hardware_basis(self, linear5):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.ccx(0, 1, 2)
        result = transpile(circuit, linear5, routing="sabre", seed=0)
        names = {inst.name for inst in result.circuit.data}
        assert names <= {"cx", "rz", "sx", "x", "barrier", "measure"}

    def test_result_metrics_consistent(self, linear5):
        circuit = grover_n4()
        result = transpile(circuit, linear5, routing="nassc", seed=0)
        assert result.cx_count == result.circuit.cx_count()
        assert result.depth == result.circuit.depth()
        assert result.transpile_time > 0
        assert result.pass_timings

    def test_optimize_logical_never_increases_cnots(self):
        circuit = vqe_ansatz(6, reps=2)
        optimized = optimize_logical(circuit)
        assert optimized.cx_count() <= circuit.cx_count()

    def test_compare_routings_returns_both(self, linear5):
        results = compare_routings(grover_n4(), linear5, seed=0)
        assert set(results) == {"sabre", "nassc"}


class TestPipelineCorrectness:
    @pytest.mark.parametrize("name,circuit", SMALL_BENCHMARKS, ids=[n for n, _ in SMALL_BENCHMARKS])
    @pytest.mark.parametrize("routing", ["sabre", "nassc"])
    def test_benchmarks_preserved_on_linear_topology(self, name, circuit, routing):
        coupling = linear_coupling_map(max(circuit.num_qubits + 1, 6))
        result = transpile(circuit, coupling, routing=routing, seed=0)
        assert not coupling_violations(result.circuit, coupling)
        assert is_equivalent_after_routing(circuit, result)

    @pytest.mark.parametrize("routing", ["sabre", "nassc"])
    def test_benchmarks_preserved_on_montreal(self, routing, montreal):
        circuit = grover_n4()
        result = transpile(circuit, montreal, routing=routing, seed=1)
        assert not coupling_violations(result.circuit, montreal)
        assert is_equivalent_after_routing(circuit, result)

    @pytest.mark.parametrize("seed", range(3))
    def test_random_circuits_preserved(self, seed, grid9):
        circuit = random_circuit(6, 6, seed=seed)
        for routing in ("sabre", "nassc"):
            result = transpile(circuit, grid9, routing=routing, seed=seed)
            assert routed_state_fidelity(circuit, result) > 1 - 1e-6

    def test_noise_aware_pipelines_preserved(self, montreal):
        calibration = fake_montreal_calibration()
        circuit = bv_n5()
        for routing in ("sabre", "nassc"):
            result = transpile(
                circuit, montreal, routing=routing, seed=0,
                noise_aware=True, calibration=calibration,
            )
            assert is_equivalent_after_routing(circuit, result)

    def test_measurements_survive_routing(self, linear5):
        circuit = QuantumCircuit(3, 3)
        circuit.h(0)
        circuit.cx(0, 2)
        for q in range(3):
            circuit.measure(q, q)
        result = transpile(circuit, linear5, routing="nassc", seed=0)
        assert result.circuit.count_gate("measure") == 3


class TestPipelineQuality:
    def test_nassc_reduces_added_cnots_on_structured_benchmarks(self, montreal):
        """The paper's headline claim, on a subset: NASSC adds fewer CNOTs than SABRE."""
        total_sabre = 0.0
        total_nassc = 0.0
        for circuit in (grover_n4(), vqe_ansatz(6, reps=2), adder_n10()):
            original = optimize_logical(circuit).cx_count()
            for seed in (0, 1):
                sabre = transpile(circuit, montreal, routing="sabre", seed=seed)
                nassc = transpile(circuit, montreal, routing="nassc", seed=seed)
                total_sabre += sabre.cx_count - original
                total_nassc += nassc.cx_count - original
        assert total_nassc < total_sabre

    def test_nassc_never_catastrophically_worse(self, linear10):
        circuit = qft(6)
        sabre = transpile(circuit, linear10, routing="sabre", seed=0)
        nassc = transpile(circuit, linear10, routing="nassc", seed=0)
        assert nassc.cx_count <= 2 * sabre.cx_count

    def test_ablation_configs_all_run(self, linear5):
        circuit = grover_n4()
        counts = []
        for config in NASSCConfig.all_combinations():
            result = transpile(circuit, linear5, routing="nassc", seed=0, nassc_config=config)
            counts.append(result.cx_count)
            assert is_equivalent_after_routing(circuit, result)
        assert min(counts) > 0

    def test_fully_mapped_circuit_adds_nothing(self, linear5):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        result = transpile(circuit, linear5, routing="nassc", seed=0)
        assert result.num_swaps == 0
        assert result.cx_count <= 2

"""Tests for single-qubit gate movement through SWAPs."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.circuit import QuantumCircuit, random_circuit
from repro.core import CommuteSingleQubitsThroughSwap
from repro.transpiler import PassManager

from ..conftest import assert_unitary_equiv


def run_pass(circuit):
    return PassManager([CommuteSingleQubitsThroughSwap()]).run(circuit)


class TestSingleQubitMotion:
    def test_gate_moves_to_swapped_wire(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.swap(0, 1)
        moved = run_pass(circuit)
        assert [inst.name for inst in moved.data] == ["swap", "h"]
        assert moved.data[1].qubits == (1,)
        assert_unitary_equiv(circuit, moved)

    def test_run_of_gates_keeps_order(self):
        circuit = QuantumCircuit(2)
        circuit.t(0)
        circuit.h(0)
        circuit.swap(0, 1)
        moved = run_pass(circuit)
        assert [inst.name for inst in moved.data] == ["swap", "t", "h"]
        assert all(inst.qubits == (1,) for inst in moved.data[1:])
        assert_unitary_equiv(circuit, moved)

    def test_both_wires_move(self):
        circuit = QuantumCircuit(2)
        circuit.rz(0.5, 0)
        circuit.rx(0.3, 1)
        circuit.swap(0, 1)
        moved = run_pass(circuit)
        assert moved.data[0].name == "swap"
        assert {inst.qubits for inst in moved.data[1:]} == {(0,), (1,)}
        assert_unitary_equiv(circuit, moved)

    def test_two_qubit_gate_blocks_motion(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.cx(0, 2)
        circuit.swap(0, 1)
        moved = run_pass(circuit)
        assert [inst.name for inst in moved.data] == ["h", "cx", "swap"]
        assert_unitary_equiv(circuit, moved)

    def test_chained_swaps_carry_gate_forward(self):
        circuit = QuantumCircuit(3)
        circuit.t(0)
        circuit.swap(0, 1)
        circuit.swap(1, 2)
        moved = run_pass(circuit)
        # The T gate should follow its logical qubit: 0 -> 1 -> 2.
        t_gates = [inst for inst in moved.data if inst.name == "t"]
        assert t_gates[0].qubits == (2,)
        assert_unitary_equiv(circuit, moved)

    def test_gates_after_swap_untouched(self):
        circuit = QuantumCircuit(2)
        circuit.swap(0, 1)
        circuit.h(0)
        moved = run_pass(circuit)
        assert [inst.name for inst in moved.data] == ["swap", "h"]
        assert moved.data[1].qubits == (0,)

    def test_interleaved_other_wires_preserved(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.cx(1, 2)
        circuit.swap(0, 1)
        moved = run_pass(circuit)
        assert_unitary_equiv(circuit, moved)
        assert moved.count_gate("cx") == 1

    def test_measure_blocks_motion(self):
        circuit = QuantumCircuit(2, 1)
        circuit.h(0)
        circuit.measure(0, 0)
        circuit.swap(0, 1)
        moved = run_pass(circuit)
        assert [inst.name for inst in moved.data] == ["h", "measure", "swap"]

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_property_preserves_unitary(self, seed):
        circuit = random_circuit(4, 6, seed=seed, gate_names=["cx", "swap"])
        moved = run_pass(circuit)
        assert_unitary_equiv(circuit, moved)
        assert moved.size() == circuit.size()

"""Tests reproducing the paper's illustrative figures (Figs. 1, 3, 4, 7).

These tests demonstrate the paper's motivating observations directly on the library:
different SWAP insertions with the same SWAP count can have different CNOT cost once the
post-routing optimizations run.
"""

import numpy as np
import pytest

from repro.circuit import QuantumCircuit
from repro.core import transpile
from repro.hardware import linear_coupling_map
from repro.synthesis import cnot_count
from repro.transpiler import PassManager
from repro.transpiler.passes import CommutativeCancellation, SwapLowering, UnitarySynthesis

from ..conftest import assert_unitary_equiv


def figure1_logical_circuit() -> QuantumCircuit:
    """Pairwise two-qubit interactions between (1,2), (0,1) and (0,2) (paper Fig. 1)."""
    circuit = QuantumCircuit(3)
    circuit.crx(0.7, 1, 2)   # U1
    circuit.crx(0.9, 0, 1)   # U2
    circuit.crx(1.1, 0, 2)   # U3 -- not executable on a line 0-1-2
    return circuit


class TestFigure1:
    """Not all SWAPs have the same cost: the two routing options differ by two CNOTs."""

    def _route_option(self, swap_pair):
        circuit = figure1_logical_circuit()
        routed = QuantumCircuit(3)
        routed.crx(0.7, 1, 2)
        routed.crx(0.9, 0, 1)
        routed.swap(*swap_pair)
        # After swapping, the (0,2) interaction lands on an adjacent pair.
        if swap_pair == (0, 1):
            routed.crx(1.1, 1, 2)
        else:
            routed.crx(1.1, 0, 1)
        return circuit, routed

    def _optimized_cx(self, routed):
        pm = PassManager([SwapLowering(), UnitarySynthesis(), CommutativeCancellation(),
                          UnitarySynthesis()])
        return pm.run(routed).cx_count()

    def test_option_b_cheaper_than_option_a(self):
        _, option_a = self._route_option((0, 1))
        _, option_b = self._route_option((1, 2))
        cost_a = self._optimized_cx(option_a)
        cost_b = self._optimized_cx(option_b)
        # The SWAP adjacent to the (1,2) interaction is absorbed into its block.
        assert cost_b < cost_a

    def test_both_options_are_semantically_valid_routings(self):
        for pair in ((0, 1), (1, 2)):
            circuit, routed = self._route_option(pair)
            # Relabel the original's qubits according to the swap to compare.
            mapping = {0: 0, 1: 1, 2: 2}
            mapping[pair[0]], mapping[pair[1]] = mapping[pair[1]], mapping[pair[0]]
            relabelled = QuantumCircuit(3)
            relabelled.crx(0.7, 1, 2)
            relabelled.crx(0.9, 0, 1)
            relabelled.crx(1.1, mapping[0], mapping[2])
            lowered = PassManager([SwapLowering()]).run(routed)
            reference = QuantumCircuit(3)
            reference.crx(0.7, 1, 2)
            reference.crx(0.9, 0, 1)
            reference.swap(*pair)
            reference.crx(1.1, *( (1, 2) if pair == (0, 1) else (0, 1) ))
            assert_unitary_equiv(lowered, reference)


class TestFigure3:
    """Two-qubit block re-synthesis reduces the cost of an adjacent SWAP."""

    def test_block_plus_swap_needs_two_cnots(self):
        block = QuantumCircuit(2)
        block.cx(0, 1)
        block.rz(0.3, 1)
        matrix = block.to_matrix()
        swap = QuantumCircuit(2)
        swap.swap(0, 1)
        assert cnot_count(swap.to_matrix() @ matrix) == 2

    def test_three_cnot_block_plus_swap_is_free(self):
        rng = np.random.default_rng(3)
        block = QuantumCircuit(2)
        block.cx(0, 1)
        block.ry(rng.uniform(0.3, 1.2), 0)
        block.rz(rng.uniform(0.3, 1.2), 1)
        block.cx(1, 0)
        block.ry(rng.uniform(0.3, 1.2), 1)
        block.cx(0, 1)
        swap = QuantumCircuit(2)
        swap.swap(0, 1)
        assert cnot_count(block.to_matrix()) == 3
        # The SWAP is "free": the combined block still needs at most three CNOTs.
        assert cnot_count(swap.to_matrix() @ block.to_matrix()) <= 3


class TestFigure4:
    """Gate commutation + cancellation makes one SWAP decomposition cheaper."""

    def test_oriented_swap_cancels_against_commuting_cnots(self):
        # cx(0,2); cx(1,2); swap(1,2) with the swap's first CNOT oriented as cx(1,2):
        # the first CNOT of the SWAP cancels with cx(1,2) through commutation with cx(0,2).
        circuit = QuantumCircuit(3)
        circuit.cx(1, 2)
        circuit.cx(0, 2)
        circuit.swap(1, 2, label="ctrl:1")
        optimized = PassManager([SwapLowering(), CommutativeCancellation()]).run(circuit)
        assert optimized.cx_count() == 3  # 2 original + 3 swap - 2 cancelled
        assert_unitary_equiv(circuit, optimized)

    def test_wrong_orientation_misses_the_cancellation(self):
        circuit = QuantumCircuit(3)
        circuit.cx(1, 2)
        circuit.cx(0, 2)
        circuit.swap(1, 2, label="ctrl:2")
        optimized = PassManager([SwapLowering(), CommutativeCancellation()]).run(circuit)
        assert optimized.cx_count() >= 4
        assert_unitary_equiv(circuit, optimized)


class TestEndToEndMotivation:
    def test_nassc_beats_sabre_on_figure1_style_workload(self):
        """Routing the Fig. 1 workload with NASSC should not cost more CNOTs than SABRE."""
        coupling = linear_coupling_map(3)
        circuit = figure1_logical_circuit()
        sabre = transpile(circuit, coupling, routing="sabre", seed=0)
        nassc = transpile(circuit, coupling, routing="nassc", seed=0)
        assert nassc.cx_count <= sabre.cx_count

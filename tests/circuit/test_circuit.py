"""Unit tests for the QuantumCircuit container."""

import math

import numpy as np
import pytest

from repro.circuit import Instruction, QuantumCircuit, expand_gate_matrix, gate
from repro.exceptions import CircuitError
from repro.synthesis import allclose_up_to_global_phase


class TestConstruction:
    def test_builder_methods_record_instructions(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.rz(0.5, 2)
        assert len(circuit) == 3
        assert circuit.data[1].qubits == (0, 1)

    def test_out_of_range_qubit_rejected(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(CircuitError):
            circuit.x(2)

    def test_duplicate_qubits_rejected(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(CircuitError):
            circuit.cx(1, 1)

    def test_measure_requires_clbit(self):
        circuit = QuantumCircuit(2, 1)
        circuit.measure(0, 0)
        with pytest.raises(CircuitError):
            circuit.measure(1, 5)

    def test_measure_all_grows_clbits(self):
        circuit = QuantumCircuit(3)
        circuit.measure_all()
        assert circuit.num_clbits == 3
        assert circuit.count_gate("measure") == 3

    def test_negative_register_rejected(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(-1)


class TestMetrics:
    def test_counts_and_size(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        circuit.barrier()
        circuit.t(2)
        assert circuit.count_ops() == {"h": 1, "cx": 2, "barrier": 1, "t": 1}
        assert circuit.size() == 4
        assert circuit.cx_count() == 2
        assert circuit.num_nonlocal_gates() == 2

    def test_depth_series(self):
        circuit = QuantumCircuit(1)
        for _ in range(5):
            circuit.x(0)
        assert circuit.depth() == 5

    def test_depth_parallel(self):
        circuit = QuantumCircuit(4)
        for q in range(4):
            circuit.h(q)
        assert circuit.depth() == 1

    def test_depth_with_two_qubit_gates(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        assert circuit.depth() == 3

    def test_barrier_does_not_count_as_depth_layer(self):
        with_barrier = QuantumCircuit(2)
        with_barrier.h(0)
        with_barrier.barrier()
        with_barrier.h(1)
        assert with_barrier.depth() == 2  # barrier synchronises, h(1) starts after h(0)

    def test_two_qubit_only_depth(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.h(1)
        circuit.cx(0, 1)
        assert circuit.depth(two_qubit_only=True) == 2

    def test_two_qubit_pairs(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 2)
        circuit.cz(1, 2)
        assert circuit.two_qubit_pairs() == [(0, 2), (1, 2)]

    def test_active_qubits(self):
        circuit = QuantumCircuit(5)
        circuit.cx(1, 3)
        assert circuit.active_qubits() == [1, 3]


class TestTransformations:
    def test_copy_is_deep_for_data(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        copy = circuit.copy()
        copy.x(1)
        assert len(circuit) == 1 and len(copy) == 2

    def test_inverse_reverses_unitary(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.t(1)
        product = circuit.compose(circuit.inverse())
        assert allclose_up_to_global_phase(product.to_matrix(), np.eye(4))

    def test_inverse_rejects_measurement(self):
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0)
        with pytest.raises(CircuitError):
            circuit.inverse()

    def test_compose_with_mapping(self):
        inner = QuantumCircuit(2)
        inner.cx(0, 1)
        outer = QuantumCircuit(3)
        combined = outer.compose(inner, qubits=[2, 0])
        assert combined.data[0].qubits == (2, 0)

    def test_compose_length_mismatch(self):
        inner = QuantumCircuit(2)
        outer = QuantumCircuit(3)
        with pytest.raises(CircuitError):
            outer.compose(inner, qubits=[0])

    def test_remap_qubits(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        remapped = circuit.remap_qubits({0: 3, 1: 1}, num_qubits=5)
        assert remapped.num_qubits == 5
        assert remapped.data[0].qubits == (3, 1)

    def test_without_directives(self):
        circuit = QuantumCircuit(2, 2)
        circuit.h(0)
        circuit.barrier()
        circuit.measure(0, 0)
        stripped = circuit.without_directives()
        assert stripped.count_ops() == {"h": 1}

    def test_reverse_ops(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        reversed_circ = circuit.reverse_ops()
        assert [inst.name for inst in reversed_circ.data] == ["cx", "h"]


class TestUnitaryExtraction:
    def test_bell_state_unitary(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        state = circuit.to_matrix()[:, 0]
        expected = np.array([1, 0, 0, 1]) / math.sqrt(2)
        assert np.allclose(state, expected)

    def test_swap_equals_three_cnots(self):
        swap_circuit = QuantumCircuit(2)
        swap_circuit.swap(0, 1)
        cx_circuit = QuantumCircuit(2)
        cx_circuit.cx(0, 1)
        cx_circuit.cx(1, 0)
        cx_circuit.cx(0, 1)
        assert np.allclose(swap_circuit.to_matrix(), cx_circuit.to_matrix())

    def test_gate_order_matters(self):
        circuit = QuantumCircuit(1)
        circuit.x(0)
        circuit.h(0)
        expected = gate("h").matrix() @ gate("x").matrix()
        assert np.allclose(circuit.to_matrix(), expected)

    def test_large_circuit_refused(self):
        circuit = QuantumCircuit(14)
        with pytest.raises(CircuitError):
            circuit.to_matrix(max_qubits=10)

    def test_measurement_refused(self):
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0)
        with pytest.raises(CircuitError):
            circuit.to_matrix()

    def test_expand_gate_matrix_on_nonadjacent_qubits(self):
        cx_02 = expand_gate_matrix(gate("cx").matrix(), [0, 2], 3)
        circuit = QuantumCircuit(3)
        circuit.cx(0, 2)
        assert np.allclose(cx_02, circuit.to_matrix())

    def test_expand_gate_matrix_reversed_order(self):
        cx_20 = expand_gate_matrix(gate("cx").matrix(), [2, 0], 3)
        circuit = QuantumCircuit(3)
        circuit.cx(2, 0)
        assert np.allclose(cx_20, circuit.to_matrix())

    def test_expand_wrong_size_rejected(self):
        with pytest.raises(CircuitError):
            expand_gate_matrix(np.eye(4), [0], 2)

"""Property tests for the flyweight gate layer.

Covers the contracts the vectorized hot path relies on: every named gate matrix is
unitary for arbitrary parameters, ``inverse()`` round-trips to the identity, interning
returns the same immutable instance, the shared matrix cache serves read-only arrays,
and content fingerprints are stable across processes (interning must not leak
process-local state into hashes).
"""

import math
import os
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.gates import GATE_SPECS, Gate, gate
from repro.exceptions import CircuitError
from repro.synthesis import allclose_up_to_global_phase
from repro.synthesis.linalg import is_unitary

PARAMETRISED = sorted(
    name for name, spec in GATE_SPECS.items()
    if spec.matrix_fn is not None and spec.num_params > 0
)
PARAMETERLESS = sorted(
    name for name, spec in GATE_SPECS.items()
    if spec.matrix_fn is not None and spec.num_params == 0
)
INVERTIBLE = sorted(
    name for name, spec in GATE_SPECS.items()
    if spec.matrix_fn is not None and name != "unitary"
)

angles = st.floats(
    min_value=-4.0 * math.pi, max_value=4.0 * math.pi,
    allow_nan=False, allow_infinity=False,
)


class TestUnitarity:
    @pytest.mark.parametrize("name", PARAMETERLESS)
    def test_fixed_matrices_unitary(self, name):
        assert is_unitary(gate(name).matrix())

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_parametrised_matrices_unitary_for_any_angles(self, data):
        name = data.draw(st.sampled_from(PARAMETRISED))
        params = [data.draw(angles) for _ in range(GATE_SPECS[name].num_params)]
        matrix = gate(name, *params).matrix()
        assert is_unitary(matrix, tol=1e-9)


class TestInverse:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_inverse_round_trips_to_identity(self, data):
        name = data.draw(st.sampled_from(INVERTIBLE))
        params = [data.draw(angles) for _ in range(GATE_SPECS[name].num_params)]
        g = gate(name, *params)
        product = g.inverse().matrix() @ g.matrix()
        identity = np.eye(product.shape[0])
        assert allclose_up_to_global_phase(product, identity, tol=1e-9)


class TestFlyweightInterning:
    def test_parameterless_gates_are_interned(self):
        for name in PARAMETERLESS + ["measure", "reset", "barrier"]:
            assert gate(name) is gate(name), name

    def test_parametrised_gates_are_not_interned(self):
        assert gate("rz", 0.5) is not gate("rz", 0.5)

    def test_interned_gates_are_immutable(self):
        g = gate("x")
        with pytest.raises(CircuitError, match="immutable"):
            g.label = "boom"
        with pytest.raises(CircuitError, match="immutable"):
            g.params = (1.0,)

    def test_interned_copy_returns_self(self):
        g = gate("cx")
        assert g.copy() is g

    def test_with_label_returns_fresh_mutable_instance(self):
        labelled = gate("swap").with_label("ctrl:1")
        assert labelled is not gate("swap")
        assert labelled.label == "ctrl:1"
        labelled.label = "ctrl:0"  # mutable
        assert gate("swap").label is None

    def test_cache_token_is_stable_and_shared(self):
        assert gate("x").cache_token is gate("x").cache_token
        assert gate("rz", 0.5).cache_token == ("rz", (0.5,))
        with pytest.raises(CircuitError):
            Gate("unitary", (), np.eye(2)).cache_token


class TestSharedMatrixCache:
    def test_identical_gates_share_the_matrix_array(self):
        assert gate("x").matrix() is gate("x").matrix()
        assert gate("rz", 0.25).matrix() is gate("rz", 0.25).matrix()

    def test_cached_matrices_are_read_only(self):
        matrix = gate("h").matrix()
        with pytest.raises(ValueError):
            matrix[0, 0] = 2.0

    def test_explicit_unitary_matrices_stay_private(self):
        g = Gate("unitary", (), np.eye(2))
        assert g.matrix() is not g.matrix()
        g.matrix()[0, 0] = 5.0  # mutating the copy must not corrupt the gate
        assert g.matrix()[0, 0] == 1.0


class TestCrossProcessFingerprints:
    """Interning and matrix caching must not leak into content hashes."""

    SCRIPT = """
import json
from repro import QuantumCircuit, Target, TranspileOptions
from repro.hardware import linear_coupling_map
from repro.service.jobs import TranspileJob

circuit = QuantumCircuit(3, name="fp-probe")
circuit.h(0)
circuit.cx(0, 1)
circuit.rz(0.3125, 2)
circuit.swap(1, 2, label="ctrl:1")
job = TranspileJob.from_circuit(
    circuit,
    target=Target(coupling_map=linear_coupling_map(3)),
    options=TranspileOptions(routing="sabre", seed=0),
)
print(json.dumps({"job": job.fingerprint()}))
"""

    def _run_probe(self, hash_seed):
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(src)
        env["PYTHONHASHSEED"] = hash_seed
        proc = subprocess.run(
            [sys.executable, "-c", self.SCRIPT],
            capture_output=True, text=True, env=env, check=True,
        )
        import json

        return json.loads(proc.stdout.strip())

    def test_job_fingerprint_identical_across_processes(self):
        first = self._run_probe("1")
        second = self._run_probe("2")  # different interpreter hash randomisation
        assert first == second
        assert len(first["job"]) == 64  # sha256 hex

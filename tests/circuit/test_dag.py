"""Unit tests for the DAG circuit representation and the execution frontier."""

import pytest

from repro.circuit import DAGCircuit, ExecutionFrontier, QuantumCircuit
from repro.exceptions import CircuitError


def layered_circuit() -> QuantumCircuit:
    circuit = QuantumCircuit(4)
    circuit.h(0)          # 0
    circuit.cx(0, 1)      # 1
    circuit.cx(2, 3)      # 2
    circuit.cx(1, 2)      # 3
    circuit.x(3)          # 4
    return circuit


class TestDAGConstruction:
    def test_round_trip_preserves_order_per_wire(self):
        circuit = layered_circuit()
        rebuilt = DAGCircuit.from_circuit(circuit).to_circuit()
        assert rebuilt.count_ops() == circuit.count_ops()
        assert [i.name for i in rebuilt.data if 0 in i.qubits] == ["h", "cx"]
        assert [i.qubits for i in rebuilt.data if 2 in i.qubits] == [(2, 3), (1, 2)]

    def test_front_layer(self):
        dag = DAGCircuit.from_circuit(layered_circuit())
        front = dag.front_layer()
        assert {n.name for n in front} == {"h", "cx"}
        assert {n.qubits for n in front} == {(0,), (2, 3)}

    def test_successors_and_predecessors(self):
        dag = DAGCircuit.from_circuit(layered_circuit())
        nodes = dag.op_nodes()
        h_node = nodes[0]
        cx01 = nodes[1]
        assert dag.successors(h_node) == [cx01]
        assert dag.predecessors(cx01) == [h_node]

    def test_topological_order_respects_dependencies(self):
        dag = DAGCircuit.from_circuit(layered_circuit())
        order = [n.node_id for n in dag.topological_nodes()]
        position = {nid: i for i, nid in enumerate(order)}
        for node in dag.op_nodes():
            for succ in dag.successors(node):
                assert position[node.node_id] < position[succ.node_id]

    def test_descendants(self):
        dag = DAGCircuit.from_circuit(layered_circuit())
        nodes = dag.op_nodes()
        assert nodes[3].node_id in dag.descendants(nodes[0])

    def test_two_qubit_nodes(self):
        dag = DAGCircuit.from_circuit(layered_circuit())
        assert len(dag.two_qubit_nodes()) == 3

    def test_out_of_range_qubit_rejected(self):
        dag = DAGCircuit(2)
        with pytest.raises(CircuitError):
            dag.add_node(layered_circuit().data[0].gate, (5,))

    def test_measure_creates_clbit_dependency(self):
        circuit = QuantumCircuit(2, 1)
        circuit.measure(0, 0)
        circuit.measure(1, 0)
        dag = DAGCircuit.from_circuit(circuit)
        nodes = dag.op_nodes()
        assert dag.predecessors(nodes[1]) == [nodes[0]]


class TestRemoveNode:
    def test_remove_reconnects_wire(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.x(0)
        circuit.cx(0, 1)
        dag = DAGCircuit.from_circuit(circuit)
        nodes = dag.op_nodes()
        dag.remove_node(nodes[1])
        assert len(dag) == 2
        remaining = dag.op_nodes()
        assert dag.successors(remaining[0]) == [remaining[1]]

    def test_remove_front_node_updates_front_layer(self):
        dag = DAGCircuit.from_circuit(layered_circuit())
        first = dag.op_nodes()[0]
        dag.remove_node(first)
        assert all(n.node_id != first.node_id for n in dag.front_layer())

    def test_remove_missing_node_raises(self):
        dag = DAGCircuit.from_circuit(layered_circuit())
        node = dag.op_nodes()[0]
        dag.remove_node(node)
        with pytest.raises(CircuitError):
            dag.remove_node(node)


class TestExecutionFrontier:
    def test_resolve_unlocks_successors(self):
        dag = DAGCircuit.from_circuit(layered_circuit())
        frontier = ExecutionFrontier(dag)
        start_names = {n.name for n in frontier.front}
        assert start_names == {"h", "cx"}
        h_node = next(n for n in frontier.front if n.name == "h")
        newly = frontier.resolve(h_node)
        assert [n.qubits for n in newly] == [(0, 1)]

    def test_cannot_resolve_blocked_node(self):
        dag = DAGCircuit.from_circuit(layered_circuit())
        frontier = ExecutionFrontier(dag)
        blocked = dag.op_nodes()[3]  # cx(1,2) depends on both earlier CNOTs
        with pytest.raises(CircuitError):
            frontier.resolve(blocked)

    def test_full_resolution_drains_dag(self):
        dag = DAGCircuit.from_circuit(layered_circuit())
        frontier = ExecutionFrontier(dag)
        resolved = 0
        while not frontier.is_done():
            frontier.resolve(frontier.front[0])
            resolved += 1
        assert resolved == len(dag)
        assert frontier.num_remaining() == 0

    def test_lookahead_returns_upcoming_two_qubit_gates(self):
        dag = DAGCircuit.from_circuit(layered_circuit())
        frontier = ExecutionFrontier(dag)
        lookahead = frontier.lookahead(5)
        # Successors of the front layer that are not themselves executable yet.
        assert [n.qubits for n in lookahead] == [(0, 1), (1, 2)]
        assert all(n not in frontier.front for n in lookahead)

    def test_lookahead_respects_size(self):
        circuit = QuantumCircuit(2)
        for _ in range(10):
            circuit.cx(0, 1)
        frontier = ExecutionFrontier(DAGCircuit.from_circuit(circuit))
        assert len(frontier.lookahead(3)) == 3

"""Tests for random circuit generation helpers."""

import numpy as np

from repro.circuit import random_circuit, random_cx_circuit, random_unitary
from repro.synthesis import is_unitary


class TestRandomCircuit:
    def test_reproducible_with_seed(self):
        a = random_circuit(5, 6, seed=42)
        b = random_circuit(5, 6, seed=42)
        assert [i.name for i in a.data] == [i.name for i in b.data]
        assert [i.qubits for i in a.data] == [i.qubits for i in b.data]

    def test_qubit_bounds(self):
        circuit = random_circuit(6, 10, seed=1)
        assert all(max(inst.qubits) < 6 for inst in circuit.data)

    def test_depth_scales(self):
        shallow = random_circuit(4, 2, seed=0)
        deep = random_circuit(4, 20, seed=0)
        assert deep.size() > shallow.size()

    def test_two_qubit_probability_extremes(self):
        only_1q = random_circuit(4, 5, seed=0, two_qubit_prob=0.0)
        assert only_1q.num_nonlocal_gates() == 0
        mostly_2q = random_circuit(4, 5, seed=0, two_qubit_prob=1.0)
        assert mostly_2q.num_nonlocal_gates() >= 5


class TestRandomCxCircuit:
    def test_gate_count(self):
        circuit = random_cx_circuit(5, 17, seed=3)
        assert circuit.cx_count() == 17
        assert circuit.count_ops() == {"cx": 17}

    def test_valid_pairs(self):
        circuit = random_cx_circuit(4, 30, seed=5)
        for control, target in circuit.two_qubit_pairs():
            assert control != target


class TestRandomUnitary:
    def test_unitarity(self):
        for dim in (2, 4, 8):
            assert is_unitary(random_unitary(dim, seed=7))

    def test_seed_determinism(self):
        assert np.allclose(random_unitary(4, seed=9), random_unitary(4, seed=9))

    def test_different_seeds_differ(self):
        assert not np.allclose(random_unitary(4, seed=1), random_unitary(4, seed=2))

"""Unit tests for the OpenQASM 2.0 reader/writer."""

import math

import numpy as np
import pytest

from repro.circuit import QuantumCircuit, qasm, random_circuit
from repro.exceptions import QASMError
from repro.synthesis import allclose_up_to_global_phase

SIMPLE = """
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[0];
cx q[0],q[1];
rz(pi/4) q[2];
barrier q[0],q[1];
measure q[0] -> c[0];
"""


class TestParsing:
    def test_simple_program(self):
        circuit = qasm.loads(SIMPLE)
        assert circuit.num_qubits == 3
        assert circuit.num_clbits == 3
        assert circuit.count_ops() == {"h": 1, "cx": 1, "rz": 1, "barrier": 1, "measure": 1}
        assert circuit.data[2].gate.params == (math.pi / 4,)

    def test_comments_ignored(self):
        circuit = qasm.loads("OPENQASM 2.0;\nqreg q[1];\n// a comment\nx q[0]; // trailing\n")
        assert circuit.count_ops() == {"x": 1}

    def test_register_broadcast(self):
        circuit = qasm.loads("OPENQASM 2.0;\nqreg q[3];\nh q;\n")
        assert circuit.count_gate("h") == 3

    def test_measure_register_broadcast(self):
        circuit = qasm.loads("OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\nmeasure q -> c;\n")
        assert circuit.count_gate("measure") == 2

    def test_parameter_expressions(self):
        circuit = qasm.loads("OPENQASM 2.0;\nqreg q[1];\nrz(2*pi/3) q[0];\nrx(-pi) q[0];\n")
        assert circuit.data[0].gate.params[0] == pytest.approx(2 * math.pi / 3)
        assert circuit.data[1].gate.params[0] == pytest.approx(-math.pi)

    def test_multiple_registers_are_concatenated(self):
        text = "OPENQASM 2.0;\nqreg a[2];\nqreg b[2];\ncx a[1],b[0];\n"
        circuit = qasm.loads(text)
        assert circuit.num_qubits == 4
        assert circuit.data[0].qubits == (1, 2)

    def test_custom_gate_definition_inlined(self):
        text = """
        OPENQASM 2.0;
        qreg q[2];
        gate mygate(theta) a, b { h a; cx a, b; rz(theta) b; }
        mygate(pi/2) q[0], q[1];
        """
        circuit = qasm.loads(text)
        assert [inst.name for inst in circuit.data] == ["h", "cx", "rz"]
        assert circuit.data[2].gate.params[0] == pytest.approx(math.pi / 2)

    def test_nested_gate_definitions(self):
        text = """
        OPENQASM 2.0;
        qreg q[2];
        gate inner a { x a; }
        gate outer a, b { inner a; cx a, b; }
        outer q[0], q[1];
        """
        circuit = qasm.loads(text)
        assert [inst.name for inst in circuit.data] == ["x", "cx"]

    def test_cnot_alias(self):
        circuit = qasm.loads("OPENQASM 2.0;\nqreg q[2];\ncnot q[0],q[1];\n")
        assert circuit.data[0].name == "cx"

    def test_unknown_gate_rejected(self):
        with pytest.raises(QASMError):
            qasm.loads("OPENQASM 2.0;\nqreg q[1];\nfoo q[0];\n")

    def test_out_of_range_index_rejected(self):
        with pytest.raises(QASMError):
            qasm.loads("OPENQASM 2.0;\nqreg q[1];\nx q[3];\n")

    def test_malformed_expression_rejected(self):
        with pytest.raises(QASMError):
            qasm.loads("OPENQASM 2.0;\nqreg q[1];\nrz(__import__) q[0];\n")

    def test_classical_control_rejected(self):
        with pytest.raises(QASMError):
            qasm.loads("OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\nif (c==1) x q[0];\n")


class TestRoundTrip:
    def test_dump_and_parse_round_trip(self):
        circuit = QuantumCircuit(3, 3)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.rz(0.25, 2)
        circuit.cp(0.5, 1, 2)
        circuit.barrier(0, 1)
        circuit.measure(2, 2)
        text = qasm.dumps(circuit)
        rebuilt = qasm.loads(text)
        assert rebuilt.count_ops() == circuit.count_ops()
        assert allclose_up_to_global_phase(
            rebuilt.without_directives().to_matrix(), circuit.without_directives().to_matrix()
        )

    def test_round_trip_random_circuits(self):
        for seed in range(5):
            circuit = random_circuit(4, 6, seed=seed)
            rebuilt = qasm.loads(qasm.dumps(circuit))
            assert allclose_up_to_global_phase(
                rebuilt.to_matrix(), circuit.to_matrix(), 1e-6
            )

    def test_dump_file(self, tmp_path):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        path = tmp_path / "circuit.qasm"
        qasm.dump(circuit, str(path))
        assert qasm.load(str(path)).count_gate("h") == 1

    def test_unitary_gate_not_serialisable(self):
        circuit = QuantumCircuit(1)
        circuit.unitary(np.eye(2), [0])
        with pytest.raises(QASMError):
            qasm.dumps(circuit)

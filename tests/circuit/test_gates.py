"""Unit tests for gate definitions and matrices."""

import math

import numpy as np
import pytest

from repro.circuit import GATE_SPECS, Gate, HARDWARE_BASIS, SELF_INVERSE_GATES, gate, unitary_gate
from repro.exceptions import CircuitError
from repro.synthesis import allclose_up_to_global_phase, is_unitary


X = gate("x").matrix()
Y = gate("y").matrix()
Z = gate("z").matrix()
H = gate("h").matrix()
CX = gate("cx").matrix()


class TestGateMatrices:
    @pytest.mark.parametrize("name", [n for n, s in GATE_SPECS.items()
                                      if s.matrix_fn is not None and s.num_params == 0])
    def test_fixed_gates_are_unitary(self, name):
        assert is_unitary(gate(name).matrix())

    @pytest.mark.parametrize("name", ["rx", "ry", "rz", "p", "cp", "crx", "cry", "crz",
                                      "rxx", "ryy", "rzz"])
    def test_parametrised_gates_are_unitary(self, name):
        assert is_unitary(gate(name, 0.7).matrix())

    def test_pauli_algebra(self):
        assert np.allclose(X @ Y, 1j * Z)
        assert np.allclose(Y @ Z, 1j * X)
        assert np.allclose(Z @ X, 1j * Y)

    def test_hadamard_conjugation(self):
        assert np.allclose(H @ X @ H, Z)
        assert np.allclose(H @ Z @ H, X)

    def test_s_and_t(self):
        s = gate("s").matrix()
        t = gate("t").matrix()
        assert np.allclose(t @ t, s)
        assert np.allclose(s @ s, Z)

    def test_sx_squares_to_x(self):
        sx = gate("sx").matrix()
        assert np.allclose(sx @ sx, X)

    def test_rotation_periodicity(self):
        assert allclose_up_to_global_phase(gate("rz", 2 * math.pi).matrix(), np.eye(2))
        assert allclose_up_to_global_phase(gate("rx", 2 * math.pi).matrix(), np.eye(2))

    def test_rz_vs_phase(self):
        assert allclose_up_to_global_phase(gate("rz", 0.3).matrix(), gate("p", 0.3).matrix())

    def test_u_gate_special_cases(self):
        assert allclose_up_to_global_phase(gate("u", math.pi, 0, math.pi).matrix(), X)
        assert allclose_up_to_global_phase(gate("u", math.pi / 2, 0, math.pi).matrix(), H)

    def test_cx_matrix_little_endian(self):
        expected = np.array([[1, 0, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0], [0, 1, 0, 0]])
        assert np.allclose(CX, expected)

    def test_cz_symmetric(self):
        cz = gate("cz").matrix()
        assert np.allclose(cz, np.diag([1, 1, 1, -1]))

    def test_swap_matrix(self):
        swap = gate("swap").matrix()
        # |01> <-> |10>
        assert swap[1, 2] == 1 and swap[2, 1] == 1 and swap[0, 0] == 1 and swap[3, 3] == 1

    def test_controlled_rotations_act_on_target(self):
        crz = gate("crz", 0.5).matrix()
        # Control=0 subspace is identity.
        assert np.allclose(crz[np.ix_([0, 2], [0, 2])], np.eye(2))

    def test_ccx_flips_target_when_both_controls_set(self):
        ccx = gate("ccx").matrix()
        state = np.zeros(8)
        state[3] = 1.0  # q0=1, q1=1, q2=0
        assert abs((ccx @ state)[7] - 1.0) < 1e-12

    def test_cswap_swaps_when_control_set(self):
        cswap = gate("cswap").matrix()
        state = np.zeros(8)
        state[3] = 1.0  # control q0=1, q1=1, q2=0
        assert abs((cswap @ state)[5] - 1.0) < 1e-12

    def test_rzz_diagonal(self):
        rzz = gate("rzz", 0.4).matrix()
        assert np.allclose(rzz, np.diag(np.diag(rzz)))


class TestGateObject:
    def test_unknown_gate_rejected(self):
        with pytest.raises(CircuitError):
            Gate("not_a_gate")

    def test_wrong_param_count_rejected(self):
        with pytest.raises(CircuitError):
            Gate("rz", ())
        with pytest.raises(CircuitError):
            Gate("x", (0.1,))

    def test_unitary_gate_requires_matrix(self):
        with pytest.raises(CircuitError):
            Gate("unitary")

    def test_unitary_gate_num_qubits(self):
        two_qubit = unitary_gate(np.eye(4))
        assert two_qubit.num_qubits == 2
        one_qubit = unitary_gate(np.eye(2))
        assert one_qubit.num_qubits == 1

    def test_unitary_gate_bad_shape_rejected(self):
        with pytest.raises(CircuitError):
            unitary_gate(np.eye(3))

    @pytest.mark.parametrize("name", SELF_INVERSE_GATES)
    def test_self_inverse_gates(self, name):
        if name == "id":
            return
        matrix = gate(name).matrix()
        assert np.allclose(matrix @ matrix, np.eye(matrix.shape[0]))

    @pytest.mark.parametrize(
        "name,params",
        [("x", ()), ("h", ()), ("s", ()), ("t", ()), ("sx", ()), ("rz", (0.3,)),
         ("rx", (1.2,)), ("u", (0.5, 0.2, 0.1)), ("cp", (0.7,)), ("swap", ()),
         ("iswap", ()), ("crx", (0.9,)), ("u2", (0.3, 0.4))],
    )
    def test_inverse_matrices(self, name, params):
        g = gate(name, *params)
        product = g.inverse().matrix() @ g.matrix()
        assert allclose_up_to_global_phase(product, np.eye(product.shape[0]))

    def test_directive_has_no_matrix(self):
        with pytest.raises(CircuitError):
            gate("measure").matrix()

    def test_directive_cannot_be_inverted(self):
        with pytest.raises(CircuitError):
            gate("measure").inverse()

    def test_copy_is_independent(self):
        g = gate("rz", 0.5)
        copy = g.copy()
        assert copy == g and copy is not g

    def test_hardware_basis_names_exist(self):
        for name in HARDWARE_BASIS:
            assert name in GATE_SPECS

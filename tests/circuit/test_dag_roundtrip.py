"""Property-style tests: DAG round-trips and mutation-API consistency.

The DAG is the transpiler's canonical IR, so ``from_circuit``/``to_circuit`` must preserve
per-wire gate order, depth and the unitary (up to global phase), and every mutation must
leave predecessor/successor links, wire orders and the linearization mutually consistent.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import DAGCircuit, Instruction, QuantumCircuit, random_circuit
from repro.circuit.gates import gate as make_gate
from repro.exceptions import CircuitError
from repro.synthesis import allclose_up_to_global_phase


def wire_sequences(circuit: QuantumCircuit):
    """Per-qubit sequence of (name, params, qubits) the wire sees, in order."""
    wires = {q: [] for q in range(circuit.num_qubits)}
    for inst in circuit.data:
        for q in inst.qubits:
            wires[q].append((inst.name, inst.gate.params, inst.qubits))
    return wires


def assert_dag_consistent(dag: DAGCircuit):
    """Predecessor/successor links, wire orders and linearization agree with each other."""
    linear = [n.node_id for n in dag.op_nodes()]
    position = {nid: i for i, nid in enumerate(linear)}
    assert sorted(linear) == sorted(dag.nodes)
    for node in dag.op_nodes():
        for succ in dag.successors(node):
            # Edges are symmetric and respect the linearization.
            assert node in dag.predecessors(succ)
            assert position[node.node_id] < position[succ.node_id]
        for pred in dag.predecessors(node):
            assert node in dag.successors(pred)
    for qubit in range(dag.num_qubits):
        order = [n.node_id for n in dag.wire_nodes(qubit)]
        # Wire order is a subsequence of the linearization, and consecutive wire
        # neighbours are linked by an edge.
        assert order == sorted(order, key=position.__getitem__)
        for a, b in zip(order, order[1:]):
            assert b in dag._successors[a]
            assert a in dag._predecessors[b]


class TestRoundTrip:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_round_trip_preserves_wire_order_depth_unitary(self, seed):
        circuit = random_circuit(4, 8, seed=seed)
        rebuilt = DAGCircuit.from_circuit(circuit).to_circuit()
        assert wire_sequences(rebuilt) == wire_sequences(circuit)
        assert rebuilt.depth() == circuit.depth()
        assert rebuilt.count_ops() == circuit.count_ops()
        assert allclose_up_to_global_phase(rebuilt.to_matrix(), circuit.to_matrix())

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_double_round_trip_is_stable(self, seed):
        circuit = random_circuit(3, 6, seed=seed)
        once = DAGCircuit.from_circuit(circuit).to_circuit()
        twice = DAGCircuit.from_circuit(once).to_circuit()
        assert [
            (i.name, i.gate.params, i.qubits) for i in once.data
        ] == [(i.name, i.gate.params, i.qubits) for i in twice.data]

    def test_round_trip_preserves_measurements_and_metadata(self):
        circuit = QuantumCircuit(2, 2, name="meta")
        circuit.metadata["origin"] = "test"
        circuit.h(0)
        circuit.barrier()
        circuit.measure(0, 0)
        circuit.measure(1, 1)
        rebuilt = DAGCircuit.from_circuit(circuit).to_circuit()
        assert rebuilt.name == "meta"
        assert rebuilt.metadata == {"origin": "test"}
        assert rebuilt.count_gate("measure") == 2
        assert rebuilt.count_gate("barrier") == 1


class TestFingerprint:
    def test_identical_content_same_fingerprint(self):
        a = DAGCircuit.from_circuit(random_circuit(3, 6, seed=7))
        b = DAGCircuit.from_circuit(random_circuit(3, 6, seed=7))
        assert a.fingerprint() == b.fingerprint()

    def test_mutation_changes_fingerprint_and_version(self):
        dag = DAGCircuit.from_circuit(random_circuit(3, 6, seed=7))
        before_print, before_version = dag.fingerprint(), dag.version
        dag.add_node(make_gate("x"), (0,))
        assert dag.version > before_version
        assert dag.fingerprint() != before_print

    def test_label_enters_fingerprint(self):
        def swap_with_label(label):
            from repro.circuit.gates import Gate

            dag = DAGCircuit(2)
            dag.add_node(Gate("swap", (), None, label), (0, 1))
            return dag.fingerprint()

        assert swap_with_label("ctrl:0") != swap_with_label("ctrl:1")


class TestMutationConsistency:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_removals_keep_links_consistent(self, seed):
        circuit = random_circuit(4, 8, seed=seed)
        dag = DAGCircuit.from_circuit(circuit)
        rng = np.random.default_rng(seed)
        for _ in range(min(4, len(dag))):
            nodes = dag.op_nodes()
            dag.remove_op_node(nodes[int(rng.integers(len(nodes)))])
            assert_dag_consistent(dag)
        dag.to_circuit()  # linearization must still be emittable

    def test_substitute_node_keeps_position_and_wires(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.h(0)
        dag = DAGCircuit.from_circuit(circuit)
        target = dag.op_nodes()[2]
        dag.substitute_node(target, make_gate("rz", 0.5))
        assert_dag_consistent(dag)
        out = dag.to_circuit()
        assert [i.name for i in out.data] == ["h", "cx", "rz"]

    def test_substitute_node_rejects_wrong_arity(self):
        dag = DAGCircuit(2)
        node = dag.add_node(make_gate("cx"), (0, 1))
        with pytest.raises(CircuitError):
            dag.substitute_node(node, make_gate("h"))

    def test_substitute_node_with_ops_splices_in_place(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.swap(0, 1)
        circuit.cx(1, 2)
        dag = DAGCircuit.from_circuit(circuit)
        swap = dag.op_nodes("swap")[0]
        new_nodes = dag.substitute_node_with_ops(
            swap,
            [
                Instruction(make_gate("cx"), (0, 1)),
                Instruction(make_gate("cx"), (1, 0)),
                Instruction(make_gate("cx"), (0, 1)),
            ],
        )
        assert len(new_nodes) == 3
        assert_dag_consistent(dag)
        out = dag.to_circuit()
        assert [i.name for i in out.data] == ["h", "cx", "cx", "cx", "cx"]
        # The replacement sits between the h and the trailing cx on every shared wire.
        assert [i.qubits for i in out.data if 1 in i.qubits][-1] == (1, 2)
        assert allclose_up_to_global_phase(out.to_matrix(), circuit.to_matrix())

    def test_substitute_node_with_ops_rejects_foreign_wires(self):
        dag = DAGCircuit(3)
        node = dag.add_node(make_gate("cx"), (0, 1))
        with pytest.raises(CircuitError):
            dag.substitute_node_with_ops(node, [Instruction(make_gate("x"), (2,))])

    def test_substitute_node_with_empty_ops_removes_and_reconnects(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.h(1)
        dag = DAGCircuit.from_circuit(circuit)
        cx = dag.op_nodes("cx")[0]
        dag.substitute_node_with_ops(cx, [])
        assert_dag_consistent(dag)
        out = dag.to_circuit()
        assert [i.name for i in out.data] == ["h", "h"]

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_swap_lowering_via_mutation_preserves_unitary(self, seed):
        """Realistic mutation workload: lower every swap in place, check the unitary."""
        circuit = random_circuit(4, 10, seed=seed)
        dag = DAGCircuit.from_circuit(circuit)
        for node in dag.op_nodes("swap"):
            a, b = node.qubits
            dag.substitute_node_with_ops(
                node,
                [
                    Instruction(make_gate("cx"), (a, b)),
                    Instruction(make_gate("cx"), (b, a)),
                    Instruction(make_gate("cx"), (a, b)),
                ],
            )
            assert_dag_consistent(dag)
        out = dag.to_circuit()
        assert out.count_gate("swap") == 0
        assert allclose_up_to_global_phase(out.to_matrix(), circuit.to_matrix())

"""Tests for :class:`repro.circuit.StreamingDAG` — the windowed dependency frontier.

The contract: walked with the same resolve sequence, a StreamingDAG must be
step-for-step identical to an :class:`ExecutionFrontier` over the full DAG (front
content *and order*, lookahead content and order), while keeping the live node count
bounded by the window and its spill allowance.
"""

import pytest

from repro.circuit import DAGCircuit, ExecutionFrontier, StreamingDAG, random_circuit
from repro.circuit.random import random_circuit_stream
from repro.exceptions import CircuitError


def frontier_pair(circuit, window_gates):
    full = ExecutionFrontier(DAGCircuit.from_circuit(circuit))
    streamed = StreamingDAG(
        iter(circuit.data), circuit.num_qubits, circuit.num_clbits,
        window_gates=window_gates,
    )
    return full, streamed


def walk_both(full, streamed, lookahead_size=20):
    """Resolve front-first in lockstep, asserting equality at every step."""
    steps = 0
    while not full.is_done():
        assert not streamed.is_done()
        full_front = full.front
        stream_front = streamed.front
        assert [n.node_id for n in stream_front] == [n.node_id for n in full_front]
        assert [n.node_id for n in streamed.lookahead(lookahead_size)] == [
            n.node_id for n in full.lookahead(lookahead_size)
        ]
        # resolve a rotating choice of front node so the walk isn't purely FIFO
        pick = steps % len(full_front)
        new_full = full.resolve(full_front[pick])
        new_stream = streamed.resolve(stream_front[pick])
        assert [n.node_id for n in new_stream] == [n.node_id for n in new_full]
        steps += 1
    assert streamed.is_done()
    return steps


@pytest.mark.parametrize("window", [64, 512, 10**6])
@pytest.mark.parametrize("num_qubits,depth,seed", [(5, 12, 0), (8, 10, 3), (4, 20, 7)])
def test_lockstep_with_execution_frontier(num_qubits, depth, seed, window):
    circuit = random_circuit(num_qubits, depth, seed=seed)
    circuit.measure_all()
    full, streamed = frontier_pair(circuit, window)
    steps = walk_both(full, streamed)
    assert steps == len(circuit.data)
    assert streamed.retired == len(circuit.data)


def test_live_window_stays_bounded():
    window = 32
    streamed = StreamingDAG(
        random_circuit_stream(6, 5000, seed=0), 6, window_gates=window
    )
    peak = 0
    while not streamed.is_done():
        streamed.lookahead(20)
        peak = max(peak, streamed.num_remaining())
        for node in streamed.front:
            streamed.resolve(node)
            peak = max(peak, streamed.num_remaining())
    assert streamed.retired == 5000
    # resolve/lookahead may spill past the window, but never past the allowance
    assert peak <= streamed.max_live_gates
    assert peak < 5000


def test_resolve_rejects_non_front_nodes():
    circuit = random_circuit(4, 6, seed=1)
    streamed = StreamingDAG(iter(circuit.data), 4, window_gates=8)
    front = streamed.front
    blocked = next(
        node for node in streamed.nodes.values()
        if node.node_id not in {f.node_id for f in front}
    )
    with pytest.raises(CircuitError, match="not currently executable"):
        streamed.resolve(blocked)


def test_out_of_range_qubit_rejected():
    circuit = random_circuit(5, 4, seed=2)
    with pytest.raises(CircuitError, match="out of range"):
        StreamingDAG(iter(circuit.data), 3, window_gates=1024).is_done()


def test_version_bumps_on_resolve():
    circuit = random_circuit(4, 6, seed=3)
    streamed = StreamingDAG(iter(circuit.data), 4, window_gates=1024)
    before = streamed.version
    streamed.resolve(streamed.front[0])
    assert streamed.version == before + 1

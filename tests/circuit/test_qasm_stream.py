"""Tests for the chunked OpenQASM reader (:class:`repro.circuit.qasm.QASMStreamReader`).

The streaming reader must parse the same dialect as :func:`qasm.loads` — same register
handling, gate definitions, broadcasts, comments — while pulling instructions lazily
from a line iterator instead of materialising the whole program.
"""

import pytest

from repro.circuit import QuantumCircuit, qasm
from repro.exceptions import QASMError

SAMPLE = """
// a representative program: comments, defs, broadcasts, measures
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
gate majority a,b,c
{
  cx c,b;
  cx c,a;
  ccx a,b,c;
}
h q[0];          // trailing comment
cx q[0],q[1];
rz(0.5) q[2];
majority q[0],q[1],q[2];
h q;             // broadcast over the register
barrier q;
measure q -> c;
"""


def test_stream_matches_loads():
    reference = qasm.loads(SAMPLE)
    reader = qasm.loads_stream(SAMPLE)
    streamed = list(reader)
    assert len(streamed) == len(reference.data)
    for got, want in zip(streamed, reference.data):
        assert got.name == want.name
        assert got.qubits == want.qubits
        assert got.clbits == want.clbits
        assert got.gate.params == want.gate.params


def test_header_available_before_iteration():
    reader = qasm.loads_stream(SAMPLE)
    assert reader.num_qubits == 3
    assert reader.num_clbits == 3
    # header probing must not consume instructions
    assert len(list(reader)) == len(qasm.loads(SAMPLE).data)


def test_batches_partition_the_stream():
    reference = qasm.loads(SAMPLE)
    batches = list(qasm.loads_stream(SAMPLE).batches(4))
    assert all(len(batch) <= 4 for batch in batches)
    assert sum(len(batch) for batch in batches) == len(reference.data)
    flat = [inst for batch in batches for inst in batch]
    assert [inst.name for inst in flat] == [inst.name for inst in reference.data]


def test_load_stream_from_file(tmp_path):
    path = tmp_path / "sample.qasm"
    path.write_text(SAMPLE)
    reader = qasm.load_stream(path)
    assert [inst.name for inst in reader] == [
        inst.name for inst in qasm.loads(SAMPLE).data
    ]


def test_stream_roundtrip_through_emission_helpers():
    circuit = qasm.loads(SAMPLE)
    lines = qasm.header_lines(circuit.num_qubits, circuit.num_clbits)
    lines.extend(qasm.instruction_line(inst) for inst in circuit.data)
    assert "\n".join(lines) + "\n" == qasm.dumps(circuit)


def test_stream_rejects_malformed_programs():
    with pytest.raises(QASMError):
        list(qasm.loads_stream("OPENQASM 2.0;\nqreg q[2];\nnosuchgate q[0];\n"))


def test_instruction_line_rejects_opaque_unitary():
    import numpy as np

    from repro.circuit import unitary_gate

    circuit = QuantumCircuit(1)
    circuit.append(unitary_gate(np.eye(2)), (0,))
    with pytest.raises(QASMError):
        qasm.instruction_line(circuit.data[0])

"""Tests for the noise model and noisy Monte-Carlo simulation."""

import numpy as np
import pytest

from repro.benchlib import bv_n5
from repro.circuit import QuantumCircuit
from repro.hardware import fake_montreal_calibration, linear_coupling_map, synthetic_calibration
from repro.simulator import NoiseModel, NoisySimulator


@pytest.fixture(scope="module")
def calibration():
    return synthetic_calibration(linear_coupling_map(5), seed=7)


class TestNoiseModel:
    def test_gate_error_lookup(self, calibration):
        model = NoiseModel.from_calibration(calibration)
        assert model.gate_error("cx", (0, 1)) == calibration.cx_error_rate(0, 1)
        assert model.gate_error("x", (2,)) == calibration.single_qubit_error[2]
        assert model.gate_error("barrier", ()) == 0.0

    def test_scale_factor(self, calibration):
        model = NoiseModel.from_calibration(calibration, scale=2.0)
        assert model.gate_error("cx", (0, 1)) == pytest.approx(
            2.0 * calibration.cx_error_rate(0, 1)
        )

    def test_error_capped_at_one(self, calibration):
        model = NoiseModel.from_calibration(calibration, scale=1e4)
        assert model.gate_error("cx", (0, 1)) == 1.0

    def test_readout_error(self, calibration):
        model = NoiseModel.from_calibration(calibration)
        assert model.readout_error(0) == calibration.readout_error[0]


class TestNoisySimulator:
    def test_noiseless_model_reproduces_ideal(self, calibration):
        model = NoiseModel.from_calibration(calibration, scale=0.0)
        simulator = NoisySimulator(model, realizations=8, seed=0)
        circuit = QuantumCircuit(5)
        circuit.x(0)
        circuit.cx(0, 1)
        counts = simulator.run(circuit, shots=200)
        assert counts == {"11": 200}

    def test_noise_spreads_outcomes(self, calibration):
        model = NoiseModel.from_calibration(calibration, scale=20.0)
        simulator = NoisySimulator(model, realizations=64, seed=1)
        circuit = QuantumCircuit(5)
        for _ in range(5):
            circuit.cx(0, 1)
            circuit.cx(1, 2)
        counts = simulator.run(circuit, shots=512)
        assert len(counts) > 1

    def test_success_rate_decreases_with_noise(self, calibration):
        circuit = QuantumCircuit(5)
        circuit.x(0)
        for _ in range(4):
            circuit.cx(0, 1)
            circuit.cx(0, 1)
        low = NoisySimulator(NoiseModel.from_calibration(calibration, scale=0.5),
                             realizations=64, seed=2).success_rate(circuit, shots=1024)
        high = NoisySimulator(NoiseModel.from_calibration(calibration, scale=20.0),
                              realizations=64, seed=2).success_rate(circuit, shots=1024)
        assert high < low <= 1.0

    def test_success_rate_with_expected_string(self, calibration):
        model = NoiseModel.from_calibration(calibration, scale=0.0)
        simulator = NoisySimulator(model, realizations=4, seed=3)
        circuit = QuantumCircuit(5)
        circuit.x(1)
        rate = simulator.success_rate(circuit, shots=128, expected="10", measured_qubits=[0, 1])
        assert rate == 1.0

    def test_readout_error_flips_bits(self, calibration):
        # Zero gate noise but large readout error must still corrupt outcomes.
        calibration_noisy = synthetic_calibration(
            linear_coupling_map(5), seed=9, readout_error_range=(0.4, 0.5)
        )
        model = NoiseModel.from_calibration(calibration_noisy)
        model.calibration.cx_error = {k: 0.0 for k in model.calibration.cx_error}
        model.calibration.single_qubit_error = {
            k: 0.0 for k in model.calibration.single_qubit_error
        }
        simulator = NoisySimulator(model, realizations=8, seed=4)
        circuit = QuantumCircuit(5)
        circuit.x(0)
        counts = simulator.run(circuit, shots=512, measured_qubits=[0])
        assert counts.get("0", 0) > 50

    def test_measuring_untouched_qubit_reads_zero(self, calibration):
        # Idle measured wires stay in |0> (up to readout error, disabled here).
        model = NoiseModel.from_calibration(calibration, scale=0.0)
        simulator = NoisySimulator(model, realizations=4, seed=5)
        circuit = QuantumCircuit(5)
        circuit.x(0)
        counts = simulator.run(circuit, shots=16, measured_qubits=[0, 3])
        # Bitstrings are little-endian in list order: rightmost char is measured_qubits[0].
        assert counts == {"01": 16}

    def test_shots_are_conserved(self):
        calibration = fake_montreal_calibration()
        model = NoiseModel.from_calibration(calibration)
        simulator = NoisySimulator(model, realizations=16, seed=6)
        circuit = bv_n5()
        counts = simulator.run(circuit, shots=300)
        assert sum(counts.values()) == 300

"""Tests for the statevector simulator."""

import math

import numpy as np
import pytest

from repro.circuit import QuantumCircuit, random_circuit
from repro.exceptions import SimulatorError
from repro.simulator import StatevectorSimulator, active_qubit_subcircuit


class TestStatevector:
    def test_initial_state_is_zero(self):
        state = StatevectorSimulator().run(QuantumCircuit(2))
        assert np.allclose(state, [1, 0, 0, 0])

    def test_bell_state(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        state = StatevectorSimulator().run(circuit)
        assert np.allclose(state, np.array([1, 0, 0, 1]) / math.sqrt(2))

    def test_x_on_each_qubit(self):
        circuit = QuantumCircuit(3)
        circuit.x(0)
        circuit.x(2)
        state = StatevectorSimulator().run(circuit)
        assert abs(state[0b101]) == pytest.approx(1.0)

    def test_matches_dense_unitary(self):
        for seed in range(5):
            circuit = random_circuit(4, 5, seed=seed)
            state = StatevectorSimulator().run(circuit)
            expected = circuit.to_matrix()[:, 0]
            assert np.allclose(state, expected, atol=1e-9)

    def test_custom_initial_state(self):
        circuit = QuantumCircuit(1)
        circuit.x(0)
        state = StatevectorSimulator().run(circuit, initial_state=np.array([0, 1], dtype=complex))
        assert np.allclose(state, [1, 0])

    def test_wrong_initial_state_rejected(self):
        with pytest.raises(SimulatorError):
            StatevectorSimulator().run(QuantumCircuit(2), initial_state=np.zeros(3))

    def test_too_many_qubits_rejected(self):
        with pytest.raises(SimulatorError):
            StatevectorSimulator(max_qubits=4).run(QuantumCircuit(5))

    def test_measurements_and_barriers_ignored(self):
        circuit = QuantumCircuit(1, 1)
        circuit.h(0)
        circuit.barrier()
        circuit.measure(0, 0)
        state = StatevectorSimulator().run(circuit)
        assert np.allclose(np.abs(state) ** 2, [0.5, 0.5])

    def test_norm_preserved(self):
        circuit = random_circuit(5, 8, seed=7)
        state = StatevectorSimulator().run(circuit)
        assert np.linalg.norm(state) == pytest.approx(1.0)


class TestSampling:
    def test_deterministic_outcome(self):
        circuit = QuantumCircuit(2)
        circuit.x(1)
        counts = StatevectorSimulator().sample_counts(circuit, shots=100, seed=0)
        assert counts == {"10": 100}

    def test_uniform_superposition_statistics(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        counts = StatevectorSimulator().sample_counts(circuit, shots=4000, seed=1)
        assert abs(counts["0"] - 2000) < 250

    def test_measured_qubit_subset(self):
        circuit = QuantumCircuit(3)
        circuit.x(0)
        circuit.x(2)
        counts = StatevectorSimulator().sample_counts(
            circuit, shots=10, seed=0, measured_qubits=[0, 1]
        )
        assert counts == {"01": 10}

    def test_probabilities_sum_to_one(self):
        circuit = random_circuit(4, 5, seed=3)
        probs = StatevectorSimulator().probabilities(circuit)
        assert probs.sum() == pytest.approx(1.0)


class TestActiveQubitSubcircuit:
    def test_restricts_to_touched_qubits(self):
        circuit = QuantumCircuit(10)
        circuit.h(3)
        circuit.cx(3, 7)
        reduced, active = active_qubit_subcircuit(circuit)
        assert active == [3, 7]
        assert reduced.num_qubits == 2
        assert reduced.data[1].qubits == (0, 1)

    def test_empty_circuit(self):
        reduced, active = active_qubit_subcircuit(QuantumCircuit(4))
        assert reduced.num_qubits == 1
        assert active == [0]

    def test_semantics_preserved(self):
        circuit = QuantumCircuit(6)
        circuit.h(2)
        circuit.cx(2, 5)
        reduced, active = active_qubit_subcircuit(circuit)
        state = StatevectorSimulator().run(reduced)
        assert abs(state[0b00]) == pytest.approx(1 / math.sqrt(2))
        assert abs(state[0b11]) == pytest.approx(1 / math.sqrt(2))

"""Asyncio priority job queue of the online transpilation server.

The queue owns every :class:`JobRecord` the server knows about and implements the
scheduling policy between HTTP submission and execution:

* **Priority + fairness** — each job carries an integer priority (higher runs first).
  Among the clients whose best waiting job shares the top priority, dispatch rotates
  round-robin, so one client flooding the queue cannot starve another at the same
  priority.
* **Admission control** — the number of admitted-but-not-finished jobs is bounded;
  :meth:`JobQueue.submit` raises :class:`QueueFull` past the bound and the HTTP layer
  turns that into a ``429`` with a ``Retry-After`` hint.
* **Idempotent resubmission** — submissions are keyed by the job's content fingerprint;
  re-submitting work that is already queued, running, or recently finished returns the
  existing record instead of enqueueing a duplicate.
* **Cancellation** — queued jobs can be cancelled outright; running jobs only get a
  best-effort ``cancel_requested`` flag (a worker process cannot be interrupted safely).
* **Events** — every state transition is recorded with a timestamp and broadcast through
  an :class:`asyncio.Event`, which is what the streaming ``/v1/jobs/{id}/events``
  endpoint and the long-poll ``wait=`` query consume.

Everything in this module runs on the server's event loop thread; no locks are needed
because transitions never cross an ``await`` boundary mid-update.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import time
import uuid
from collections import OrderedDict
from typing import AsyncIterator, Dict, List, Optional

from ..obs.tracer import new_span_id, new_trace_id
from ..service.jobs import JobError, TranspileJob

#: Job lifecycle states (terminal states are DONE, FAILED, CANCELLED).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})

#: Event state of one incrementally-routed QASM chunk of a streaming job.
STREAMING_CHUNK = "routed_chunk"

#: Anonymous submissions all share one fairness bucket.
DEFAULT_CLIENT = "anonymous"


class QueueFull(Exception):
    """Raised by :meth:`JobQueue.submit` when admission control rejects a job."""

    def __init__(self, depth: int, bound: int) -> None:
        super().__init__(f"queue is full ({depth}/{bound} jobs admitted)")
        self.depth = depth
        self.bound = bound


class JobRecord:
    """One submitted job: spec, lifecycle state, event history, and its result.

    The event history is a *capped tail*: at most :attr:`MAX_EVENTS` events are
    retained, older ones are dropped from the front and counted in
    :attr:`dropped_events` (``events_base`` is the absolute index of the first
    retained event, so streaming consumers index by absolute position and can
    detect the gap).  Lifecycle histories never get near the cap; it exists for
    streaming jobs, whose ``routed_chunk`` events would otherwise buffer an
    entire routed circuit in the record.
    """

    #: Retained event-tail length (the terminal event is always the newest, so
    #: trimming from the front can never drop it).
    MAX_EVENTS = 512

    def __init__(
        self,
        job: TranspileJob,
        *,
        client: str = DEFAULT_CLIENT,
        priority: int = 0,
        fingerprint: Optional[str] = None,
        trace_ctx: Optional[Dict] = None,
        streaming: Optional[Dict] = None,
    ) -> None:
        self.id = f"job-{uuid.uuid4().hex[:16]}"
        self.job = job
        self.fingerprint = fingerprint if fingerprint is not None else job.fingerprint()
        self.client = client or DEFAULT_CLIENT
        self.priority = int(priority)
        #: Parsed ``traceparent`` context from the submitting client (or ``None``).
        #: Deliberately *not* part of the job fingerprint: identical jobs dedupe and
        #: share cached results whether or not they are traced.
        self.trace_ctx = trace_ctx
        self.trace_id = trace_ctx["trace_id"] if trace_ctx else new_trace_id()
        #: Span ids are fixed at admission so repeated ``/trace`` reads are stable.
        self.server_span_id = new_span_id()
        self.queue_wait_span_id = new_span_id()
        #: Serialised span tree shipped back by the pool worker (empty when untraced).
        self.worker_trace: List[Dict] = []
        self.state = QUEUED
        self.cancel_requested = False
        self.from_cache = False
        self.submitted_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.result_payload: Optional[Dict] = None  # TranspileResult.to_dict() form
        self.error: Optional[JobError] = None
        #: ``None`` for ordinary jobs; a ``{"window_gates", "chunk_gates"}`` dict for
        #: streaming submissions (run incrementally, bypassing the result cache).
        self.streaming = streaming
        self.events: List[Dict] = []
        #: Absolute index of ``events[0]`` (grows as the capped tail drops events).
        self.events_base = 0
        #: How many events have been dropped from the front of the history.
        self.dropped_events = 0
        self._changed = asyncio.Event()
        self._record_event(QUEUED, {"priority": self.priority, "client": self.client})

    # -- state transitions (called by the queue/runner, on the event loop) ----

    def _record_event(self, state: str, detail: Optional[Dict] = None) -> None:
        self.events.append({"state": state, "at": time.time(), "detail": detail or {}})
        excess = len(self.events) - self.MAX_EVENTS
        if excess > 0:
            del self.events[:excess]
            self.events_base += excess
            self.dropped_events += excess
        self._changed.set()
        self._changed = asyncio.Event()

    def record_chunk(self, seq: int, text: str) -> None:
        """Record one routed QASM chunk of a streaming job as a ``routed_chunk`` event."""
        self._record_event(
            STREAMING_CHUNK, {"seq": seq, "qasm": text, "lines": text.count("\n")}
        )

    def mark_running(self) -> None:
        self.state = RUNNING
        self.started_at = time.time()
        self._record_event(RUNNING, {"queue_wait_seconds": self.started_at - self.submitted_at})

    def finish(self, result_payload: Dict, *, from_cache: bool = False) -> None:
        self.state = DONE
        self.finished_at = time.time()
        self.result_payload = result_payload
        self.from_cache = from_cache
        detail = {
            "from_cache": from_cache,
            "cx_count": result_payload.get("metrics", {}).get("cx_count"),
            "depth": result_payload.get("metrics", {}).get("depth"),
            "pass_timings": result_payload.get("pass_timings", {}),
            "pass_timing_log": result_payload.get("pass_timing_log", []),
            "queued_seconds": self.queued_seconds,
            "running_seconds": self.running_seconds,
        }
        if self.trace_ctx is not None:
            # The submitting client is tracing: stream the merged server+worker tree in
            # the terminal event so event consumers need no second request.
            detail["trace"] = self.trace_spans()
        self._record_event(DONE, detail)

    def fail(self, error: JobError) -> None:
        self.state = FAILED
        self.finished_at = time.time()
        self.error = error
        self._record_event(FAILED, {"exc_type": error.exc_type, "message": error.message})

    def cancel(self) -> None:
        self.state = CANCELLED
        self.finished_at = time.time()
        self._record_event(CANCELLED, {})

    # -- queries --------------------------------------------------------------

    @property
    def is_terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def queued_seconds(self) -> float:
        """Wall time spent waiting for a worker (submission → start, live until then)."""
        end = self.started_at if self.started_at is not None else self.finished_at
        if end is None:
            end = time.time()
        return max(0.0, end - self.submitted_at)

    @property
    def running_seconds(self) -> float:
        """Wall time spent executing (start → finish, live while running; 0 unstarted)."""
        if self.started_at is None:
            return 0.0
        end = self.finished_at if self.finished_at is not None else time.time()
        return max(0.0, end - self.started_at)

    def trace_spans(self) -> List[Dict]:
        """Server-side span tree of this job, with the worker's spans grafted in.

        Built on demand from the record's own timestamps (the event loop never runs a
        tracer): ``server.job`` covers admission → terminal, parented on the client's
        submit span when a ``traceparent`` was received; ``server.queue_wait`` covers
        the dispatch delay; the worker's serialized spans already parent themselves on
        ``server.job`` via the propagated context.
        """
        now = time.time()
        end = self.finished_at if self.finished_at is not None else now
        parent = self.trace_ctx.get("parent_id") if self.trace_ctx else None
        spans: List[Dict] = [
            {
                "trace_id": self.trace_id,
                "span_id": self.server_span_id,
                "parent_id": parent,
                "name": "server.job",
                "start": self.submitted_at,
                "end": end,
                "process": "server",
                "attrs": {
                    "job_id": self.id,
                    "state": self.state,
                    "client": self.client,
                    "priority": self.priority,
                    "from_cache": self.from_cache,
                },
            }
        ]
        if self.started_at is not None:
            spans.append(
                {
                    "trace_id": self.trace_id,
                    "span_id": self.queue_wait_span_id,
                    "parent_id": self.server_span_id,
                    "name": "server.queue_wait",
                    "start": self.submitted_at,
                    "end": self.started_at,
                    "process": "server",
                    "attrs": {"queue_wait_seconds": self.started_at - self.submitted_at},
                }
            )
        spans.extend(self.worker_trace)
        return spans

    def to_dict(self, *, include_result: bool = True) -> Dict:
        """JSON form served by ``GET /v1/jobs/{id}``."""
        payload: Dict = {
            "id": self.id,
            "name": self.job.name,
            "fingerprint": self.fingerprint,
            "client": self.client,
            "priority": self.priority,
            "state": self.state,
            "from_cache": self.from_cache,
            "cancel_requested": self.cancel_requested,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "queued_seconds": self.queued_seconds,
            "running_seconds": self.running_seconds,
            "trace_id": self.trace_id,
            "dropped_events": self.dropped_events,
        }
        if self.streaming is not None:
            payload["streaming"] = dict(self.streaming)
        if self.error is not None:
            payload["error"] = self.error.to_dict()
        if include_result and self.result_payload is not None:
            payload["result"] = self.result_payload
        return payload

    # -- waiting and streaming ------------------------------------------------

    def change_event(self) -> asyncio.Event:
        """The event that fires on the *next* transition.

        Capture it BEFORE scanning :attr:`events` — transitions replace the event, so a
        stale reference would sleep through updates.
        """
        return self._changed

    async def wait_terminal(self, timeout: Optional[float] = None) -> bool:
        """Block until the record reaches a terminal state; ``False`` on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while not self.is_terminal:
            changed = self._changed
            if deadline is None:
                await changed.wait()
                continue
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return False
            try:
                await asyncio.wait_for(changed.wait(), timeout=remaining)
            except asyncio.TimeoutError:
                return False
        return True

    async def stream_events(self) -> AsyncIterator[Dict]:
        """Yield every retained event, then live transitions until a terminal one.

        Indexing is by *absolute* event position: if the capped tail dropped events
        faster than this consumer read them, a synthetic ``events_dropped`` event is
        yielded for the gap before resuming at the oldest retained event.
        """
        index = self.events_base
        while True:
            changed = self._changed
            if index < self.events_base:
                dropped = self.events_base - index
                index = self.events_base
                yield {
                    "state": "events_dropped",
                    "at": time.time(),
                    "detail": {"dropped": dropped},
                }
            while index - self.events_base < len(self.events):
                event = self.events[index - self.events_base]
                index += 1
                yield event
                if event["state"] in TERMINAL_STATES:
                    return
            await changed.wait()


class JobQueue:
    """Priority queue with per-client fair dispatch and bounded admission."""

    def __init__(self, *, max_pending: int = 256, history_limit: int = 1024) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        self.max_pending = max_pending
        self.history_limit = history_limit
        self._records: "OrderedDict[str, JobRecord]" = OrderedDict()
        self._by_fingerprint: Dict[str, JobRecord] = {}
        #: per-client heaps of ``(-priority, seq, record)``; lazily cleaned of
        #: cancelled entries when popped.
        self._client_heaps: Dict[str, List] = {}
        #: round-robin order of clients with waiting jobs (rotated on dispatch).
        self._client_order: List[str] = []
        self._seq = itertools.count()
        # Created lazily from inside the event loop: on Python 3.9 an asyncio.Event
        # built outside a running loop binds to the wrong loop.
        self._available: Optional[asyncio.Event] = None
        self._queued_count = 0
        self.in_flight = 0
        self.submitted = 0
        self.deduplicated = 0
        self.rejected = 0

    # -- submission -----------------------------------------------------------

    def admitted_depth(self) -> int:
        """Jobs currently queued or running (what admission control bounds)."""
        return self.pending_count() + self.in_flight

    def pending_count(self) -> int:
        """Jobs currently waiting (O(1) — polled on every submit and metrics scrape)."""
        return self._queued_count

    def submit(
        self,
        job: TranspileJob,
        *,
        client: str = DEFAULT_CLIENT,
        priority: int = 0,
        fingerprint: Optional[str] = None,
        trace_ctx: Optional[Dict] = None,
        streaming: Optional[Dict] = None,
    ) -> "tuple[JobRecord, bool]":
        """Admit a job; returns ``(record, resubmitted)``.

        ``resubmitted`` is ``True`` when an existing record with the same fingerprint was
        returned instead of a new admission (idempotent resubmission).  Raises
        :class:`QueueFull` when the admitted depth is at the bound.  ``fingerprint`` lets
        a caller that already computed the job's hash avoid recomputing it.
        """
        if fingerprint is None:
            fingerprint = job.fingerprint()
        existing = self.find_fingerprint(fingerprint)
        if existing is not None:
            self.deduplicated += 1
            return existing, True
        if self.admitted_depth() >= self.max_pending:
            self.rejected += 1
            raise QueueFull(self.admitted_depth(), self.max_pending)
        record = JobRecord(
            job, client=client, priority=priority, fingerprint=fingerprint,
            trace_ctx=trace_ctx, streaming=streaming,
        )
        self._records[record.id] = record
        self._by_fingerprint[fingerprint] = record
        self._push(record)
        self.submitted += 1
        self._trim_history()
        return record, False

    def admit_completed(
        self,
        job: TranspileJob,
        payload: Dict,
        *,
        client: str = DEFAULT_CLIENT,
        priority: int = 0,
        fingerprint: Optional[str] = None,
        trace_ctx: Optional[Dict] = None,
    ) -> JobRecord:
        """Register a record already satisfied by the result cache (never queued).

        Cache-served completions bypass admission control: they consume no queue slot
        and no worker, so rejecting them would only punish well-behaved clients.
        """
        record = JobRecord(
            job, client=client, priority=priority, fingerprint=fingerprint, trace_ctx=trace_ctx
        )
        record.finish(payload, from_cache=True)
        self._records[record.id] = record
        self._by_fingerprint[record.fingerprint] = record
        self.submitted += 1
        self._trim_history()
        return record

    # -- dispatch (consumed by the runner) ------------------------------------

    async def pop(self) -> JobRecord:
        """Wait for, then claim, the next runnable job (moves it to RUNNING)."""
        while True:
            record = self._pop_nowait()
            if record is not None:
                return record
            event = self._available_event()
            event.clear()
            await event.wait()

    def _pop_nowait(self) -> Optional[JobRecord]:
        while self._client_order:
            # Highest waiting priority across clients, then round-robin among the
            # clients whose best job carries it.
            best_priority: Optional[int] = None
            for client in self._client_order:
                head = self._peek_client(client)
                if head is not None and (best_priority is None or head.priority > best_priority):
                    best_priority = head.priority
            if best_priority is None:
                # every heap was exhausted by lazy cleanup
                self._client_order = [c for c in self._client_order if self._client_heaps.get(c)]
                if not self._client_order:
                    return None
                continue
            for offset, client in enumerate(self._client_order):
                head = self._peek_client(client)
                if head is None or head.priority != best_priority:
                    continue
                heapq.heappop(self._client_heaps[client])
                # rotate: the serviced client goes to the back of the round-robin
                order = self._client_order
                order.append(order.pop(offset))
                if not self._client_heaps[client]:
                    del self._client_heaps[client]
                    self._client_order.remove(client)
                self._queued_count -= 1
                self.in_flight += 1
                head.mark_running()
                return head
        return None

    def _peek_client(self, client: str) -> Optional[JobRecord]:
        heap = self._client_heaps.get(client)
        while heap:
            record = heap[0][2]
            if record.state == QUEUED:
                return record
            heapq.heappop(heap)  # cancelled (or otherwise settled) while waiting
        return None

    def task_done(self, record: JobRecord) -> None:
        """Mark a popped job finished (the record's own transition happened already)."""
        self.in_flight = max(0, self.in_flight - 1)

    # -- cancellation ---------------------------------------------------------

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a queued job; a running job only gets ``cancel_requested`` set.

        Returns the record; the caller inspects ``record.state`` to distinguish a true
        cancellation from a best-effort request.  Raises ``KeyError`` for unknown ids.
        """
        record = self._records[job_id]
        if record.state == QUEUED:
            record.cancel()
            self._queued_count -= 1
            self._by_fingerprint.pop(record.fingerprint, None)
        elif record.state == RUNNING:
            record.cancel_requested = True
        return record

    def fail_pending(self, message: str, *, exc_type: str = "ServerShutdown") -> int:
        """Fail every still-QUEUED record (shutdown: no dispatcher will ever run them).

        Returns how many records were settled.  Without this, a client blocked in a
        long-poll or event stream for an unstarted job would never see a terminal state.
        """
        failed = 0
        for record in self._records.values():
            if record.state != QUEUED:
                continue
            record.fail(
                JobError(
                    fingerprint=record.fingerprint,
                    job_name=record.job.name,
                    exc_type=exc_type,
                    message=message,
                )
            )
            self._queued_count -= 1
            if self._by_fingerprint.get(record.fingerprint) is record:
                del self._by_fingerprint[record.fingerprint]
            failed += 1
        return failed

    # -- lookups --------------------------------------------------------------

    def get(self, job_id: str) -> Optional[JobRecord]:
        return self._records.get(job_id)

    def find_fingerprint(self, fingerprint: str) -> Optional[JobRecord]:
        """The in-flight record a resubmission should coalesce onto, if any.

        Only queued/running records dedupe: a finished job's resubmission goes back
        through the result cache (producing a fresh cache-served record, visible in the
        hit-rate metrics), and failed/cancelled jobs are re-runnable.
        """
        record = self._by_fingerprint.get(fingerprint)
        if record is not None and record.state in (QUEUED, RUNNING):
            return record
        return None

    def records(self) -> List[JobRecord]:
        return list(self._records.values())

    # -- internals ------------------------------------------------------------

    def _available_event(self) -> asyncio.Event:
        if self._available is None:
            self._available = asyncio.Event()
        return self._available

    def _push(self, record: JobRecord) -> None:
        heap = self._client_heaps.setdefault(record.client, [])
        if record.client not in self._client_order:
            self._client_order.append(record.client)
        heapq.heappush(heap, (-record.priority, next(self._seq), record))
        self._queued_count += 1
        self._available_event().set()

    def _trim_history(self) -> None:
        """Bound the record map by evicting the oldest *terminal* records."""
        excess = len(self._records) - self.history_limit
        if excess <= 0:
            return
        for job_id in [
            job_id for job_id, record in self._records.items() if record.is_terminal
        ][:excess]:
            record = self._records.pop(job_id)
            if self._by_fingerprint.get(record.fingerprint) is record:
                del self._by_fingerprint[record.fingerprint]

"""The online transpilation server: asyncio HTTP front end over queue + runner.

A deliberately dependency-free HTTP/1.1 implementation (shared plumbing in
:mod:`repro.server.http`), exposing the JSON API:

=============================  ==========================================================
``POST /v1/jobs``              submit one job (``{"job": {...}}`` flat dict, or
                               ``{"qasm": ..., "target": ..., "options": ...}``); returns
                               202 with the job id — or 200 immediately when the result
                               cache already holds the fingerprint.  ``"stream": true``
                               (with optional ``window_gates``/``chunk_gates``) runs the
                               job through the streaming O0 pipeline: routed QASM is
                               emitted incrementally as ``routed_chunk`` events on
                               ``/v1/jobs/{id}/events`` and the result cache is bypassed
``POST /v1/batch``             submit many jobs atomically (all admitted or all 429)
``GET /v1/jobs``               summary list of known jobs
``GET /v1/jobs/{id}``          status/result; ``?wait=SECONDS`` long-polls for a terminal
                               state
``GET /v1/jobs/{id}/events``   chunked stream of state transitions (NDJSON), ending with
                               the terminal event and its pass-timing breakdown
``POST /v1/jobs/{id}/cancel``  cancel a queued job (``DELETE /v1/jobs/{id}`` is an alias)
``GET /v1/cache/{fingerprint}`` the locally cached result payload for a fingerprint, or
                               404 — the fleet's peer-fetch tier reads this
``GET /v1/targets``            named device topologies the server can build
``GET /v1/methods``            routing methods (registry-derived) and optimization levels
``GET /healthz``               readiness signal: queue depth, in-flight jobs, worker-pool
                               size, and shed state (what the fleet coordinator and
                               external load balancers probe)
``GET /metrics``               Prometheus text format
=============================  ==========================================================

Admission control returns ``429 Too Many Requests`` with a ``Retry-After`` header once
``queue_bound`` jobs are admitted and unfinished.  Failed jobs carry the worker's full
traceback in their ``error`` object so a 500-class failure is actionable from the
client.  ``stop()`` drains in-flight work before the loop exits (SIGTERM/SIGINT do the
same under ``python -m repro serve``).
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Dict, Optional, Tuple

from .. import __version__
from ..core.options import LEVEL_DESCRIPTIONS, OPTIMIZATION_LEVELS, TranspileOptions
from ..schedule.modes import SCHEDULE_MODES
from ..exceptions import ReproError
from ..hardware.target import Target
from ..hardware.topologies import TOPOLOGY_CATALOG
from ..obs.counters import COUNTERS
from ..obs.tracer import parse_traceparent
from ..service.cache import ResultCache
from ..service.jobs import TranspileJob
from ..transpiler.registry import registered_methods
from .http import (  # noqa: F401 - HTTPError/Request/ThreadedServer are re-exported API
    MAX_BODY_BYTES,
    AsyncHTTPServer,
    HTTPError,
    Request,
    ThreadedServer,
    _int_field,
    _match_pattern,
)
from .metrics import ServerMetrics
from .queue import (
    CANCELLED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    JobQueue,
    JobRecord,
    QueueFull,
)
from .runner import JobRunner

#: Cap on ``?wait=`` long-poll duration.
MAX_WAIT_SECONDS = 120.0
#: Blank-line keepalive cadence of the event stream — a transpile can sit silently
#: between ``running`` and ``done`` for minutes, and idle clients time out otherwise.
EVENTS_KEEPALIVE_SECONDS = 15.0


class ReproServer(AsyncHTTPServer):
    """The HTTP job service: owns the queue, the runner, the cache, and the listener."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8000,
        *,
        cache: Optional[ResultCache] = None,
        cache_dir: Optional[str] = None,
        queue_bound: int = 256,
        history_limit: int = 1024,
        concurrency: Optional[int] = None,
        max_workers: Optional[int] = None,
        use_processes: bool = True,
        ensemble_fanout_threshold: int = 8,
    ) -> None:
        super().__init__(host, port)
        self.cache = cache if cache is not None else ResultCache(directory=cache_dir)
        self.queue = JobQueue(max_pending=queue_bound, history_limit=history_limit)
        self.metrics = ServerMetrics()
        self.runner = JobRunner(
            self.queue,
            self.cache,
            concurrency=concurrency,
            max_workers=max_workers,
            use_processes=use_processes,
            metrics=self.metrics,
            ensemble_fanout_threshold=ensemble_fanout_threshold,
        )
        self.started_at = time.time()
        self._routes += [
            ("GET", "/healthz", self._handle_healthz),
            ("GET", "/metrics", self._handle_metrics),
            ("GET", "/v1/methods", self._handle_methods),
            ("GET", "/v1/targets", self._handle_targets),
            ("POST", "/v1/jobs", self._handle_submit),
            ("POST", "/v1/batch", self._handle_batch),
            ("GET", "/v1/jobs", self._handle_list_jobs),
            ("GET", "/v1/jobs/{id}", self._handle_get_job),
            ("GET", "/v1/jobs/{id}/trace", self._handle_trace),
            ("GET", "/v1/jobs/{id}/events", self._handle_events),
            ("POST", "/v1/jobs/{id}/cancel", self._handle_cancel),
            ("DELETE", "/v1/jobs/{id}", self._handle_cancel),
            ("GET", "/v1/cache/{fingerprint}", self._handle_cache_lookup),
        ]

    # -- lifecycle ------------------------------------------------------------

    async def _on_start(self) -> None:
        self.runner.start()

    async def _on_stop(self, *, drain: bool, timeout: float) -> None:
        await self.runner.stop(drain=drain, timeout=timeout)

    def _observe_request(self, pattern: str, code: str) -> None:
        self.metrics.requests.inc(route=pattern, code=code)

    # -- job construction -----------------------------------------------------

    async def _job_from_payload(self, data: Dict) -> TranspileJob:
        return job_from_payload(data)

    async def _admit(
        self,
        job: TranspileJob,
        *,
        client: str,
        priority: int,
        trace_ctx: Optional[Dict] = None,
        streaming: Optional[Dict] = None,
    ) -> Tuple[JobRecord, str]:
        """Admit one job; returns (record, disposition in {new, deduplicated, cached})."""
        fingerprint = job.fingerprint()
        if streaming is not None:
            # Streaming jobs bypass the result cache in both directions — their output
            # is emitted incrementally as events, never stored whole.  The suffixed
            # fingerprint keeps identical streaming submissions coalescing onto each
            # other while never colliding with a cached whole result.
            fingerprint = (
                f"{fingerprint}:stream"
                f":w{streaming['window_gates']}:c{streaming['chunk_gates']}"
            )
            return self._admit_atomic(
                job, fingerprint, None,
                client=client, priority=priority, trace_ctx=trace_ctx, streaming=streaming,
            )
        payload = None
        if self.queue.find_fingerprint(fingerprint) is None:
            loop = asyncio.get_running_loop()
            payload = await loop.run_in_executor(None, self.cache.get, fingerprint)
        return self._admit_atomic(
            job, fingerprint, payload, client=client, priority=priority, trace_ctx=trace_ctx
        )

    def _admit_atomic(
        self,
        job: TranspileJob,
        fingerprint: str,
        cached_payload,
        *,
        client: str,
        priority: int,
        trace_ctx: Optional[Dict] = None,
        streaming: Optional[Dict] = None,
    ) -> Tuple[JobRecord, str]:
        """The synchronous admission step — no awaits, so queue state cannot move
        underneath it (callers may pre-check headroom for a whole batch)."""
        if self.draining:
            raise HTTPError(503, "server is draining; not accepting new jobs")
        # Coalescing onto an in-flight twin takes precedence over the cache; the queue
        # owns that check (and its dedup counter) inside submit().
        if cached_payload is not None and self.queue.find_fingerprint(fingerprint) is None:
            record = self.queue.admit_completed(
                job,
                cached_payload,
                client=client,
                priority=priority,
                fingerprint=fingerprint,
                trace_ctx=trace_ctx,
            )
            self.metrics.jobs_submitted.inc()
            self.metrics.jobs_finished.inc(outcome="cached")
            self.metrics.total_seconds.observe(record.finished_at - record.submitted_at)
            return record, "cached"
        try:
            record, resubmitted = self.queue.submit(
                job,
                client=client,
                priority=priority,
                fingerprint=fingerprint,
                trace_ctx=trace_ctx,
                streaming=streaming,
            )
        except QueueFull as exc:
            self.metrics.jobs_rejected.inc()
            error = HTTPError(
                429, str(exc), queue_depth=exc.depth, queue_bound=exc.bound,
            )
            error.headers["Retry-After"] = "1"
            raise error from exc
        if resubmitted:
            self.metrics.jobs_deduplicated.inc()
            return record, "deduplicated"
        self.metrics.jobs_submitted.inc()
        return record, "new"

    @staticmethod
    def _submit_summary(record: JobRecord, disposition: str) -> Dict:
        return {
            "id": record.id,
            "fingerprint": record.fingerprint,
            "state": record.state,
            "from_cache": record.from_cache,
            "resubmitted": disposition == "deduplicated",
            "url": f"/v1/jobs/{record.id}",
        }

    # -- handlers -------------------------------------------------------------

    async def _handle_submit(self, request: Request, writer: asyncio.StreamWriter) -> None:
        data = request.json()
        job = await self._job_from_payload(data)
        client = str(data.get("client") or request.client_id)
        priority = _int_field(data, "priority", default=0)
        trace_ctx = parse_traceparent(request.headers.get("traceparent"))
        streaming = None
        if data.get("stream"):
            from ..core.stream import DEFAULT_CHUNK_GATES, DEFAULT_WINDOW_GATES

            streaming = {
                "window_gates": _int_field(data, "window_gates", default=DEFAULT_WINDOW_GATES),
                "chunk_gates": _int_field(data, "chunk_gates", default=DEFAULT_CHUNK_GATES),
            }
        record, disposition = await self._admit(
            job, client=client, priority=priority, trace_ctx=trace_ctx, streaming=streaming
        )
        status = 200 if record.state not in (QUEUED, RUNNING) else 202
        await self._write_json(writer, status, self._submit_summary(record, disposition))

    async def _handle_batch(self, request: Request, writer: asyncio.StreamWriter) -> None:
        data = request.json()
        specs = data.get("jobs")
        if not isinstance(specs, list) or not specs:
            raise HTTPError(400, '"jobs" must be a non-empty list of job specifications')
        client = str(data.get("client") or request.client_id)
        priority = _int_field(data, "priority", default=0)
        jobs = []
        for index, spec in enumerate(specs):
            if not isinstance(spec, dict):
                raise HTTPError(400, f"jobs[{index}] must be a JSON object")
            jobs.append(await self._job_from_payload(spec))
        # Phase 1 (awaits allowed): read the cache for every distinct fingerprint
        # without touching queue state.
        loop = asyncio.get_running_loop()
        fingerprints = [job.fingerprint() for job in jobs]
        cached: Dict[str, Dict] = {}
        for fingerprint in dict.fromkeys(fingerprints):
            payload = await loop.run_in_executor(None, self.cache.get, fingerprint)
            if payload is not None:
                cached[fingerprint] = payload
        # Phase 2 (no awaits — atomic on the event loop): admit everything or nothing.
        # Cache hits and jobs coalescing onto in-flight records consume no queue slot.
        needed = len({
            fingerprint
            for fingerprint in fingerprints
            if fingerprint not in cached and self.queue.find_fingerprint(fingerprint) is None
        })
        headroom = self.queue.max_pending - self.queue.admitted_depth()
        if needed > headroom:
            self.metrics.jobs_rejected.inc(amount=needed)
            error = HTTPError(
                429,
                f"batch needs {needed} queue slots but only {headroom} remain",
                queue_depth=self.queue.admitted_depth(),
                queue_bound=self.queue.max_pending,
            )
            error.headers["Retry-After"] = "1"
            raise error
        submissions = []
        trace_ctx = parse_traceparent(request.headers.get("traceparent"))
        for job, fingerprint in zip(jobs, fingerprints):
            record, disposition = self._admit_atomic(
                job,
                fingerprint,
                cached.get(fingerprint),
                client=client,
                priority=priority,
                trace_ctx=trace_ctx,
            )
            submissions.append(self._submit_summary(record, disposition))
        await self._write_json(writer, 202, {"jobs": submissions})

    async def _handle_get_job(
        self, request: Request, writer: asyncio.StreamWriter, id: str
    ) -> None:
        record = self._record_or_404(id)
        wait = request.query.get("wait")
        if wait is not None:
            try:
                timeout = min(float(wait), MAX_WAIT_SECONDS)
            except ValueError as exc:
                raise HTTPError(400, f"invalid wait value {wait!r}") from exc
            await record.wait_terminal(timeout=timeout)
        await self._write_json(writer, 200, record.to_dict())

    async def _handle_list_jobs(self, request: Request, writer: asyncio.StreamWriter) -> None:
        records = [record.to_dict(include_result=False) for record in self.queue.records()]
        await self._write_json(writer, 200, {"jobs": records, "count": len(records)})

    async def _handle_trace(
        self, request: Request, writer: asyncio.StreamWriter, id: str
    ) -> None:
        """Serve the job's span tree: server spans + the worker's shipped spans.

        With an optional ``wait=`` query it long-polls like ``GET /v1/jobs/{id}`` so a
        tracing client can fetch the complete tree right after the terminal event.
        """
        record = self._record_or_404(id)
        wait = request.query.get("wait")
        if wait is not None:
            try:
                timeout = min(float(wait), MAX_WAIT_SECONDS)
            except ValueError as exc:
                raise HTTPError(400, f"invalid wait value {wait!r}") from exc
            await record.wait_terminal(timeout=timeout)
        await self._write_json(
            writer,
            200,
            {
                "id": record.id,
                "state": record.state,
                "trace_id": record.trace_id,
                "spans": record.trace_spans(),
            },
        )

    async def _handle_events(
        self, request: Request, writer: asyncio.StreamWriter, id: str
    ) -> None:
        record = self._record_or_404(id)
        head = (
            f"HTTP/1.1 200 OK\r\n"
            f"Content-Type: application/x-ndjson; charset=utf-8\r\n"
            f"Transfer-Encoding: chunked\r\nConnection: close\r\n"
            f"Server: repro/{__version__}\r\n\r\n"
        )
        writer.write(head.encode("latin-1"))
        await writer.drain()

        async def send_chunk(data: bytes) -> None:
            writer.write(f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n")
            await writer.drain()

        # Absolute event indexing: the record keeps a capped tail, so a consumer that
        # falls behind a streaming job's chunk events resumes at the oldest retained
        # event after an explicit ``events_dropped`` notice (never silently skips).
        index = record.events_base
        terminal_sent = False
        while not terminal_sent:
            changed = record.change_event()  # capture BEFORE scanning the event list
            if index < record.events_base:
                dropped = record.events_base - index
                index = record.events_base
                await send_chunk(
                    (
                        json.dumps(
                            {
                                "id": record.id,
                                "state": "events_dropped",
                                "at": time.time(),
                                "detail": {"dropped": dropped},
                            }
                        )
                        + "\n"
                    ).encode("utf-8")
                )
            while index - record.events_base < len(record.events):
                event = record.events[index - record.events_base]
                index += 1
                await send_chunk(
                    (json.dumps({"id": record.id, **event}) + "\n").encode("utf-8")
                )
                if event["state"] in TERMINAL_STATES:
                    terminal_sent = True
                    break
            if terminal_sent:
                break
            try:
                await asyncio.wait_for(changed.wait(), timeout=EVENTS_KEEPALIVE_SECONDS)
            except asyncio.TimeoutError:
                # Blank-line keepalive: clients skip empty lines; the traffic keeps
                # their socket (and any intermediary) from timing out a healthy job.
                await send_chunk(b"\n")
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    async def _handle_cancel(
        self, request: Request, writer: asyncio.StreamWriter, id: str
    ) -> None:
        record = self._record_or_404(id)
        was_queued = record.state == QUEUED
        record = self.queue.cancel(record.id)
        if record.state != CANCELLED:
            # Raising keeps the request metrics honest (a returned 409 would be
            # counted as a 2xx by _dispatch).
            raise HTTPError(
                409,
                f"job {record.id} is {record.state} and cannot be cancelled",
                state=record.state,
                cancel_requested=record.cancel_requested,
            )
        if was_queued:
            self.metrics.jobs_finished.inc(outcome="cancelled")
            self.metrics.total_seconds.observe(record.finished_at - record.submitted_at)
        payload = record.to_dict(include_result=False)
        payload["cancelled"] = True
        await self._write_json(writer, 200, payload)

    async def _handle_cache_lookup(
        self, request: Request, writer: asyncio.StreamWriter, fingerprint: str
    ) -> None:
        """Serve the *locally* cached payload for a fingerprint (the peer-fetch API).

        Deliberately local-only: when the cache is a fleet peer tier, answering a
        peer's lookup must never trigger a recursive peer fetch, so the tier's
        ``get_local`` is used when present.
        """
        getter = getattr(self.cache, "get_local", self.cache.get)
        loop = asyncio.get_running_loop()
        payload = await loop.run_in_executor(None, getter, fingerprint)
        if payload is None:
            self.metrics.peer_cache_requests.inc(outcome="miss")
            raise HTTPError(404, f"fingerprint {fingerprint[:16]}... is not cached here")
        self.metrics.peer_cache_requests.inc(outcome="hit")
        await self._write_json(
            writer, 200, {"fingerprint": fingerprint, "result": payload}
        )

    def health_payload(self) -> Dict:
        """The ``/healthz`` readiness document (also reused by the fleet heartbeat).

        ``ready`` means "this node can accept a new job right now": not draining and
        admission control has headroom.  ``shedding`` flags a saturated queue — the
        coordinator and external load balancers use it to steer traffic away before
        submissions start bouncing with 429s.
        """
        admitted = self.queue.admitted_depth()
        shedding = admitted >= self.queue.max_pending
        return {
            "status": "draining" if self.draining else "ok",
            "ready": not self.draining and not shedding,
            "version": __version__,
            "uptime_seconds": time.time() - self.started_at,
            "queue_depth": self.queue.pending_count(),
            "in_flight": self.queue.in_flight,
            "admitted_depth": admitted,
            "queue_bound": self.queue.max_pending,
            "shedding": shedding,
            "workers": self.runner.max_workers,
            "concurrency": self.runner.concurrency,
            "pool": self.runner.pool_kind,
            "cache": self.cache.stats.to_dict(),
        }

    async def _handle_healthz(self, request: Request, writer: asyncio.StreamWriter) -> None:
        await self._write_json(writer, 200, self.health_payload())

    async def _handle_metrics(self, request: Request, writer: asyncio.StreamWriter) -> None:
        # Obs counters are per-process: with a process pool the workers' transpiler-side
        # counters live in the pool, so this snapshot mostly reflects the server process
        # (thread pools surface everything).  The ResultCache counters always show here.
        text = self.metrics.render(
            queue_depth=self.queue.pending_count(),
            in_flight=self.queue.in_flight,
            cache_stats=self.cache.stats.to_dict(),
            obs_counters=COUNTERS.snapshot(),
        )
        await self._write_response(
            writer, 200, text.encode("utf-8"), content_type="text/plain; version=0.0.4"
        )

    async def _handle_methods(self, request: Request, writer: asyncio.StreamWriter) -> None:
        await self._write_json(writer, 200, methods_payload())

    async def _handle_targets(self, request: Request, writer: asyncio.StreamWriter) -> None:
        await self._write_json(writer, 200, targets_payload())

    # -- helpers --------------------------------------------------------------

    def _record_or_404(self, job_id: str) -> JobRecord:
        record = self.queue.get(job_id)
        if record is None:
            raise HTTPError(404, f"unknown job id {job_id!r}")
        return record


def job_from_payload(data: Dict) -> TranspileJob:
    """Build a :class:`TranspileJob` from a submission body (shared with the fleet
    coordinator, which must compute the same fingerprint the node will)."""
    try:
        if "job" in data:
            if not isinstance(data["job"], dict):
                raise HTTPError(400, '"job" must be a flat TranspileJob dict')
            return TranspileJob.from_dict(data["job"])
        if "qasm" not in data:
            raise HTTPError(400, 'submission needs either "job" or "qasm"')
        qasm_text = data["qasm"]
        if not isinstance(qasm_text, str) or "OPENQASM" not in qasm_text:
            raise HTTPError(400, '"qasm" must be OpenQASM 2.0 source text')
        target = _target_from_payload(data.get("target"))
        options = (
            TranspileOptions.from_dict(data["options"])
            if isinstance(data.get("options"), dict)
            else TranspileOptions()
        )
        return TranspileJob.from_spec(
            qasm_text, target, options, name=str(data.get("name") or "")
        )
    except HTTPError:
        raise
    except (ReproError, KeyError, TypeError, ValueError) as exc:
        raise HTTPError(400, f"invalid job specification: {exc}") from exc


def methods_payload() -> Dict:
    """The ``GET /v1/methods`` document (shared by node and coordinator)."""
    return {
        "routing_methods": [
            {
                "name": method.name,
                "description": method.description,
                "builtin": method.builtin,
                "requires_coupling": method.requires_coupling,
                "supports_best_of": method.supports_best_of,
            }
            for method in registered_methods()
        ],
        "schedule_modes": [
            {"name": mode, "description": description}
            for mode, description in SCHEDULE_MODES.items()
        ],
        "optimization_levels": [
            {"name": level, "description": LEVEL_DESCRIPTIONS[level]}
            for level in OPTIMIZATION_LEVELS
        ],
    }


def targets_payload() -> Dict:
    """The ``GET /v1/targets`` document (shared by node and coordinator)."""
    return {"targets": list(TOPOLOGY_CATALOG)}


def _target_from_payload(spec) -> Target:
    """Build a Target from a submission's ``target`` field.

    Accepts ``None`` (abstract all-to-all target), a ``Target.to_dict()`` form, or the
    shorthand ``{"topology": "linear", "num_qubits": 25, "calibrated": false}``.
    """
    if spec is None:
        return Target()
    if not isinstance(spec, dict):
        raise HTTPError(400, '"target" must be a JSON object or null')
    if "topology" in spec:
        return Target.from_topology(
            str(spec["topology"]),
            int(spec.get("num_qubits", 25)),
            calibrated=bool(spec.get("calibrated", False)),
            final_basis=str(spec.get("final_basis", "zsx")),
        )
    return Target.from_dict(spec)

"""The online transpilation server: asyncio HTTP front end over queue + runner.

A deliberately dependency-free HTTP/1.1 implementation on ``asyncio.start_server``
(the container ships no web framework), exposing the JSON API:

===========================  ==========================================================
``POST /v1/jobs``            submit one job (``{"job": {...}}`` flat dict, or
                             ``{"qasm": ..., "target": ..., "options": ...}``); returns
                             202 with the job id — or 200 immediately when the result
                             cache already holds the fingerprint
``POST /v1/batch``           submit many jobs atomically (all admitted or all 429)
``GET /v1/jobs``             summary list of known jobs
``GET /v1/jobs/{id}``        status/result; ``?wait=SECONDS`` long-polls for a terminal
                             state
``GET /v1/jobs/{id}/events`` chunked stream of state transitions (NDJSON), ending with
                             the terminal event and its pass-timing breakdown
``POST /v1/jobs/{id}/cancel`` cancel a queued job (``DELETE /v1/jobs/{id}`` is an alias)
``GET /v1/targets``          named device topologies the server can build
``GET /v1/methods``          routing methods (registry-derived) and optimization levels
``GET /healthz``             liveness + queue/pool summary
``GET /metrics``             Prometheus text format
===========================  ==========================================================

Admission control returns ``429 Too Many Requests`` with a ``Retry-After`` header once
``queue_bound`` jobs are admitted and unfinished.  Failed jobs carry the worker's full
traceback in their ``error`` object so a 500-class failure is actionable from the
client.  ``stop()`` drains in-flight work before the loop exits (SIGTERM/SIGINT do the
same under ``python -m repro serve``).
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time
from typing import Awaitable, Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from .. import __version__
from ..core.options import LEVEL_DESCRIPTIONS, OPTIMIZATION_LEVELS, TranspileOptions
from ..schedule.modes import SCHEDULE_MODES
from ..exceptions import ReproError
from ..hardware.target import Target
from ..hardware.topologies import TOPOLOGY_CATALOG
from ..obs.counters import COUNTERS
from ..obs.tracer import parse_traceparent
from ..service.cache import ResultCache
from ..service.jobs import TranspileJob
from ..transpiler.registry import registered_methods
from .metrics import ServerMetrics
from .queue import (
    CANCELLED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    JobQueue,
    JobRecord,
    QueueFull,
)
from .runner import JobRunner

#: Upper bound on request bodies (a batch of large QASM circuits fits comfortably).
MAX_BODY_BYTES = 16 * 1024 * 1024
#: Cap on ``?wait=`` long-poll duration.
MAX_WAIT_SECONDS = 120.0
#: Blank-line keepalive cadence of the event stream — a transpile can sit silently
#: between ``running`` and ``done`` for minutes, and idle clients time out otherwise.
EVENTS_KEEPALIVE_SECONDS = 15.0

_STATUS_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class HTTPError(Exception):
    """Terminates request handling with a structured JSON error response."""

    def __init__(self, status: int, message: str, **extra) -> None:
        super().__init__(message)
        self.status = status
        self.payload = {"error": {"status": status, "message": message, **extra}}
        self.headers: Dict[str, str] = {}


class Request:
    """One parsed HTTP request (method, path, query, JSON body on demand)."""

    def __init__(self, method: str, target: str, headers: Dict[str, str], body: bytes) -> None:
        self.method = method
        parts = urlsplit(target)
        self.path = parts.path
        self.query = {key: values[-1] for key, values in parse_qs(parts.query).items()}
        self.headers = headers
        self.body = body

    def json(self) -> Dict:
        if not self.body:
            raise HTTPError(400, "request body must be a JSON object")
        try:
            data = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HTTPError(400, f"malformed JSON body: {exc}") from exc
        if not isinstance(data, dict):
            raise HTTPError(400, "request body must be a JSON object")
        return data

    @property
    def client_id(self) -> str:
        return self.headers.get("x-repro-client", "anonymous")


class ReproServer:
    """The HTTP job service: owns the queue, the runner, the cache, and the listener."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8000,
        *,
        cache: Optional[ResultCache] = None,
        cache_dir: Optional[str] = None,
        queue_bound: int = 256,
        history_limit: int = 1024,
        concurrency: Optional[int] = None,
        max_workers: Optional[int] = None,
        use_processes: bool = True,
        ensemble_fanout_threshold: int = 8,
    ) -> None:
        self.host = host
        self.port = port
        self.cache = cache if cache is not None else ResultCache(directory=cache_dir)
        self.queue = JobQueue(max_pending=queue_bound, history_limit=history_limit)
        self.metrics = ServerMetrics()
        self.runner = JobRunner(
            self.queue,
            self.cache,
            concurrency=concurrency,
            max_workers=max_workers,
            use_processes=use_processes,
            metrics=self.metrics,
            ensemble_fanout_threshold=ensemble_fanout_threshold,
        )
        self.started_at = time.time()
        self.draining = False
        self._server: Optional[asyncio.AbstractServer] = None
        # Created inside start(): on Python 3.9 an asyncio.Event built outside a
        # running loop binds to the wrong loop.
        self._stopped: Optional[asyncio.Event] = None
        self._routes: List[Tuple[str, str, Callable[..., Awaitable[None]]]] = [
            ("GET", "/healthz", self._handle_healthz),
            ("GET", "/metrics", self._handle_metrics),
            ("GET", "/v1/methods", self._handle_methods),
            ("GET", "/v1/targets", self._handle_targets),
            ("POST", "/v1/jobs", self._handle_submit),
            ("POST", "/v1/batch", self._handle_batch),
            ("GET", "/v1/jobs", self._handle_list_jobs),
            ("GET", "/v1/jobs/{id}", self._handle_get_job),
            ("GET", "/v1/jobs/{id}/trace", self._handle_trace),
            ("GET", "/v1/jobs/{id}/events", self._handle_events),
            ("POST", "/v1/jobs/{id}/cancel", self._handle_cancel),
            ("DELETE", "/v1/jobs/{id}", self._handle_cancel),
        ]

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind the listener and start the runner; returns the bound (host, port)."""
        if self._stopped is None:
            self._stopped = asyncio.Event()
        self.runner.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            family=socket.AF_INET, reuse_address=True,
        )
        bound = self._server.sockets[0].getsockname()
        self.port = bound[1]
        return bound[0], bound[1]

    async def serve_forever(self) -> None:
        """Run until :meth:`stop` is called (used by ``python -m repro serve``)."""
        if self._server is None:
            await self.start()
        await self._stopped.wait()

    async def stop(self, *, drain: bool = True, timeout: float = 30.0) -> None:
        """Graceful shutdown: stop accepting, drain in-flight jobs, stop the runner."""
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.runner.stop(drain=drain, timeout=timeout)
        if self._stopped is not None:
            self._stopped.set()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def run_in_thread(self) -> "ThreadedServer":
        """Start this server in a dedicated background event-loop thread.

        The one embedded-server harness shared by the test suite, the throughput
        benchmark, and ``examples/remote_transpile.py`` — callers in a synchronous
        world get a running server without owning an event loop::

            with ReproServer(port=0, use_processes=False).run_in_thread() as handle:
                result = handle.client().submit(circuit, target).result()
        """
        return ThreadedServer(self).start()

    # -- connection handling --------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await self._read_request(reader)
            if request is not None:
                await self._dispatch(request, writer)
        except HTTPError as exc:
            await self._write_json(writer, exc.status, exc.payload, headers=exc.headers)
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:  # noqa: BLE001 - a broken handler must not kill the loop
            try:
                await self._write_json(
                    writer, 500,
                    {"error": {"status": 500, "message": f"{type(exc).__name__}: {exc}"}},
                )
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader) -> Optional[Request]:
        try:
            request_line = await reader.readline()
        except (ValueError, asyncio.LimitOverrunError) as exc:
            raise HTTPError(400, f"request line too long: {exc}") from exc
        if not request_line:
            return None
        try:
            method, target, _version = request_line.decode("latin-1").split()
        except ValueError as exc:
            raise HTTPError(400, "malformed request line") from exc
        headers: Dict[str, str] = {}
        while True:
            try:
                line = await reader.readline()
            except (ValueError, asyncio.LimitOverrunError) as exc:
                raise HTTPError(400, f"header line too long: {exc}") from exc
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        raw_length = headers.get("content-length", "0") or "0"
        try:
            length = int(raw_length)
        except ValueError as exc:
            raise HTTPError(400, f"invalid Content-Length {raw_length!r}") from exc
        if length < 0:
            raise HTTPError(400, f"invalid Content-Length {raw_length!r}")
        if length > MAX_BODY_BYTES:
            raise HTTPError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length else b""
        return Request(method.upper(), target, headers, body)

    def _match(self, request: Request) -> Tuple[Callable, Dict[str, str], str]:
        path_allowed: List[str] = []
        for method, pattern, handler in self._routes:
            params = _match_pattern(pattern, request.path)
            if params is None:
                continue
            if method == request.method:
                return handler, params, pattern
            path_allowed.append(method)
        if path_allowed:
            error = HTTPError(405, f"method {request.method} not allowed for {request.path}")
            error.headers["Allow"] = ", ".join(sorted(set(path_allowed)))
            raise error
        raise HTTPError(404, f"no route for {request.path}")

    async def _dispatch(self, request: Request, writer: asyncio.StreamWriter) -> None:
        handler, params, pattern = self._match(request)
        try:
            await handler(request, writer, **params)
            self.metrics.requests.inc(route=pattern, code="2xx")
        except HTTPError as exc:
            self.metrics.requests.inc(route=pattern, code=str(exc.status))
            raise

    # -- response writing -----------------------------------------------------

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        *,
        content_type: str = "application/json",
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        reason = _STATUS_REASONS.get(status, "Unknown")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}; charset=utf-8",
            f"Content-Length: {len(body)}",
            "Connection: close",
            f"Server: repro/{__version__}",
        ]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()

    async def _write_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict,
        *,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload, indent=2).encode("utf-8") + b"\n"
        await self._write_response(writer, status, body, headers=headers)

    # -- job construction -----------------------------------------------------

    async def _job_from_payload(self, data: Dict) -> TranspileJob:
        try:
            if "job" in data:
                if not isinstance(data["job"], dict):
                    raise HTTPError(400, '"job" must be a flat TranspileJob dict')
                return TranspileJob.from_dict(data["job"])
            if "qasm" not in data:
                raise HTTPError(400, 'submission needs either "job" or "qasm"')
            qasm_text = data["qasm"]
            if not isinstance(qasm_text, str) or "OPENQASM" not in qasm_text:
                raise HTTPError(400, '"qasm" must be OpenQASM 2.0 source text')
            target = _target_from_payload(data.get("target"))
            options = (
                TranspileOptions.from_dict(data["options"])
                if isinstance(data.get("options"), dict)
                else TranspileOptions()
            )
            return TranspileJob.from_spec(
                qasm_text, target, options, name=str(data.get("name") or "")
            )
        except HTTPError:
            raise
        except (ReproError, KeyError, TypeError, ValueError) as exc:
            raise HTTPError(400, f"invalid job specification: {exc}") from exc

    async def _admit(
        self,
        job: TranspileJob,
        *,
        client: str,
        priority: int,
        trace_ctx: Optional[Dict] = None,
    ) -> Tuple[JobRecord, str]:
        """Admit one job; returns (record, disposition in {new, deduplicated, cached})."""
        fingerprint = job.fingerprint()
        payload = None
        if self.queue.find_fingerprint(fingerprint) is None:
            loop = asyncio.get_running_loop()
            payload = await loop.run_in_executor(None, self.cache.get, fingerprint)
        return self._admit_atomic(
            job, fingerprint, payload, client=client, priority=priority, trace_ctx=trace_ctx
        )

    def _admit_atomic(
        self,
        job: TranspileJob,
        fingerprint: str,
        cached_payload,
        *,
        client: str,
        priority: int,
        trace_ctx: Optional[Dict] = None,
    ) -> Tuple[JobRecord, str]:
        """The synchronous admission step — no awaits, so queue state cannot move
        underneath it (callers may pre-check headroom for a whole batch)."""
        if self.draining:
            raise HTTPError(503, "server is draining; not accepting new jobs")
        # Coalescing onto an in-flight twin takes precedence over the cache; the queue
        # owns that check (and its dedup counter) inside submit().
        if cached_payload is not None and self.queue.find_fingerprint(fingerprint) is None:
            record = self.queue.admit_completed(
                job,
                cached_payload,
                client=client,
                priority=priority,
                fingerprint=fingerprint,
                trace_ctx=trace_ctx,
            )
            self.metrics.jobs_submitted.inc()
            self.metrics.jobs_finished.inc(outcome="cached")
            self.metrics.total_seconds.observe(record.finished_at - record.submitted_at)
            return record, "cached"
        try:
            record, resubmitted = self.queue.submit(
                job,
                client=client,
                priority=priority,
                fingerprint=fingerprint,
                trace_ctx=trace_ctx,
            )
        except QueueFull as exc:
            self.metrics.jobs_rejected.inc()
            error = HTTPError(
                429, str(exc), queue_depth=exc.depth, queue_bound=exc.bound,
            )
            error.headers["Retry-After"] = "1"
            raise error from exc
        if resubmitted:
            self.metrics.jobs_deduplicated.inc()
            return record, "deduplicated"
        self.metrics.jobs_submitted.inc()
        return record, "new"

    @staticmethod
    def _submit_summary(record: JobRecord, disposition: str) -> Dict:
        return {
            "id": record.id,
            "fingerprint": record.fingerprint,
            "state": record.state,
            "from_cache": record.from_cache,
            "resubmitted": disposition == "deduplicated",
            "url": f"/v1/jobs/{record.id}",
        }

    # -- handlers -------------------------------------------------------------

    async def _handle_submit(self, request: Request, writer: asyncio.StreamWriter) -> None:
        data = request.json()
        job = await self._job_from_payload(data)
        client = str(data.get("client") or request.client_id)
        priority = _int_field(data, "priority", default=0)
        trace_ctx = parse_traceparent(request.headers.get("traceparent"))
        record, disposition = await self._admit(
            job, client=client, priority=priority, trace_ctx=trace_ctx
        )
        status = 200 if record.state not in (QUEUED, RUNNING) else 202
        await self._write_json(writer, status, self._submit_summary(record, disposition))

    async def _handle_batch(self, request: Request, writer: asyncio.StreamWriter) -> None:
        data = request.json()
        specs = data.get("jobs")
        if not isinstance(specs, list) or not specs:
            raise HTTPError(400, '"jobs" must be a non-empty list of job specifications')
        client = str(data.get("client") or request.client_id)
        priority = _int_field(data, "priority", default=0)
        jobs = []
        for index, spec in enumerate(specs):
            if not isinstance(spec, dict):
                raise HTTPError(400, f"jobs[{index}] must be a JSON object")
            jobs.append(await self._job_from_payload(spec))
        # Phase 1 (awaits allowed): read the cache for every distinct fingerprint
        # without touching queue state.
        loop = asyncio.get_running_loop()
        fingerprints = [job.fingerprint() for job in jobs]
        cached: Dict[str, Dict] = {}
        for fingerprint in dict.fromkeys(fingerprints):
            payload = await loop.run_in_executor(None, self.cache.get, fingerprint)
            if payload is not None:
                cached[fingerprint] = payload
        # Phase 2 (no awaits — atomic on the event loop): admit everything or nothing.
        # Cache hits and jobs coalescing onto in-flight records consume no queue slot.
        needed = len({
            fingerprint
            for fingerprint in fingerprints
            if fingerprint not in cached and self.queue.find_fingerprint(fingerprint) is None
        })
        headroom = self.queue.max_pending - self.queue.admitted_depth()
        if needed > headroom:
            self.metrics.jobs_rejected.inc(amount=needed)
            error = HTTPError(
                429,
                f"batch needs {needed} queue slots but only {headroom} remain",
                queue_depth=self.queue.admitted_depth(),
                queue_bound=self.queue.max_pending,
            )
            error.headers["Retry-After"] = "1"
            raise error
        submissions = []
        trace_ctx = parse_traceparent(request.headers.get("traceparent"))
        for job, fingerprint in zip(jobs, fingerprints):
            record, disposition = self._admit_atomic(
                job,
                fingerprint,
                cached.get(fingerprint),
                client=client,
                priority=priority,
                trace_ctx=trace_ctx,
            )
            submissions.append(self._submit_summary(record, disposition))
        await self._write_json(writer, 202, {"jobs": submissions})

    async def _handle_get_job(
        self, request: Request, writer: asyncio.StreamWriter, id: str
    ) -> None:
        record = self._record_or_404(id)
        wait = request.query.get("wait")
        if wait is not None:
            try:
                timeout = min(float(wait), MAX_WAIT_SECONDS)
            except ValueError as exc:
                raise HTTPError(400, f"invalid wait value {wait!r}") from exc
            await record.wait_terminal(timeout=timeout)
        await self._write_json(writer, 200, record.to_dict())

    async def _handle_list_jobs(self, request: Request, writer: asyncio.StreamWriter) -> None:
        records = [record.to_dict(include_result=False) for record in self.queue.records()]
        await self._write_json(writer, 200, {"jobs": records, "count": len(records)})

    async def _handle_trace(
        self, request: Request, writer: asyncio.StreamWriter, id: str
    ) -> None:
        """Serve the job's span tree: server spans + the worker's shipped spans.

        With an optional ``wait=`` query it long-polls like ``GET /v1/jobs/{id}`` so a
        tracing client can fetch the complete tree right after the terminal event.
        """
        record = self._record_or_404(id)
        wait = request.query.get("wait")
        if wait is not None:
            try:
                timeout = min(float(wait), MAX_WAIT_SECONDS)
            except ValueError as exc:
                raise HTTPError(400, f"invalid wait value {wait!r}") from exc
            await record.wait_terminal(timeout=timeout)
        await self._write_json(
            writer,
            200,
            {
                "id": record.id,
                "state": record.state,
                "trace_id": record.trace_id,
                "spans": record.trace_spans(),
            },
        )

    async def _handle_events(
        self, request: Request, writer: asyncio.StreamWriter, id: str
    ) -> None:
        record = self._record_or_404(id)
        head = (
            f"HTTP/1.1 200 OK\r\n"
            f"Content-Type: application/x-ndjson; charset=utf-8\r\n"
            f"Transfer-Encoding: chunked\r\nConnection: close\r\n"
            f"Server: repro/{__version__}\r\n\r\n"
        )
        writer.write(head.encode("latin-1"))
        await writer.drain()

        async def send_chunk(data: bytes) -> None:
            writer.write(f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n")
            await writer.drain()

        index = 0
        terminal_sent = False
        while not terminal_sent:
            changed = record.change_event()  # capture BEFORE scanning the event list
            while index < len(record.events):
                event = record.events[index]
                index += 1
                await send_chunk(
                    (json.dumps({"id": record.id, **event}) + "\n").encode("utf-8")
                )
                if event["state"] in TERMINAL_STATES:
                    terminal_sent = True
                    break
            if terminal_sent:
                break
            try:
                await asyncio.wait_for(changed.wait(), timeout=EVENTS_KEEPALIVE_SECONDS)
            except asyncio.TimeoutError:
                # Blank-line keepalive: clients skip empty lines; the traffic keeps
                # their socket (and any intermediary) from timing out a healthy job.
                await send_chunk(b"\n")
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    async def _handle_cancel(
        self, request: Request, writer: asyncio.StreamWriter, id: str
    ) -> None:
        record = self._record_or_404(id)
        was_queued = record.state == QUEUED
        record = self.queue.cancel(record.id)
        if record.state != CANCELLED:
            # Raising keeps the request metrics honest (a returned 409 would be
            # counted as a 2xx by _dispatch).
            raise HTTPError(
                409,
                f"job {record.id} is {record.state} and cannot be cancelled",
                state=record.state,
                cancel_requested=record.cancel_requested,
            )
        if was_queued:
            self.metrics.jobs_finished.inc(outcome="cancelled")
            self.metrics.total_seconds.observe(record.finished_at - record.submitted_at)
        payload = record.to_dict(include_result=False)
        payload["cancelled"] = True
        await self._write_json(writer, 200, payload)

    async def _handle_healthz(self, request: Request, writer: asyncio.StreamWriter) -> None:
        payload = {
            "status": "draining" if self.draining else "ok",
            "version": __version__,
            "uptime_seconds": time.time() - self.started_at,
            "queue_depth": self.queue.pending_count(),
            "in_flight": self.queue.in_flight,
            "queue_bound": self.queue.max_pending,
            "concurrency": self.runner.concurrency,
            "pool": self.runner.pool_kind,
            "cache": self.cache.stats.to_dict(),
        }
        await self._write_json(writer, 200, payload)

    async def _handle_metrics(self, request: Request, writer: asyncio.StreamWriter) -> None:
        # Obs counters are per-process: with a process pool the workers' transpiler-side
        # counters live in the pool, so this snapshot mostly reflects the server process
        # (thread pools surface everything).  The ResultCache counters always show here.
        text = self.metrics.render(
            queue_depth=self.queue.pending_count(),
            in_flight=self.queue.in_flight,
            cache_stats=self.cache.stats.to_dict(),
            obs_counters=COUNTERS.snapshot(),
        )
        await self._write_response(
            writer, 200, text.encode("utf-8"), content_type="text/plain; version=0.0.4"
        )

    async def _handle_methods(self, request: Request, writer: asyncio.StreamWriter) -> None:
        payload = {
            "routing_methods": [
                {
                    "name": method.name,
                    "description": method.description,
                    "builtin": method.builtin,
                    "requires_coupling": method.requires_coupling,
                    "supports_best_of": method.supports_best_of,
                }
                for method in registered_methods()
            ],
            "schedule_modes": [
                {"name": mode, "description": description}
                for mode, description in SCHEDULE_MODES.items()
            ],
            "optimization_levels": [
                {"name": level, "description": LEVEL_DESCRIPTIONS[level]}
                for level in OPTIMIZATION_LEVELS
            ],
        }
        await self._write_json(writer, 200, payload)

    async def _handle_targets(self, request: Request, writer: asyncio.StreamWriter) -> None:
        await self._write_json(writer, 200, {"targets": list(TOPOLOGY_CATALOG)})

    # -- helpers --------------------------------------------------------------

    def _record_or_404(self, job_id: str) -> JobRecord:
        record = self.queue.get(job_id)
        if record is None:
            raise HTTPError(404, f"unknown job id {job_id!r}")
        return record


class ThreadedServer:
    """A :class:`ReproServer` running in its own thread + event loop (see
    :meth:`ReproServer.run_in_thread`).  ``stop()`` performs the full graceful
    shutdown, stops the loop, and joins the thread; usable as a context manager."""

    def __init__(self, server: ReproServer) -> None:
        self.server = server
        self.loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True, name="repro-server")

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.server.start())
        self._ready.set()
        self.loop.run_forever()

    def start(self) -> "ThreadedServer":
        self._thread.start()
        if not self._ready.wait(timeout=15):
            raise RuntimeError("server thread failed to start within 15s")
        return self

    def stop(self, *, drain: bool = True, timeout: float = 30.0) -> None:
        asyncio.run_coroutine_threadsafe(
            self.server.stop(drain=drain, timeout=timeout), self.loop
        ).result(timeout=timeout + 15)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=15)
        self.loop.close()

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.server.port}"

    def client(self, **kwargs):
        """A :class:`repro.client.ReproClient` pointed at this server."""
        from ..client import ReproClient  # lazy: keeps server importable without client

        return ReproClient(self.url, **kwargs)

    def __enter__(self) -> "ThreadedServer":
        return self if self._ready.is_set() else self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def _match_pattern(pattern: str, path: str) -> Optional[Dict[str, str]]:
    """Match ``/v1/jobs/{id}/events``-style patterns; returns captured params."""
    pattern_parts = pattern.strip("/").split("/")
    path_parts = path.strip("/").split("/")
    if len(pattern_parts) != len(path_parts):
        return None
    params: Dict[str, str] = {}
    for expected, actual in zip(pattern_parts, path_parts):
        if expected.startswith("{") and expected.endswith("}"):
            if not actual:
                return None
            params[expected[1:-1]] = actual
        elif expected != actual:
            return None
    return params


def _int_field(data: Dict, key: str, *, default: int) -> int:
    value = data.get(key, default)
    try:
        return int(value)
    except (TypeError, ValueError) as exc:
        raise HTTPError(400, f'"{key}" must be an integer, got {value!r}') from exc


def _target_from_payload(spec) -> Target:
    """Build a Target from a submission's ``target`` field.

    Accepts ``None`` (abstract all-to-all target), a ``Target.to_dict()`` form, or the
    shorthand ``{"topology": "linear", "num_qubits": 25, "calibrated": false}``.
    """
    if spec is None:
        return Target()
    if not isinstance(spec, dict):
        raise HTTPError(400, '"target" must be a JSON object or null')
    if "topology" in spec:
        return Target.from_topology(
            str(spec["topology"]),
            int(spec.get("num_qubits", 25)),
            calibrated=bool(spec.get("calibrated", False)),
            final_basis=str(spec.get("final_basis", "zsx")),
        )
    return Target.from_dict(spec)

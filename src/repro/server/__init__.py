"""Online transpilation server: an asyncio HTTP job service above the batch layer.

Where :mod:`repro.service` is the *offline* execution layer (the caller owns the
process), this package turns the same pieces — :class:`~repro.service.TranspileJob`
fingerprints, the content-addressed :class:`~repro.service.ResultCache`, and the batch
worker entry point — into an *online* service that concurrent clients hit over HTTP:

* :class:`ReproServer` (:mod:`repro.server.app`) — stdlib-only asyncio HTTP/1.1 front
  end with JSON endpoints, streaming job events, Prometheus ``/metrics``, and graceful
  drain on shutdown.
* :class:`JobQueue` (:mod:`repro.server.queue`) — priority queue with per-client fair
  scheduling, bounded admission (429 backpressure), idempotent resubmission by job
  fingerprint, and cancellation.
* :class:`JobRunner` (:mod:`repro.server.runner`) — dispatches queued jobs onto a
  process pool off the event loop, sharing one result cache with the batch CLI.
* :class:`ServerMetrics` (:mod:`repro.server.metrics`) — dependency-free Prometheus
  text-format instrumentation.

Start it with ``python -m repro serve`` and talk to it with :mod:`repro.client`.
"""

from .app import HTTPError, ReproServer, ThreadedServer
from .metrics import ServerMetrics, parse_metric
from .queue import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    JobQueue,
    JobRecord,
    QueueFull,
)
from .runner import JobRunner

__all__ = [
    "CANCELLED",
    "DONE",
    "FAILED",
    "HTTPError",
    "JobQueue",
    "JobRecord",
    "JobRunner",
    "QUEUED",
    "QueueFull",
    "RUNNING",
    "ReproServer",
    "ServerMetrics",
    "ThreadedServer",
    "parse_metric",
]

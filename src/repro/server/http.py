"""Shared asyncio HTTP/1.1 plumbing for the repro services.

The container ships no web framework, so the online services implement HTTP/1.1 on
``asyncio.start_server`` directly.  This module holds the pieces that are identical
between the single-node job server (:class:`repro.server.app.ReproServer`) and the
fleet coordinator (:class:`repro.fleet.coordinator.FleetCoordinator`):

* :class:`Request` / :class:`HTTPError` — parsed requests and structured JSON errors.
* :class:`AsyncHTTPServer` — connection handling, request parsing with body bounds,
  ``{param}``-pattern routing with 404/405 semantics, JSON/raw response writing, and a
  graceful start/stop lifecycle with ``_on_start``/``_on_stop`` hooks for subclasses.
* :class:`ThreadedServer` — the embedded-server harness: any :class:`AsyncHTTPServer`
  running in a dedicated background event-loop thread (used by tests, benchmarks and
  the examples so synchronous callers never own an event loop).
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
from typing import Awaitable, Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from .. import __version__

#: Upper bound on request bodies (a batch of large QASM circuits fits comfortably).
MAX_BODY_BYTES = 16 * 1024 * 1024

_STATUS_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error", 502: "Bad Gateway",
    503: "Service Unavailable", 504: "Gateway Timeout",
}


class HTTPError(Exception):
    """Terminates request handling with a structured JSON error response."""

    def __init__(self, status: int, message: str, **extra) -> None:
        super().__init__(message)
        self.status = status
        self.payload = {"error": {"status": status, "message": message, **extra}}
        self.headers: Dict[str, str] = {}


class Request:
    """One parsed HTTP request (method, path, query, JSON body on demand)."""

    def __init__(self, method: str, target: str, headers: Dict[str, str], body: bytes) -> None:
        self.method = method
        parts = urlsplit(target)
        self.path = parts.path
        self.raw_query = parts.query
        self.query = {key: values[-1] for key, values in parse_qs(parts.query).items()}
        self.headers = headers
        self.body = body

    def json(self) -> Dict:
        if not self.body:
            raise HTTPError(400, "request body must be a JSON object")
        try:
            data = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HTTPError(400, f"malformed JSON body: {exc}") from exc
        if not isinstance(data, dict):
            raise HTTPError(400, "request body must be a JSON object")
        return data

    @property
    def client_id(self) -> str:
        return self.headers.get("x-repro-client", "anonymous")


class AsyncHTTPServer:
    """Dependency-free asyncio HTTP/1.1 server base with pattern routing.

    Subclasses register ``(method, pattern, handler)`` routes (patterns may contain
    ``{param}`` segments, captured as keyword arguments) and may override
    :meth:`_on_start` / :meth:`_on_stop` to manage background tasks beside the
    listener, and :meth:`_observe_request` to feed their metrics.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8000) -> None:
        self.host = host
        self.port = port
        self.draining = False
        self._server: Optional[asyncio.AbstractServer] = None
        # Created inside start(): on Python 3.9 an asyncio.Event built outside a
        # running loop binds to the wrong loop.
        self._stopped: Optional[asyncio.Event] = None
        self._routes: List[Tuple[str, str, Callable[..., Awaitable[None]]]] = []

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind the listener and run :meth:`_on_start`; returns the bound (host, port)."""
        if self._stopped is None:
            self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            family=socket.AF_INET, reuse_address=True,
        )
        bound = self._server.sockets[0].getsockname()
        self.port = bound[1]
        await self._on_start()
        return bound[0], bound[1]

    async def serve_forever(self) -> None:
        """Run until :meth:`stop` is called (used by the CLI entry points)."""
        if self._server is None:
            await self.start()
        await self._stopped.wait()

    async def stop(self, *, drain: bool = True, timeout: float = 30.0) -> None:
        """Graceful shutdown: stop accepting, run :meth:`_on_stop`, release waiters."""
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self._on_stop(drain=drain, timeout=timeout)
        if self._stopped is not None:
            self._stopped.set()

    async def _on_start(self) -> None:
        """Hook run after the listener is bound (the ephemeral port is known)."""

    async def _on_stop(self, *, drain: bool, timeout: float) -> None:
        """Hook run after the listener is closed, before waiters are released."""

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def run_in_thread(self) -> "ThreadedServer":
        """Start this server in a dedicated background event-loop thread.

        The one embedded-server harness shared by the test suite, the throughput
        benchmarks and the examples — callers in a synchronous world get a running
        server without owning an event loop::

            with ReproServer(port=0, use_processes=False).run_in_thread() as handle:
                result = handle.client().submit(circuit, target).result()
        """
        return ThreadedServer(self).start()

    # -- connection handling --------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await self._read_request(reader)
            if request is not None:
                await self._dispatch(request, writer)
        except HTTPError as exc:
            await self._write_json(writer, exc.status, exc.payload, headers=exc.headers)
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:  # noqa: BLE001 - a broken handler must not kill the loop
            try:
                await self._write_json(
                    writer, 500,
                    {"error": {"status": 500, "message": f"{type(exc).__name__}: {exc}"}},
                )
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader) -> Optional[Request]:
        try:
            request_line = await reader.readline()
        except (ValueError, asyncio.LimitOverrunError) as exc:
            raise HTTPError(400, f"request line too long: {exc}") from exc
        if not request_line:
            return None
        try:
            method, target, _version = request_line.decode("latin-1").split()
        except ValueError as exc:
            raise HTTPError(400, "malformed request line") from exc
        headers: Dict[str, str] = {}
        while True:
            try:
                line = await reader.readline()
            except (ValueError, asyncio.LimitOverrunError) as exc:
                raise HTTPError(400, f"header line too long: {exc}") from exc
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        raw_length = headers.get("content-length", "0") or "0"
        try:
            length = int(raw_length)
        except ValueError as exc:
            raise HTTPError(400, f"invalid Content-Length {raw_length!r}") from exc
        if length < 0:
            raise HTTPError(400, f"invalid Content-Length {raw_length!r}")
        if length > MAX_BODY_BYTES:
            raise HTTPError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length else b""
        return Request(method.upper(), target, headers, body)

    def _match(self, request: Request) -> Tuple[Callable, Dict[str, str], str]:
        path_allowed: List[str] = []
        for method, pattern, handler in self._routes:
            params = _match_pattern(pattern, request.path)
            if params is None:
                continue
            if method == request.method:
                return handler, params, pattern
            path_allowed.append(method)
        if path_allowed:
            error = HTTPError(405, f"method {request.method} not allowed for {request.path}")
            error.headers["Allow"] = ", ".join(sorted(set(path_allowed)))
            raise error
        raise HTTPError(404, f"no route for {request.path}")

    async def _dispatch(self, request: Request, writer: asyncio.StreamWriter) -> None:
        handler, params, pattern = self._match(request)
        try:
            await handler(request, writer, **params)
            self._observe_request(pattern, "2xx")
        except HTTPError as exc:
            self._observe_request(pattern, str(exc.status))
            raise

    def _observe_request(self, pattern: str, code: str) -> None:
        """Hook for per-route request metrics (no-op by default)."""

    # -- response writing -----------------------------------------------------

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        *,
        content_type: str = "application/json",
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        reason = _STATUS_REASONS.get(status, "Unknown")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}; charset=utf-8",
            f"Content-Length: {len(body)}",
            "Connection: close",
            f"Server: repro/{__version__}",
        ]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()

    async def _write_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict,
        *,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload, indent=2).encode("utf-8") + b"\n"
        await self._write_response(writer, status, body, headers=headers)


class ThreadedServer:
    """An :class:`AsyncHTTPServer` running in its own thread + event loop (see
    :meth:`AsyncHTTPServer.run_in_thread`).  ``stop()`` performs the full graceful
    shutdown, stops the loop, and joins the thread; usable as a context manager."""

    def __init__(self, server: AsyncHTTPServer) -> None:
        self.server = server
        self.loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True, name="repro-server")

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.server.start())
        self._ready.set()
        self.loop.run_forever()

    def start(self) -> "ThreadedServer":
        self._thread.start()
        if not self._ready.wait(timeout=15):
            raise RuntimeError("server thread failed to start within 15s")
        return self

    def stop(self, *, drain: bool = True, timeout: float = 30.0) -> None:
        asyncio.run_coroutine_threadsafe(
            self.server.stop(drain=drain, timeout=timeout), self.loop
        ).result(timeout=timeout + 15)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=15)
        self.loop.close()

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.server.port}"

    def client(self, **kwargs):
        """A :class:`repro.client.ReproClient` pointed at this server."""
        from ..client import ReproClient  # lazy: keeps server importable without client

        return ReproClient(self.url, **kwargs)

    def __enter__(self) -> "ThreadedServer":
        return self if self._ready.is_set() else self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def _match_pattern(pattern: str, path: str) -> Optional[Dict[str, str]]:
    """Match ``/v1/jobs/{id}/events``-style patterns; returns captured params."""
    pattern_parts = pattern.strip("/").split("/")
    path_parts = path.strip("/").split("/")
    if len(pattern_parts) != len(path_parts):
        return None
    params: Dict[str, str] = {}
    for expected, actual in zip(pattern_parts, path_parts):
        if expected.startswith("{") and expected.endswith("}"):
            if not actual:
                return None
            params[expected[1:-1]] = actual
        elif expected != actual:
            return None
    return params


def _int_field(data: Dict, key: str, *, default: int) -> int:
    value = data.get(key, default)
    try:
        return int(value)
    except (TypeError, ValueError) as exc:
        raise HTTPError(400, f'"{key}" must be an integer, got {value!r}') from exc

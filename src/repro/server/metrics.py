"""Prometheus-format metrics for the online transpilation server.

A deliberately tiny instrumentation layer (the container has no ``prometheus_client``):
counters, gauges and cumulative histograms that render themselves in the Prometheus text
exposition format (version 0.0.4).  The server exposes one :class:`ServerMetrics`
instance at ``GET /metrics``; gauges that mirror live queue state (depth, in-flight) are
read from the queue at render time rather than being kept in sync event by event.

Everything here runs on the event loop thread, so no locking is needed; the cache stats
it re-exports (:class:`repro.service.cache.CacheStats`) carry their own lock inside
:class:`~repro.service.cache.ResultCache`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Default latency buckets (seconds) — spans cache hits (~ms) to heavy circuits (minutes).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
)


def _fmt(value: float) -> str:
    """Prometheus-friendly number formatting (integers without the trailing ``.0``)."""
    if value == float("inf"):
        return "+Inf"
    as_int = int(value)
    return str(as_int) if value == as_int else repr(float(value))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format: ``\\`` , ``"`` and newline."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _labels(labels: Optional[Dict[str, str]]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(value)}"' for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


class Histogram:
    """A cumulative histogram in the Prometheus style (``_bucket``/``_sum``/``_count``)."""

    def __init__(
        self, name: str, help_text: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        self.name = name
        self.help_text = help_text
        self.buckets = tuple(sorted(buckets))
        self.counts = [0] * len(self.buckets)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1

    def render(self) -> List[str]:
        lines = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} histogram",
        ]
        cumulative = 0
        for bound, bucket_count in zip(self.buckets, self.counts):
            cumulative = bucket_count  # counts are already cumulative per observe()
            lines.append(f'{self.name}_bucket{{le="{_fmt(bound)}"}} {cumulative}')
        lines.append(f'{self.name}_bucket{{le="+Inf"}} {self.count}')
        lines.append(f"{self.name}_sum {_fmt(self.total)}")
        lines.append(f"{self.name}_count {self.count}")
        return lines


class LabeledHistogram:
    """A family of :class:`Histogram` children keyed by one label value.

    Used for per-pass latency (``repro_pass_seconds{pass="SabreRouting"}``): children are
    created on first observation and render as one metric family.
    """

    def __init__(
        self,
        name: str,
        help_text: str,
        label: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.help_text = help_text
        self.label = label
        self.buckets = tuple(sorted(buckets))
        self._children: Dict[str, Histogram] = {}

    def observe(self, label_value: str, value: float) -> None:
        child = self._children.get(label_value)
        if child is None:
            child = self._children[label_value] = Histogram(
                self.name, self.help_text, self.buckets
            )
        child.observe(value)

    def render(self) -> List[str]:
        lines = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} histogram",
        ]
        for label_value in sorted(self._children):
            child = self._children[label_value]
            escaped = _escape_label_value(label_value)
            for bound, bucket_count in zip(child.buckets, child.counts):
                lines.append(
                    f'{self.name}_bucket{{{self.label}="{escaped}",le="{_fmt(bound)}"}} '
                    f"{bucket_count}"
                )
            lines.append(
                f'{self.name}_bucket{{{self.label}="{escaped}",le="+Inf"}} {child.count}'
            )
            lines.append(
                f'{self.name}_sum{{{self.label}="{escaped}"}} {_fmt(child.total)}'
            )
            lines.append(f'{self.name}_count{{{self.label}="{escaped}"}} {child.count}')
        return lines


class Counter:
    """A monotonically increasing counter, optionally with one label dimension."""

    def __init__(self, name: str, help_text: str) -> None:
        self.name = name
        self.help_text = help_text
        self._values: Dict[Tuple[Tuple[str, str], ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = tuple(sorted(labels.items()))
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        return self._values.get(tuple(sorted(labels.items())), 0.0)

    def render(self) -> List[str]:
        lines = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} counter",
        ]
        if not self._values:
            lines.append(f"{self.name} 0")
            return lines
        for key in sorted(self._values):
            lines.append(f"{self.name}{_labels(dict(key))} {_fmt(self._values[key])}")
        return lines


def gauge_lines(name: str, help_text: str, value: float) -> List[str]:
    """Render one unlabelled gauge sample."""
    return [
        f"# HELP {name} {help_text}",
        f"# TYPE {name} gauge",
        f"{name} {_fmt(value)}",
    ]


class ServerMetrics:
    """All server instrumentation, rendered as one Prometheus text page.

    ``jobs_total`` counts terminal transitions by outcome label (``done`` / ``failed`` /
    ``cancelled`` plus ``cached`` for cache-served completions); the latency histograms
    split per stage: admission→start (queue wait), start→finish (run), and the
    end-to-end submit→terminal wall time.
    """

    def __init__(self) -> None:
        self.jobs_submitted = Counter(
            "repro_jobs_submitted_total", "Jobs accepted for execution"
        )
        self.jobs_rejected = Counter(
            "repro_jobs_rejected_total", "Submissions rejected by admission control (HTTP 429)"
        )
        self.jobs_deduplicated = Counter(
            "repro_jobs_deduplicated_total",
            "Submissions answered by an existing record with the same fingerprint",
        )
        self.jobs_finished = Counter(
            "repro_jobs_finished_total", "Jobs that reached a terminal state, by outcome"
        )
        self.requests = Counter(
            "repro_http_requests_total", "HTTP requests served, by route and status code"
        )
        self.queue_wait = Histogram(
            "repro_job_queue_wait_seconds", "Time from admission to execution start"
        )
        self.run_seconds = Histogram(
            "repro_job_run_seconds", "Execution time of jobs that ran (cache misses)"
        )
        self.total_seconds = Histogram(
            "repro_job_total_seconds", "End-to-end time from submission to terminal state"
        )
        # Same quantity as queue_wait under the series name the observability layer
        # standardises on; kept alongside the historical name for dashboard continuity.
        self.server_queue_wait = Histogram(
            "repro_server_queue_wait_seconds",
            "Time jobs spent queued before a worker picked them up",
        )
        self.pass_seconds = LabeledHistogram(
            "repro_pass_seconds",
            "Per-transpiler-pass wall time, labelled by pass name",
            "pass",
        )
        self.ensemble_fanout = Counter(
            "repro_ensemble_fanout_total",
            "Best-of-N jobs whose trials were fanned across the worker pool",
        )
        self.ensemble_trials = Counter(
            "repro_ensemble_trials_total",
            "Ensemble routing trials executed on behalf of best-of-N jobs",
        )
        self.peer_cache_requests = Counter(
            "repro_peer_cache_requests_total",
            "Peer cache lookups served over GET /v1/cache, by outcome",
        )
        self.schedule_duration = Histogram(
            "repro_schedule_duration_seconds",
            "Critical-path duration of schedules produced by schedule-enabled jobs",
            # Schedule makespans are microseconds-to-milliseconds, far below the
            # default wall-clock buckets.
            buckets=(1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0),
        )

    def observe_pass_timings(self, timing_log: Iterable[Tuple[str, float]]) -> None:
        """Feed one job's per-pass timing log into the per-pass latency histograms."""
        for name, elapsed in timing_log:
            self.pass_seconds.observe(str(name), float(elapsed))

    def render(
        self,
        *,
        queue_depth: int,
        in_flight: int,
        cache_stats: Dict,
        obs_counters: Optional[Dict[str, int]] = None,
    ) -> str:
        lines: List[str] = []
        lines += gauge_lines(
            "repro_queue_depth", "Jobs admitted and waiting to start", queue_depth
        )
        lines += gauge_lines("repro_jobs_in_flight", "Jobs currently executing", in_flight)
        for collector in (
            self.jobs_submitted,
            self.jobs_rejected,
            self.jobs_deduplicated,
            self.jobs_finished,
            self.requests,
            self.ensemble_fanout,
            self.ensemble_trials,
            self.peer_cache_requests,
        ):
            lines += collector.render()
        lines += gauge_lines(
            "repro_cache_hit_rate",
            "Result-cache hit rate since server start",
            float(cache_stats.get("hit_rate", 0.0)),
        )
        for stat in ("hits", "disk_hits", "misses", "stores", "evictions"):
            lines += gauge_lines(
                f"repro_cache_{stat}",
                f"Result-cache cumulative {stat.replace('_', ' ')}",
                float(cache_stats.get(stat, 0)),
            )
        for histogram in (
            self.queue_wait,
            self.server_queue_wait,
            self.run_seconds,
            self.total_seconds,
            self.schedule_duration,
        ):
            lines += histogram.render()
        lines += self.pass_seconds.render()
        if obs_counters:
            # Bridge from the process-wide obs CounterRegistry: one labelled family for
            # the unified cache/kernel counters, plus derived hit-rate gauges per cache.
            lines.append("# HELP repro_obs_counter Unified observability counters (repro.obs)")
            lines.append("# TYPE repro_obs_counter counter")
            for name in sorted(obs_counters):
                lines.append(
                    f"repro_obs_counter{_labels({'name': name})} {_fmt(obs_counters[name])}"
                )
            prefixes = sorted(
                {
                    name.rsplit(".", 1)[0]
                    for name in obs_counters
                    if name.endswith(".hits") or name.endswith(".misses")
                }
            )
            if prefixes:
                lines.append(
                    "# HELP repro_obs_cache_hit_rate Hit rate per instrumented cache"
                )
                lines.append("# TYPE repro_obs_cache_hit_rate gauge")
                for prefix in prefixes:
                    hits = obs_counters.get(f"{prefix}.hits", 0)
                    misses = obs_counters.get(f"{prefix}.misses", 0)
                    total = hits + misses
                    rate = hits / total if total else 0.0
                    lines.append(
                        f"repro_obs_cache_hit_rate{_labels({'cache': prefix})} {_fmt(rate)}"
                    )
        return "\n".join(lines) + "\n"


def parse_metric(text: str, name: str, labels: Optional[Dict[str, str]] = None) -> float:
    """Read one sample back out of a Prometheus text page (used by tests and the CLI)."""
    want = f"{name}{_labels(labels)}"
    for line in text.splitlines():
        if line.startswith("#"):
            continue
        parts = line.rsplit(" ", 1)
        if len(parts) == 2 and parts[0] == want:
            return float(parts[1])
    raise KeyError(f"metric {want!r} not found")


def iter_samples(text: str) -> Iterable[Tuple[str, float]]:
    """Yield ``(sample_name, value)`` pairs from a Prometheus text page."""
    for line in text.splitlines():
        if line.startswith("#") or not line.strip():
            continue
        sample, value = line.rsplit(" ", 1)
        yield sample, float(value)

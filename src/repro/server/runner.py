"""Bridge between the server's asyncio queue and the batch transpiler's worker pool.

:class:`JobRunner` owns N concurrent dispatcher tasks on the event loop.  Each one pops
a :class:`~repro.server.queue.JobRecord`, re-checks the shared
:class:`~repro.service.cache.ResultCache` (a duplicate submitted while its twin was
running finishes here without recomputing), and otherwise ships the job's dict payload
to :func:`repro.service.executor._execute_one` — the *same* worker entry point the
offline :class:`~repro.service.BatchTranspiler` uses — inside a
``concurrent.futures`` pool via ``loop.run_in_executor``, so transpilation never blocks
the event loop and server results are bit-identical to the batch path for the same
fingerprint.

The pool is processes by default (CPU-bound passes), falling back to threads when
process pools are unavailable (the same degradation the batch executor implements);
``use_processes=False`` forces threads, which tests and the in-process example use to
avoid fork costs.  Shutdown is graceful: ``stop()`` lets in-flight jobs finish (bounded
by ``timeout``), cancels the dispatcher tasks, and tears the pool down.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Dict, List, Optional

from ..service.cache import ResultCache
from ..service.executor import _execute_one, _execute_trials, default_worker_count
from ..service.jobs import JobError
from ..transpiler.registry import get_routing
from .metrics import ServerMetrics
from .queue import JobQueue, JobRecord


class JobRunner:
    """Drains the job queue onto a worker pool, settling records as jobs finish."""

    def __init__(
        self,
        queue: JobQueue,
        cache: ResultCache,
        *,
        concurrency: Optional[int] = None,
        max_workers: Optional[int] = None,
        use_processes: bool = True,
        metrics: Optional[ServerMetrics] = None,
        ensemble_fanout_threshold: int = 8,
    ) -> None:
        self.queue = queue
        self.cache = cache
        #: Fan a ``best_of=K`` job's trials across the pool when ``K`` reaches this
        #: threshold (and more than one worker exists).  Small ensembles stay in one
        #: worker, where the batched scoring kernel amortises them more cheaply than
        #: process round trips would.
        self.ensemble_fanout_threshold = max(2, int(ensemble_fanout_threshold))
        self.max_workers = default_worker_count() if max_workers is None else max(1, max_workers)
        #: Dispatcher-task count — how many jobs may be in flight at once.  ``0`` accepts
        #: submissions without ever running them (tests use this to pin jobs in QUEUED).
        self.concurrency = self.max_workers if concurrency is None else max(0, concurrency)
        self.use_processes = use_processes
        self.metrics = metrics if metrics is not None else ServerMetrics()
        self._pool: Optional[Executor] = None
        self._pool_kind = "none"
        self._tasks: List[asyncio.Task] = []
        self._started = False

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Create the pool and spawn the dispatcher tasks (idempotent)."""
        if self._started:
            return
        self._started = True
        if self.concurrency > 0:
            self._pool = self._make_pool()
        loop = asyncio.get_running_loop()
        for index in range(self.concurrency):
            self._tasks.append(loop.create_task(self._dispatch_loop(), name=f"repro-worker-{index}"))

    def _make_pool(self) -> Executor:
        if self.use_processes:
            try:
                pool = ProcessPoolExecutor(max_workers=self.max_workers)
                self._pool_kind = "process"
                return pool
            except (OSError, PermissionError, RuntimeError):
                pass  # fork disallowed in this environment — degrade to threads
        self._pool_kind = "thread"
        return ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="repro-transpile"
        )

    async def stop(self, *, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop dispatching: optionally wait for in-flight jobs, then tear down."""
        if drain and self.queue.in_flight:
            deadline = asyncio.get_running_loop().time() + timeout
            while self.queue.in_flight and asyncio.get_running_loop().time() < deadline:
                await asyncio.sleep(0.05)
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._tasks.clear()
        # No dispatcher will ever pop the backlog now — settle it so waiters wake up.
        self.queue.fail_pending("server shut down before the job started")
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        self._started = False

    @property
    def pool_kind(self) -> str:
        """``"process"``, ``"thread"``, or ``"none"`` — what executes the jobs."""
        return self._pool_kind

    # -- dispatch -------------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            record = await self.queue.pop()
            try:
                await self._run_record(record)
            except asyncio.CancelledError:
                # Non-draining shutdown cancelled us mid-job: settle the record so
                # long-pollers wake up instead of waiting on RUNNING forever.
                if not record.is_terminal:
                    record.fail(
                        JobError(
                            fingerprint=record.fingerprint,
                            job_name=record.job.name,
                            exc_type="ServerShutdown",
                            message="server shut down before the job finished",
                        )
                    )
                raise
            except Exception as exc:  # noqa: BLE001 - a dispatcher must never die
                if not record.is_terminal:
                    record.fail(
                        JobError(
                            fingerprint=record.fingerprint,
                            job_name=record.job.name,
                            exc_type=type(exc).__name__,
                            message=str(exc),
                        )
                    )
            finally:
                self.queue.task_done(record)
                if record.is_terminal:
                    self._observe_terminal(record)

    async def _run_record(self, record: JobRecord) -> None:
        loop = asyncio.get_running_loop()
        if record.streaming is not None:
            await self._run_streaming(record)
            return
        # Re-check the shared cache off-loop: a twin job may have finished (or the batch
        # CLI may have written this fingerprint) since this record was admitted.
        payload = await loop.run_in_executor(None, self.cache.get, record.fingerprint)
        if payload is not None:
            record.finish(payload, from_cache=True)
            return
        # Trace context rides beside the job payload (never inside it — fingerprints are
        # content-addressed).  The worker parents its spans on this record's server span.
        trace_ctx = None
        if record.trace_ctx is not None:
            trace_ctx = {"trace_id": record.trace_id, "parent_id": record.server_span_id}
        chunks = self._ensemble_chunks(record)
        if chunks is not None:
            raw = await self._run_fanned(loop, record, chunks, trace_ctx)
        else:
            raw = await loop.run_in_executor(
                self._pool, _execute_one, record.job.to_dict(), trace_ctx
            )
        # Publish to the cache BEFORE settling the record: a client released by its
        # long-poll may resubmit the same fingerprint immediately, and that submission
        # must find the cache entry already in place.  ``raw["result"]`` is trace-free
        # by construction (the worker ships spans under the top-level "trace" key), so
        # cached payloads never leak another request's span tree.
        if raw.get("ok", False):
            await loop.run_in_executor(
                None, self.cache.put, record.fingerprint, raw["result"]
            )
        self._settle(record, raw)

    async def _run_streaming(self, record: JobRecord) -> None:
        """Run a streaming job incrementally, posting ``routed_chunk`` events.

        Streaming jobs run on a server *thread* (never the process pool: the chunk
        callback must reach this record's event history), pull the job's QASM through
        the chunked reader, and route over a bounded window — the routed circuit is
        never materialised server-side.  Chunks land in the record's capped event tail
        as they are produced, so ``/v1/jobs/{id}/events`` consumers see routed prefixes
        while the tail of the circuit is still compiling.  The result cache is bypassed
        in both directions: there is no whole-result payload to cache.
        """
        import dataclasses

        from ..circuit import qasm as qasm_module
        from ..core.stream import stream_to, transpile_stream

        loop = asyncio.get_running_loop()
        spec = record.streaming

        def work() -> Dict:
            options = dataclasses.replace(
                record.job.options(), level="O0", layout_iterations=0
            )
            chunks = transpile_stream(
                qasm_module.loads_stream(record.job.qasm),
                record.job.target(),
                options=options,
                window_gates=int(spec["window_gates"]),
                chunk_gates=int(spec["chunk_gates"]),
            )

            class _Sink:
                seq = 0

                def write(self, text: str) -> None:
                    loop.call_soon_threadsafe(record.record_chunk, self.seq, text)
                    self.seq += 1

            return stream_to(chunks, _Sink())

        try:
            summary = await loop.run_in_executor(None, work)
        except Exception as exc:  # noqa: BLE001 - settle the record, never the loop
            record.fail(
                JobError(
                    fingerprint=record.fingerprint,
                    job_name=record.job.name,
                    exc_type=type(exc).__name__,
                    message=str(exc),
                )
            )
            return
        record.finish(
            {
                "streamed": True,
                "summary": summary,
                "metrics": {
                    "cx_count": summary["cx_count"],
                    "depth": summary["depth"],
                    "num_swaps": summary["num_swaps"],
                    "gate_count": summary["emitted_gates"],
                },
            },
            from_cache=False,
        )

    # -- ensemble fan-out ------------------------------------------------------

    def _ensemble_chunks(self, record: JobRecord) -> Optional[List[List[int]]]:
        """Contiguous trial-index chunks for a large best-of-N job, or ``None``.

        ``None`` means "run the job whole": the ensemble is small enough that the
        batched in-process kernels beat process round trips, the pool has a single
        worker anyway, or the routing method opts out of best-of.
        """
        if self._pool is None or self.max_workers < 2:
            return None
        try:
            trials = record.job.options().effective_best_of
            supported = get_routing(record.job.routing).supports_best_of
        except Exception:  # noqa: BLE001 - malformed jobs fail in the worker, not here
            return None
        if not supported or trials < self.ensemble_fanout_threshold:
            return None
        num_chunks = min(self.max_workers, trials)
        bounds = [round(i * trials / num_chunks) for i in range(num_chunks + 1)]
        return [
            list(range(bounds[i], bounds[i + 1]))
            for i in range(num_chunks)
            if bounds[i] < bounds[i + 1]
        ]

    async def _run_fanned(
        self,
        loop: asyncio.AbstractEventLoop,
        record: JobRecord,
        chunks: List[List[int]],
        trace_ctx: Optional[Dict],
    ) -> Dict:
        """Run one job's trial chunks concurrently and reduce to the global winner.

        Ensemble pruning is lossless under any trial partition, so taking the minimum
        ``ensemble["winner_key"]`` across chunk results reproduces the whole-job
        winner bit-for-bit.  Per-trial diagnostics from every chunk are merged into
        the winning payload; any chunk error fails the job (first error wins).
        """
        self.metrics.ensemble_fanout.inc()
        self.metrics.ensemble_trials.inc(sum(len(chunk) for chunk in chunks))
        payload = record.job.to_dict()
        raws = await asyncio.gather(
            *(
                loop.run_in_executor(self._pool, _execute_trials, payload, chunk, trace_ctx)
                for chunk in chunks
            )
        )
        trace: List[Dict] = []
        for raw in raws:
            trace.extend(raw.get("trace", []))
        failed = next((raw for raw in raws if not raw.get("ok", False)), None)
        if failed is not None:
            merged = {"ok": False, "error": failed["error"]}
            if trace:
                merged["trace"] = trace
            return merged
        best = min(raws, key=lambda raw: tuple(raw["result"]["ensemble"]["winner_key"]))
        merged_result = dict(best["result"])
        ensemble = dict(merged_result.get("ensemble", {}))
        all_trials = [t for raw in raws for t in raw["result"]["ensemble"]["trials"]]
        ensemble["trials"] = sorted(all_trials, key=lambda t: t["trial"])
        ensemble["executed_trials"] = sorted(
            index for raw in raws for index in raw["result"]["ensemble"]["executed_trials"]
        )
        ensemble["fanned_chunks"] = [list(chunk) for chunk in chunks]
        merged_result["ensemble"] = ensemble
        merged = {"ok": True, "result": merged_result}
        if trace:
            merged["trace"] = trace
        return merged

    def _settle(self, record: JobRecord, raw: Dict) -> None:
        record.worker_trace = list(raw.get("trace", []))
        if raw.get("ok", False):
            record.finish(raw["result"], from_cache=False)
        else:
            record.fail(JobError.from_dict(raw["error"]))

    def _observe_terminal(self, record: JobRecord) -> None:
        metrics = self.metrics
        outcome = record.state if not record.from_cache else "cached"
        metrics.jobs_finished.inc(outcome=outcome)
        if record.started_at is not None:
            queue_wait = record.started_at - record.submitted_at
            metrics.queue_wait.observe(queue_wait)
            metrics.server_queue_wait.observe(queue_wait)
            if record.finished_at is not None and not record.from_cache:
                metrics.run_seconds.observe(record.finished_at - record.started_at)
        if record.finished_at is not None:
            metrics.total_seconds.observe(record.finished_at - record.submitted_at)
        if not record.from_cache and record.result_payload is not None:
            # Per-pass latency histograms come from the worker's timing log; cache-served
            # completions are skipped (their timings belong to the job that computed them).
            metrics.observe_pass_timings(record.result_payload.get("pass_timing_log", []))
            schedule = record.result_payload.get("schedule")
            if schedule and "duration" in schedule:
                # Schedule durations are integer nanoseconds; the histogram is in seconds.
                metrics.schedule_duration.observe(float(schedule["duration"]) * 1e-9)

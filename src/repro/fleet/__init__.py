"""Sharded multi-node transpile fleet (coordinator + workers + peer cache tier).

One :class:`~repro.fleet.coordinator.FleetCoordinator` fronts N worker nodes, each an
ordinary :class:`~repro.server.app.ReproServer` extended with fleet membership
(:class:`~repro.fleet.worker.FleetWorkerServer`).  The pieces:

* :class:`~repro.fleet.ring.HashRing` — consistent hashing with virtual nodes.  Job
  placement is keyed on the :class:`~repro.service.jobs.TranspileJob` sha256 content
  fingerprint, so a re-submitted job routes to the node whose
  :class:`~repro.service.cache.ResultCache` already holds its result, and membership
  changes remap only ~K/N keys.
* :class:`~repro.fleet.peercache.PeerCacheTier` — wraps a node's local result cache; on
  a local miss it asks the fingerprint's ring owners over HTTP before recomputing.
* :class:`~repro.fleet.coordinator.FleetCoordinator` — nodes register and heartbeat
  (carrying their ``/healthz`` readiness document as capacity gossip); clients speak
  the ordinary ``/v1`` job API and the coordinator places, forwards, sheds (429 +
  ``Retry-After`` when the fleet is saturated), and reroutes around dead nodes.
* :class:`~repro.fleet.worker.FleetWorkerServer` — a ``ReproServer`` that registers
  with a coordinator, heartbeats its health, learns the ring topology for peer cache
  fetches, and deregisters + drains on graceful shutdown.

``repro fleet coordinator`` / ``repro fleet worker`` are the CLI entry points;
:class:`repro.client.ReproClient` talks to a coordinator exactly as it talks to a solo
server (the ``/v1`` wire API is identical).
"""

from .coordinator import FleetCoordinator
from .peercache import PeerCacheTier
from .ring import HashRing
from .worker import FleetWorkerServer

__all__ = [
    "FleetCoordinator",
    "FleetWorkerServer",
    "HashRing",
    "PeerCacheTier",
]

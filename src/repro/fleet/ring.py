"""Consistent hashing with virtual nodes for fleet job placement.

Placement must be a pure function of (membership, key) so that every process — the
coordinator placing jobs, each worker resolving peer-fetch owners, tests replaying
placements — computes the identical answer with no coordination beyond the membership
list itself.  Both ring positions and keys therefore hash through sha256 (stable across
processes, platforms and Python versions, unlike ``hash()``), and lookups are plain
``bisect`` walks over a sorted position array.

Virtual nodes smooth the distribution: with ``vnodes`` points per node the expected
per-node share of K keys concentrates around K/N (relative spread ~1/sqrt(vnodes)).
Consistent hashing's defining property — removing a node moves only the keys that node
owned (~K/N), adding one steals ~K/N spread evenly from the others — is what keeps a
node join/leave from invalidating the fleet's placement-affinity cache wholesale.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Optional, Tuple

#: Default virtual-node count per physical node.  64 keeps the per-node load share
#: within ~±12% of ideal for realistic fleet sizes while membership changes stay cheap
#: (a full rebuild sorts N*64 integers).
DEFAULT_VNODES = 64


def _position(token: str) -> int:
    """Ring position of a token: the first 8 bytes of its sha256, as an integer."""
    return int.from_bytes(hashlib.sha256(token.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """A consistent-hash ring mapping string keys to node ids.

    Keys are expected to be job content fingerprints (already sha256 hex), but any
    string works — the key is re-hashed so callers need not guarantee uniformity.
    """

    def __init__(self, nodes: Iterable[str] = (), *, vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._nodes: Dict[str, Tuple[int, ...]] = {}
        self._positions: List[int] = []
        self._owners_at: List[str] = []
        for node_id in nodes:
            self.add(node_id)

    # -- membership -----------------------------------------------------------

    def add(self, node_id: str) -> None:
        """Add a node (idempotent); rebuilds the position index."""
        if not node_id:
            raise ValueError("node_id must be a non-empty string")
        if node_id in self._nodes:
            return
        self._nodes[node_id] = tuple(
            _position(f"{node_id}#{index}") for index in range(self.vnodes)
        )
        self._rebuild()

    def remove(self, node_id: str) -> None:
        """Remove a node (idempotent); rebuilds the position index."""
        if self._nodes.pop(node_id, None) is not None:
            self._rebuild()

    def _rebuild(self) -> None:
        pairs = sorted(
            (position, node_id)
            for node_id, positions in self._nodes.items()
            for position in positions
        )
        self._positions = [position for position, _ in pairs]
        self._owners_at = [node_id for _, node_id in pairs]

    @property
    def nodes(self) -> "frozenset[str]":
        return frozenset(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    # -- lookup ---------------------------------------------------------------

    def owner(self, key: str) -> Optional[str]:
        """The node owning ``key`` (``None`` on an empty ring)."""
        owners = self.owners(key, count=1)
        return owners[0] if owners else None

    def owners(self, key: str, count: int = 2) -> List[str]:
        """The preference list for ``key``: up to ``count`` distinct nodes, walking
        clockwise from the key's position.  The first entry is the primary owner;
        the rest are the replica/peer-fetch candidates and the spillover order when
        the primary is saturated or dead."""
        if not self._positions or count < 1:
            return []
        start = bisect.bisect_right(self._positions, _position(key))
        found: List[str] = []
        total = len(self._owners_at)
        for step in range(total):
            node_id = self._owners_at[(start + step) % total]
            if node_id not in found:
                found.append(node_id)
                if len(found) >= count or len(found) == len(self._nodes):
                    break
        return found

"""Prometheus metrics for the fleet coordinator.

Reuses the dependency-free primitives from :mod:`repro.server.metrics`.  Counters track
coordinator decisions (placements by node, sheds, reroutes, proxy errors); membership
and fleet-wide load are rendered as gauges at scrape time from the live node table —
the per-node queue depths come from heartbeat gossip, so the coordinator's ``/metrics``
page is a one-stop load view of the whole fleet.
"""

from __future__ import annotations

from typing import Dict, List

from ..server.metrics import Counter, Histogram, _fmt, _labels, gauge_lines


class FleetMetrics:
    """All coordinator instrumentation, rendered as one Prometheus text page."""

    def __init__(self) -> None:
        self.requests = Counter(
            "repro_fleet_http_requests_total",
            "HTTP requests served by the coordinator, by route and status code",
        )
        self.placements = Counter(
            "repro_fleet_placements_total",
            "Jobs placed onto worker nodes, by node id",
        )
        self.sheds = Counter(
            "repro_fleet_sheds_total",
            "Submissions shed with 429 because every alive owner was saturated",
        )
        self.reroutes = Counter(
            "repro_fleet_reroutes_total",
            "Jobs resubmitted to a surviving node after their node died",
        )
        self.proxy_errors = Counter(
            "repro_fleet_proxy_errors_total",
            "Forward/proxy attempts that failed at the transport level, by node id",
        )
        self.heartbeats = Counter(
            "repro_fleet_heartbeats_total", "Heartbeats accepted, by node id"
        )
        self.registrations = Counter(
            "repro_fleet_registrations_total", "Node registrations accepted"
        )
        self.forward_seconds = Histogram(
            "repro_fleet_forward_seconds",
            "Wall time of forwarded job submissions (place + node admission)",
            buckets=(0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0),
        )

    def render(self, *, nodes: List[Dict]) -> str:
        """The text page; ``nodes`` rows carry ``id``/``alive`` plus gossiped health."""
        alive = [node for node in nodes if node.get("alive")]
        lines: List[str] = []
        lines += gauge_lines(
            "repro_fleet_nodes", "Worker nodes currently registered", len(nodes)
        )
        lines += gauge_lines(
            "repro_fleet_nodes_alive", "Registered nodes with a fresh heartbeat", len(alive)
        )
        for stat, help_text in (
            ("queue_depth", "Fleet-wide queued jobs (sum of per-node gossip)"),
            ("in_flight", "Fleet-wide executing jobs (sum of per-node gossip)"),
            ("workers", "Fleet-wide worker-pool slots (sum of per-node gossip)"),
        ):
            total = sum(int(node.get("health", {}).get(stat, 0)) for node in alive)
            lines += gauge_lines(f"repro_fleet_{stat}", help_text, total)
        lines.append("# HELP repro_fleet_node_queue_depth Queued jobs per node (gossip)")
        lines.append("# TYPE repro_fleet_node_queue_depth gauge")
        for node in nodes:
            depth = int(node.get("health", {}).get("queue_depth", 0))
            lines.append(
                f"repro_fleet_node_queue_depth{_labels({'node': node['id']})} {_fmt(depth)}"
            )
        lines.append("# HELP repro_fleet_node_up Node liveness (1 = fresh heartbeat)")
        lines.append("# TYPE repro_fleet_node_up gauge")
        for node in nodes:
            lines.append(
                f"repro_fleet_node_up{_labels({'node': node['id']})} "
                f"{1 if node.get('alive') else 0}"
            )
        for collector in (
            self.requests,
            self.placements,
            self.sheds,
            self.reroutes,
            self.proxy_errors,
            self.heartbeats,
            self.registrations,
        ):
            lines += collector.render()
        lines += self.forward_seconds.render()
        return "\n".join(lines) + "\n"

"""A fleet worker node: a :class:`~repro.server.app.ReproServer` with membership.

The worker is a full solo server (same routes, queue, runner, metrics) plus three
fleet behaviours:

* its result cache is a :class:`~repro.fleet.peercache.PeerCacheTier`, so a local miss
  consults the fingerprint's ring owners before recomputing;
* a background task registers with the coordinator once the listener is bound (the
  advertised URL needs the real port) and then heartbeats on the coordinator's cadence,
  shipping the node's ``/healthz`` readiness document as capacity gossip and absorbing
  the membership map from each response into the peer cache's ring;
* graceful shutdown deregisters first (the coordinator stops placing new work here and
  reroutes on demand) and only then drains the local queue, so in-flight jobs finish
  and publish into the cache tier before the process exits.

A worker keeps serving requests if the coordinator is down — heartbeats just retry,
and ``known: false`` responses (a restarted coordinator) trigger re-registration.
"""

from __future__ import annotations

import asyncio
import os
from typing import Optional

from ..server.app import ReproServer
from . import httpclient
from .httpclient import FetchError
from .peercache import PeerCacheTier


def _default_node_id() -> str:
    return f"node-{os.urandom(4).hex()}"


class FleetWorkerServer(ReproServer):
    """One fleet node (see module docstring).  ``**server_kwargs`` pass through to
    :class:`ReproServer` (workers, queue bound, concurrency, …)."""

    def __init__(
        self,
        coordinator_url: str,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        node_id: Optional[str] = None,
        advertise_host: Optional[str] = None,
        peer_replicas: int = 2,
        peer_timeout: Optional[float] = None,
        cache_dir: Optional[str] = None,
        **server_kwargs,
    ) -> None:
        peer_kwargs = {} if peer_timeout is None else {"timeout": peer_timeout}
        self.peer_cache = PeerCacheTier(
            directory=cache_dir, replicas=peer_replicas, **peer_kwargs
        )
        super().__init__(host, port, cache=self.peer_cache, **server_kwargs)
        self.coordinator_url = coordinator_url.rstrip("/")
        self.node_id = node_id or _default_node_id()
        self.advertise_host = advertise_host or host
        self.heartbeat_interval = 2.0  # replaced by the coordinator's cadence on register
        self.registered = False
        self._heartbeat_task: Optional[asyncio.Task] = None

    @property
    def advertise_url(self) -> str:
        """The URL peers and the coordinator reach this node at (needs the bound port)."""
        return f"http://{self.advertise_host}:{self.port}"

    # -- lifecycle ------------------------------------------------------------

    async def _on_start(self) -> None:
        await super()._on_start()
        self._heartbeat_task = asyncio.get_running_loop().create_task(
            self._membership_loop(), name=f"fleet-heartbeat-{self.node_id}"
        )

    async def _on_stop(self, *, drain: bool, timeout: float) -> None:
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            try:
                await self._heartbeat_task
            except asyncio.CancelledError:
                pass
            self._heartbeat_task = None
        await self._deregister()
        # Drain AFTER deregistering: the ring has already remapped this node's share,
        # so the queue empties into the cache tier with no new placements arriving.
        await super()._on_stop(drain=drain, timeout=timeout)

    # -- membership -----------------------------------------------------------

    def _membership_doc(self) -> dict:
        return {
            "node_id": self.node_id,
            "url": self.advertise_url,
            "health": self.health_payload(),
        }

    def _absorb(self, response: dict) -> None:
        """Fold a register/heartbeat response's membership map into the peer ring."""
        nodes = response.get("nodes")
        if isinstance(nodes, dict) and nodes:
            self.peer_cache.update_topology(
                {str(k): str(v) for k, v in nodes.items()},
                self_node=self.node_id,
                replicas=response.get("replicas"),
            )
        interval = response.get("heartbeat_interval")
        if isinstance(interval, (int, float)) and interval > 0:
            self.heartbeat_interval = float(interval)

    async def _register(self) -> bool:
        try:
            status, _headers, data = await httpclient.fetch_json(
                self.coordinator_url, "POST", "/fleet/v1/register",
                payload=self._membership_doc(), timeout=10.0,
            )
        except FetchError:
            return False
        if status != 200:
            return False
        self._absorb(data)
        self.registered = True
        return True

    async def _heartbeat(self) -> None:
        try:
            status, _headers, data = await httpclient.fetch_json(
                self.coordinator_url, "POST", "/fleet/v1/heartbeat",
                payload=self._membership_doc(), timeout=10.0,
            )
        except FetchError:
            return  # coordinator unreachable — keep serving, retry next tick
        if status == 200 and not data.get("known", False):
            self.registered = False  # coordinator restarted; re-register next tick
            return
        if status == 200:
            self._absorb(data)

    async def _membership_loop(self) -> None:
        while True:
            if not self.registered:
                await self._register()
            else:
                await self._heartbeat()
            await asyncio.sleep(self.heartbeat_interval)

    async def _deregister(self) -> None:
        if not self.registered:
            return
        self.registered = False
        try:
            await httpclient.fetch_json(
                self.coordinator_url, "POST", "/fleet/v1/deregister",
                payload={"node_id": self.node_id}, timeout=5.0,
            )
        except FetchError:
            pass  # best-effort: the reaper will evict us by heartbeat staleness

    # -- identity in health/metrics -------------------------------------------

    def health_payload(self) -> dict:
        payload = super().health_payload()
        payload["node_id"] = self.node_id
        payload["role"] = "fleet-worker"
        payload["coordinator"] = self.coordinator_url
        return payload

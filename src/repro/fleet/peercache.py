"""The fleet's shared cache tier: local result cache + HTTP peer fetch on miss.

A :class:`PeerCacheTier` wraps a node's :class:`~repro.service.cache.ResultCache` and
presents the same ``get``/``put`` interface, so :class:`~repro.server.runner.JobRunner`
and the admission path use it unchanged.  On a local miss it asks the fingerprint's
hash-ring owners (never itself) over ``GET /v1/cache/{fingerprint}`` before giving up —
so when placement lands a job off its affinity node (spillover under load, a just-grown
ring), the result is still fetched rather than recomputed.  Peer hits are promoted into
the local cache, spreading hot fingerprints to wherever they are asked for.

Topology arrives via the worker's heartbeat exchange (:meth:`update_topology`): the
coordinator gossips the full membership map, and every node builds the *same*
:class:`~repro.fleet.ring.HashRing` the coordinator places with — peer lookup and job
placement agree by construction, with no extra coordination traffic.

All lookups here run on worker-pool / executor threads (the runner wraps ``cache.get``
in ``run_in_executor``), so the blocking HTTP fetch never stalls the node's event
loop.  Outcomes surface through the obs counters (``cache.peer.hits`` / ``.misses`` /
``.errors``), which the node's ``/metrics`` page renders automatically.
"""

from __future__ import annotations

import json
import threading
from http.client import HTTPConnection
from typing import Callable, Dict, List, Optional
from urllib.parse import urlsplit

from ..obs.counters import COUNTERS
from ..service.cache import CacheStats, ResultCache
from .ring import HashRing

#: Peer fetches race recomputation, so they must stay cheap: a peer that cannot answer
#: within this budget is treated as a miss and the node just recomputes.
DEFAULT_PEER_TIMEOUT = 2.0


def _http_fetch(base_url: str, fingerprint: str, timeout: float) -> Optional[Dict]:
    """Blocking peer lookup: 200 → payload, 404 → None, anything else → raise."""
    parts = urlsplit(base_url if "//" in base_url else f"http://{base_url}")
    connection = HTTPConnection(
        parts.hostname or "127.0.0.1", parts.port or 80, timeout=timeout
    )
    try:
        connection.request("GET", f"/v1/cache/{fingerprint}")
        response = connection.getresponse()
        body = response.read()
        if response.status == 404:
            return None
        if response.status != 200:
            raise RuntimeError(
                f"peer {base_url} answered HTTP {response.status} for {fingerprint[:12]}"
            )
        return json.loads(body.decode("utf-8"))["result"]
    finally:
        connection.close()


class PeerCacheTier:
    """A :class:`ResultCache` facade with an HTTP peer-fetch tier behind local misses."""

    def __init__(
        self,
        local: Optional[ResultCache] = None,
        *,
        directory: Optional[str] = None,
        replicas: int = 2,
        timeout: float = DEFAULT_PEER_TIMEOUT,
        fetcher: Optional[Callable[[str, str, float], Optional[Dict]]] = None,
    ) -> None:
        self.local = local if local is not None else ResultCache(directory=directory)
        self.replicas = max(1, replicas)
        self.timeout = timeout
        self._fetch = fetcher if fetcher is not None else _http_fetch
        self._lock = threading.Lock()
        self._ring = HashRing()
        self._peer_urls: Dict[str, str] = {}
        self._self_node: str = ""

    # -- topology -------------------------------------------------------------

    def update_topology(
        self,
        nodes: Dict[str, str],
        *,
        self_node: str,
        replicas: Optional[int] = None,
    ) -> None:
        """Replace the membership map (``node_id -> base URL``), including ourselves.

        Rebuilt wholesale from each heartbeat response — the heartbeat cadence bounds
        how stale a node's view can get, and a stale view only costs wasted fetches
        (a peer that lacks the entry answers 404), never wrong results.
        """
        ring = HashRing(nodes)
        with self._lock:
            self._ring = ring
            self._peer_urls = dict(nodes)
            self._self_node = self_node
            if replicas is not None:
                self.replicas = max(1, replicas)

    def peers_for(self, fingerprint: str) -> List[str]:
        """Base URLs of the ring owners to ask for ``fingerprint`` (excluding self)."""
        with self._lock:
            # +1 owner: when this node is itself in the preference list, excluding it
            # must not shrink the number of actual peers consulted.
            owners = self._ring.owners(fingerprint, count=self.replicas + 1)
            return [
                self._peer_urls[node_id]
                for node_id in owners
                if node_id != self._self_node and node_id in self._peer_urls
            ][: self.replicas]

    # -- the ResultCache interface --------------------------------------------

    @property
    def stats(self) -> CacheStats:
        return self.local.stats

    def get_local(self, fingerprint: str) -> Optional[Dict]:
        """Local-tier lookup only — what ``GET /v1/cache`` serves, so answering a
        peer's lookup can never recurse into another peer fetch."""
        return self.local.get(fingerprint)

    def get(self, fingerprint: str) -> Optional[Dict]:
        payload = self.local.get(fingerprint)
        if payload is not None:
            return payload
        peers = self.peers_for(fingerprint)
        for base_url in peers:
            try:
                payload = self._fetch(base_url, fingerprint, self.timeout)
            except Exception:  # noqa: BLE001 - any peer failure degrades to recompute
                COUNTERS.inc("cache.peer.errors")
                continue
            if payload is not None:
                COUNTERS.inc("cache.peer.hits")
                # Promote: affinity means the *next* lookup for this fingerprint on
                # this node is a local hit.
                self.local.put(fingerprint, payload)
                return payload
        if peers:
            COUNTERS.inc("cache.peer.misses")
        return None

    def put(self, fingerprint: str, payload: Dict) -> None:
        self.local.put(fingerprint, payload)

    def contains(self, fingerprint: str) -> bool:
        return self.local.contains(fingerprint)

    def clear(self) -> None:
        self.local.clear()

    def disk_entries(self) -> int:
        return self.local.disk_entries()

"""The fleet coordinator: membership, consistent-hash placement, proxying, shedding.

Worker nodes register over HTTP and then heartbeat on a fixed cadence, each heartbeat
carrying the node's ``/healthz`` readiness document (queue depth, in-flight, shed
state) as capacity gossip.  Clients speak the ordinary ``/v1`` job API — the
coordinator is wire-compatible with a solo :class:`~repro.server.app.ReproServer`, so
:class:`repro.client.ReproClient` needs no fleet mode:

* **Placement** — a submission is parsed just far enough to compute its
  :class:`~repro.service.jobs.TranspileJob` content fingerprint, then routed along the
  fingerprint's :class:`~repro.fleet.ring.HashRing` preference list: first alive,
  unsaturated owner wins.  Identical jobs therefore always land on the node whose
  result cache already holds them (placement affinity), and a node join/leave remaps
  only ~K/N fingerprints.
* **Backpressure** — saturation is judged from heartbeat gossip; when every alive
  owner is shedding, the coordinator sheds the submission itself with
  ``429 Too Many Requests`` + ``Retry-After`` instead of piling onto a drowning node.
* **Failover** — the coordinator remembers each placement (including the submission
  body).  When a node dies mid-job, the next status poll reroutes: the job is
  resubmitted to a surviving owner and the response's job id is rewritten so the
  client never observes the failure.  Results stay correct because jobs are
  deterministic and content-addressed.
* **Tracing** — an incoming ``traceparent`` is honoured: the coordinator inserts a
  ``coordinator.place`` span and forwards a child context, so client → coordinator →
  node → worker share one trace id (``GET /v1/jobs/{id}/trace`` returns the merged
  tree).
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from .. import __version__
from ..obs.tracer import Span, format_traceparent, new_trace_id, parse_traceparent
from ..server.app import job_from_payload, methods_payload, targets_payload
from ..server.http import AsyncHTTPServer, HTTPError, Request
from . import httpclient
from .httpclient import FetchError
from .metrics import FleetMetrics
from .ring import DEFAULT_VNODES, HashRing

#: Heartbeat cadence the coordinator asks nodes to keep (seconds).
DEFAULT_HEARTBEAT_INTERVAL = 2.0
#: Most placements the coordinator remembers for status proxying/failover; beyond
#: this, the oldest entries are dropped (their nodes still serve them directly).
PLACEMENT_HISTORY_LIMIT = 4096
#: Headers forwarded from the client to the placed node.
_FORWARD_HEADERS = ("x-repro-client",)


class NodeState:
    """One registered worker node: address, heartbeat freshness, gossiped health."""

    def __init__(self, node_id: str, url: str) -> None:
        self.node_id = node_id
        self.url = url.rstrip("/")
        self.registered_at = time.time()
        self.last_heartbeat = self.registered_at
        self.health: Dict = {}
        self.dead = False  # set eagerly on transport failure, cleared by a heartbeat

    def alive(self, now: float, ttl: float) -> bool:
        return not self.dead and (now - self.last_heartbeat) <= ttl

    @property
    def saturated(self) -> bool:
        """Heartbeat gossip says the node would shed a submission right now."""
        return not self.health.get("ready", True)

    def to_dict(self, now: float, ttl: float) -> Dict:
        return {
            "id": self.node_id,
            "url": self.url,
            "alive": self.alive(now, ttl),
            "heartbeat_age_seconds": now - self.last_heartbeat,
            "health": self.health,
        }


class Placement:
    """Where one job lives: the id the client holds vs. the id on the current node
    (they diverge after a failover reroute), plus what is needed to reroute again."""

    __slots__ = ("client_id", "remote_id", "node_id", "fingerprint", "payload", "spans")

    def __init__(
        self,
        client_id: str,
        node_id: str,
        fingerprint: str,
        payload: Dict,
        spans: List[Dict],
    ) -> None:
        self.client_id = client_id
        self.remote_id = client_id
        self.node_id = node_id
        self.fingerprint = fingerprint
        self.payload = payload
        self.spans = spans


class FleetCoordinator(AsyncHTTPServer):
    """HTTP front door of the fleet (see module docstring)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8100,
        *,
        replicas: int = 2,
        vnodes: int = DEFAULT_VNODES,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        heartbeat_ttl: Optional[float] = None,
    ) -> None:
        super().__init__(host, port)
        self.replicas = max(1, replicas)
        self.heartbeat_interval = heartbeat_interval
        #: A node whose last heartbeat is older than this is considered dead.
        self.heartbeat_ttl = (
            heartbeat_ttl if heartbeat_ttl is not None else heartbeat_interval * 4.0
        )
        self.metrics = FleetMetrics()
        self.ring = HashRing(vnodes=vnodes)
        self.nodes: Dict[str, NodeState] = {}
        self.placements: "OrderedDict[str, Placement]" = OrderedDict()
        self.started_at = time.time()
        self._reaper: Optional[asyncio.Task] = None
        self._routes += [
            ("POST", "/fleet/v1/register", self._handle_register),
            ("POST", "/fleet/v1/heartbeat", self._handle_heartbeat),
            ("POST", "/fleet/v1/deregister", self._handle_deregister),
            ("GET", "/fleet/v1/nodes", self._handle_nodes),
            ("GET", "/healthz", self._handle_healthz),
            ("GET", "/metrics", self._handle_metrics),
            ("GET", "/v1/methods", self._handle_methods),
            ("GET", "/v1/targets", self._handle_targets),
            ("POST", "/v1/jobs", self._handle_submit),
            ("POST", "/v1/batch", self._handle_batch),
            ("GET", "/v1/jobs", self._handle_list_jobs),
            ("GET", "/v1/jobs/{id}", self._handle_job_proxy),
            ("GET", "/v1/jobs/{id}/trace", self._handle_trace_proxy),
            ("GET", "/v1/jobs/{id}/events", self._handle_events_proxy),
            ("POST", "/v1/jobs/{id}/cancel", self._handle_cancel_proxy),
            ("DELETE", "/v1/jobs/{id}", self._handle_cancel_proxy),
        ]

    # -- lifecycle ------------------------------------------------------------

    async def _on_start(self) -> None:
        self._reaper = asyncio.get_running_loop().create_task(
            self._reap_loop(), name="fleet-reaper"
        )

    async def _on_stop(self, *, drain: bool, timeout: float) -> None:
        if self._reaper is not None:
            self._reaper.cancel()
            try:
                await self._reaper
            except asyncio.CancelledError:
                pass
            self._reaper = None

    def _observe_request(self, pattern: str, code: str) -> None:
        self.metrics.requests.inc(route=pattern, code=code)

    async def _reap_loop(self) -> None:
        """Evict ring membership of nodes whose heartbeats went stale."""
        while True:
            await asyncio.sleep(self.heartbeat_interval)
            now = time.time()
            for node in self.nodes.values():
                if node.node_id in self.ring and not node.alive(now, self.heartbeat_ttl):
                    node.dead = True
                    self.ring.remove(node.node_id)

    # -- membership API (what workers call) ------------------------------------

    def _membership(self) -> Dict:
        """What nodes need to mirror coordinator placement: the alive-node map."""
        now = time.time()
        return {
            "replicas": self.replicas,
            "heartbeat_interval": self.heartbeat_interval,
            "nodes": {
                node.node_id: node.url
                for node in self.nodes.values()
                if node.alive(now, self.heartbeat_ttl)
            },
        }

    async def _handle_register(self, request: Request, writer: asyncio.StreamWriter) -> None:
        data = request.json()
        node_id = str(data.get("node_id") or "")
        url = str(data.get("url") or "")
        if not node_id or not url:
            raise HTTPError(400, 'registration needs "node_id" and "url"')
        node = self.nodes.get(node_id)
        if node is None:
            node = self.nodes[node_id] = NodeState(node_id, url)
            self.metrics.registrations.inc()
        node.url = url.rstrip("/")
        node.last_heartbeat = time.time()
        node.dead = False
        if isinstance(data.get("health"), dict):
            node.health = data["health"]
        self.ring.add(node_id)
        await self._write_json(
            writer, 200, {"node_id": node_id, "known": True, **self._membership()}
        )

    async def _handle_heartbeat(self, request: Request, writer: asyncio.StreamWriter) -> None:
        data = request.json()
        node_id = str(data.get("node_id") or "")
        node = self.nodes.get(node_id)
        if node is None:
            # E.g. the coordinator restarted and lost its membership table; the worker
            # re-registers on seeing known=false.
            await self._write_json(writer, 200, {"node_id": node_id, "known": False})
            return
        node.last_heartbeat = time.time()
        node.dead = False
        if isinstance(data.get("url"), str) and data["url"]:
            node.url = data["url"].rstrip("/")
        if isinstance(data.get("health"), dict):
            node.health = data["health"]
        self.ring.add(node_id)  # resurrects a node the reaper had evicted
        self.metrics.heartbeats.inc(node=node_id)
        await self._write_json(
            writer, 200, {"node_id": node_id, "known": True, **self._membership()}
        )

    async def _handle_deregister(self, request: Request, writer: asyncio.StreamWriter) -> None:
        data = request.json()
        node_id = str(data.get("node_id") or "")
        node = self.nodes.pop(node_id, None)
        self.ring.remove(node_id)
        # Placements already on the departing node stay addressed to it while it
        # drains; once it is gone, the status proxy reroutes them on demand.
        await self._write_json(
            writer, 200, {"node_id": node_id, "removed": node is not None}
        )

    async def _handle_nodes(self, request: Request, writer: asyncio.StreamWriter) -> None:
        now = time.time()
        await self._write_json(
            writer,
            200,
            {
                "replicas": self.replicas,
                "heartbeat_interval": self.heartbeat_interval,
                "heartbeat_ttl": self.heartbeat_ttl,
                "vnodes": self.ring.vnodes,
                "nodes": [
                    node.to_dict(now, self.heartbeat_ttl)
                    for node in sorted(self.nodes.values(), key=lambda n: n.node_id)
                ],
            },
        )

    # -- placement ------------------------------------------------------------

    def _candidates(self, fingerprint: str) -> List[NodeState]:
        """The fingerprint's full preference list, alive nodes only, affinity first."""
        now = time.time()
        owners = self.ring.owners(fingerprint, count=max(len(self.ring), 1))
        return [
            self.nodes[node_id]
            for node_id in owners
            if node_id in self.nodes and self.nodes[node_id].alive(now, self.heartbeat_ttl)
        ]

    def _shed(self, reason: str) -> HTTPError:
        self.metrics.sheds.inc()
        error = HTTPError(429, reason, nodes_alive=len(self._alive_nodes()))
        error.headers["Retry-After"] = "1"
        return error

    def _alive_nodes(self) -> List[NodeState]:
        now = time.time()
        return [n for n in self.nodes.values() if n.alive(now, self.heartbeat_ttl)]

    def _mark_dead(self, node: NodeState) -> None:
        node.dead = True
        self.ring.remove(node.node_id)
        self.metrics.proxy_errors.inc(node=node.node_id)

    def _forward_context(self, request: Request) -> Tuple[Dict[str, str], Span]:
        """Child trace context + passthrough headers for a forwarded submission."""
        ctx = parse_traceparent(request.headers.get("traceparent"))
        trace_id = ctx["trace_id"] if ctx else new_trace_id()
        span = Span(
            "coordinator.place",
            trace_id=trace_id,
            parent_id=ctx["parent_id"] if ctx else None,
            process="coordinator",
        )
        headers = {"traceparent": format_traceparent(trace_id, span.span_id)}
        for name in _FORWARD_HEADERS:
            if name in request.headers:
                headers[name] = request.headers[name]
        return headers, span

    async def _place_and_forward(
        self, payload: Dict, fingerprint: str, headers: Dict[str, str], span: Span
    ) -> Tuple[int, Dict, NodeState]:
        """Walk the preference list until a node admits the job.

        Transport failures mark the node dead and spill to the next owner; per-node
        429s spill likewise (the gossip may lag a just-filled queue).  Exhausting the
        list with only 429s is a fleet-level shed.
        """
        candidates = self._candidates(fingerprint)
        if not candidates:
            if not self._alive_nodes():
                raise HTTPError(503, "no alive worker nodes are registered")
            raise self._shed("fleet saturated: no owner is reachable")
        saw_saturation = False
        for node in candidates:
            if node.saturated:
                saw_saturation = True
                continue
            started = time.monotonic()
            try:
                status, _headers, data = await httpclient.fetch_json(
                    node.url, "POST", "/v1/jobs", payload=payload, headers=headers,
                    timeout=30.0,
                )
            except FetchError:
                self._mark_dead(node)
                continue
            if status == 429:
                # Gossip lag: the node filled up since its last heartbeat.
                saw_saturation = True
                node.health["ready"] = False
                continue
            if status >= 400:
                raise _proxied_error(status, data)
            self.metrics.placements.inc(node=node.node_id)
            self.metrics.forward_seconds.observe(time.monotonic() - started)
            span.set("node", node.node_id).set("fingerprint", fingerprint[:12])
            span.finish()
            return status, data, node
        if saw_saturation:
            raise self._shed("fleet saturated: every alive owner is shedding")
        raise HTTPError(503, "no alive worker nodes are registered")

    def _remember(self, placement: Placement) -> None:
        self.placements[placement.client_id] = placement
        while len(self.placements) > PLACEMENT_HISTORY_LIMIT:
            self.placements.popitem(last=False)

    async def _handle_submit(self, request: Request, writer: asyncio.StreamWriter) -> None:
        data = request.json()
        job = job_from_payload(data)  # validates and yields the placement key
        fingerprint = job.fingerprint()
        headers, span = self._forward_context(request)
        status, body, node = await self._place_and_forward(data, fingerprint, headers, span)
        placement = Placement(
            str(body.get("id", "")), node.node_id, fingerprint, data, [span.to_dict()]
        )
        self._remember(placement)
        body["node"] = node.node_id
        await self._write_json(writer, status, body)

    async def _handle_batch(self, request: Request, writer: asyncio.StreamWriter) -> None:
        """Place each batch entry independently and forward per-node sub-batches.

        Unlike a solo server's ``/v1/batch``, admission is atomic only *per node*:
        entries grouped onto different nodes succeed or fail independently, and a
        shed reports which entries were already admitted.
        """
        data = request.json()
        specs = data.get("jobs")
        if not isinstance(specs, list) or not specs:
            raise HTTPError(400, '"jobs" must be a non-empty list of job specifications')
        shared = {key: value for key, value in data.items() if key != "jobs"}
        fingerprints = []
        for index, spec in enumerate(specs):
            if not isinstance(spec, dict):
                raise HTTPError(400, f"jobs[{index}] must be a JSON object")
            fingerprints.append(job_from_payload(spec).fingerprint())
        headers, span = self._forward_context(request)
        summaries: List[Optional[Dict]] = [None] * len(specs)
        admitted = 0
        for index, (spec, fingerprint) in enumerate(zip(specs, fingerprints)):
            # Each entry forwards as an ordinary single-job submission to its own
            # placed node (admission on the node is idempotent by fingerprint).
            payload = dict(shared)
            payload.update(spec)
            sub_span = Span(
                "coordinator.place", trace_id=span.trace_id, parent_id=span.span_id,
                process="coordinator",
            )
            sub_headers = dict(headers)
            sub_headers["traceparent"] = format_traceparent(
                span.trace_id, sub_span.span_id
            )
            try:
                _status, entry, node = await self._place_and_forward(
                    payload, fingerprint, sub_headers, sub_span
                )
            except HTTPError as exc:
                span.finish()
                exc.payload["error"]["admitted"] = admitted
                exc.payload["error"]["failed_index"] = index
                raise
            placement = Placement(
                str(entry.get("id", "")), node.node_id, fingerprint, payload,
                [sub_span.to_dict()],
            )
            self._remember(placement)
            entry["node"] = node.node_id
            summaries[index] = entry
            admitted += 1
        span.finish()
        await self._write_json(writer, 202, {"jobs": summaries})

    # -- proxying -------------------------------------------------------------

    def _placement_or_404(self, job_id: str) -> Placement:
        placement = self.placements.get(job_id)
        if placement is None:
            raise HTTPError(404, f"unknown job id {job_id!r}")
        return placement

    async def _reroute(self, placement: Placement) -> NodeState:
        """The placed node died: resubmit the remembered payload to a surviving owner.

        Correct because jobs are deterministic and content-addressed — the surviving
        owner either has the result cached (peer fetch / replica) or recomputes the
        identical payload.  The placement's remote id is rewired; the client keeps
        polling its original id.
        """
        span = Span(
            "coordinator.reroute",
            trace_id=new_trace_id(),
            process="coordinator",
            attrs={"from_node": placement.node_id},
        )
        headers = {"traceparent": format_traceparent(span.trace_id, span.span_id)}
        status, body, node = await self._place_and_forward(
            placement.payload, placement.fingerprint, headers, span
        )
        placement.node_id = node.node_id
        placement.remote_id = str(body.get("id", ""))
        placement.spans.append(span.to_dict())
        self.metrics.reroutes.inc()
        return node

    async def _proxy_job_get(
        self, placement: Placement, path_suffix: str, raw_query: str, timeout: float
    ) -> Dict:
        """GET against the placement's node, rerouting once if the node is dead."""
        for attempt in range(2):
            node = self.nodes.get(placement.node_id)
            if node is None or not node.alive(time.time(), self.heartbeat_ttl):
                await self._reroute(placement)
                node = self.nodes[placement.node_id]
            path = f"/v1/jobs/{placement.remote_id}{path_suffix}"
            if raw_query:
                path += f"?{raw_query}"
            try:
                status, _headers, data = await httpclient.fetch_json(
                    node.url, "GET", path, timeout=timeout
                )
            except FetchError:
                self._mark_dead(node)
                if attempt == 0:
                    continue
                raise HTTPError(502, f"node {node.node_id} is unreachable")
            if status == 404 and attempt == 0:
                # The node restarted and lost the record — reroute recreates it.
                self._mark_dead(node)
                continue
            if status >= 400:
                raise _proxied_error(status, data)
            return data
        raise HTTPError(502, "job's node is unreachable")  # pragma: no cover

    def _present(self, placement: Placement, data: Dict) -> Dict:
        """Rewrite node-local identifiers into the client's view of the job."""
        if data.get("id") == placement.remote_id:
            data["id"] = placement.client_id
        if "url" in data:
            data["url"] = f"/v1/jobs/{placement.client_id}"
        data["node"] = placement.node_id
        return data

    @staticmethod
    def _proxy_timeout(request: Request) -> float:
        wait = request.query.get("wait")
        try:
            return min(float(wait), 120.0) + 15.0 if wait is not None else 30.0
        except ValueError as exc:
            raise HTTPError(400, f"invalid wait value {wait!r}") from exc

    async def _handle_job_proxy(
        self, request: Request, writer: asyncio.StreamWriter, id: str
    ) -> None:
        placement = self._placement_or_404(id)
        data = await self._proxy_job_get(
            placement, "", request.raw_query, self._proxy_timeout(request)
        )
        await self._write_json(writer, 200, self._present(placement, data))

    async def _handle_trace_proxy(
        self, request: Request, writer: asyncio.StreamWriter, id: str
    ) -> None:
        placement = self._placement_or_404(id)
        data = await self._proxy_job_get(
            placement, "/trace", request.raw_query, self._proxy_timeout(request)
        )
        # Graft the coordinator's placement/reroute spans into the tree the node
        # returns — the client sees one contiguous trace.
        data["spans"] = placement.spans + list(data.get("spans") or [])
        await self._write_json(writer, 200, self._present(placement, data))

    async def _handle_events_proxy(
        self, request: Request, writer: asyncio.StreamWriter, id: str
    ) -> None:
        placement = self._placement_or_404(id)
        node = self.nodes.get(placement.node_id)
        if node is None or not node.alive(time.time(), self.heartbeat_ttl):
            await self._reroute(placement)
            node = self.nodes[placement.node_id]
        try:
            # The node's response (status line, chunked framing, keepalives) passes
            # through verbatim; note the event payloads carry the node-local job id.
            await httpclient.pipe(
                node.url, "GET", f"/v1/jobs/{placement.remote_id}/events", writer
            )
        except FetchError as exc:
            self._mark_dead(node)
            raise HTTPError(502, f"event stream from {node.node_id} failed: {exc}")

    async def _handle_cancel_proxy(
        self, request: Request, writer: asyncio.StreamWriter, id: str
    ) -> None:
        placement = self._placement_or_404(id)
        node = self.nodes.get(placement.node_id)
        if node is None:
            raise HTTPError(409, "job's node departed; the job cannot be cancelled")
        try:
            status, _headers, data = await httpclient.fetch_json(
                node.url, "POST", f"/v1/jobs/{placement.remote_id}/cancel", timeout=15.0
            )
        except FetchError:
            self._mark_dead(node)
            raise HTTPError(502, f"node {node.node_id} is unreachable")
        if status >= 400:
            raise _proxied_error(status, data)
        await self._write_json(writer, status, self._present(placement, data))

    async def _handle_list_jobs(self, request: Request, writer: asyncio.StreamWriter) -> None:
        """Fan ``GET /v1/jobs`` across alive nodes and merge (annotated per node)."""
        nodes = self._alive_nodes()
        results = await asyncio.gather(
            *(
                httpclient.fetch_json(node.url, "GET", "/v1/jobs", timeout=10.0)
                for node in nodes
            ),
            return_exceptions=True,
        )
        jobs: List[Dict] = []
        for node, outcome in zip(nodes, results):
            if isinstance(outcome, BaseException):
                continue
            status, _headers, data = outcome
            if status != 200:
                continue
            for entry in data.get("jobs", []):
                entry["node"] = node.node_id
                jobs.append(entry)
        await self._write_json(writer, 200, {"jobs": jobs, "count": len(jobs)})

    # -- service metadata ------------------------------------------------------

    def health_payload(self) -> Dict:
        alive = self._alive_nodes()
        unsaturated = [node for node in alive if not node.saturated]
        return {
            "status": "draining" if self.draining else "ok",
            "role": "coordinator",
            "ready": bool(unsaturated) and not self.draining,
            "version": __version__,
            "uptime_seconds": time.time() - self.started_at,
            "nodes": len(self.nodes),
            "nodes_alive": len(alive),
            "shedding": bool(alive) and not unsaturated,
            "replicas": self.replicas,
            "queue_depth": sum(int(n.health.get("queue_depth", 0)) for n in alive),
            "in_flight": sum(int(n.health.get("in_flight", 0)) for n in alive),
            "workers": sum(int(n.health.get("workers", 0)) for n in alive),
        }

    async def _handle_healthz(self, request: Request, writer: asyncio.StreamWriter) -> None:
        await self._write_json(writer, 200, self.health_payload())

    async def _handle_metrics(self, request: Request, writer: asyncio.StreamWriter) -> None:
        now = time.time()
        text = self.metrics.render(
            nodes=[
                node.to_dict(now, self.heartbeat_ttl)
                for node in sorted(self.nodes.values(), key=lambda n: n.node_id)
            ]
        )
        await self._write_response(
            writer, 200, text.encode("utf-8"), content_type="text/plain; version=0.0.4"
        )

    async def _handle_methods(self, request: Request, writer: asyncio.StreamWriter) -> None:
        await self._write_json(writer, 200, methods_payload())

    async def _handle_targets(self, request: Request, writer: asyncio.StreamWriter) -> None:
        await self._write_json(writer, 200, targets_payload())


def _proxied_error(status: int, data: Dict) -> HTTPError:
    """Re-raise a node's JSON error as this coordinator's own response."""
    error = data.get("error", {}) if isinstance(data, dict) else {}
    message = error.get("message", f"node answered HTTP {status}")
    extra = {
        key: value
        for key, value in error.items()
        if key not in ("status", "message") and _json_safe(value)
    }
    exc = HTTPError(status, message, **extra)
    if status == 429:
        exc.headers["Retry-After"] = "1"
    return exc


def _json_safe(value) -> bool:
    try:
        json.dumps(value)
        return True
    except (TypeError, ValueError):
        return False

"""Minimal asyncio HTTP/1.1 client used inside the fleet's event loops.

The coordinator proxies client requests to worker nodes from *inside* its own request
handlers, and workers heartbeat the coordinator from a background task — both on a
running event loop, where ``http.client`` would block.  The container ships no aiohttp,
so this is a small hand-rolled client speaking exactly the dialect our own
:class:`~repro.server.http.AsyncHTTPServer` emits (``Connection: close``, either
``Content-Length`` bodies or ``chunked`` streams).

:func:`fetch` returns the parsed response; :func:`pipe` shuttles a response verbatim
into another stream writer (how the coordinator proxies the chunked NDJSON event
stream without buffering or re-framing it).
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple
from urllib.parse import urlsplit


class FetchError(Exception):
    """The peer could not be reached or violated the protocol (distinct from an HTTP
    error *status*, which :func:`fetch` returns normally)."""


def _endpoint(url: str) -> Tuple[str, int]:
    parts = urlsplit(url if "//" in url else f"http://{url}")
    return parts.hostname or "127.0.0.1", parts.port or 80


def _request_bytes(
    method: str, host: str, path: str, headers: Dict[str, str], body: bytes
) -> bytes:
    lines = [f"{method} {path} HTTP/1.1", f"Host: {host}", "Connection: close"]
    if body:
        lines.append(f"Content-Length: {len(body)}")
    for name, value in headers.items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


async def _read_head(
    reader: asyncio.StreamReader,
) -> Tuple[int, Dict[str, str]]:
    status_line = await reader.readline()
    if not status_line:
        raise FetchError("peer closed the connection before responding")
    try:
        _version, status_text = status_line.decode("latin-1").split(None, 2)[:2]
        status = int(status_text)
    except (ValueError, IndexError) as exc:
        raise FetchError(f"malformed status line {status_line!r}") from exc
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers


async def _read_body(reader: asyncio.StreamReader, headers: Dict[str, str]) -> bytes:
    if headers.get("transfer-encoding", "").lower() == "chunked":
        chunks = []
        while True:
            size_line = await reader.readline()
            try:
                size = int(size_line.strip().split(b";")[0], 16)
            except ValueError as exc:
                raise FetchError(f"malformed chunk size {size_line!r}") from exc
            if size == 0:
                await reader.readline()  # trailing CRLF after the last chunk
                break
            chunks.append(await reader.readexactly(size))
            await reader.readexactly(2)  # CRLF after each chunk
        return b"".join(chunks)
    length = headers.get("content-length")
    if length is not None:
        return await reader.readexactly(int(length))
    return await reader.read()  # Connection: close — body runs to EOF


async def fetch(
    base_url: str,
    method: str,
    path: str,
    *,
    payload: Optional[Dict] = None,
    headers: Optional[Dict[str, str]] = None,
    timeout: float = 10.0,
) -> Tuple[int, Dict[str, str], bytes]:
    """One request against ``base_url``; returns ``(status, headers, body)``.

    Connection failures, timeouts and protocol violations raise :class:`FetchError`;
    HTTP error statuses are returned, not raised — the caller decides whether a 429 or
    a 404 from a peer is exceptional.
    """
    host, port = _endpoint(base_url)
    body = b""
    send_headers = dict(headers or {})
    if payload is not None:
        body = json.dumps(payload).encode("utf-8")
        send_headers["Content-Type"] = "application/json"

    async def _go() -> Tuple[int, Dict[str, str], bytes]:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(_request_bytes(method, host, path, send_headers, body))
            await writer.drain()
            status, response_headers = await _read_head(reader)
            data = await _read_body(reader, response_headers)
            return status, response_headers, data
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    try:
        return await asyncio.wait_for(_go(), timeout=timeout)
    except FetchError:
        raise
    except asyncio.TimeoutError as exc:
        raise FetchError(f"{method} {base_url}{path} timed out after {timeout:.1f}s") from exc
    except (ConnectionError, OSError, asyncio.IncompleteReadError) as exc:
        raise FetchError(f"{method} {base_url}{path} failed: {exc}") from exc


async def fetch_json(
    base_url: str,
    method: str,
    path: str,
    *,
    payload: Optional[Dict] = None,
    headers: Optional[Dict[str, str]] = None,
    timeout: float = 10.0,
) -> Tuple[int, Dict[str, str], Dict]:
    """:func:`fetch` + JSON decode (empty/non-JSON bodies decode to ``{}``)."""
    status, response_headers, body = await fetch(
        base_url, method, path, payload=payload, headers=headers, timeout=timeout
    )
    try:
        data = json.loads(body.decode("utf-8")) if body else {}
    except (json.JSONDecodeError, UnicodeDecodeError):
        data = {}
    if not isinstance(data, dict):
        data = {"value": data}
    return status, response_headers, data


async def pipe(
    base_url: str,
    method: str,
    path: str,
    writer: asyncio.StreamWriter,
    *,
    headers: Optional[Dict[str, str]] = None,
    connect_timeout: float = 10.0,
) -> None:
    """Forward the peer's complete response (head + body) verbatim into ``writer``.

    Used for proxying the chunked event stream: the peer's own status line, headers and
    chunk framing pass through untouched, so the proxy adds no buffering delay and the
    stream stays live for its whole (unbounded) duration.
    """
    host, port = _endpoint(base_url)
    try:
        reader, peer_writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout=connect_timeout
        )
    except (asyncio.TimeoutError, ConnectionError, OSError) as exc:
        raise FetchError(f"{method} {base_url}{path} failed: {exc}") from exc
    try:
        peer_writer.write(_request_bytes(method, host, path, dict(headers or {}), b""))
        await peer_writer.drain()
        while True:
            block = await reader.read(65536)
            if not block:
                break
            writer.write(block)
            await writer.drain()
    except (ConnectionError, OSError, asyncio.IncompleteReadError) as exc:
        raise FetchError(f"stream from {base_url}{path} broke: {exc}") from exc
    finally:
        peer_writer.close()
        try:
            await peer_writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

"""SWAP gate lowering.

A SWAP on qubits ``(a, b)`` is implemented by three CNOTs.  There are two valid
decompositions, differing in which qubit is the control of the first (and last) CNOT::

    swap(a, b) = cx(a, b) cx(b, a) cx(a, b)   (orientation "a")
               = cx(b, a) cx(a, b) cx(b, a)   (orientation "b")

The standard compiler always picks a fixed orientation (first form).  NASSC's
*optimization-aware SWAP decomposition* (paper Sec. IV-E) labels each inserted SWAP with the
orientation that lets the subsequent commutative-cancellation pass cancel a CNOT.  The label
is carried in ``Gate.label`` as ``"ctrl:<physical qubit>"``.
"""

from __future__ import annotations

from typing import List

from ...circuit.circuit import Instruction, QuantumCircuit
from ...circuit.gates import gate as make_gate
from ..passmanager import PropertySet, TranspilerPass


def swap_orientation(label: str | None, qubits: tuple) -> int:
    """Physical qubit that should act as the control of the first CNOT."""
    a, b = qubits
    if label and label.startswith("ctrl:"):
        try:
            requested = int(label.split(":", 1)[1])
        except ValueError:
            return a
        if requested in (a, b):
            return requested
    return a


class SwapLowering(TranspilerPass):
    """Replace every SWAP with three CNOTs, honouring optimization-aware orientation labels."""

    def __init__(self, use_labels: bool = True) -> None:
        super().__init__()
        self.use_labels = use_labels

    def run(self, circuit: QuantumCircuit, property_set: PropertySet) -> QuantumCircuit:
        out = circuit.copy_empty()
        for inst in circuit.data:
            if inst.name != "swap":
                if inst.name == "barrier":
                    out.barrier(*inst.qubits)
                else:
                    out.append(inst.gate.copy(), inst.qubits, inst.clbits)
                continue
            a, b = inst.qubits
            control = swap_orientation(inst.gate.label if self.use_labels else None, (a, b))
            target = b if control == a else a
            out.cx(control, target)
            out.cx(target, control)
            out.cx(control, target)
        return out


def lower_swap(a: int, b: int, control_first: int | None = None) -> List[Instruction]:
    """Instruction list for one SWAP lowering (used by tests and the examples)."""
    control = a if control_first in (None, a) else b
    target = b if control == a else a
    return [
        Instruction(make_gate("cx"), (control, target)),
        Instruction(make_gate("cx"), (target, control)),
        Instruction(make_gate("cx"), (control, target)),
    ]

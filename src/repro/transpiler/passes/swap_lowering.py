"""SWAP gate lowering.

A SWAP on qubits ``(a, b)`` is implemented by three CNOTs.  There are two valid
decompositions, differing in which qubit is the control of the first (and last) CNOT::

    swap(a, b) = cx(a, b) cx(b, a) cx(a, b)   (orientation "a")
               = cx(b, a) cx(a, b) cx(b, a)   (orientation "b")

The standard compiler always picks a fixed orientation (first form).  NASSC's
*optimization-aware SWAP decomposition* (paper Sec. IV-E) labels each inserted SWAP with the
orientation that lets the subsequent commutative-cancellation pass cancel a CNOT.  The label
is carried in ``Gate.label`` as ``"ctrl:<physical qubit>"``.
"""

from __future__ import annotations

from typing import List

from ...circuit.circuit import Instruction, QuantumCircuit
from ...circuit.dag import DAGCircuit
from ...circuit.gates import gate as make_gate
from ..passmanager import PropertySet, TransformationPass


def swap_orientation(label: str | None, qubits: tuple) -> int:
    """Physical qubit that should act as the control of the first CNOT."""
    a, b = qubits
    if label and label.startswith("ctrl:"):
        try:
            requested = int(label.split(":", 1)[1])
        except ValueError:
            return a
        if requested in (a, b):
            return requested
    return a


class SwapLowering(TransformationPass):
    """Replace every SWAP with three CNOTs, honouring optimization-aware orientation labels."""

    def __init__(self, use_labels: bool = True) -> None:
        super().__init__()
        self.use_labels = use_labels

    #: Above this (#swaps x #gates) product a single rebuild sweep beats per-node splices.
    _REBUILD_THRESHOLD = 1 << 18

    def _lowering(self, node) -> List[Instruction]:
        a, b = node.qubits
        control = swap_orientation(node.gate.label if self.use_labels else None, (a, b))
        target = b if control == a else a
        return [
            Instruction(make_gate("cx"), (control, target)),
            Instruction(make_gate("cx"), (target, control)),
            Instruction(make_gate("cx"), (control, target)),
        ]

    def run(self, dag: DAGCircuit, property_set: PropertySet) -> DAGCircuit:
        swaps = dag.op_nodes("swap")
        if not swaps:
            return dag
        if len(swaps) * len(dag) > self._REBUILD_THRESHOLD:
            # Each in-place splice costs a linear scan of the linearization; on circuits
            # with many SWAPs one O(n) rebuild is cheaper and emits the identical order.
            out = dag.copy_empty_like()
            for node in dag.op_nodes():
                if node.name == "swap":
                    for inst in self._lowering(node):
                        out.add_node(inst.gate, inst.qubits)
                else:
                    out.add_node(node.gate.copy(), node.qubits, node.clbits)
            return out
        for node in swaps:
            dag.substitute_node_with_ops(node, self._lowering(node))
        return dag


def lower_swap(a: int, b: int, control_first: int | None = None) -> List[Instruction]:
    """Instruction list for one SWAP lowering (used by tests and the examples)."""
    control = a if control_first in (None, a) else b
    target = b if control == a else a
    return [
        Instruction(make_gate("cx"), (control, target)),
        Instruction(make_gate("cx"), (target, control)),
        Instruction(make_gate("cx"), (control, target)),
    ]

"""Two-qubit block re-synthesis (the Qiskit ``ConsolidateBlocks`` + ``UnitarySynthesis``
combination, paper Sec. III and IV-D).

Each collected two-qubit block is multiplied into a 4x4 unitary and re-synthesised with the
KAK-based :class:`~repro.synthesis.two_qubit.TwoQubitSynthesizer`, which emits at most three
CNOTs.  A block is only replaced when the re-synthesised form does not increase the CNOT
count, so the pass never makes the circuit worse.

The pass consumes the ``Collect2qBlocks`` analysis from the property set (recomputing it
only when a previous transformation invalidated it) and rewrites blocks in place on the
DAG.  Synthesis results are memoised by block *signature* (gate names, exact parameters and
local wire pattern): inside the post-routing fixed-point loop most blocks reach the second
iteration unchanged, and repeated KAK decompositions of identical blocks across invocations
and circuits are served from the cache instead of being recomputed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ...circuit.circuit import Instruction, QuantumCircuit
from ...circuit.dag import DAGCircuit, DAGNode
from ...obs.counters import COUNTERS
from ...synthesis.two_qubit import TwoQubitSynthesizer
from ..passmanager import PropertySet, TransformationPass
from .collect_2q import Collect2qBlocks

#: Equivalent-CNOT weight of two-qubit gates when estimating a block's original cost.
_TWO_QUBIT_WEIGHT = {"cx": 1, "cz": 1, "cy": 1, "cp": 2, "cu1": 2, "crx": 2, "cry": 2,
                     "crz": 2, "rzz": 2, "rxx": 2, "ryy": 2, "iswap": 2, "dcx": 2,
                     "swap": 3, "ch": 2, "unitary": 3}

#: Memoised synthesis results keyed by block signature: signature -> (ops template, cx
#: count) where the template is a list of (Gate, local qubit tuple) pairs.  ``None`` marks
#: an explicit-matrix block that cannot be signature-keyed.
_SYNTH_CACHE: Dict[Tuple, Tuple[List[Tuple[object, Tuple[int, ...]]], int]] = {}
_SYNTH_CACHE_LIMIT = 50000

# KAK-memo hit/miss telemetry (module ints, pulled by the registry on snapshot).
_SYNTH_HITS = 0
_SYNTH_MISSES = 0

COUNTERS.register_provider(
    "cache.kak_memo",
    lambda: {"hits": _SYNTH_HITS, "misses": _SYNTH_MISSES, "size": len(_SYNTH_CACHE)},
)


def block_matrix(circuit: QuantumCircuit, positions: List[int], pair: Tuple[int, int]) -> np.ndarray:
    """4x4 unitary of a block, expressed on the pair ``(q0, q1) -> (0, 1)``."""
    local = QuantumCircuit(2)
    mapping = {pair[0]: 0, pair[1]: 1}
    for pos in positions:
        inst = circuit.data[pos]
        local.append(inst.gate.copy(), tuple(mapping[q] for q in inst.qubits))
    return local.to_matrix()


def block_cx_weight(circuit: QuantumCircuit, positions: List[int]) -> int:
    """Equivalent-CNOT cost of the block as currently written."""
    weight = 0
    for pos in positions:
        inst = circuit.data[pos]
        if len(inst.qubits) == 2:
            weight += _TWO_QUBIT_WEIGHT.get(inst.name, 3)
    return weight


def _node_block_matrix(nodes: List[DAGNode], pair: Tuple[int, int]) -> np.ndarray:
    local = QuantumCircuit(2)
    mapping = {pair[0]: 0, pair[1]: 1}
    for node in nodes:
        local.append(node.gate.copy(), tuple(mapping[q] for q in node.qubits))
    return local.to_matrix()


def _block_signature(nodes: List[DAGNode], pair: Tuple[int, int]) -> Optional[Tuple]:
    """Exact content key of a block on its local wires, or ``None`` if unkeyable.

    Blocks containing explicit-matrix ``unitary`` gates are not keyed (their content is
    the matrix itself); everything else is fully determined by (name, params, wires).
    """
    mapping = {pair[0]: 0, pair[1]: 1}
    signature = []
    for node in nodes:
        if node.name == "unitary":
            return None
        # The interned cache token carries (name, exact params) precomputed per gate.
        signature.append((node.gate.cache_token, tuple(mapping[q] for q in node.qubits)))
    return tuple(signature)


class UnitarySynthesis(TransformationPass):
    """Re-synthesise every two-qubit block with at most three CNOTs."""

    def __init__(self, min_block_size: int = 2, synthesizer: TwoQubitSynthesizer | None = None) -> None:
        super().__init__()
        self.min_block_size = min_block_size
        # The shared signature cache holds default-synthesizer results only; a caller
        # injecting a custom synthesizer must never be served someone else's templates.
        self._use_shared_cache = synthesizer is None
        self._synthesizer = synthesizer or TwoQubitSynthesizer()

    def _synthesize_block(
        self, nodes: List[DAGNode], pair: Tuple[int, int]
    ) -> Tuple[List[Tuple[object, Tuple[int, ...]]], int]:
        """Synthesised ops template (gates on local wires 0/1) and its CNOT count."""
        global _SYNTH_HITS, _SYNTH_MISSES
        signature = _block_signature(nodes, pair) if self._use_shared_cache else None
        if signature is not None and signature in _SYNTH_CACHE:
            _SYNTH_HITS += 1
            return _SYNTH_CACHE[signature]
        if signature is not None:
            _SYNTH_MISSES += 1
        matrix = _node_block_matrix(nodes, pair)
        result = self._synthesizer.synthesize(matrix)
        template = [(inst.gate, inst.qubits) for inst in result.circuit.data]
        new_cx = result.circuit.cx_count()
        if signature is not None and len(_SYNTH_CACHE) < _SYNTH_CACHE_LIMIT:
            _SYNTH_CACHE[signature] = (template, new_cx)
        return template, new_cx

    def run(self, dag: DAGCircuit, property_set: PropertySet) -> DAGCircuit:
        if "block_list" not in property_set or "block_pairs" not in property_set:
            Collect2qBlocks().run(dag, property_set)
        blocks: List[List[int]] = property_set["block_list"]
        pairs: List[Tuple[int, int]] = property_set["block_pairs"]

        for positions, pair in zip(blocks, pairs):
            nodes = [dag.node(nid) for nid in positions]
            two_qubit_nodes = [n for n in nodes if len(n.qubits) == 2]
            if len(nodes) < self.min_block_size or not two_qubit_nodes:
                continue
            old_weight = sum(
                _TWO_QUBIT_WEIGHT.get(n.name, 3) for n in two_qubit_nodes
            )
            has_non_cx = any(n.name != "cx" for n in two_qubit_nodes)
            if old_weight <= 1 and not has_non_cx:
                continue
            template, new_cx = self._synthesize_block(nodes, pair)
            if new_cx > old_weight:
                continue
            if new_cx == old_weight and not has_non_cx and len(nodes) <= len(template):
                # No CNOT was saved and the block is already in CNOT form: keep the original.
                continue
            mapped = [
                Instruction(gate.copy(), tuple(pair[q] for q in qubits))
                for gate, qubits in template
            ]
            # Anchor the replacement at the block's first two-qubit gate: every leading
            # single-qubit member has an empty wire between itself and this anchor, so moving
            # it to the anchor is safe, whereas anchoring earlier could illegally reorder this
            # block against a neighbouring block that shares one of its wires.
            anchor = two_qubit_nodes[0]
            for node in nodes:
                if node is anchor:
                    continue
                dag.remove_op_node(node)
            dag.substitute_node_with_ops(anchor, mapped)

        # The block bookkeeping refers to the pre-rewrite DAG; the pass manager drops it
        # (``block_*`` is not in ``preserves``) when the DAG changed.  When nothing changed
        # the analysis is still valid and stays cached for the next invocation.
        return dag

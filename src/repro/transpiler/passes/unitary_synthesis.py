"""Two-qubit block re-synthesis (the Qiskit ``ConsolidateBlocks`` + ``UnitarySynthesis``
combination, paper Sec. III and IV-D).

Each collected two-qubit block is multiplied into a 4x4 unitary and re-synthesised with the
KAK-based :class:`~repro.synthesis.two_qubit.TwoQubitSynthesizer`, which emits at most three
CNOTs.  A block is only replaced when the re-synthesised form does not increase the CNOT
count, so the pass never makes the circuit worse.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ...circuit.circuit import Instruction, QuantumCircuit
from ...synthesis.two_qubit import TwoQubitSynthesizer
from ..passmanager import PropertySet, TranspilerPass
from .collect_2q import Collect2qBlocks

#: Equivalent-CNOT weight of two-qubit gates when estimating a block's original cost.
_TWO_QUBIT_WEIGHT = {"cx": 1, "cz": 1, "cy": 1, "cp": 2, "cu1": 2, "crx": 2, "cry": 2,
                     "crz": 2, "rzz": 2, "rxx": 2, "ryy": 2, "iswap": 2, "dcx": 2,
                     "swap": 3, "ch": 2, "unitary": 3}


def block_matrix(circuit: QuantumCircuit, positions: List[int], pair: Tuple[int, int]) -> np.ndarray:
    """4x4 unitary of a block, expressed on the pair ``(q0, q1) -> (0, 1)``."""
    local = QuantumCircuit(2)
    mapping = {pair[0]: 0, pair[1]: 1}
    for pos in positions:
        inst = circuit.data[pos]
        local.append(inst.gate.copy(), tuple(mapping[q] for q in inst.qubits))
    return local.to_matrix()


def block_cx_weight(circuit: QuantumCircuit, positions: List[int]) -> int:
    """Equivalent-CNOT cost of the block as currently written."""
    weight = 0
    for pos in positions:
        inst = circuit.data[pos]
        if len(inst.qubits) == 2:
            weight += _TWO_QUBIT_WEIGHT.get(inst.name, 3)
    return weight


class UnitarySynthesis(TranspilerPass):
    """Re-synthesise every two-qubit block with at most three CNOTs."""

    def __init__(self, min_block_size: int = 2, synthesizer: TwoQubitSynthesizer | None = None) -> None:
        super().__init__()
        self.min_block_size = min_block_size
        self._synthesizer = synthesizer or TwoQubitSynthesizer()

    def run(self, circuit: QuantumCircuit, property_set: PropertySet) -> QuantumCircuit:
        # Always (re-)collect blocks: block bookkeeping is positional and only valid for the
        # exact circuit object being rewritten.
        Collect2qBlocks().run(circuit, property_set)
        blocks: List[List[int]] = property_set["block_list"]
        pairs: List[Tuple[int, int]] = property_set["block_pairs"]

        replacements: Dict[int, List[Instruction]] = {}
        skip: set[int] = set()

        for positions, pair in zip(blocks, pairs):
            two_qubit_positions = [p for p in positions if len(circuit.data[p].qubits) == 2]
            if len(positions) < self.min_block_size or not two_qubit_positions:
                continue
            old_weight = block_cx_weight(circuit, positions)
            has_non_cx = any(
                circuit.data[p].name != "cx" for p in two_qubit_positions
            )
            if old_weight <= 1 and not has_non_cx:
                continue
            matrix = block_matrix(circuit, positions, pair)
            result = self._synthesizer.synthesize(matrix)
            new_cx = result.circuit.cx_count()
            if new_cx > old_weight:
                continue
            if new_cx == old_weight and not has_non_cx and len(positions) <= len(result.circuit.data):
                # No CNOT was saved and the block is already in CNOT form: keep the original.
                continue
            mapped: List[Instruction] = []
            for inst in result.circuit.data:
                qubits = tuple(pair[q] for q in inst.qubits)
                mapped.append(Instruction(inst.gate.copy(), qubits))
            # Anchor the replacement at the block's first two-qubit gate: every leading
            # single-qubit member has an empty wire between itself and this anchor, so moving
            # it to the anchor is safe, whereas anchoring earlier could illegally reorder this
            # block against a neighbouring block that shares one of its wires.
            anchor = two_qubit_positions[0]
            replacements[anchor] = mapped
            skip.update(positions)
            skip.discard(anchor)

        if not replacements:
            return circuit

        out = circuit.copy_empty()
        for pos, inst in enumerate(circuit.data):
            if pos in replacements:
                for rep in replacements[pos]:
                    out.append(rep.gate, rep.qubits)
                continue
            if pos in skip:
                continue
            if inst.name == "barrier":
                out.barrier(*inst.qubits)
            else:
                out.append(inst.gate.copy(), inst.qubits, inst.clbits)
        # The block bookkeeping refers to the old circuit; invalidate it.
        property_set.pop("block_list", None)
        property_set.pop("block_pairs", None)
        property_set.pop("block_id", None)
        return out

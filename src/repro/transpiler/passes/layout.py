"""Logical-to-physical qubit layout selection and application."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ...circuit.circuit import QuantumCircuit
from ...circuit.dag import DAGCircuit
from ...exceptions import TranspilerError
from ...hardware.coupling import CouplingMap
from ..passmanager import AnalysisPass, PropertySet, TransformationPass


class Layout:
    """A bijective mapping between logical (virtual) qubits and physical qubits."""

    def __init__(self, logical_to_physical: Dict[int, int]) -> None:
        self._l2p = dict(logical_to_physical)
        self._p2l = {p: l for l, p in self._l2p.items()}
        if len(self._p2l) != len(self._l2p):
            raise TranspilerError("layout is not injective")

    # -- constructors -------------------------------------------------------

    @classmethod
    def trivial(cls, num_logical: int) -> "Layout":
        return cls({q: q for q in range(num_logical)})

    @classmethod
    def random(cls, num_logical: int, num_physical: int, seed: Optional[int] = None) -> "Layout":
        if num_logical > num_physical:
            raise TranspilerError("circuit has more qubits than the device")
        rng = np.random.default_rng(seed)
        physical = rng.permutation(num_physical)[:num_logical]
        return cls({l: int(p) for l, p in enumerate(physical)})

    @classmethod
    def from_physical_list(cls, physical_qubits: Sequence[int]) -> "Layout":
        return cls({l: int(p) for l, p in enumerate(physical_qubits)})

    # -- queries ------------------------------------------------------------

    def physical(self, logical: int) -> int:
        return self._l2p[logical]

    def logical(self, physical: int) -> Optional[int]:
        return self._p2l.get(physical)

    def logical_to_physical(self) -> Dict[int, int]:
        return dict(self._l2p)

    def num_logical(self) -> int:
        return len(self._l2p)

    def copy(self) -> "Layout":
        return Layout(self._l2p)

    def to_pairs(self) -> List[List[int]]:
        """JSON-safe ``[[logical, physical], ...]`` representation, sorted by logical qubit."""
        return [[l, p] for l, p in sorted(self._l2p.items())]

    @classmethod
    def from_pairs(cls, pairs: Sequence[Sequence[int]]) -> "Layout":
        """Rebuild a layout from :meth:`to_pairs` output."""
        return cls({int(l): int(p) for l, p in pairs})

    # -- mutation -----------------------------------------------------------

    def swap_physical(self, p0: int, p1: int) -> None:
        """Exchange the logical qubits sitting on two physical qubits (SWAP insertion)."""
        l0 = self._p2l.get(p0)
        l1 = self._p2l.get(p1)
        if l0 is not None:
            self._l2p[l0] = p1
        if l1 is not None:
            self._l2p[l1] = p0
        self._p2l = {p: l for l, p in self._l2p.items()}

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Layout) and other._l2p == self._l2p

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Layout({self._l2p})"


class SetLayout(AnalysisPass):
    """Record a chosen layout in the property set."""

    def __init__(self, layout: Layout) -> None:
        super().__init__()
        self.layout = layout

    def run(self, dag: DAGCircuit, property_set: PropertySet) -> None:
        property_set["layout"] = self.layout.copy()


class TrivialLayout(AnalysisPass):
    """Choose the identity layout (logical i -> physical i)."""

    def __init__(self, coupling_map: CouplingMap) -> None:
        super().__init__()
        self.coupling_map = coupling_map

    def run(self, dag: DAGCircuit, property_set: PropertySet) -> None:
        if dag.num_qubits > self.coupling_map.num_qubits:
            raise TranspilerError("circuit does not fit on the device")
        property_set["layout"] = Layout.trivial(dag.num_qubits)


class ApplyLayout(TransformationPass):
    """Rewrite the DAG over the device's physical qubits using the chosen layout."""

    def __init__(self, coupling_map: CouplingMap) -> None:
        super().__init__()
        self.coupling_map = coupling_map

    def run(self, dag: DAGCircuit, property_set: PropertySet) -> DAGCircuit:
        layout: Optional[Layout] = property_set.get("layout")
        if layout is None:
            layout = Layout.trivial(dag.num_qubits)
            property_set["layout"] = layout
        mapping = {l: layout.physical(l) for l in range(dag.num_qubits)}
        out = DAGCircuit(self.coupling_map.num_qubits, dag.num_clbits, dag.name)
        out.metadata = dict(dag.metadata)
        for node in dag.op_nodes():
            mapped = tuple(mapping[q] for q in node.qubits)
            out.add_node(node.gate.copy(), mapped, node.clbits)
        property_set["original_num_qubits"] = dag.num_qubits
        return out

"""Logical-to-physical qubit layout selection and application."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ...circuit.circuit import QuantumCircuit
from ...circuit.dag import DAGCircuit
from ...exceptions import TranspilerError
from ...hardware.coupling import CouplingMap
from ..passmanager import AnalysisPass, PropertySet, TransformationPass


class Layout:
    """A bijective mapping between logical (virtual) qubits and physical qubits.

    Backed by a pair of flat numpy index arrays — ``_l2p[logical] -> physical`` and
    ``_p2l[physical] -> logical`` (``-1`` for unoccupied physical qubits) — so the
    routers' inner loop gets O(1) SWAP updates and vectorized fancy-indexed lookups
    instead of per-call dict traffic.  Logical qubits are always the contiguous range
    ``0..n-1`` (which every constructor in the codebase produces).
    """

    __slots__ = ("_l2p", "_p2l")

    def __init__(self, logical_to_physical: Dict[int, int]) -> None:
        n = len(logical_to_physical)
        l2p = np.empty(n, dtype=np.intp)
        for logical, physical in logical_to_physical.items():
            logical = int(logical)
            if not 0 <= logical < n:
                raise TranspilerError(
                    "layout logical qubits must be the contiguous range 0..n-1"
                )
            l2p[logical] = int(physical)
        self._l2p = l2p
        self._p2l = self._invert(l2p)

    @staticmethod
    def _invert(l2p: np.ndarray) -> np.ndarray:
        size = int(l2p.max()) + 1 if len(l2p) else 0
        if len(l2p) and int(l2p.min()) < 0:
            raise TranspilerError("physical qubit indices must be non-negative")
        p2l = np.full(size, -1, dtype=np.intp)
        p2l[l2p] = np.arange(len(l2p), dtype=np.intp)
        if len(l2p) and np.count_nonzero(p2l >= 0) != len(l2p):
            raise TranspilerError("layout is not injective")
        return p2l

    @classmethod
    def _from_arrays(cls, l2p: np.ndarray, p2l: np.ndarray) -> "Layout":
        """Internal unchecked constructor used by :meth:`copy` (hot path)."""
        out = cls.__new__(cls)
        out._l2p = l2p
        out._p2l = p2l
        return out

    # -- constructors -------------------------------------------------------

    @classmethod
    def trivial(cls, num_logical: int) -> "Layout":
        l2p = np.arange(num_logical, dtype=np.intp)
        return cls._from_arrays(l2p, l2p.copy())

    @classmethod
    def random(cls, num_logical: int, num_physical: int, seed: Optional[int] = None) -> "Layout":
        if num_logical > num_physical:
            raise TranspilerError("circuit has more qubits than the device")
        rng = np.random.default_rng(seed)
        physical = rng.permutation(num_physical)[:num_logical]
        return cls({l: int(p) for l, p in enumerate(physical)})

    @classmethod
    def from_physical_list(cls, physical_qubits: Sequence[int]) -> "Layout":
        return cls({l: int(p) for l, p in enumerate(physical_qubits)})

    # -- queries ------------------------------------------------------------

    def physical(self, logical: int) -> int:
        # Match the old dict behaviour: unknown (including negative) logical qubits are
        # a loud KeyError, never a silent numpy wraparound.
        if not 0 <= logical < len(self._l2p):
            raise KeyError(logical)
        return int(self._l2p[logical])

    def logical(self, physical: int) -> Optional[int]:
        if not 0 <= physical < len(self._p2l):
            return None
        value = self._p2l[physical]
        return None if value < 0 else int(value)

    def physical_array(self) -> np.ndarray:
        """Flat ``logical -> physical`` index array (do not mutate; used for fancy indexing)."""
        return self._l2p

    def logical_to_physical(self) -> Dict[int, int]:
        return {l: int(p) for l, p in enumerate(self._l2p)}

    def num_logical(self) -> int:
        return len(self._l2p)

    def copy(self) -> "Layout":
        return Layout._from_arrays(self._l2p.copy(), self._p2l.copy())

    def to_pairs(self) -> List[List[int]]:
        """JSON-safe ``[[logical, physical], ...]`` representation, sorted by logical qubit."""
        return [[l, int(p)] for l, p in enumerate(self._l2p)]

    @classmethod
    def from_pairs(cls, pairs: Sequence[Sequence[int]]) -> "Layout":
        """Rebuild a layout from :meth:`to_pairs` output."""
        return cls({int(l): int(p) for l, p in pairs})

    # -- mutation -----------------------------------------------------------

    def _ensure_physical(self, physical: int) -> None:
        if physical >= len(self._p2l):
            grown = np.full(physical + 1, -1, dtype=np.intp)
            grown[: len(self._p2l)] = self._p2l
            self._p2l = grown

    def swap_physical(self, p0: int, p1: int) -> None:
        """Exchange the logical qubits sitting on two physical qubits (SWAP insertion)."""
        self._ensure_physical(max(p0, p1))
        p2l = self._p2l
        l0 = p2l[p0]
        l1 = p2l[p1]
        if l0 >= 0:
            self._l2p[l0] = p1
        if l1 >= 0:
            self._l2p[l1] = p0
        p2l[p0] = l1
        p2l[p1] = l0

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Layout) and np.array_equal(other._l2p, self._l2p)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Layout({self.logical_to_physical()})"


class SetLayout(AnalysisPass):
    """Record a chosen layout in the property set."""

    def __init__(self, layout: Layout) -> None:
        super().__init__()
        self.layout = layout

    def run(self, dag: DAGCircuit, property_set: PropertySet) -> None:
        property_set["layout"] = self.layout.copy()


class TrivialLayout(AnalysisPass):
    """Choose the identity layout (logical i -> physical i)."""

    def __init__(self, coupling_map: CouplingMap) -> None:
        super().__init__()
        self.coupling_map = coupling_map

    def run(self, dag: DAGCircuit, property_set: PropertySet) -> None:
        if dag.num_qubits > self.coupling_map.num_qubits:
            raise TranspilerError("circuit does not fit on the device")
        property_set["layout"] = Layout.trivial(dag.num_qubits)


class ApplyLayout(TransformationPass):
    """Rewrite the DAG over the device's physical qubits using the chosen layout."""

    def __init__(self, coupling_map: CouplingMap) -> None:
        super().__init__()
        self.coupling_map = coupling_map

    def run(self, dag: DAGCircuit, property_set: PropertySet) -> DAGCircuit:
        layout: Optional[Layout] = property_set.get("layout")
        if layout is None:
            layout = Layout.trivial(dag.num_qubits)
            property_set["layout"] = layout
        mapping = {l: layout.physical(l) for l in range(dag.num_qubits)}
        out = DAGCircuit(self.coupling_map.num_qubits, dag.num_clbits, dag.name)
        out.metadata = dict(dag.metadata)
        for node in dag.op_nodes():
            mapped = tuple(mapping[q] for q in node.qubits)
            out.add_node(node.gate.copy(), mapped, node.clbits)
        property_set["original_num_qubits"] = dag.num_qubits
        return out

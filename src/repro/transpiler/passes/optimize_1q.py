"""Single-qubit gate optimization (the Qiskit ``Optimize1qGates`` pass, paper Sec. II-C).

Adjacent runs of single-qubit gates on the same wire are multiplied together and re-emitted
either as a single ``u`` gate or as an ``rz``/``sx`` sequence in the hardware basis.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ...circuit.circuit import Instruction, QuantumCircuit
from ...circuit.dag import DAGCircuit
from ...circuit.gates import Gate, gate as make_gate
from ...exceptions import TranspilerError
from ...synthesis.linalg import ALLCLOSE_RTOL
from ...synthesis.one_qubit import synthesize_zsx, u_params_from_matrix
from ..passmanager import PropertySet, TransformationPass
from .commutation import refresh_commutation_wires

_IDENTITY_TOL = 1e-9


def _is_scalar_identity(matrix: np.ndarray) -> bool:
    """Exact scalar form of ``np.allclose(matrix, eye(2) * matrix[0, 0], atol=_IDENTITY_TOL)``."""
    m00 = complex(matrix[0, 0])
    return (
        abs(complex(matrix[0, 1])) <= _IDENTITY_TOL
        and abs(complex(matrix[1, 0])) <= _IDENTITY_TOL
        and abs(complex(matrix[1, 1]) - m00) <= _IDENTITY_TOL + ALLCLOSE_RTOL * abs(m00)
    )


class Optimize1qGates(TransformationPass):
    """Merge runs of adjacent single-qubit gates and re-synthesise them.

    ``output`` selects the emitted form: ``"u"`` (a single generic rotation, compact and
    convenient before routing) or ``"zsx"`` (the ``{rz, sx, x}`` hardware basis used for the
    final circuits whose CNOT counts and depths the paper reports).

    The pass rebuilds the DAG in one linear sweep: per-wire pending products are flushed
    whenever a multi-qubit gate or directive touches the wire.
    """

    def __init__(self, output: str = "u") -> None:
        super().__init__()
        if output not in ("u", "zsx"):
            raise TranspilerError(f"unknown 1q synthesis output format {output!r}")
        self.output = output

    def run(self, dag: DAGCircuit, property_set: PropertySet) -> DAGCircuit:
        out = dag.copy_empty_like()
        pending: List[Optional[np.ndarray]] = [None] * dag.num_qubits

        def flush(qubit: int) -> None:
            matrix = pending[qubit]
            pending[qubit] = None
            if matrix is None:
                return
            if _is_scalar_identity(matrix):
                return
            for inst in self._emit(matrix, qubit):
                out.add_node(inst.gate, inst.qubits)

        for node in dag.op_nodes():
            if len(node.qubits) == 1 and node.gate.is_unitary and node.name != "barrier":
                q = node.qubits[0]
                matrix = node.gate.matrix()
                pending[q] = matrix if pending[q] is None else matrix @ pending[q]
                continue
            for q in node.qubits:
                flush(q)
            out.add_node(node.gate.copy(), node.qubits, node.clbits)
        for q in range(dag.num_qubits):
            flush(q)
        return out

    def _emit(self, matrix: np.ndarray, qubit: int) -> List[Instruction]:
        if self.output == "u":
            theta, phi, lam, _ = u_params_from_matrix(matrix)
            if abs(theta) < _IDENTITY_TOL and abs(phi + lam) < _IDENTITY_TOL:
                return []
            return [Instruction(make_gate("u", theta, phi, lam), (qubit,))]
        ops = synthesize_zsx(matrix)
        return [Instruction(Gate(name, params), (qubit,)) for name, params in ops]


class RemoveIdentities(TransformationPass):
    """Drop explicit identity gates and zero-angle rotations (in place).

    Removal-only, so the cached commutation analysis is patched rather than invalidated.
    """

    preserves = ("commutation_sets", "commutation_index")

    def run(self, dag: DAGCircuit, property_set: PropertySet) -> DAGCircuit:
        dirty_wires = set()
        for node in dag.op_nodes():
            drop = node.name == "id" or (
                node.name in ("rz", "rx", "ry", "p", "u1")
                and abs(node.gate.params[0]) < _IDENTITY_TOL
            )
            if drop:
                dirty_wires.update(node.qubits)
                dag.remove_op_node(node)
        refresh_commutation_wires(dag, property_set, dirty_wires)
        return dag

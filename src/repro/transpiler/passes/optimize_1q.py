"""Single-qubit gate optimization (the Qiskit ``Optimize1qGates`` pass, paper Sec. II-C).

Adjacent runs of single-qubit gates on the same wire are multiplied together and re-emitted
either as a single ``u`` gate or as an ``rz``/``sx`` sequence in the hardware basis.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ...circuit.circuit import Instruction, QuantumCircuit
from ...circuit.gates import Gate, gate as make_gate
from ...exceptions import TranspilerError
from ...synthesis.one_qubit import synthesize_zsx, u_params_from_matrix
from ..passmanager import PropertySet, TranspilerPass

_IDENTITY_TOL = 1e-9


class Optimize1qGates(TranspilerPass):
    """Merge runs of adjacent single-qubit gates and re-synthesise them.

    ``output`` selects the emitted form: ``"u"`` (a single generic rotation, compact and
    convenient before routing) or ``"zsx"`` (the ``{rz, sx, x}`` hardware basis used for the
    final circuits whose CNOT counts and depths the paper reports).
    """

    def __init__(self, output: str = "u") -> None:
        super().__init__()
        if output not in ("u", "zsx"):
            raise TranspilerError(f"unknown 1q synthesis output format {output!r}")
        self.output = output

    def run(self, circuit: QuantumCircuit, property_set: PropertySet) -> QuantumCircuit:
        out = circuit.copy_empty()
        pending: List[Optional[np.ndarray]] = [None] * circuit.num_qubits

        def flush(qubit: int) -> None:
            matrix = pending[qubit]
            pending[qubit] = None
            if matrix is None:
                return
            if np.allclose(matrix, np.eye(2) * matrix[0, 0], atol=_IDENTITY_TOL):
                return
            for inst in self._emit(matrix, qubit):
                out.append(inst.gate, inst.qubits)

        for inst in circuit.data:
            if len(inst.qubits) == 1 and inst.gate.is_unitary and inst.name != "barrier":
                q = inst.qubits[0]
                matrix = inst.gate.matrix()
                pending[q] = matrix if pending[q] is None else matrix @ pending[q]
                continue
            for q in inst.qubits:
                flush(q)
            if inst.name == "barrier":
                out.barrier(*inst.qubits)
            else:
                out.append(inst.gate.copy(), inst.qubits, inst.clbits)
        for q in range(circuit.num_qubits):
            flush(q)
        return out

    def _emit(self, matrix: np.ndarray, qubit: int) -> List[Instruction]:
        if self.output == "u":
            theta, phi, lam, _ = u_params_from_matrix(matrix)
            if abs(theta) < _IDENTITY_TOL and abs(phi + lam) < _IDENTITY_TOL:
                return []
            return [Instruction(make_gate("u", theta, phi, lam), (qubit,))]
        ops = synthesize_zsx(matrix)
        return [Instruction(Gate(name, params), (qubit,)) for name, params in ops]


class RemoveIdentities(TranspilerPass):
    """Drop explicit identity gates and zero-angle rotations."""

    def run(self, circuit: QuantumCircuit, property_set: PropertySet) -> QuantumCircuit:
        out = circuit.copy_empty()
        for inst in circuit.data:
            if inst.name == "id":
                continue
            if inst.name in ("rz", "rx", "ry", "p", "u1") and abs(inst.gate.params[0]) < _IDENTITY_TOL:
                continue
            if inst.name == "barrier":
                out.barrier(*inst.qubits)
            else:
                out.append(inst.gate.copy(), inst.qubits, inst.clbits)
        return out

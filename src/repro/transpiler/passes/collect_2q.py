"""Two-qubit block collection (the Qiskit ``Collect2qBlocks`` pass, paper Sec. III).

A *two-qubit block* is a maximal run of gates that act only on a fixed pair of qubits
(including the single-qubit gates interleaved on those two wires).  Blocks are what the
``UnitarySynthesis`` pass re-synthesises into at most three CNOTs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...circuit.dag import DAGCircuit
from ..passmanager import AnalysisPass, PropertySet


@dataclass
class TwoQubitBlock:
    """A run of instructions confined to one pair of qubits."""

    qubits: Tuple[int, int]
    positions: List[int] = field(default_factory=list)

    def two_qubit_gate_count(self) -> int:
        return len(self.positions)


class Collect2qBlocks(AnalysisPass):
    """Identify two-qubit blocks and record them in the property set.

    ``property_set["block_list"]`` holds a list of blocks, each a list of DAG node ids in
    linearized circuit order (node ids are *not* numerically sorted — after in-place
    substitutions they need not be monotone in circuit order).  ``property_set["block_id"]``
    maps a node id to its block index (only for nodes that are inside a block), and
    ``property_set["block_pairs"]`` holds each block's qubit pair.
    """

    def run(self, dag: DAGCircuit, property_set: PropertySet) -> None:
        blocks: List[List[int]] = []
        block_pairs: List[Tuple[int, int]] = []
        current_block: Dict[int, Optional[int]] = {q: None for q in range(dag.num_qubits)}
        # Floating 1q gates per wire as (scan position, node id): scan position lets two
        # wires' pending lists merge back into circuit order when a block absorbs them.
        pending_1q: Dict[int, List[Tuple[int, int]]] = {q: [] for q in range(dag.num_qubits)}

        def close(qubit: int) -> None:
            current_block[qubit] = None
            pending_1q[qubit] = []

        for scan_pos, node in enumerate(dag.op_nodes()):
            qubits = node.qubits
            if (not node.gate.is_unitary) or node.name == "barrier" or len(qubits) > 2:
                for q in qubits:
                    close(q)
                continue
            if len(qubits) == 1:
                q = qubits[0]
                block_idx = current_block[q]
                if block_idx is not None:
                    blocks[block_idx].append(node.node_id)
                else:
                    pending_1q[q].append((scan_pos, node.node_id))
                continue
            a, b = qubits
            idx_a, idx_b = current_block[a], current_block[b]
            if idx_a is not None and idx_a == idx_b:
                blocks[idx_a].append(node.node_id)
                continue
            # Start a new block on (a, b); absorb any floating 1q gates on these wires.
            if idx_a is not None:
                current_block[a] = None
            if idx_b is not None:
                current_block[b] = None
            new_positions = [nid for _, nid in sorted(pending_1q[a] + pending_1q[b])]
            pending_1q[a] = []
            pending_1q[b] = []
            new_positions.append(node.node_id)
            blocks.append(new_positions)
            block_pairs.append((a, b))
            current_block[a] = len(blocks) - 1
            current_block[b] = len(blocks) - 1

        block_id: Dict[int, int] = {}
        for idx, positions in enumerate(blocks):
            for pos in positions:
                block_id[pos] = idx

        property_set["block_list"] = blocks
        property_set["block_pairs"] = block_pairs
        property_set["block_id"] = block_id

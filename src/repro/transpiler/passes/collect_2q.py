"""Two-qubit block collection (the Qiskit ``Collect2qBlocks`` pass, paper Sec. III).

A *two-qubit block* is a maximal run of gates that act only on a fixed pair of qubits
(including the single-qubit gates interleaved on those two wires).  Blocks are what the
``UnitarySynthesis`` pass re-synthesises into at most three CNOTs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...circuit.circuit import Instruction, QuantumCircuit
from ..passmanager import PropertySet, TranspilerPass


@dataclass
class TwoQubitBlock:
    """A run of instructions confined to one pair of qubits."""

    qubits: Tuple[int, int]
    positions: List[int] = field(default_factory=list)

    def two_qubit_gate_count(self) -> int:
        return len(self.positions)


class Collect2qBlocks(TranspilerPass):
    """Identify two-qubit blocks and record them in the property set.

    ``property_set["block_list"]`` holds a list of blocks, each a list of instruction indices
    into ``circuit.data`` (in circuit order).  ``property_set["block_id"]`` maps an
    instruction index to its block index (only for instructions that are inside a block).
    """

    def run(self, circuit: QuantumCircuit, property_set: PropertySet) -> QuantumCircuit:
        blocks: List[List[int]] = []
        block_pairs: List[Tuple[int, int]] = []
        current_block: Dict[int, Optional[int]] = {q: None for q in range(circuit.num_qubits)}
        pending_1q: Dict[int, List[int]] = {q: [] for q in range(circuit.num_qubits)}

        def close(qubit: int) -> None:
            current_block[qubit] = None
            pending_1q[qubit] = []

        for pos, inst in enumerate(circuit.data):
            qubits = inst.qubits
            if (not inst.gate.is_unitary) or inst.name == "barrier" or len(qubits) > 2:
                for q in qubits:
                    close(q)
                continue
            if len(qubits) == 1:
                q = qubits[0]
                block_idx = current_block[q]
                if block_idx is not None:
                    blocks[block_idx].append(pos)
                else:
                    pending_1q[q].append(pos)
                continue
            a, b = qubits
            idx_a, idx_b = current_block[a], current_block[b]
            if idx_a is not None and idx_a == idx_b:
                blocks[idx_a].append(pos)
                continue
            # Start a new block on (a, b); absorb any floating 1q gates on these wires.
            if idx_a is not None:
                current_block[a] = None
            if idx_b is not None:
                current_block[b] = None
            new_positions = sorted(pending_1q[a] + pending_1q[b])
            pending_1q[a] = []
            pending_1q[b] = []
            new_positions.append(pos)
            blocks.append(new_positions)
            block_pairs.append((a, b))
            current_block[a] = len(blocks) - 1
            current_block[b] = len(blocks) - 1

        block_id: Dict[int, int] = {}
        for idx, positions in enumerate(blocks):
            for pos in positions:
                block_id[pos] = idx

        property_set["block_list"] = blocks
        property_set["block_pairs"] = block_pairs
        property_set["block_id"] = block_id
        return circuit

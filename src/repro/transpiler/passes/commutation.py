"""Commutation analysis and commutative gate cancellation (paper Sec. II-C and III).

``CommutationAnalysis`` groups, per wire, maximal runs of mutually-commuting gates into
*commute sets*.  ``CommutativeCancellation`` then cancels pairs of self-inverse gates (most
importantly CNOTs) that sit in the same commute set on every wire they touch, and merges
runs of rotations about the same axis.  This is the optimization that makes some SWAP
decompositions cheaper than others (Fig. 4 and Fig. 7 of the paper).

Both passes are DAG-native.  The analysis results live in the property set keyed by node id
and are *incrementally maintained*: ``CommutativeCancellation`` patches the commute sets as
it removes or substitutes nodes (see :func:`refresh_commutation_wires`) and declares
them in ``preserves``, so the sets are computed at most once per optimization-loop
iteration instead of being rebuilt from scratch on every invocation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ...circuit.circuit import Instruction, QuantumCircuit, expanded_gate_matrix
from ...circuit.dag import DAGCircuit, DAGNode
from ...circuit.gates import Gate, gate as make_gate
from ...obs.counters import COUNTERS
from ...synthesis.linalg import ALLCLOSE_RTOL
from ..passmanager import AnalysisPass, PropertySet, TransformationPass

_COMMUTE_CACHE: Dict[Tuple, bool] = {}

# Hit/miss telemetry as plain module ints (a bound-int increment is the cheapest thing
# this hot path can pay); the registry pulls them on snapshot.
_COMMUTE_HITS = 0
_COMMUTE_MISSES = 0

COUNTERS.register_provider(
    "cache.commutation",
    lambda: {"hits": _COMMUTE_HITS, "misses": _COMMUTE_MISSES, "size": len(_COMMUTE_CACHE)},
)

#: Gates that are diagonal in the computational basis (always commute with each other).
_DIAGONAL_GATES = {"z", "s", "sdg", "t", "tdg", "rz", "p", "u1", "cz", "cp", "cu1", "crz", "rzz"}


def _cache_key(inst_a, inst_b, qubit_map: Dict[int, int]) -> Tuple:
    # Keyed on the gates' interned identity tokens (exact name + params, computed once
    # per Gate instance) plus the local wire pattern — no per-lookup param rounding.
    return (
        inst_a.gate.cache_token,
        tuple(qubit_map[q] for q in inst_a.qubits),
        inst_b.gate.cache_token,
        tuple(qubit_map[q] for q in inst_b.qubits),
    )


def gates_commute(inst_a, inst_b) -> bool:
    """True if the two operations commute as operators.

    Accepts any pair of objects exposing ``name``/``qubits``/``gate`` (both
    :class:`~repro.circuit.circuit.Instruction` and :class:`~repro.circuit.dag.DAGNode`
    qualify).  Fast rule-based checks cover the common cases (disjoint supports, diagonal
    gates, CNOTs sharing a control or a target); everything else falls back to an explicit
    matrix check on the joint support (at most four qubits here), memoised on the gates'
    identity tokens (explicit-matrix ``unitary`` gates have no token and are always
    checked directly).
    """
    if not inst_a.gate.is_unitary or not inst_b.gate.is_unitary:
        return False
    if inst_a.name == "barrier" or inst_b.name == "barrier":
        return False
    qubits_b = inst_b.qubits
    if not any(q in qubits_b for q in inst_a.qubits):
        return True
    if inst_a.name in _DIAGONAL_GATES and inst_b.name in _DIAGONAL_GATES:
        return True
    if inst_a.name == "cx" and inst_b.name == "cx":
        control_a, target_a = inst_a.qubits
        control_b, target_b = inst_b.qubits
        if control_a == control_b and target_a != target_b:
            return True
        if target_a == target_b and control_a != control_b:
            return True
        if (control_a, target_a) == (control_b, target_b):
            return True
        return False

    qubits = sorted(set(inst_a.qubits) | set(inst_b.qubits))
    index = {q: i for i, q in enumerate(qubits)}
    cacheable = inst_a.name != "unitary" and inst_b.name != "unitary"
    global _COMMUTE_HITS, _COMMUTE_MISSES
    if cacheable:
        key = _cache_key(inst_a, inst_b, index)
        cached = _COMMUTE_CACHE.get(key)
        if cached is not None:
            _COMMUTE_HITS += 1
            return cached
        _COMMUTE_MISSES += 1
    n = len(qubits)
    mat_a = expanded_gate_matrix(inst_a.gate, [index[q] for q in inst_a.qubits], n)
    mat_b = expanded_gate_matrix(inst_b.gate, [index[q] for q in inst_b.qubits], n)
    ab = mat_a @ mat_b
    ba = mat_b @ mat_a
    # The exact np.allclose(ab, ba, atol=1e-9) predicate without the ufunc dispatch
    # overhead of isclose (finite unitary products only ever reach this path).
    result = bool((np.abs(ab - ba) <= 1e-9 + ALLCLOSE_RTOL * np.abs(ba)).all())
    if cacheable and len(_COMMUTE_CACHE) < 100000:
        _COMMUTE_CACHE[key] = result
    return result


def refresh_commutation_wires(
    dag: DAGCircuit, property_set: PropertySet, wires: Sequence[int]
) -> None:
    """Patch the cached commutation analysis after the given qubit wires changed.

    The commute-set partition is computed independently per wire, so re-scanning only the
    wires a transformation touched yields *exactly* the result a from-scratch rerun would —
    this is what lets in-place passes declare ``preserves = ("commutation_sets", ...)``
    without ever serving a stale or overly-fine partition.  No-op when no analysis is
    cached.
    """
    sets = property_set.get("commutation_sets")
    index = property_set.get("commutation_index")
    if sets is None or index is None:
        return
    for qubit in set(wires):
        for group in sets[qubit]:
            for nid in group:
                index.pop((qubit, nid), None)
        groups: List[List[int]] = []
        for node in dag.wire_nodes(qubit):
            if not node.gate.is_unitary or node.name == "barrier":
                groups.append([])
                continue
            if not groups:
                groups.append([])
            current = groups[-1]
            if len(current) >= CommutationAnalysis.MAX_SET_SIZE:
                groups.append([node.node_id])
                index[(qubit, node.node_id)] = len(groups) - 1
                continue
            commutes_with_all = all(
                gates_commute(node, dag.node(other_id)) for other_id in current
            )
            if current and not commutes_with_all:
                groups.append([node.node_id])
            else:
                current.append(node.node_id)
            index[(qubit, node.node_id)] = len(groups) - 1
        sets[qubit] = groups


class CommutationAnalysis(AnalysisPass):
    """Group gates into per-wire commute sets.

    Results are stored in ``property_set["commutation_sets"]`` as a mapping
    ``qubit -> list of commute sets``, each commute set being a list of DAG node ids in
    wire order.  ``property_set["commutation_index"]`` maps ``(qubit, node_id) -> set
    index`` for O(1) lookup.  Both structures survive DAG rewrites performed by passes
    that patch them (``CommutativeCancellation``, ``RemoveIdentities``); any other
    transformation invalidates them through the pass manager.
    """

    #: Bound on the number of gates examined per commute set (paper Sec. IV-E).
    MAX_SET_SIZE = 20

    def run(self, dag: DAGCircuit, property_set: PropertySet) -> None:
        sets: Dict[int, List[List[int]]] = {q: [] for q in range(dag.num_qubits)}
        index: Dict[Tuple[int, int], int] = {}
        for node in dag.op_nodes():
            if not node.gate.is_unitary or node.name == "barrier":
                # Directives split every commute set on their wires.
                for q in node.qubits:
                    sets[q].append([])
                continue
            for q in node.qubits:
                groups = sets[q]
                if not groups:
                    groups.append([])
                current = groups[-1]
                # Bounded search (paper Sec. IV-E): very large commute sets are split rather
                # than scanned, which is conservative (never merges gates that might not
                # commute) and keeps the analysis O(1) per gate.
                if len(current) >= self.MAX_SET_SIZE:
                    groups.append([node.node_id])
                    index[(q, node.node_id)] = len(groups) - 1
                    continue
                commutes_with_all = all(
                    gates_commute(node, dag.node(other_id)) for other_id in current
                )
                if current and not commutes_with_all:
                    groups.append([node.node_id])
                else:
                    current.append(node.node_id)
                index[(q, node.node_id)] = len(groups) - 1
        property_set["commutation_sets"] = sets
        property_set["commutation_index"] = index


class CommutativeCancellation(TransformationPass):
    """Cancel self-inverse gates and merge rotations using commutation relations.

    Consumes the cached ``CommutationAnalysis`` results (computing them only when absent)
    and rewrites the DAG in place, patching the commute sets as nodes disappear so the
    analysis stays valid for the next iteration of the optimization loop.
    """

    preserves = ("commutation_sets", "commutation_index")

    _SELF_INVERSE_1Q = {"x", "y", "z", "h"}
    _ROTATION_AXES = {"rz": "z", "p": "z", "u1": "z", "z": "z", "s": "z", "sdg": "z",
                      "t": "z", "tdg": "z", "rx": "x", "x": "x", "sx": "x", "sxdg": "x"}
    _AXIS_ANGLES = {"z": np.pi, "s": np.pi / 2, "sdg": -np.pi / 2, "t": np.pi / 4,
                    "tdg": -np.pi / 4, "x": np.pi, "sx": np.pi / 2, "sxdg": -np.pi / 2}

    def run(self, dag: DAGCircuit, property_set: PropertySet) -> DAGCircuit:
        if "commutation_sets" not in property_set or "commutation_index" not in property_set:
            CommutationAnalysis().run(dag, property_set)
        index: Dict[Tuple[int, int], int] = property_set["commutation_index"]
        dirty_wires: Set[int] = set()

        def remove(node: DAGNode) -> None:
            dirty_wires.update(node.qubits)
            dag.remove_op_node(node)

        # --- Two-qubit self-inverse cancellation (cx, cz, swap) --------------------
        for name in ("cx", "cz", "swap"):
            groups: Dict[Tuple, List[DAGNode]] = {}
            for node in dag.op_nodes(name):
                q0, q1 = node.qubits
                key_qubits = node.qubits if name == "cx" else tuple(sorted(node.qubits))
                key = (
                    key_qubits,
                    index.get((q0, node.node_id)),
                    index.get((q1, node.node_id)),
                )
                groups.setdefault(key, []).append(node)
            for members in groups.values():
                # Cancel pairs: an even count disappears entirely, an odd count keeps one.
                for first, second in zip(members[0::2], members[1::2]):
                    remove(first)
                    remove(second)

        # --- Single-qubit cancellation and rotation merging -------------------------
        per_qubit_groups: Dict[int, Dict[int, List[DAGNode]]] = {
            q: {} for q in range(dag.num_qubits)
        }
        for node in dag.op_nodes():
            if len(node.qubits) != 1 or not node.gate.is_unitary:
                continue
            qubit = node.qubits[0]
            group_id = index.get((qubit, node.node_id))
            if group_id is None:
                continue
            per_qubit_groups[qubit].setdefault(group_id, []).append(node)
        for qubit in range(dag.num_qubits):
            for members in per_qubit_groups[qubit].values():
                self._simplify_single_qubit_group(dag, members, remove, qubit, dirty_wires)
        # Re-scan only the wires the cancellation touched: after this the preserved
        # analysis is exactly what a from-scratch rerun on the rewritten DAG would give.
        refresh_commutation_wires(dag, property_set, dirty_wires)
        return dag

    def _simplify_single_qubit_group(
        self,
        dag: DAGCircuit,
        members: List[DAGNode],
        remove,
        qubit: int,
        dirty_wires: Set[int],
    ) -> None:
        removed: Set[int] = set()

        # Cancel identical self-inverse gates pairwise.
        for name in self._SELF_INVERSE_1Q:
            matching = [n for n in members if n.name == name]
            for first, second in zip(matching[0::2], matching[1::2]):
                removed.add(first.node_id)
                removed.add(second.node_id)
                remove(first)
                remove(second)

        # Merge rotations about the same axis into a single rotation.
        for axis, rot_name in (("z", "rz"), ("x", "rx")):
            matching = [
                n
                for n in members
                if n.node_id not in removed
                and self._ROTATION_AXES.get(n.name) == axis
                and n.name not in self._SELF_INVERSE_1Q
            ]
            if len(matching) < 2:
                continue
            total = 0.0
            for n in matching:
                if n.gate.params:
                    total += n.gate.params[0]
                else:
                    total += self._AXIS_ANGLES[n.name]
            total = float(np.mod(total + np.pi, 2 * np.pi) - np.pi)
            keep: Optional[DAGNode] = matching[0] if abs(total) > 1e-10 else None
            for n in matching:
                removed.add(n.node_id)
                if n is keep:
                    continue
                remove(n)
            if keep is not None:
                # The merged rotation keeps the first node's slot.
                dag.substitute_node(keep, make_gate(rot_name, total))
                dirty_wires.add(qubit)

"""Commutation analysis and commutative gate cancellation (paper Sec. II-C and III).

``CommutationAnalysis`` groups, per wire, maximal runs of mutually-commuting gates into
*commute sets*.  ``CommutativeCancellation`` then cancels pairs of self-inverse gates (most
importantly CNOTs) that sit in the same commute set on every wire they touch, and merges
runs of rotations about the same axis.  This is the optimization that makes some SWAP
decompositions cheaper than others (Fig. 4 and Fig. 7 of the paper).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ...circuit.circuit import Instruction, QuantumCircuit, expand_gate_matrix
from ...circuit.gates import Gate, gate as make_gate
from ..passmanager import PropertySet, TranspilerPass

_COMMUTE_CACHE: Dict[Tuple, bool] = {}

#: Gates that are diagonal in the computational basis (always commute with each other).
_DIAGONAL_GATES = {"z", "s", "sdg", "t", "tdg", "rz", "p", "u1", "cz", "cp", "cu1", "crz", "rzz"}


def _cache_key(inst_a: Instruction, inst_b: Instruction) -> Tuple:
    def describe(inst: Instruction, qubit_map: Dict[int, int]) -> Tuple:
        return (
            inst.name,
            tuple(round(p, 12) for p in inst.gate.params),
            tuple(qubit_map[q] for q in inst.qubits),
        )

    qubits = sorted(set(inst_a.qubits) | set(inst_b.qubits))
    qubit_map = {q: i for i, q in enumerate(qubits)}
    return describe(inst_a, qubit_map), describe(inst_b, qubit_map)


def gates_commute(inst_a: Instruction, inst_b: Instruction) -> bool:
    """True if the two instructions commute as operators.

    Fast rule-based checks cover the common cases (disjoint supports, diagonal gates, CNOTs
    sharing a control or a target); everything else falls back to an explicit matrix check on
    the joint support (at most four qubits here), with memoisation.
    """
    if not inst_a.gate.is_unitary or not inst_b.gate.is_unitary:
        return False
    if inst_a.name == "barrier" or inst_b.name == "barrier":
        return False
    shared = set(inst_a.qubits) & set(inst_b.qubits)
    if not shared:
        return True
    if inst_a.name in _DIAGONAL_GATES and inst_b.name in _DIAGONAL_GATES:
        return True
    if inst_a.name == "cx" and inst_b.name == "cx":
        control_a, target_a = inst_a.qubits
        control_b, target_b = inst_b.qubits
        if control_a == control_b and target_a != target_b:
            return True
        if target_a == target_b and control_a != control_b:
            return True
        if (control_a, target_a) == (control_b, target_b):
            return True
        return False

    key = _cache_key(inst_a, inst_b)
    if key in _COMMUTE_CACHE:
        return _COMMUTE_CACHE[key]
    qubits = sorted(set(inst_a.qubits) | set(inst_b.qubits))
    index = {q: i for i, q in enumerate(qubits)}
    n = len(qubits)
    mat_a = expand_gate_matrix(inst_a.gate.matrix(), [index[q] for q in inst_a.qubits], n)
    mat_b = expand_gate_matrix(inst_b.gate.matrix(), [index[q] for q in inst_b.qubits], n)
    result = bool(np.allclose(mat_a @ mat_b, mat_b @ mat_a, atol=1e-9))
    if len(_COMMUTE_CACHE) < 100000:
        _COMMUTE_CACHE[key] = result
    return result


class CommutationAnalysis(TranspilerPass):
    """Group gates into per-wire commute sets.

    Results are stored in ``property_set["commutation_sets"]`` as a mapping
    ``qubit -> list of commute sets``, each commute set being a list of instruction indices
    into ``circuit.data``.  ``property_set["commutation_index"]`` maps
    ``(qubit, instruction_index) -> set index`` for O(1) lookup.
    """

    #: Bound on the number of gates examined per commute set (paper Sec. IV-E).
    MAX_SET_SIZE = 20

    def run(self, circuit: QuantumCircuit, property_set: PropertySet) -> QuantumCircuit:
        sets: Dict[int, List[List[int]]] = {q: [] for q in range(circuit.num_qubits)}
        index: Dict[Tuple[int, int], int] = {}
        for pos, inst in enumerate(circuit.data):
            if not inst.gate.is_unitary or inst.name == "barrier":
                # Directives split every commute set on their wires.
                for q in inst.qubits:
                    sets[q].append([])
                continue
            for q in inst.qubits:
                groups = sets[q]
                if not groups:
                    groups.append([])
                current = groups[-1]
                # Bounded search (paper Sec. IV-E): very large commute sets are split rather
                # than scanned, which is conservative (never merges gates that might not
                # commute) and keeps the analysis O(1) per gate.
                if len(current) >= self.MAX_SET_SIZE:
                    groups.append([pos])
                    index[(q, pos)] = len(groups) - 1
                    continue
                commutes_with_all = all(
                    gates_commute(inst, circuit.data[other_pos]) for other_pos in current
                )
                if current and not commutes_with_all:
                    groups.append([pos])
                else:
                    current.append(pos)
                index[(q, pos)] = len(groups) - 1
        property_set["commutation_sets"] = sets
        property_set["commutation_index"] = index
        return circuit


class CommutativeCancellation(TranspilerPass):
    """Cancel self-inverse gates and merge rotations using commutation relations."""

    _SELF_INVERSE_1Q = {"x", "y", "z", "h"}
    _ROTATION_AXES = {"rz": "z", "p": "z", "u1": "z", "z": "z", "s": "z", "sdg": "z",
                      "t": "z", "tdg": "z", "rx": "x", "x": "x", "sx": "x", "sxdg": "x"}
    _AXIS_ANGLES = {"z": np.pi, "s": np.pi / 2, "sdg": -np.pi / 2, "t": np.pi / 4,
                    "tdg": -np.pi / 4, "x": np.pi, "sx": np.pi / 2, "sxdg": -np.pi / 2}

    def run(self, circuit: QuantumCircuit, property_set: PropertySet) -> QuantumCircuit:
        analysis = CommutationAnalysis()
        analysis.run(circuit, property_set)
        index: Dict[Tuple[int, int], int] = property_set["commutation_index"]

        removed: Set[int] = set()
        replacement: Dict[int, List[Instruction]] = {}

        # --- Two-qubit self-inverse cancellation (cx, cz, swap) --------------------
        for name in ("cx", "cz", "swap"):
            groups: Dict[Tuple, List[int]] = {}
            for pos, inst in enumerate(circuit.data):
                if inst.name != name or pos in removed:
                    continue
                q0, q1 = inst.qubits
                key_qubits = inst.qubits if name == "cx" else tuple(sorted(inst.qubits))
                key = (
                    key_qubits,
                    index.get((q0, pos)),
                    index.get((q1, pos)),
                )
                groups.setdefault(key, []).append(pos)
            for positions in groups.values():
                # Cancel pairs: an even count disappears entirely, an odd count keeps one.
                for first, second in zip(positions[0::2], positions[1::2]):
                    removed.add(first)
                    removed.add(second)

        # --- Single-qubit cancellation and rotation merging -------------------------
        for qubit in range(circuit.num_qubits):
            groups = {}
            for pos, inst in enumerate(circuit.data):
                if pos in removed or len(inst.qubits) != 1 or inst.qubits[0] != qubit:
                    continue
                if not inst.gate.is_unitary:
                    continue
                group_id = index.get((qubit, pos))
                if group_id is None:
                    continue
                groups.setdefault(group_id, []).append(pos)
            for positions in groups.values():
                self._simplify_single_qubit_group(circuit, positions, removed, replacement, qubit)

        out = circuit.copy_empty()
        for pos, inst in enumerate(circuit.data):
            if pos in removed:
                continue
            if pos in replacement:
                for rep in replacement[pos]:
                    out.append(rep.gate, rep.qubits)
                continue
            if inst.name == "barrier":
                out.barrier(*inst.qubits)
            else:
                out.append(inst.gate.copy(), inst.qubits, inst.clbits)
        return out

    def _simplify_single_qubit_group(
        self,
        circuit: QuantumCircuit,
        positions: List[int],
        removed: Set[int],
        replacement: Dict[int, List[Instruction]],
        qubit: int,
    ) -> None:
        # Cancel identical self-inverse gates pairwise.
        for name in self._SELF_INVERSE_1Q:
            matching = [p for p in positions if circuit.data[p].name == name and p not in removed]
            for first, second in zip(matching[0::2], matching[1::2]):
                removed.add(first)
                removed.add(second)

        # Merge rotations about the same axis into a single rotation.
        for axis, rot_name in (("z", "rz"), ("x", "rx")):
            matching = [
                p
                for p in positions
                if p not in removed
                and self._ROTATION_AXES.get(circuit.data[p].name) == axis
                and circuit.data[p].name not in self._SELF_INVERSE_1Q
            ]
            if len(matching) < 2:
                continue
            total = 0.0
            for p in matching:
                inst = circuit.data[p]
                if inst.gate.params:
                    total += inst.gate.params[0]
                else:
                    total += self._AXIS_ANGLES[inst.name]
            for p in matching:
                removed.add(p)
            total = float(np.mod(total + np.pi, 2 * np.pi) - np.pi)
            if abs(total) > 1e-10:
                replacement[matching[0]] = [Instruction(make_gate(rot_name, total), (qubit,))]
                removed.discard(matching[0])

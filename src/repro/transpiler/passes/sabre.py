"""SABRE qubit routing (Li, Ding, Xie - ASPLOS 2019), the paper's baseline.

The router processes the logical circuit's DAG layer by layer (resolved / front / extended
layers, paper Fig. 6), inserting SWAPs chosen by a lookahead heuristic cost function over the
device distance matrix.  :class:`SabreSwapRouter` is also the base class for the NASSC router
in :mod:`repro.core.nassc`, which only overrides the cost function and the SWAP labelling.

Routing is DAG-in/DAG-out: :meth:`SabreSwapRouter.route` consumes the pipeline's canonical
:class:`DAGCircuit` directly (a plain :class:`QuantumCircuit` is still accepted and converted
for standalone use) and emits the routed result into a fresh DAG through
:class:`RoutedOutput`, which also maintains the positional instruction view and per-wire
history the NASSC estimators inspect.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ...circuit.circuit import QuantumCircuit
from ...circuit.dag import DAGCircuit, DAGNode, ExecutionFrontier
from ...circuit.gates import Gate, gate as make_gate
from ...exceptions import TranspilerError
from ...hardware.coupling import CouplingMap
from ...nativeext import front_ext_sums
from ...obs.counters import COUNTERS
from ..passmanager import AnalysisPass, PropertySet, TransformationPass
from .layout import Layout

#: Per-wire bound on the router's position history.  The NASSC estimators scan the
#: routed prefix backward through :meth:`repro.core.estimators.OptimizationEstimator`
#: and consume at most ``MAX_COMMUTE_SCAN + 1`` merged positions (trailing-block
#: reconstruction stops even earlier at ``MAX_BLOCK_GATES + 1``), so keeping a few more
#: than that per wire is exactly equivalent to unbounded history — without the unbounded
#: memory growth on long circuits.  ``tests/transpiler/test_sabre.py`` asserts this
#: constant dominates the estimator scan depths.
WIRE_HISTORY_BOUND = 24


class RoutedOutput:
    """Append-only routed circuit under construction.

    Keeps two synchronized views the router and the NASSC estimators need: the output
    :class:`DAGCircuit` (node id == append position) and the positional operation list
    ``data`` (what the estimators' backward scans index; entries are the DAG's own
    :class:`DAGNode` records, which expose the same ``gate``/``name``/``qubits`` shape
    as :class:`~repro.circuit.circuit.Instruction`).  Per-wire history is tracked by the
    router itself.
    """

    def __init__(self, num_qubits: int, num_clbits: int, name: str, metadata: Dict) -> None:
        self.dag = DAGCircuit(num_qubits, num_clbits, name)
        self.dag.metadata = dict(metadata)
        self.data: List[DAGNode] = []

    def append(self, gate: Gate, qubits: Sequence[int], clbits: Sequence[int] = ()) -> None:
        self.data.append(self.dag.add_node(gate, qubits, clbits))

    def __len__(self) -> int:
        return len(self.data)


class _LiteOp:
    """Minimal instruction record with the ``gate``/``name``/``qubits`` shape the
    NASSC estimators read."""

    __slots__ = ("gate", "qubits", "clbits")

    def __init__(self, gate: Gate, qubits: Tuple[int, ...], clbits: Tuple[int, ...]) -> None:
        self.gate = gate
        self.qubits = qubits
        self.clbits = clbits

    @property
    def name(self) -> str:
        return self.gate.name


class DiscardOutput:
    """Routed-output stand-in for runs whose emitted circuit is thrown away.

    The SABRE layout-refinement sweeps route the whole circuit ``2 * iterations``
    times but consume only the final layout, so building the output DAG (node and
    edge bookkeeping per emitted gate) is pure overhead there.  This keeps just the
    positional ``data`` list the NASSC estimators' backward scans index — the same
    gate objects and qubit tuples :class:`RoutedOutput` would record, so scoring
    (and hence every routing decision) is bit-identical between the two outputs.
    """

    __slots__ = ("data",)

    #: No DAG is built; the resulting :class:`RoutingResult` carries ``dag=None``.
    dag = None

    def __init__(self) -> None:
        self.data: List[_LiteOp] = []

    def append(self, gate: Gate, qubits: Sequence[int], clbits: Sequence[int] = ()) -> None:
        self.data.append(_LiteOp(gate, tuple(qubits), tuple(clbits)))

    def __len__(self) -> int:
        return len(self.data)


class _PositionalView:
    """Dict-backed stand-in for the positional ``out.data`` list.

    The NASSC estimators index ``out.data[position]`` only at positions recorded in the
    router's bounded wire histories, so a sparse mapping over the retained tail behaves
    exactly like the full list at a fraction of the memory.
    """

    __slots__ = ("store",)

    def __init__(self, store: Dict[int, _LiteOp]) -> None:
        self.store = store

    def __getitem__(self, position: int) -> _LiteOp:
        return self.store[position]


class StreamingOutput:
    """Routed-output sink for streaming runs: emit each op, retain only the scan tail.

    Every appended operation is handed to ``emit(position, op)`` immediately and stored
    in a position-keyed dict.  Periodically (every ``_SCAN_INTERVAL`` appends) positions
    no longer referenced by any wire-history deque are dropped — those are exactly the
    positions the NASSC estimators can still inspect, so scoring stays bit-identical to
    :class:`RoutedOutput` while the retained set stays bounded by
    ``num_wires * WIRE_HISTORY_BOUND + _SCAN_INTERVAL`` entries regardless of circuit
    length.  No output DAG is built (``dag = None``).
    """

    __slots__ = ("data", "_wire_history", "_emit", "_store", "_count")

    dag = None

    _SCAN_INTERVAL = 256

    def __init__(self, wire_history: Dict[int, Deque[int]], emit) -> None:
        self._wire_history = wire_history
        self._emit = emit
        self._store: Dict[int, _LiteOp] = {}
        self._count = 0
        self.data = _PositionalView(self._store)

    def append(self, gate: Gate, qubits: Sequence[int], clbits: Sequence[int] = ()) -> None:
        op = _LiteOp(gate, tuple(qubits), tuple(clbits))
        position = self._count
        self._store[position] = op
        self._count += 1
        self._emit(position, op)
        if self._count % self._SCAN_INTERVAL == 0:
            self._trim()

    def _trim(self) -> None:
        # The wire-history entry for the op appended just now is recorded by the router
        # *after* append() returns, so the newest position is kept unconditionally.
        live = {pos for history in self._wire_history.values() for pos in history}
        newest = self._count - 1
        self._store = {
            pos: op for pos, op in self._store.items() if pos in live or pos >= newest
        }
        self.data.store = self._store

    def __len__(self) -> int:
        return self._count


@dataclass
class RoutingResult:
    """Output of one routing run."""

    dag: DAGCircuit
    initial_layout: Layout
    final_layout: Layout
    num_swaps: int
    swap_labels: Dict[int, str] = field(default_factory=dict)
    _circuit: Optional[QuantumCircuit] = field(default=None, repr=False, compare=False)

    @property
    def circuit(self) -> QuantumCircuit:
        """Linearized view of the routed DAG (materialised lazily and cached)."""
        if self._circuit is None:
            self._circuit = self.dag.to_circuit()
        return self._circuit


@dataclass
class ScoreRequest:
    """One pending candidate-scoring evaluation, yielded by :meth:`route_steps`.

    The router suspends at every heuristic scoring point and yields one of these; the
    driver answers with the float score array (``generator.send(scores)``).  The solo
    driver (:func:`drive_steps`) simply calls :meth:`evaluate`; the ensemble engine in
    :mod:`repro.transpiler.ensemble` instead stacks the index tables of every live
    trial's request into one batched kernel call per step.
    """

    router: "SabreSwapRouter"
    candidates: List[Tuple[int, int]]
    front_gates: List[DAGNode]
    extended: List[DAGNode]
    layout: Layout

    def evaluate(self) -> np.ndarray:
        """Score this request in isolation (the single-trial path)."""
        return self.router._compute_scores(
            self.candidates, self.front_gates, self.extended, self.layout
        )


def drive_steps(steps):
    """Run a routing-step generator to completion, answering each request in place.

    This is the trampoline behind :meth:`SabreSwapRouter.route` and the solo layout
    traversals: it produces output bit-identical to the historical inline loop, because
    :meth:`ScoreRequest.evaluate` performs exactly the computation the loop used to.
    """
    reply = None
    while True:
        try:
            request = steps.send(reply)
        except StopIteration as stop:
            return stop.value
        reply = request.evaluate()


def prepare_layout_dags(dag: DAGCircuit):
    """Forward/backward traversal DAGs for SABRE layout selection (or ``None``).

    Returns ``None`` when the circuit has no two-qubit interaction to refine on —
    the random seed layout is then final.  Factored out so the ensemble engine can
    build the (trial-independent) traversal DAGs once and share them across trials.
    """
    circuit = dag.to_circuit()
    unitary_only = circuit.without_directives()
    if not unitary_only.two_qubit_pairs():
        return None
    reversed_circuit = unitary_only.reverse_ops()
    return (
        DAGCircuit.from_circuit(unitary_only),
        DAGCircuit.from_circuit(reversed_circuit),
    )


def layout_selection_steps(router, layout, iterations, forward_dag, backward_dag):
    """Generator form of the SABRE reverse-traversal layout refinement.

    Yields the underlying routers' :class:`ScoreRequest`\\ s; returns the refined
    :class:`Layout`.  ``drive_steps`` makes this the classic solo refinement; the
    ensemble engine interleaves several of these (one per trial) in lockstep.
    """
    for _ in range(iterations):
        # The sweeps' routed circuits are discarded — only the layout they end in
        # matters — so skip the output-DAG bookkeeping entirely.
        forward = yield from router.route_steps(forward_dag, layout, build_output=False)
        layout = forward.final_layout
        backward = yield from router.route_steps(backward_dag, layout, build_output=False)
        layout = backward.final_layout
    return layout


class SabreSwapRouter:
    """SWAP-based bidirectional heuristic router (SABRE).

    Parameters mirror the paper's configuration (Sec. V): extended-layer size 20 and
    extended-layer weight 0.5.
    """

    #: Number of SWAP insertions without resolving any gate before the safety valve engages.
    _STALL_LIMIT_FACTOR = 10

    def __init__(
        self,
        coupling_map: CouplingMap,
        *,
        extended_set_size: int = 20,
        extended_set_weight: float = 0.5,
        decay_delta: float = 0.001,
        seed: Optional[int] = None,
        distance_matrix: Optional[np.ndarray] = None,
    ) -> None:
        self.coupling_map = coupling_map
        self.extended_set_size = extended_set_size
        self.extended_set_weight = extended_set_weight
        self.decay_delta = decay_delta
        self.seed = seed
        self.distance = np.ascontiguousarray(
            np.asarray(distance_matrix, dtype=float)
            if distance_matrix is not None
            else coupling_map.distance_matrix()
        )
        # Flat device structure consumed by the vectorized inner loop: CSR adjacency for
        # candidate generation and a dense boolean matrix for executability checks.
        self._adj_indptr, self._adj_indices = coupling_map.adjacency_arrays()
        self._adj_matrix = coupling_map.adjacency_matrix()

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def route(self, circuit, initial_layout: Optional[Layout] = None) -> RoutingResult:
        """Route a logical circuit (``QuantumCircuit`` or ``DAGCircuit``) onto the device."""
        return drive_steps(self.route_steps(circuit, initial_layout))

    def route_steps(
        self, circuit, initial_layout: Optional[Layout] = None, *, build_output: bool = True
    ):
        """Generator form of :meth:`route`: yields a :class:`ScoreRequest` at every
        heuristic scoring point and expects the score array back via ``send()``.

        Returns the :class:`RoutingResult` (as the generator's ``StopIteration`` value).
        Driving it with :func:`drive_steps` is bit-identical to the historical inline
        loop; the ensemble engine drives many of these concurrently, batching the
        per-step score evaluations of all live trials into one kernel call.

        ``build_output=False`` records the emitted operations without constructing the
        output DAG (``result.dag`` is then ``None``) — for layout-refinement sweeps
        that only consume ``result.final_layout``.  Every routing decision is
        bit-identical either way.
        """
        dag = circuit if isinstance(circuit, DAGCircuit) else DAGCircuit.from_circuit(circuit)
        if dag.num_qubits > self.coupling_map.num_qubits:
            raise TranspilerError(
                f"circuit needs {dag.num_qubits} qubits but the device has "
                f"{self.coupling_map.num_qubits}"
            )
        for node in dag.op_nodes():
            if len(node.qubits) > 2 and node.name != "barrier":
                raise TranspilerError(
                    f"cannot route gate '{node.name}' on {len(node.qubits)} qubits; decompose first"
                )

        rng = np.random.default_rng(self.seed)
        layout = (initial_layout or Layout.trivial(dag.num_qubits)).copy()
        initial = layout.copy()
        frontier = ExecutionFrontier(dag)
        if build_output:
            out = RoutedOutput(
                self.coupling_map.num_qubits, dag.num_clbits, dag.name, dag.metadata
            )
        else:
            out = DiscardOutput()

        self._reset_routing_memos()
        self._wire_history: Dict[int, Deque[int]] = {
            q: deque(maxlen=WIRE_HISTORY_BOUND) for q in range(self.coupling_map.num_qubits)
        }
        self._decay = np.ones(self.coupling_map.num_qubits)
        result = yield from self._route_loop(frontier, layout, initial, out, rng)
        return result

    def route_stream(self, frontier, initial_layout: Optional[Layout] = None, *, emit):
        """Route a windowed instruction stream; see :meth:`route_stream_steps`."""
        return drive_steps(self.route_stream_steps(frontier, initial_layout, emit=emit))

    def route_stream_steps(
        self, frontier, initial_layout: Optional[Layout] = None, *, emit
    ):
        """Generator form of streaming routing over a bounded frontier.

        ``frontier`` is any object with the :class:`~repro.circuit.dag.ExecutionFrontier`
        protocol — in practice a :class:`~repro.circuit.dag.StreamingDAG`, which admits
        gates from its source iterator as earlier ones retire, so the router only ever
        sees the live window.  Every routed operation is pushed to ``emit(position, op)``
        the moment it is placed (``op`` has the ``gate``/``name``/``qubits``/``clbits``
        shape of an :class:`~repro.circuit.circuit.Instruction`); no output DAG or full
        instruction list is retained, keeping peak memory O(window), not O(gates).

        The loop, scoring kernels, rng discipline, and decay/stall state are literally
        shared with :meth:`route_steps` (same :meth:`_route_loop`), so when the window
        covers the whole circuit the emitted operation sequence is bit-identical to
        in-memory routing.  Returns a :class:`RoutingResult` with ``dag=None``.
        """
        if frontier.num_qubits > self.coupling_map.num_qubits:
            raise TranspilerError(
                f"circuit needs {frontier.num_qubits} qubits but the device has "
                f"{self.coupling_map.num_qubits}"
            )
        rng = np.random.default_rng(self.seed)
        layout = (initial_layout or Layout.trivial(frontier.num_qubits)).copy()
        initial = layout.copy()

        self._reset_routing_memos()
        self._wire_history = {
            q: deque(maxlen=WIRE_HISTORY_BOUND) for q in range(self.coupling_map.num_qubits)
        }
        out = StreamingOutput(self._wire_history, emit)
        self._decay = np.ones(self.coupling_map.num_qubits)
        result = yield from self._route_loop(frontier, layout, initial, out, rng)
        return result

    def _reset_routing_memos(self) -> None:
        """Hook: clear per-run scoring caches before a routing loop starts (no-op here)."""

    def _route_loop(self, frontier, layout: Layout, initial: Layout, out, rng):
        """The shared SABRE routing loop (identical for in-memory and streaming runs)."""
        swap_labels: Dict[int, str] = {}
        num_swaps = 0
        #: Live progress gauge the ensemble driver reads to prune hopeless trials.
        self.swaps_so_far = 0
        stall_counter = 0
        stall_limit = self._STALL_LIMIT_FACTOR * (self.coupling_map.diameter() + 1)
        last_swap: Optional[Tuple[int, int]] = None
        cached_extended: Optional[List[DAGNode]] = None
        cached_frontier_version = -1

        while not frontier.is_done():
            executed_any = self._execute_ready_gates(frontier, layout, out)
            if executed_any:
                self._decay[:] = 1.0
                stall_counter = 0
                last_swap = None
                continue
            if frontier.is_done():
                break

            front_gates = [n for n in frontier.front if n.is_two_qubit()]
            if not front_gates:
                raise TranspilerError("routing stalled with no two-qubit gate in the front layer")
            # The extended layer depends only on the frontier state, which is unchanged
            # between consecutive SWAP insertions that execute no gate — reuse it then.
            if frontier.version != cached_frontier_version:
                cached_extended = frontier.lookahead(self.extended_set_size)
                cached_frontier_version = frontier.version
            extended = cached_extended

            if stall_counter >= stall_limit:
                # Safety valve: march the first blocked gate together along a shortest path.
                swap = self._forced_swap(front_gates[0], layout)
            else:
                candidates = self._swap_candidates(front_gates, layout)
                if last_swap in candidates and len(candidates) > 1:
                    candidates = [c for c in candidates if c != last_swap]
                if type(self)._select_swap is SabreSwapRouter._select_swap:
                    # Split selection around a yield so an external driver may batch
                    # the score evaluation across trials; the three sub-steps compose
                    # to exactly the base ``_select_swap``.
                    self._begin_scoring(candidates)
                    scores = yield ScoreRequest(self, candidates, front_gates, extended, layout)
                    swap = self._choose_swap(candidates, scores, rng)
                else:
                    # A subclass replaced selection wholesale: honour it inline.
                    swap = self._select_swap(candidates, front_gates, extended, layout, rng)

            label = self._swap_label(swap, front_gates, layout, out)
            position = len(out)
            # The bare swap flyweight is immutable; labelled swaps get a fresh instance.
            gate_obj = make_gate("swap") if label is None else Gate("swap", (), None, label)
            out.append(gate_obj, swap)
            self._record_wire(position, swap)
            if label:
                swap_labels[position] = label
            layout.swap_physical(*swap)
            self._decay[swap[0]] += self.decay_delta
            self._decay[swap[1]] += self.decay_delta
            num_swaps += 1
            self.swaps_so_far = num_swaps
            stall_counter += 1
            last_swap = swap

        COUNTERS.inc("routing.swaps_inserted", num_swaps)
        return RoutingResult(
            dag=out.dag,
            initial_layout=initial,
            final_layout=layout,
            num_swaps=num_swaps,
            swap_labels=swap_labels,
        )

    # ------------------------------------------------------------------
    # Gate execution
    # ------------------------------------------------------------------

    def _execute_ready_gates(
        self, frontier: ExecutionFrontier, layout: Layout, out: RoutedOutput
    ) -> bool:
        executed_any = False
        progress = True
        while progress:
            progress = False
            for node in list(frontier.front):
                if self._is_executable(node, layout):
                    self._emit(node, layout, out)
                    frontier.resolve(node)
                    progress = True
                    executed_any = True
        return executed_any

    def _is_executable(self, node: DAGNode, layout: Layout) -> bool:
        if node.name == "barrier" or not node.gate.is_unitary or len(node.qubits) == 1:
            return True
        a, b = node.qubits
        l2p = layout.physical_array()
        return bool(self._adj_matrix[l2p[a], l2p[b]])

    def _emit(self, node: DAGNode, layout: Layout, out: RoutedOutput) -> None:
        l2p = layout.physical_array()
        physical = tuple(int(l2p[q]) for q in node.qubits)
        position = len(out)
        if node.name == "barrier":
            out.append(node.gate, physical)
        else:
            out.append(node.gate.copy(), physical, node.clbits)
        self._record_wire(position, physical)

    def _record_wire(self, position: int, physical_qubits: Sequence[int]) -> None:
        for p in physical_qubits:
            self._wire_history[p].append(position)

    # ------------------------------------------------------------------
    # SWAP selection
    # ------------------------------------------------------------------

    def _swap_candidates(self, front_gates: List[DAGNode], layout: Layout) -> List[Tuple[int, int]]:
        l2p = layout.physical_array()
        indptr, indices = self._adj_indptr, self._adj_indices
        candidates: Set[Tuple[int, int]] = set()
        for node in front_gates:
            for logical in node.qubits:
                physical = int(l2p[logical])
                for neighbor in indices[indptr[physical]:indptr[physical + 1]]:
                    neighbor = int(neighbor)
                    if physical < neighbor:
                        candidates.add((physical, neighbor))
                    else:
                        candidates.add((neighbor, physical))
        return sorted(candidates)

    def _select_swap(
        self,
        candidates: List[Tuple[int, int]],
        front_gates: List[DAGNode],
        extended: List[DAGNode],
        layout: Layout,
        rng: np.random.Generator,
    ) -> Tuple[int, int]:
        """Pick the cheapest candidate (composition of the three scoring sub-steps)."""
        self._begin_scoring(candidates)
        scores = self._compute_scores(candidates, front_gates, extended, layout)
        return self._choose_swap(candidates, scores, rng)

    def _begin_scoring(self, candidates: List[Tuple[int, int]]) -> None:
        """Validate the candidate set and account for the upcoming scoring step."""
        if not candidates:
            raise TranspilerError("no SWAP candidates available (disconnected coupling map?)")
        COUNTERS.inc("routing.swap_candidates_scored", len(candidates))
        COUNTERS.inc("routing.swap_selections")

    def _compute_scores(
        self,
        candidates: List[Tuple[int, int]],
        front_gates: List[DAGNode],
        extended: List[DAGNode],
        layout: Layout,
    ) -> np.ndarray:
        """Score array for one candidate set (what a :class:`ScoreRequest` evaluates)."""
        if type(self)._score_swap in _VECTOR_SAFE_SCORE_SWAPS:
            return np.asarray(
                self._score_candidates(candidates, front_gates, extended, layout), dtype=float
            )
        # A subclass supplied its own per-swap cost function: honour it scalar-wise.
        return np.array(
            [self._score_swap(swap, front_gates, extended, layout) for swap in candidates]
        )

    def _choose_swap(
        self,
        candidates: List[Tuple[int, int]],
        scores: np.ndarray,
        rng: np.random.Generator,
    ) -> Tuple[int, int]:
        """Tie-broken argmin over the scored candidates (consumes one rng draw)."""
        best = scores.min()
        best_indices = np.flatnonzero(scores <= best + 1e-12)
        choice = int(rng.integers(len(best_indices)))
        return candidates[int(best_indices[choice])]

    @staticmethod
    def _candidate_arrays(candidates: Sequence[Tuple[int, int]]) -> Tuple[np.ndarray, np.ndarray]:
        pairs = np.asarray(candidates, dtype=np.intp).reshape(len(candidates), 2)
        return pairs[:, 0], pairs[:, 1]

    def _mapped_index_arrays(
        self,
        c0: np.ndarray,
        c1: np.ndarray,
        nodes: List[DAGNode],
        layout: Layout,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(candidates x gates) tables of post-swap physical indices for ``nodes``.

        Entry ``[s, g]`` of the pair is gate ``g``'s qubit pair after virtually
        applying candidate swap ``s`` to the current layout — the index form the
        scoring kernel gathers distances from, and what the ensemble engine stacks
        across trials.
        """
        l2p = layout.physical_array()
        qubit_pairs = np.asarray([node.qubits for node in nodes], dtype=np.intp)
        pa = l2p[qubit_pairs[:, 0]]  # (G,)
        pb = l2p[qubit_pairs[:, 1]]
        c0 = c0[:, None]  # (S, 1)
        c1 = c1[:, None]
        mapped_a = np.where(pa == c0, c1, np.where(pa == c1, c0, pa))  # (S, G)
        mapped_b = np.where(pb == c0, c1, np.where(pb == c1, c0, pb))
        return mapped_a, mapped_b

    def _mapped_distance_table(
        self,
        c0: np.ndarray,
        c1: np.ndarray,
        nodes: List[DAGNode],
        layout: Layout,
    ) -> np.ndarray:
        """(candidates x gates) table of post-swap distances for two-qubit ``nodes``."""
        mapped_a, mapped_b = self._mapped_index_arrays(c0, c1, nodes, layout)
        return self.distance[mapped_a, mapped_b]

    def _front_ext_sums(
        self,
        c0: np.ndarray,
        c1: np.ndarray,
        front_gates: List[DAGNode],
        extended: List[DAGNode],
        layout: Layout,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-candidate (front, extended) distance sums through the shared kernel."""
        mapped_a, mapped_b = self._mapped_index_arrays(
            c0, c1, front_gates + extended, layout
        )
        return front_ext_sums(self.distance, mapped_a, mapped_b, len(front_gates))

    @staticmethod
    def _sequential_column_sums(table: np.ndarray, start: int, stop: int) -> np.ndarray:
        """Per-row sums of ``table[:, start:stop]`` accumulated column by column.

        Sequential (not pairwise) accumulation keeps the float result bit-identical to
        the historical per-gate scalar loop even for non-integer (noise-aware) distance
        matrices, where pairwise summation could differ in the last ulp and flip a
        1e-12 tie-break.
        """
        totals = np.zeros(table.shape[0])
        for column in range(start, stop):
            totals += table[:, column]
        return totals

    def _score_candidates(
        self,
        candidates: Sequence[Tuple[int, int]],
        front_gates: List[DAGNode],
        extended: List[DAGNode],
        layout: Layout,
    ) -> np.ndarray:
        """SABRE lookahead cost of every candidate in one vectorized evaluation.

        Elementwise identical to scoring each candidate through :meth:`_score_swap`:
        normalised front-layer distance plus weighted lookahead, scaled by the decay of
        the candidate's hotter qubit.
        """
        c0, c1 = self._candidate_arrays(candidates)
        front_raw, ext_raw = self._front_ext_sums(c0, c1, front_gates, extended, layout)
        return self._finalize_scores(
            candidates, c0, c1, front_raw, ext_raw, front_gates, extended
        )

    def _finalize_scores(
        self,
        candidates: Sequence[Tuple[int, int]],
        c0: np.ndarray,
        c1: np.ndarray,
        front_raw: np.ndarray,
        ext_raw: np.ndarray,
        front_gates: List[DAGNode],
        extended: List[DAGNode],
    ) -> np.ndarray:
        """Turn the kernel's raw (front, extended) sums into the SABRE cost array.

        Split from :meth:`_score_candidates` so the ensemble engine can run the raw
        sums for every live trial through one batched kernel call, then finalize each
        trial's slice with its own decay state.  NASSC overrides this (not the kernel).
        """
        cost = front_raw / max(len(front_gates), 1)
        if extended:
            cost = cost + self.extended_set_weight * ext_raw / len(extended)
        decay = np.maximum(self._decay[c0], self._decay[c1])
        return decay * cost

    def _score_swap(
        self,
        swap: Tuple[int, int],
        front_gates: List[DAGNode],
        extended: List[DAGNode],
        layout: Layout,
    ) -> float:
        """Cost of a single candidate (the scalar view of :meth:`_score_candidates`)."""
        return float(self._score_candidates([swap], front_gates, extended, layout)[0])

    def _swap_label(
        self,
        swap: Tuple[int, int],
        front_gates: List[DAGNode],
        layout: Layout,
        out: RoutedOutput,
    ) -> Optional[str]:
        """Hook for optimization-aware SWAP decomposition labels (fixed orientation here)."""
        return None

    def _forced_swap(self, node: DAGNode, layout: Layout) -> Tuple[int, int]:
        """Deterministically move the first blocked gate one hop along a shortest path."""
        a, b = node.qubits
        pa, pb = layout.physical(a), layout.physical(b)
        path = self.coupling_map.shortest_path(pa, pb)
        return (min(path[0], path[1]), max(path[0], path[1]))


#: ``_score_swap`` implementations known to be exact scalar views of the vectorized
#: ``_score_candidates`` path.  ``_select_swap`` takes the vectorized route only when the
#: instance's ``_score_swap`` is one of these, so a third-party subclass overriding
#: ``_score_swap`` alone is still honoured candidate-by-candidate.
_VECTOR_SAFE_SCORE_SWAPS = {SabreSwapRouter._score_swap}


class SabreRouting(TransformationPass):
    """Transpiler pass wrapper around :class:`SabreSwapRouter`."""

    def __init__(
        self,
        coupling_map: CouplingMap,
        *,
        extended_set_size: int = 20,
        extended_set_weight: float = 0.5,
        seed: Optional[int] = None,
        distance_matrix: Optional[np.ndarray] = None,
        router_cls: type = SabreSwapRouter,
        router_kwargs: Optional[dict] = None,
    ) -> None:
        super().__init__()
        self.coupling_map = coupling_map
        kwargs = dict(router_kwargs or {})
        kwargs.setdefault("extended_set_size", extended_set_size)
        kwargs.setdefault("extended_set_weight", extended_set_weight)
        kwargs.setdefault("seed", seed)
        kwargs.setdefault("distance_matrix", distance_matrix)
        self.router = router_cls(coupling_map, **kwargs)

    def run(self, dag: DAGCircuit, property_set: PropertySet) -> DAGCircuit:
        layout = property_set.get("layout") or Layout.trivial(dag.num_qubits)
        result = self.router.route(dag, layout)
        property_set["final_layout"] = result.final_layout
        property_set["initial_layout"] = result.initial_layout
        property_set["num_swaps"] = result.num_swaps
        return result.dag


class SabreLayoutSelection(AnalysisPass):
    """SABRE-style initial layout: random start plus reverse-traversal refinement.

    This is the layout method the paper uses for both SABRE and NASSC (Sec. IV-A): route the
    circuit forward, use the final mapping as the initial mapping of the reversed circuit,
    route backward, and repeat.  The refined layout is stored in ``property_set["layout"]``.
    """

    def __init__(
        self,
        coupling_map: CouplingMap,
        *,
        iterations: int = 2,
        seed: Optional[int] = None,
        router_cls: type = SabreSwapRouter,
        router_kwargs: Optional[dict] = None,
    ) -> None:
        super().__init__()
        self.coupling_map = coupling_map
        self.iterations = iterations
        self.seed = seed
        kwargs = dict(router_kwargs or {})
        kwargs.setdefault("seed", seed)
        self.router = router_cls(coupling_map, **kwargs)

    def run(self, dag: DAGCircuit, property_set: PropertySet) -> None:
        layout = Layout.random(dag.num_qubits, self.coupling_map.num_qubits, seed=self.seed)
        traversal_dags = prepare_layout_dags(dag)
        if traversal_dags is not None:
            layout = drive_steps(
                layout_selection_steps(self.router, layout, self.iterations, *traversal_dags)
            )
        property_set["layout"] = layout

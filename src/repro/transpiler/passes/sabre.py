"""SABRE qubit routing (Li, Ding, Xie - ASPLOS 2019), the paper's baseline.

The router processes the logical circuit's DAG layer by layer (resolved / front / extended
layers, paper Fig. 6), inserting SWAPs chosen by a lookahead heuristic cost function over the
device distance matrix.  :class:`SabreSwapRouter` is also the base class for the NASSC router
in :mod:`repro.core.nassc`, which only overrides the cost function and the SWAP labelling.

Routing is DAG-in/DAG-out: :meth:`SabreSwapRouter.route` consumes the pipeline's canonical
:class:`DAGCircuit` directly (a plain :class:`QuantumCircuit` is still accepted and converted
for standalone use) and emits the routed result into a fresh DAG through
:class:`RoutedOutput`, which also maintains the positional instruction view and per-wire
history the NASSC estimators inspect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ...circuit.circuit import Instruction, QuantumCircuit
from ...circuit.dag import DAGCircuit, DAGNode, ExecutionFrontier
from ...circuit.gates import Gate, gate as make_gate
from ...exceptions import TranspilerError
from ...hardware.coupling import CouplingMap
from ..passmanager import AnalysisPass, PropertySet, TransformationPass
from .layout import Layout


class RoutedOutput:
    """Append-only routed circuit under construction.

    Keeps three synchronized views the router and the NASSC estimators need: the output
    :class:`DAGCircuit` (node id == append position), the positional instruction list
    ``data`` (what the estimators' backward scans index), and nothing else — per-wire
    history is tracked by the router itself.
    """

    def __init__(self, num_qubits: int, num_clbits: int, name: str, metadata: Dict) -> None:
        self.dag = DAGCircuit(num_qubits, num_clbits, name)
        self.dag.metadata = dict(metadata)
        self.data: List[Instruction] = []

    def append(self, gate: Gate, qubits: Sequence[int], clbits: Sequence[int] = ()) -> None:
        self.dag.add_node(gate, qubits, clbits)
        self.data.append(Instruction(gate, tuple(qubits), tuple(clbits)))

    def __len__(self) -> int:
        return len(self.data)


@dataclass
class RoutingResult:
    """Output of one routing run."""

    dag: DAGCircuit
    initial_layout: Layout
    final_layout: Layout
    num_swaps: int
    swap_labels: Dict[int, str] = field(default_factory=dict)
    _circuit: Optional[QuantumCircuit] = field(default=None, repr=False, compare=False)

    @property
    def circuit(self) -> QuantumCircuit:
        """Linearized view of the routed DAG (materialised lazily and cached)."""
        if self._circuit is None:
            self._circuit = self.dag.to_circuit()
        return self._circuit


class SabreSwapRouter:
    """SWAP-based bidirectional heuristic router (SABRE).

    Parameters mirror the paper's configuration (Sec. V): extended-layer size 20 and
    extended-layer weight 0.5.
    """

    #: Number of SWAP insertions without resolving any gate before the safety valve engages.
    _STALL_LIMIT_FACTOR = 10

    def __init__(
        self,
        coupling_map: CouplingMap,
        *,
        extended_set_size: int = 20,
        extended_set_weight: float = 0.5,
        decay_delta: float = 0.001,
        seed: Optional[int] = None,
        distance_matrix: Optional[np.ndarray] = None,
    ) -> None:
        self.coupling_map = coupling_map
        self.extended_set_size = extended_set_size
        self.extended_set_weight = extended_set_weight
        self.decay_delta = decay_delta
        self.seed = seed
        self.distance = (
            np.asarray(distance_matrix, dtype=float)
            if distance_matrix is not None
            else coupling_map.distance_matrix()
        )

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def route(self, circuit, initial_layout: Optional[Layout] = None) -> RoutingResult:
        """Route a logical circuit (``QuantumCircuit`` or ``DAGCircuit``) onto the device."""
        dag = circuit if isinstance(circuit, DAGCircuit) else DAGCircuit.from_circuit(circuit)
        if dag.num_qubits > self.coupling_map.num_qubits:
            raise TranspilerError(
                f"circuit needs {dag.num_qubits} qubits but the device has "
                f"{self.coupling_map.num_qubits}"
            )
        for node in dag.op_nodes():
            if len(node.qubits) > 2 and node.name != "barrier":
                raise TranspilerError(
                    f"cannot route gate '{node.name}' on {len(node.qubits)} qubits; decompose first"
                )

        rng = np.random.default_rng(self.seed)
        layout = (initial_layout or Layout.trivial(dag.num_qubits)).copy()
        initial = layout.copy()
        frontier = ExecutionFrontier(dag)
        out = RoutedOutput(
            self.coupling_map.num_qubits, dag.num_clbits, dag.name, dag.metadata
        )

        self._wire_history: Dict[int, List[int]] = {q: [] for q in range(self.coupling_map.num_qubits)}
        self._decay = np.ones(self.coupling_map.num_qubits)
        swap_labels: Dict[int, str] = {}
        num_swaps = 0
        stall_counter = 0
        stall_limit = self._STALL_LIMIT_FACTOR * (self.coupling_map.diameter() + 1)
        last_swap: Optional[Tuple[int, int]] = None

        while not frontier.is_done():
            executed_any = self._execute_ready_gates(frontier, layout, out)
            if executed_any:
                self._decay[:] = 1.0
                stall_counter = 0
                last_swap = None
                continue
            if frontier.is_done():
                break

            front_gates = [n for n in frontier.front if n.is_two_qubit()]
            if not front_gates:
                raise TranspilerError("routing stalled with no two-qubit gate in the front layer")
            extended = frontier.lookahead(self.extended_set_size)

            if stall_counter >= stall_limit:
                # Safety valve: march the first blocked gate together along a shortest path.
                swap = self._forced_swap(front_gates[0], layout)
            else:
                candidates = self._swap_candidates(front_gates, layout)
                if last_swap in candidates and len(candidates) > 1:
                    candidates = [c for c in candidates if c != last_swap]
                swap = self._select_swap(candidates, front_gates, extended, layout, rng)

            label = self._swap_label(swap, front_gates, layout, out)
            position = len(out)
            gate_obj = make_gate("swap")
            gate_obj.label = label
            out.append(gate_obj, swap)
            self._record_wire(position, swap)
            if label:
                swap_labels[position] = label
            layout.swap_physical(*swap)
            self._decay[swap[0]] += self.decay_delta
            self._decay[swap[1]] += self.decay_delta
            num_swaps += 1
            stall_counter += 1
            last_swap = swap

        return RoutingResult(
            dag=out.dag,
            initial_layout=initial,
            final_layout=layout,
            num_swaps=num_swaps,
            swap_labels=swap_labels,
        )

    # ------------------------------------------------------------------
    # Gate execution
    # ------------------------------------------------------------------

    def _execute_ready_gates(
        self, frontier: ExecutionFrontier, layout: Layout, out: RoutedOutput
    ) -> bool:
        executed_any = False
        progress = True
        while progress:
            progress = False
            for node in list(frontier.front):
                if self._is_executable(node, layout):
                    self._emit(node, layout, out)
                    frontier.resolve(node)
                    progress = True
                    executed_any = True
        return executed_any

    def _is_executable(self, node: DAGNode, layout: Layout) -> bool:
        if node.name == "barrier" or not node.gate.is_unitary or len(node.qubits) == 1:
            return True
        a, b = node.qubits
        return self.coupling_map.is_connected(layout.physical(a), layout.physical(b))

    def _emit(self, node: DAGNode, layout: Layout, out: RoutedOutput) -> None:
        physical = tuple(layout.physical(q) for q in node.qubits)
        position = len(out)
        if node.name == "barrier":
            out.append(node.gate, physical)
        else:
            out.append(node.gate.copy(), physical, node.clbits)
        self._record_wire(position, physical)

    def _record_wire(self, position: int, physical_qubits: Sequence[int]) -> None:
        for p in physical_qubits:
            self._wire_history[p].append(position)

    # ------------------------------------------------------------------
    # SWAP selection
    # ------------------------------------------------------------------

    def _swap_candidates(self, front_gates: List[DAGNode], layout: Layout) -> List[Tuple[int, int]]:
        candidates: Set[Tuple[int, int]] = set()
        for node in front_gates:
            for logical in node.qubits:
                physical = layout.physical(logical)
                for neighbor in self.coupling_map.neighbors(physical):
                    candidates.add((min(physical, neighbor), max(physical, neighbor)))
        return sorted(candidates)

    def _select_swap(
        self,
        candidates: List[Tuple[int, int]],
        front_gates: List[DAGNode],
        extended: List[DAGNode],
        layout: Layout,
        rng: np.random.Generator,
    ) -> Tuple[int, int]:
        if not candidates:
            raise TranspilerError("no SWAP candidates available (disconnected coupling map?)")
        scores = np.array(
            [self._score_swap(swap, front_gates, extended, layout) for swap in candidates]
        )
        best = scores.min()
        best_indices = [i for i, s in enumerate(scores) if s <= best + 1e-12]
        choice = int(rng.integers(len(best_indices)))
        return candidates[best_indices[choice]]

    def _mapped_distance(
        self, node: DAGNode, layout: Layout, swap: Tuple[int, int]
    ) -> float:
        a, b = node.qubits
        pa, pb = layout.physical(a), layout.physical(b)
        p0, p1 = swap
        if pa == p0:
            pa = p1
        elif pa == p1:
            pa = p0
        if pb == p0:
            pb = p1
        elif pb == p1:
            pb = p0
        return float(self.distance[pa, pb])

    def _score_swap(
        self,
        swap: Tuple[int, int],
        front_gates: List[DAGNode],
        extended: List[DAGNode],
        layout: Layout,
    ) -> float:
        """SABRE lookahead cost: normalised front-layer distance plus weighted lookahead."""
        front_cost = sum(self._mapped_distance(node, layout, swap) for node in front_gates)
        front_cost /= max(len(front_gates), 1)
        cost = front_cost
        if extended:
            ext_cost = sum(self._mapped_distance(node, layout, swap) for node in extended)
            cost += self.extended_set_weight * ext_cost / len(extended)
        decay = max(self._decay[swap[0]], self._decay[swap[1]])
        return float(decay * cost)

    def _swap_label(
        self,
        swap: Tuple[int, int],
        front_gates: List[DAGNode],
        layout: Layout,
        out: RoutedOutput,
    ) -> Optional[str]:
        """Hook for optimization-aware SWAP decomposition labels (fixed orientation here)."""
        return None

    def _forced_swap(self, node: DAGNode, layout: Layout) -> Tuple[int, int]:
        """Deterministically move the first blocked gate one hop along a shortest path."""
        a, b = node.qubits
        pa, pb = layout.physical(a), layout.physical(b)
        path = self.coupling_map.shortest_path(pa, pb)
        return (min(path[0], path[1]), max(path[0], path[1]))


class SabreRouting(TransformationPass):
    """Transpiler pass wrapper around :class:`SabreSwapRouter`."""

    def __init__(
        self,
        coupling_map: CouplingMap,
        *,
        extended_set_size: int = 20,
        extended_set_weight: float = 0.5,
        seed: Optional[int] = None,
        distance_matrix: Optional[np.ndarray] = None,
        router_cls: type = SabreSwapRouter,
        router_kwargs: Optional[dict] = None,
    ) -> None:
        super().__init__()
        self.coupling_map = coupling_map
        kwargs = dict(router_kwargs or {})
        kwargs.setdefault("extended_set_size", extended_set_size)
        kwargs.setdefault("extended_set_weight", extended_set_weight)
        kwargs.setdefault("seed", seed)
        kwargs.setdefault("distance_matrix", distance_matrix)
        self.router = router_cls(coupling_map, **kwargs)

    def run(self, dag: DAGCircuit, property_set: PropertySet) -> DAGCircuit:
        layout = property_set.get("layout") or Layout.trivial(dag.num_qubits)
        result = self.router.route(dag, layout)
        property_set["final_layout"] = result.final_layout
        property_set["initial_layout"] = result.initial_layout
        property_set["num_swaps"] = result.num_swaps
        return result.dag


class SabreLayoutSelection(AnalysisPass):
    """SABRE-style initial layout: random start plus reverse-traversal refinement.

    This is the layout method the paper uses for both SABRE and NASSC (Sec. IV-A): route the
    circuit forward, use the final mapping as the initial mapping of the reversed circuit,
    route backward, and repeat.  The refined layout is stored in ``property_set["layout"]``.
    """

    def __init__(
        self,
        coupling_map: CouplingMap,
        *,
        iterations: int = 2,
        seed: Optional[int] = None,
        router_cls: type = SabreSwapRouter,
        router_kwargs: Optional[dict] = None,
    ) -> None:
        super().__init__()
        self.coupling_map = coupling_map
        self.iterations = iterations
        self.seed = seed
        kwargs = dict(router_kwargs or {})
        kwargs.setdefault("seed", seed)
        self.router = router_cls(coupling_map, **kwargs)

    def run(self, dag: DAGCircuit, property_set: PropertySet) -> None:
        circuit = dag.to_circuit()
        unitary_only = circuit.without_directives()
        layout = Layout.random(dag.num_qubits, self.coupling_map.num_qubits, seed=self.seed)
        if not unitary_only.two_qubit_pairs():
            property_set["layout"] = layout
            return
        reversed_circuit = unitary_only.reverse_ops()
        forward_dag = DAGCircuit.from_circuit(unitary_only)
        backward_dag = DAGCircuit.from_circuit(reversed_circuit)
        for _ in range(self.iterations):
            forward = self.router.route(forward_dag, layout)
            layout = forward.final_layout
            backward = self.router.route(backward_dag, layout)
            layout = backward.final_layout
        property_set["layout"] = layout

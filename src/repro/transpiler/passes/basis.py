"""Gate decomposition into the one- and two-qubit gate set used for routing.

The first compiler step (paper Sec. II-B) decomposes high-level gates (Toffoli, controlled
rotations, multi-qubit oracles) into single-qubit gates plus CNOTs so that the routing pass
only ever sees one- and two-qubit operations.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from ...circuit.circuit import Instruction, QuantumCircuit
from ...circuit.dag import DAGCircuit
from ...circuit.gates import Gate, gate as make_gate
from ...exceptions import TranspilerError
from ...synthesis.two_qubit import TwoQubitSynthesizer
from ..passmanager import AnalysisPass, PropertySet, TransformationPass

#: Gate names that are already acceptable input for the routing stage.
_ROUTABLE_1Q = {
    "id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx", "sxdg",
    "rx", "ry", "rz", "p", "u1", "u2", "u3", "u",
}
_ROUTABLE_2Q = {"cx", "swap"}
_DIRECTIVES = {"measure", "barrier", "reset"}


class Decompose(TransformationPass):
    """Decompose every gate into single-qubit gates, CNOTs and (optionally) SWAPs.

    ``keep_swaps`` keeps explicit SWAP gates in the circuit (they are handled natively by the
    routing stage); when False, SWAPs are lowered to three CNOTs here.
    """

    def __init__(self, keep_swaps: bool = True) -> None:
        super().__init__()
        self.keep_swaps = keep_swaps
        self._synthesizer = TwoQubitSynthesizer()

    def run(self, dag: DAGCircuit, property_set: PropertySet) -> DAGCircuit:
        out = dag.copy_empty_like()
        for node in dag.op_nodes():
            for new_inst in self._decompose_instruction(node.to_instruction()):
                out.add_node(new_inst.gate, new_inst.qubits, new_inst.clbits)
        return out

    # ------------------------------------------------------------------

    def _decompose_instruction(self, inst: Instruction) -> List[Instruction]:
        name = inst.name
        if name in _DIRECTIVES or name in _ROUTABLE_1Q:
            return [inst]
        if name == "cx":
            return [inst]
        if name == "swap":
            if self.keep_swaps:
                return [inst]
            a, b = inst.qubits
            return [
                Instruction(make_gate("cx"), (a, b)),
                Instruction(make_gate("cx"), (b, a)),
                Instruction(make_gate("cx"), (a, b)),
            ]
        if name == "cz":
            control, target = inst.qubits
            return [
                Instruction(make_gate("h"), (target,)),
                Instruction(make_gate("cx"), (control, target)),
                Instruction(make_gate("h"), (target,)),
            ]
        if name == "cy":
            control, target = inst.qubits
            return [
                Instruction(make_gate("sdg"), (target,)),
                Instruction(make_gate("cx"), (control, target)),
                Instruction(make_gate("s"), (target,)),
            ]
        if name in ("cp", "cu1"):
            (theta,) = inst.gate.params
            control, target = inst.qubits
            return [
                Instruction(make_gate("p", theta / 2.0), (control,)),
                Instruction(make_gate("cx"), (control, target)),
                Instruction(make_gate("p", -theta / 2.0), (target,)),
                Instruction(make_gate("cx"), (control, target)),
                Instruction(make_gate("p", theta / 2.0), (target,)),
            ]
        if name == "crz":
            (theta,) = inst.gate.params
            control, target = inst.qubits
            return [
                Instruction(make_gate("rz", theta / 2.0), (target,)),
                Instruction(make_gate("cx"), (control, target)),
                Instruction(make_gate("rz", -theta / 2.0), (target,)),
                Instruction(make_gate("cx"), (control, target)),
            ]
        if name == "rzz":
            (theta,) = inst.gate.params
            a, b = inst.qubits
            return [
                Instruction(make_gate("cx"), (a, b)),
                Instruction(make_gate("rz", theta), (b,)),
                Instruction(make_gate("cx"), (a, b)),
            ]
        if name == "ccx":
            return self._decompose_ccx(*inst.qubits)
        if name == "cswap":
            control, a, b = inst.qubits
            return (
                [Instruction(make_gate("cx"), (b, a))]
                + self._decompose_ccx(control, a, b)
                + [Instruction(make_gate("cx"), (b, a))]
            )
        if len(inst.qubits) == 2 and inst.gate.is_unitary:
            # Generic two-qubit gates (crx, cry, ch, iswap, explicit unitaries, ...) are
            # re-synthesised into CNOTs plus single-qubit gates.
            return self._synthesize_two_qubit(inst)
        if len(inst.qubits) == 1 and inst.gate.is_unitary and name == "unitary":
            from ...synthesis.one_qubit import u_params_from_matrix

            theta, phi, lam, _ = u_params_from_matrix(inst.gate.matrix())
            return [Instruction(make_gate("u", theta, phi, lam), inst.qubits)]
        raise TranspilerError(f"cannot decompose gate '{name}' on {inst.qubits}")

    def _synthesize_two_qubit(self, inst: Instruction) -> List[Instruction]:
        result = self._synthesizer.synthesize(inst.gate.matrix())
        mapped: List[Instruction] = []
        for sub in result.circuit.data:
            qubits = tuple(inst.qubits[q] for q in sub.qubits)
            mapped.append(Instruction(sub.gate.copy(), qubits))
        return mapped

    @staticmethod
    def _decompose_ccx(a: int, b: int, c: int) -> List[Instruction]:
        """Standard 6-CNOT Toffoli decomposition (controls ``a``, ``b``, target ``c``)."""
        g = make_gate
        return [
            Instruction(g("h"), (c,)),
            Instruction(g("cx"), (b, c)),
            Instruction(g("tdg"), (c,)),
            Instruction(g("cx"), (a, c)),
            Instruction(g("t"), (c,)),
            Instruction(g("cx"), (b, c)),
            Instruction(g("tdg"), (c,)),
            Instruction(g("cx"), (a, c)),
            Instruction(g("t"), (b,)),
            Instruction(g("t"), (c,)),
            Instruction(g("h"), (c,)),
            Instruction(g("cx"), (a, b)),
            Instruction(g("t"), (a,)),
            Instruction(g("tdg"), (b,)),
            Instruction(g("cx"), (a, b)),
        ]


class CheckRoutable(AnalysisPass):
    """Verify the DAG only contains gates the routing stage can handle."""

    def run(self, dag: DAGCircuit, property_set: PropertySet) -> None:
        for node in dag.op_nodes():
            if node.name in _DIRECTIVES:
                continue
            if len(node.qubits) == 1 and (node.name in _ROUTABLE_1Q or node.name == "unitary"):
                continue
            if len(node.qubits) == 2 and node.name in _ROUTABLE_2Q:
                continue
            raise TranspilerError(
                f"gate '{node.name}' on {node.qubits} is not routable; run Decompose first"
            )

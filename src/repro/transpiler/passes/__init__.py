"""Transpiler passes."""

from .basis import CheckRoutable, Decompose
from .check_map import CheckMap, coupling_violations
from .collect_2q import Collect2qBlocks, TwoQubitBlock
from .commutation import (
    CommutationAnalysis,
    CommutativeCancellation,
    gates_commute,
    refresh_commutation_wires,
)
from .layout import ApplyLayout, Layout, SetLayout, TrivialLayout
from .optimize_1q import Optimize1qGates, RemoveIdentities
from .sabre import RoutedOutput, RoutingResult, SabreLayoutSelection, SabreRouting, SabreSwapRouter
from .swap_lowering import SwapLowering, lower_swap, swap_orientation
from .unitary_synthesis import UnitarySynthesis, block_cx_weight, block_matrix

__all__ = [
    "CheckRoutable",
    "Decompose",
    "CheckMap",
    "coupling_violations",
    "Collect2qBlocks",
    "TwoQubitBlock",
    "CommutationAnalysis",
    "CommutativeCancellation",
    "gates_commute",
    "refresh_commutation_wires",
    "ApplyLayout",
    "Layout",
    "SetLayout",
    "TrivialLayout",
    "Optimize1qGates",
    "RemoveIdentities",
    "RoutedOutput",
    "RoutingResult",
    "SabreLayoutSelection",
    "SabreRouting",
    "SabreSwapRouter",
    "SwapLowering",
    "lower_swap",
    "swap_orientation",
    "UnitarySynthesis",
    "block_cx_weight",
    "block_matrix",
]

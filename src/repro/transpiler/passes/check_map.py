"""Verification that a routed circuit respects the device coupling map."""

from __future__ import annotations

from typing import List, Tuple

from ...circuit.circuit import QuantumCircuit
from ...circuit.dag import DAGCircuit
from ...exceptions import TranspilerError
from ...hardware.coupling import CouplingMap
from ..passmanager import AnalysisPass, PropertySet


def coupling_violations(circuit, coupling_map: CouplingMap) -> List[Tuple[int, str, Tuple[int, ...]]]:
    """All two-qubit gates applied to physically unconnected qubit pairs.

    ``circuit`` may be a :class:`QuantumCircuit` or a :class:`DAGCircuit`.
    """
    ops = circuit.op_nodes() if isinstance(circuit, DAGCircuit) else circuit.data
    violations = []
    for pos, inst in enumerate(ops):
        if inst.name == "barrier" or not inst.gate.is_unitary:
            continue
        if len(inst.qubits) == 2:
            a, b = inst.qubits
            if not coupling_map.is_connected(a, b):
                violations.append((pos, inst.name, inst.qubits))
        elif len(inst.qubits) > 2:
            violations.append((pos, inst.name, inst.qubits))
    return violations


class CheckMap(AnalysisPass):
    """Raise if any two-qubit gate is applied to an unconnected pair."""

    def __init__(self, coupling_map: CouplingMap) -> None:
        super().__init__()
        self.coupling_map = coupling_map

    def run(self, dag: DAGCircuit, property_set: PropertySet) -> None:
        violations = coupling_violations(dag, self.coupling_map)
        property_set["is_mapped"] = not violations
        if violations:
            first = violations[0]
            raise TranspilerError(
                f"{len(violations)} gate(s) violate the coupling map; first: "
                f"{first[1]} on {first[2]} at position {first[0]}"
            )

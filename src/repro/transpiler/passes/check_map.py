"""Verification that a routed circuit respects the device coupling map."""

from __future__ import annotations

from typing import List, Tuple

from ...circuit.circuit import QuantumCircuit
from ...exceptions import TranspilerError
from ...hardware.coupling import CouplingMap
from ..passmanager import PropertySet, TranspilerPass


def coupling_violations(circuit: QuantumCircuit, coupling_map: CouplingMap) -> List[Tuple[int, str, Tuple[int, ...]]]:
    """All two-qubit gates applied to physically unconnected qubit pairs."""
    violations = []
    for pos, inst in enumerate(circuit.data):
        if inst.name == "barrier" or not inst.gate.is_unitary:
            continue
        if len(inst.qubits) == 2:
            a, b = inst.qubits
            if not coupling_map.is_connected(a, b):
                violations.append((pos, inst.name, inst.qubits))
        elif len(inst.qubits) > 2:
            violations.append((pos, inst.name, inst.qubits))
    return violations


class CheckMap(TranspilerPass):
    """Raise if any two-qubit gate is applied to an unconnected pair."""

    def __init__(self, coupling_map: CouplingMap) -> None:
        super().__init__()
        self.coupling_map = coupling_map

    def run(self, circuit: QuantumCircuit, property_set: PropertySet) -> QuantumCircuit:
        violations = coupling_violations(circuit, self.coupling_map)
        property_set["is_mapped"] = not violations
        if violations:
            first = violations[0]
            raise TranspilerError(
                f"{len(violations)} gate(s) violate the coupling map; first: "
                f"{first[1]} on {first[2]} at position {first[0]}"
            )
        return circuit

"""Transpiler framework: DAG-native pass manager, flow control and the standard pass library."""

from .passmanager import (
    ANALYSIS_KEYS,
    AnalysisPass,
    ConditionalController,
    DoWhile,
    FixedPoint,
    FlowController,
    PassManager,
    PropertySet,
    TransformationPass,
    TranspilerPass,
)
from .registry import (
    RoutingMethod,
    RoutingPlan,
    available_routings,
    get_routing,
    register_routing,
    registered_methods,
    routing_registered,
    unregister_routing,
)
from .builder import LEVEL_FIXED_POINT_ITERATIONS, PipelineBuilder
from . import passes

__all__ = [
    "RoutingMethod",
    "RoutingPlan",
    "available_routings",
    "get_routing",
    "register_routing",
    "registered_methods",
    "routing_registered",
    "unregister_routing",
    "LEVEL_FIXED_POINT_ITERATIONS",
    "PipelineBuilder",
    "ANALYSIS_KEYS",
    "AnalysisPass",
    "ConditionalController",
    "DoWhile",
    "FixedPoint",
    "FlowController",
    "PassManager",
    "PropertySet",
    "TransformationPass",
    "TranspilerPass",
    "passes",
]

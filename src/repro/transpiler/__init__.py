"""Transpiler framework: DAG-native pass manager, flow control and the standard pass library."""

from .passmanager import (
    ANALYSIS_KEYS,
    AnalysisPass,
    ConditionalController,
    DoWhile,
    FixedPoint,
    FlowController,
    PassManager,
    PropertySet,
    TransformationPass,
    TranspilerPass,
)
from . import passes

__all__ = [
    "ANALYSIS_KEYS",
    "AnalysisPass",
    "ConditionalController",
    "DoWhile",
    "FixedPoint",
    "FlowController",
    "PassManager",
    "PropertySet",
    "TransformationPass",
    "TranspilerPass",
    "passes",
]

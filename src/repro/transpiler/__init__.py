"""Transpiler framework: pass manager and the standard pass library."""

from .passmanager import PassManager, PropertySet, TranspilerPass
from . import passes

__all__ = ["PassManager", "PropertySet", "TranspilerPass", "passes"]

"""Routing-method plugin registry.

Routing used to be a hard-coded three-way string dispatch inside ``transpile()``.  The
registry turns each method into a named plugin: a factory that, given the compilation
:class:`~repro.hardware.target.Target` and :class:`~repro.core.options.TranspileOptions`,
returns the :class:`RoutingPlan` the staged pipeline builder splices into its ``layout``
and ``routing`` stages.  The builder, the CLI's ``--routing`` choices, and
``TranspileJob`` validation all consult the registry, so registering a new router makes
it usable by name through every entry point at once::

    from repro.transpiler.registry import RoutingPlan, register_routing

    def my_factory(target, options, distance_matrix=None):
        return RoutingPlan(routing_pass=MyRoutingPass(target.coupling_map, seed=options.seed))

    register_routing("mymethod", my_factory, description="my custom router")

Third-party entry path
----------------------
Set ``REPRO_ROUTING_PLUGINS=pkg.module[,pkg2.module2]`` to have those modules imported
(once) before registry lookups; a module registers its methods at import time.  Because
the environment variable is inherited by worker processes, plugin methods work through
the batch service's process pool as well as in-process.
"""

from __future__ import annotations

import importlib
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..exceptions import TranspilerError
from .passmanager import TranspilerPass

#: Environment variable naming plugin modules to import before registry lookups.
PLUGINS_ENV = "REPRO_ROUTING_PLUGINS"


@dataclass
class RoutingPlan:
    """What one routing method contributes to a staged pipeline.

    ``routing_pass`` is the pass that maps the circuit onto the device.  The optional
    ``layout_router_cls``/``layout_router_kwargs`` configure the router instance the
    SABRE-style layout-selection pass uses for its forward/backward traversals;
    ``post_routing`` passes run immediately after routing (before SWAP lowering), and
    ``use_swap_labels`` tells SWAP lowering to honour orientation labels the router
    attached (the NASSC optimization-aware decomposition).
    """

    routing_pass: TranspilerPass
    layout_router_cls: Optional[type] = None
    layout_router_kwargs: Dict = field(default_factory=dict)
    post_routing: List[TranspilerPass] = field(default_factory=list)
    use_swap_labels: bool = False
    #: Router class/kwargs for constructing fresh per-trial routing instances
    #: (seed and distance_matrix are supplied per trial).  When ``None`` the method
    #: cannot run under best-of-N ensemble routing and ``best_of`` falls back to the
    #: plain single-trial pipeline.
    routing_router_cls: Optional[type] = None
    routing_router_kwargs: Dict = field(default_factory=dict)


#: ``factory(target, options, distance_matrix=None) -> Optional[RoutingPlan]``.
#: Returning ``None`` means "no routing" (the connectivity-free pipeline).
RoutingFactory = Callable[..., Optional[RoutingPlan]]


@dataclass(frozen=True)
class RoutingMethod:
    """A named routing method: the factory plus registry metadata."""

    name: str
    factory: RoutingFactory
    description: str = ""
    requires_coupling: bool = True
    builtin: bool = False
    #: Whether ``TranspileOptions.best_of > 1`` runs this method under the ensemble
    #: engine.  Methods without per-trial seed sensitivity (``none``) opt out; the
    #: plan they return must also carry ``routing_router_cls`` to participate.
    supports_best_of: bool = True


_REGISTRY: Dict[str, RoutingMethod] = {}
_LOADED_PLUGIN_MODULES: set = set()


def register_routing(
    name: str,
    factory: RoutingFactory,
    *,
    description: str = "",
    requires_coupling: bool = True,
    replace: bool = False,
    builtin: bool = False,
    supports_best_of: bool = True,
) -> RoutingMethod:
    """Register a routing method under ``name`` (see the module docstring for the contract)."""
    key = str(name).lower()
    if not key:
        raise TranspilerError("routing method name must be non-empty")
    if key in _REGISTRY and not replace:
        raise TranspilerError(
            f"routing method {key!r} is already registered; pass replace=True to override"
        )
    method = RoutingMethod(
        name=key,
        factory=factory,
        description=description,
        requires_coupling=requires_coupling,
        builtin=builtin,
        supports_best_of=supports_best_of,
    )
    _REGISTRY[key] = method
    return method


def unregister_routing(name: str) -> None:
    """Remove a registered method (built-ins cannot be removed)."""
    key = str(name).lower()
    method = _REGISTRY.get(key)
    if method is None:
        raise TranspilerError(f"routing method {key!r} is not registered")
    if method.builtin:
        raise TranspilerError(f"built-in routing method {key!r} cannot be unregistered")
    del _REGISTRY[key]


def routing_registered(name: str) -> bool:
    """True if ``name`` resolves to a registered method (loading env plugins if needed)."""
    key = str(name).lower()
    if key not in _REGISTRY:
        load_plugin_modules()
    return key in _REGISTRY


def get_routing(name: str) -> RoutingMethod:
    """Look up a routing method by name, importing env-declared plugin modules on a miss."""
    key = str(name).lower()
    if key not in _REGISTRY:
        load_plugin_modules()
    try:
        return _REGISTRY[key]
    except KeyError:
        raise TranspilerError(
            f"unknown routing method {name!r}; expected one of {available_routings()}"
        ) from None


def available_routings(*, load_plugins: bool = True) -> Tuple[str, ...]:
    """Registered method names, built-ins first, in registration order.

    ``load_plugins=False`` skips importing ``REPRO_ROUTING_PLUGINS`` modules first —
    needed by callers that run during ``import repro`` itself, where importing a plugin
    (which typically imports ``repro`` back) would deadlock on partial initialisation.
    """
    if load_plugins:
        load_plugin_modules()
    return tuple(_REGISTRY)


def registered_methods() -> Tuple[RoutingMethod, ...]:
    """All registered methods (for listings such as the CLI's ``methods`` subcommand)."""
    load_plugin_modules()
    return tuple(_REGISTRY.values())


def load_plugin_modules() -> List[str]:
    """Import the modules named in ``REPRO_ROUTING_PLUGINS`` (each at most once).

    Returns the module names imported by this call.  Import errors propagate: a broken
    plugin should fail loudly, not silently shrink the method list.
    """
    spec = os.environ.get(PLUGINS_ENV, "")
    loaded = []
    for module_name in (part.strip() for part in spec.split(",")):
        if module_name and module_name not in _LOADED_PLUGIN_MODULES:
            importlib.import_module(module_name)
            _LOADED_PLUGIN_MODULES.add(module_name)
            loaded.append(module_name)
    return loaded


# ---------------------------------------------------------------------------
# Built-in methods.  Factories import their passes lazily so the registry stays free of
# import cycles (the NASSC passes live in repro.core, which itself imports this package).
# ---------------------------------------------------------------------------

def _none_factory(target, options, distance_matrix=None):
    return None


def _sabre_factory(target, options, distance_matrix=None):
    from .passes.sabre import SabreRouting, SabreSwapRouter

    return RoutingPlan(
        routing_pass=SabreRouting(
            target.coupling_map,
            extended_set_size=options.extended_set_size,
            extended_set_weight=options.extended_set_weight,
            seed=options.seed,
            distance_matrix=distance_matrix,
        ),
        layout_router_cls=SabreSwapRouter,
        layout_router_kwargs={"distance_matrix": distance_matrix},
        routing_router_cls=SabreSwapRouter,
        routing_router_kwargs={
            "extended_set_size": options.extended_set_size,
            "extended_set_weight": options.extended_set_weight,
        },
    )


def _nassc_factory(target, options, distance_matrix=None):
    from ..core.nassc import NASSCRouting, NASSCSwapRouter
    from ..core.single_qubit_motion import CommuteSingleQubitsThroughSwap

    return RoutingPlan(
        routing_pass=NASSCRouting(
            target.coupling_map,
            config=options.nassc_config,
            extended_set_size=options.extended_set_size,
            extended_set_weight=options.extended_set_weight,
            seed=options.seed,
            distance_matrix=distance_matrix,
        ),
        layout_router_cls=NASSCSwapRouter,
        layout_router_kwargs={"distance_matrix": distance_matrix, "config": options.nassc_config},
        post_routing=[CommuteSingleQubitsThroughSwap()],
        use_swap_labels=True,
        routing_router_cls=NASSCSwapRouter,
        routing_router_kwargs={
            "config": options.nassc_config,
            "extended_set_size": options.extended_set_size,
            "extended_set_weight": options.extended_set_weight,
        },
    )


register_routing(
    "none", _none_factory, builtin=True, requires_coupling=False, supports_best_of=False,
    description="no routing — optimize the logical circuit only (the Tables' baseline column)",
)
register_routing(
    "sabre", _sabre_factory, builtin=True,
    description="SABRE lookahead routing (Li et al., ASPLOS 2019) — the paper's baseline",
)
register_routing(
    "nassc", _nassc_factory, builtin=True,
    description="NASSC optimization-aware routing (the paper's contribution)",
)

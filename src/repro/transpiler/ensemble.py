"""Best-of-N ensemble routing: K seeds, one batched scoring kernel per step.

SABRE/NASSC routing is seed-sensitive: the routed two-qubit count varies run to run
with the random initial layout and the score tie-breaks.  :class:`EnsembleRouting`
runs ``num_trials`` independent (layout-selection + routing) trials in lockstep and
keeps the best result, where each trial's seeds are independent child streams of one
master seed (:func:`trial_stage_seeds`), so ``best_of=K`` is deterministic for a fixed
seed yet every trial explores a different part of the seed space.

The amortization trick is in the lockstep drive: every trial is a suspended
:meth:`~repro.transpiler.passes.sabre.SabreSwapRouter.route_steps` generator that
yields a :class:`~repro.transpiler.passes.sabre.ScoreRequest` at each heuristic
scoring point.  Each round, the requests of all live trials are stacked into ONE
batched call of the shared scoring kernel (:func:`repro.nativeext.front_ext_sums`) —
index tables are zero-padded to a common width, which is bit-exact because the
distance matrix diagonal is ``0.0`` and the kernel accumulates non-negative terms in
ascending column order — then each trial's slice is finalized with that trial's own
decay/estimator state.  Scores are therefore bit-identical to running the trial
alone, which makes the winner reproducible across in-process and fanned-out
execution (see ``trial_subset``).

Trials that fall hopelessly behind are pruned losslessly: once some trial has
finished with ``S`` swaps, any live trial that has already inserted more than ``S``
swaps can only finish with a strictly worse two-qubit estimate, so dropping it can
never change the winner — under any partition of trials into subsets, which is what
lets the server fan chunks across its process pool and reduce by the same key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import TranspilerError
from ..hardware.coupling import CouplingMap
from ..nativeext import front_ext_sums
from ..obs.counters import COUNTERS
from ..obs.tracer import current_tracer
from .passmanager import PropertySet, TransformationPass
from .passes.layout import Layout
from .passes.sabre import (
    _VECTOR_SAFE_SCORE_SWAPS,
    RoutingResult,
    SabreSwapRouter,
    ScoreRequest,
    layout_selection_steps,
    prepare_layout_dags,
)


def trial_stage_seeds(
    master_seed: Optional[int], num_trials: int
) -> List[Tuple[int, int]]:
    """Independent (layout_seed, routing_seed) pairs for each trial.

    Derived via ``np.random.SeedSequence.spawn`` so every (trial, stage) gets its own
    statistically independent stream, yet the whole table is a pure function of the
    master seed — bit-reproducible across runs and processes.  Fixes the historical
    seed plumbing where one integer seeded both the random layout and the routing
    tie-breaks (and every trial would have been identical).
    """
    root = np.random.SeedSequence(master_seed)
    seeds = []
    for child in root.spawn(int(num_trials)):
        layout_seq, routing_seq = child.spawn(2)
        seeds.append(
            (
                int(layout_seq.generate_state(1, np.uint64)[0]),
                int(routing_seq.generate_state(1, np.uint64)[0]),
            )
        )
    return seeds


@dataclass
class TrialOutcome:
    """Diagnostics for one ensemble trial (recorded in ``property_set['ensemble']``)."""

    trial: int
    layout_seed: int
    routing_seed: int
    pruned: bool = False
    num_swaps: Optional[int] = None
    est_two_qubit: Optional[int] = None
    depth: Optional[int] = None
    noise_cost: Optional[float] = None

    def to_dict(self) -> Dict:
        return {
            "trial": self.trial,
            "layout_seed": self.layout_seed,
            "routing_seed": self.routing_seed,
            "pruned": self.pruned,
            "num_swaps": self.num_swaps,
            "est_two_qubit": self.est_two_qubit,
            "depth": self.depth,
            "noise_cost": self.noise_cost,
        }


@dataclass
class _Trial:
    """One live trial: its routers, suspended generator, and bookkeeping."""

    index: int
    layout_seed: int
    routing_seed: int
    layout_router: SabreSwapRouter
    router: SabreSwapRouter
    steps: object = None
    reply: object = None
    routing_phase: bool = False
    result: Optional[RoutingResult] = None
    outcome: TrialOutcome = None
    metric: Optional[Tuple] = None
    span: object = None


def _trial_metrics(
    result: RoutingResult, distance: np.ndarray, noise_aware: bool
) -> Tuple[int, int, float]:
    """(estimated 2q count, depth, noise cost) of a routed trial.

    The two-qubit estimate counts each pending SWAP as its worst-case 3 CNOTs —
    strictly increasing in the swap count, which the lossless-pruning argument relies
    on.  Noise cost sums the routing distance of every routed two-qubit gate (3x for
    SWAPs) and only participates in the key when routing is noise-aware.
    """
    two_qubit = 0
    swaps = 0
    noise_cost = 0.0
    for node in result.dag.op_nodes():
        if node.name == "barrier" or not node.gate.is_unitary or len(node.qubits) != 2:
            continue
        if node.name == "swap":
            swaps += 1
            if noise_aware:
                noise_cost += 3.0 * float(distance[node.qubits[0], node.qubits[1]])
        else:
            two_qubit += 1
            if noise_aware:
                noise_cost += float(distance[node.qubits[0], node.qubits[1]])
    return two_qubit + 3 * swaps, result.circuit.depth(), noise_cost


def _batchable(request: ScoreRequest, shared_distance: np.ndarray) -> bool:
    """Whether a request may join the stacked kernel call bit-safely.

    Requires the stock index/kernel/scoring pipeline (subclasses may override
    ``_finalize_scores`` freely — NASSC does — but not the kernel-facing steps) and
    the shared distance matrix, so one gather serves every row.
    """
    cls = type(request.router)
    return (
        cls._score_candidates is SabreSwapRouter._score_candidates
        and cls._front_ext_sums is SabreSwapRouter._front_ext_sums
        and cls._mapped_index_arrays is SabreSwapRouter._mapped_index_arrays
        and cls._compute_scores is SabreSwapRouter._compute_scores
        and cls._score_swap in _VECTOR_SAFE_SCORE_SWAPS
        and request.router.distance is shared_distance
    )


def _stacked_sums(
    distance: np.ndarray,
    tables: List[Tuple[np.ndarray, np.ndarray]],
) -> List[np.ndarray]:
    """Row sums for several (rows_i x cols_i) index-table pairs in one kernel call.

    Tables are zero-padded to the widest column count; index ``(0, 0)`` hits the
    distance diagonal (``0.0``), and appending ``+0.0`` terms to a non-negative
    ascending-order accumulation leaves every float64 sum bit-identical.
    """
    width = max(a.shape[1] for a, _ in tables)
    total_rows = sum(a.shape[0] for a, _ in tables)
    stacked_a = np.zeros((total_rows, width), dtype=np.intp)
    stacked_b = np.zeros((total_rows, width), dtype=np.intp)
    offset = 0
    for a, b in tables:
        rows, cols = a.shape
        stacked_a[offset:offset + rows, :cols] = a
        stacked_b[offset:offset + rows, :cols] = b
        offset += rows
    sums, _ = front_ext_sums(distance, stacked_a, stacked_b, width)
    out = []
    offset = 0
    for a, _ in tables:
        rows = a.shape[0]
        out.append(sums[offset:offset + rows])
        offset += rows
    return out


def _evaluate_batch(
    pairs: List[Tuple[_Trial, ScoreRequest]], distance: np.ndarray
) -> None:
    """Answer every live trial's pending request, batching the kernel work.

    Batch-safe requests contribute their front (and extended) index tables to one
    stacked kernel call each; the per-trial finalization (decay, NASSC estimates)
    then runs on each trial's slice.  Non-batchable requests fall back to solo
    evaluation.  Either way ``trial.reply`` ends up bit-identical to
    ``request.evaluate()``.
    """
    batch = []
    for trial, request in pairs:
        if _batchable(request, distance):
            batch.append((trial, request))
        else:
            trial.reply = request.evaluate()
    if not batch:
        return
    COUNTERS.inc("routing.ensemble.batched_steps")
    COUNTERS.inc("routing.ensemble.batched_requests", len(batch))
    front_tables = []
    ext_tables = []
    ext_slots = []
    candidate_arrays = []
    for trial, request in batch:
        c0, c1 = request.router._candidate_arrays(request.candidates)
        candidate_arrays.append((c0, c1))
        fa, fb = request.router._mapped_index_arrays(
            c0, c1, request.front_gates, request.layout
        )
        front_tables.append((fa, fb))
        if request.extended:
            ea, eb = request.router._mapped_index_arrays(
                c0, c1, request.extended, request.layout
            )
            ext_slots.append(len(ext_tables))
            ext_tables.append((ea, eb))
        else:
            ext_slots.append(None)
    front_sums = _stacked_sums(distance, front_tables)
    ext_sums = _stacked_sums(distance, ext_tables) if ext_tables else []
    for position, (trial, request) in enumerate(batch):
        c0, c1 = candidate_arrays[position]
        front_raw = front_sums[position]
        slot = ext_slots[position]
        ext_raw = ext_sums[slot] if slot is not None else np.zeros(len(c0))
        trial.reply = request.router._finalize_scores(
            request.candidates,
            c0,
            c1,
            front_raw,
            ext_raw,
            request.front_gates,
            request.extended,
        )


class EnsembleRouting(TransformationPass):
    """Layout + routing over ``num_trials`` seeds, keeping the best routed circuit.

    Replaces the (SabreLayoutSelection, SabreRouting/NASSCRouting) stage pair when
    ``TranspileOptions.best_of > 1``.  Sets the same ``layout`` / ``initial_layout`` /
    ``final_layout`` / ``num_swaps`` properties those passes set, plus an
    ``"ensemble"`` summary with per-trial outcomes.

    ``trial_subset`` restricts execution to the given global trial indices without
    changing their seeds — the server fans large ``K`` across its process pool as
    subset chunks and reduces by :attr:`winner_key`, which equals the in-process
    winner because pruning is lossless under any partition.
    """

    def __init__(
        self,
        coupling_map: CouplingMap,
        *,
        num_trials: int,
        seed: Optional[int] = None,
        layout_iterations: int = 2,
        router_cls: type = SabreSwapRouter,
        layout_router_cls: Optional[type] = None,
        router_kwargs: Optional[Dict] = None,
        layout_router_kwargs: Optional[Dict] = None,
        distance_matrix: Optional[np.ndarray] = None,
        noise_aware: bool = False,
        trial_subset: Optional[Sequence[int]] = None,
        prune: bool = True,
    ) -> None:
        super().__init__()
        if int(num_trials) < 1:
            raise TranspilerError(f"num_trials must be >= 1, got {num_trials}")
        self.coupling_map = coupling_map
        self.num_trials = int(num_trials)
        self.seed = seed
        self.layout_iterations = layout_iterations
        self.router_cls = router_cls
        self.layout_router_cls = layout_router_cls or router_cls
        self.router_kwargs = dict(router_kwargs or {})
        self.layout_router_kwargs = dict(layout_router_kwargs or {})
        base = (
            distance_matrix
            if distance_matrix is not None
            else coupling_map.distance_matrix()
        )
        #: One shared C-contiguous matrix; every trial router aliases it, which is
        #: what lets their requests stack into one kernel call.
        self.distance = np.ascontiguousarray(np.asarray(base, dtype=float))
        self.noise_aware = noise_aware
        if trial_subset is not None:
            subset = sorted({int(i) for i in trial_subset})
            if not subset or subset[0] < 0 or subset[-1] >= self.num_trials:
                raise TranspilerError(
                    f"trial_subset {list(trial_subset)!r} out of range for "
                    f"num_trials={self.num_trials}"
                )
            trial_subset = subset
        self.trial_subset = trial_subset
        self.prune = prune

    # ------------------------------------------------------------------

    def _make_trial(self, index: int, layout_seed: int, routing_seed: int) -> _Trial:
        layout_kwargs = dict(self.layout_router_kwargs)
        layout_kwargs["seed"] = layout_seed
        layout_kwargs["distance_matrix"] = self.distance
        routing_kwargs = dict(self.router_kwargs)
        routing_kwargs["seed"] = routing_seed
        routing_kwargs["distance_matrix"] = self.distance
        return _Trial(
            index=index,
            layout_seed=layout_seed,
            routing_seed=routing_seed,
            layout_router=self.layout_router_cls(self.coupling_map, **layout_kwargs),
            router=self.router_cls(self.coupling_map, **routing_kwargs),
            outcome=TrialOutcome(index, layout_seed, routing_seed),
        )

    def _trial_steps(self, trial: _Trial, dag, traversal_dags):
        """Full trial flow as one generator: random layout, refinement, routing."""
        layout = Layout.random(
            dag.num_qubits, self.coupling_map.num_qubits, seed=trial.layout_seed
        )
        if traversal_dags is not None:
            layout = yield from layout_selection_steps(
                trial.layout_router, layout, self.layout_iterations, *traversal_dags
            )
        trial.routing_phase = True
        result = yield from trial.router.route_steps(dag, layout)
        return result

    def run(self, dag, property_set: PropertySet):
        seeds = trial_stage_seeds(self.seed, self.num_trials)
        indices = (
            list(self.trial_subset)
            if self.trial_subset is not None
            else list(range(self.num_trials))
        )
        tracer = current_tracer()
        parent_id = None
        if tracer is not None and tracer._stack:
            parent_id = tracer._stack[-1].span_id
        traversal_dags = prepare_layout_dags(dag)
        trials = []
        for index in indices:
            trial = self._make_trial(index, *seeds[index])
            trial.steps = self._trial_steps(trial, dag, traversal_dags)
            if tracer is not None:
                trial.span = tracer.make_span(
                    f"routing.trial{index}",
                    parent_id=parent_id,
                    trial=index,
                    layout_seed=trial.layout_seed,
                    routing_seed=trial.routing_seed,
                )
            trials.append(trial)

        live = list(trials)
        finished: List[_Trial] = []
        incumbent_swaps: Optional[int] = None
        while live:
            pending: List[Tuple[_Trial, ScoreRequest]] = []
            still_live: List[_Trial] = []
            for trial in live:
                try:
                    request = trial.steps.send(trial.reply)
                except StopIteration as stop:
                    self._finish_trial(trial, stop.value, tracer)
                    finished.append(trial)
                    if incumbent_swaps is None or trial.result.num_swaps < incumbent_swaps:
                        incumbent_swaps = trial.result.num_swaps
                else:
                    trial.reply = None
                    pending.append((trial, request))
                    still_live.append(trial)
            live = still_live
            if self.prune and incumbent_swaps is not None:
                kept: List[Tuple[_Trial, ScoreRequest]] = []
                for trial, request in pending:
                    if (
                        trial.routing_phase
                        and trial.router.swaps_so_far > incumbent_swaps
                    ):
                        self._prune_trial(trial, tracer)
                        live.remove(trial)
                    else:
                        kept.append((trial, request))
                pending = kept
            if pending:
                _evaluate_batch(pending, self.distance)

        if not finished:
            raise TranspilerError("ensemble routing finished no trial")
        winner = min(finished, key=lambda t: t.metric)
        COUNTERS.inc("routing.ensemble.trials", len(trials))
        COUNTERS.inc("routing.ensemble.pruned", sum(t.outcome.pruned for t in trials))
        result = winner.result
        property_set["layout"] = result.initial_layout
        property_set["initial_layout"] = result.initial_layout
        property_set["final_layout"] = result.final_layout
        property_set["num_swaps"] = result.num_swaps
        property_set["ensemble"] = {
            "num_trials": self.num_trials,
            "executed_trials": [t.index for t in trials],
            "winner": winner.index,
            "winner_key": list(winner.metric),
            "trials": [t.outcome.to_dict() for t in trials],
        }
        return result.dag

    # ------------------------------------------------------------------

    def _finish_trial(self, trial: _Trial, result: RoutingResult, tracer) -> None:
        trial.result = result
        est_2q, depth, noise_cost = _trial_metrics(
            result, self.distance, self.noise_aware
        )
        # Noise cost participates in the ordering only for noise-aware routing; the
        # trailing index makes the key a total order (deterministic winner).
        trial.metric = (est_2q, depth, noise_cost, trial.index)
        outcome = trial.outcome
        outcome.num_swaps = result.num_swaps
        outcome.est_two_qubit = est_2q
        outcome.depth = depth
        outcome.noise_cost = noise_cost
        if trial.span is not None:
            trial.span.set("num_swaps", result.num_swaps)
            trial.span.set("est_two_qubit", est_2q)
            trial.span.set("depth", depth)
            if self.noise_aware:
                trial.span.set("noise_cost", noise_cost)
            tracer.record(trial.span)

    def _prune_trial(self, trial: _Trial, tracer) -> None:
        trial.steps.close()
        trial.outcome.pruned = True
        trial.outcome.num_swaps = trial.router.swaps_so_far
        if trial.span is not None:
            trial.span.set("pruned", True)
            trial.span.set("num_swaps", trial.router.swaps_so_far)
            tracer.record(trial.span)

"""Transpiler pass framework.

A :class:`PassManager` runs a sequence of passes over a circuit.  Passes communicate through
a shared :class:`PropertySet` (layouts, commutation sets, collected blocks, ...), mirroring
the structure of the Qiskit transpiler that the paper builds on (Fig. 2 / Fig. 5).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from ..circuit.circuit import QuantumCircuit
from ..exceptions import TranspilerError


class PropertySet(dict):
    """Shared key/value store passed between transpiler passes."""


class TranspilerPass:
    """Base class for all transpiler passes.

    Transformation passes return a (possibly new) circuit; analysis passes return the input
    circuit unchanged and record their results in the property set.
    """

    #: Human-readable pass name (defaults to the class name).
    name: str = ""

    def __init__(self) -> None:
        if not self.name:
            self.name = type(self).__name__

    def run(self, circuit: QuantumCircuit, property_set: PropertySet) -> QuantumCircuit:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<{self.name}>"


class PassManager:
    """Run a sequence of transpiler passes and collect per-pass timing."""

    def __init__(self, passes: Optional[Sequence[TranspilerPass]] = None) -> None:
        self._passes: List[TranspilerPass] = list(passes or [])
        self.property_set = PropertySet()
        self.timings: Dict[str, float] = {}

    def append(self, pass_: TranspilerPass) -> "PassManager":
        self._passes.append(pass_)
        return self

    def extend(self, passes: Sequence[TranspilerPass]) -> "PassManager":
        self._passes.extend(passes)
        return self

    @property
    def passes(self) -> List[TranspilerPass]:
        return list(self._passes)

    def run(self, circuit: QuantumCircuit) -> QuantumCircuit:
        """Run all passes in order on the circuit."""
        current = circuit
        for pass_ in self._passes:
            start = time.perf_counter()
            result = pass_.run(current, self.property_set)
            elapsed = time.perf_counter() - start
            self.timings[pass_.name] = self.timings.get(pass_.name, 0.0) + elapsed
            if result is None:
                raise TranspilerError(f"pass {pass_.name} returned None")
            current = result
        return current

    def total_time(self) -> float:
        return sum(self.timings.values())

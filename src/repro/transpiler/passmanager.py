"""Transpiler pass framework: DAG-native passes, property-set invalidation, flow control.

The :class:`PassManager` runs a schedule of passes over a single :class:`DAGCircuit` IR.
The circuit representation is converted exactly twice per run — ``QuantumCircuit`` →
``DAGCircuit`` on entry and back on exit — and every pass consumes and produces the DAG,
mirroring the Qiskit-terra pass-manager architecture the paper builds on (Fig. 2 / Fig. 5).

Pass taxonomy
    * :class:`AnalysisPass` — inspects the DAG and records results in the shared
      :class:`PropertySet`; must not modify or replace the DAG.
    * :class:`TransformationPass` — returns a (possibly new, possibly in-place mutated)
      DAG.  After a transformation that actually changed the DAG, every property-set key
      registered in :data:`ANALYSIS_KEYS` is dropped unless the pass lists it in its
      ``preserves`` tuple (a pass may preserve an analysis either because it cannot go
      stale, or because the pass patches it incrementally as it rewrites the DAG — the
      commutation machinery does the latter).

Flow control
    Schedules may contain :class:`FlowController` items alongside plain passes:
    :class:`FixedPoint` repeats its body until the DAG fingerprint stops changing (the
    declared converge-until-stable optimization loop), :class:`DoWhile` loops on a
    property-set predicate, and :class:`ConditionalController` gates its body on one.

Timing
    Every pass invocation is recorded as an ordered ``(name, elapsed)`` entry in
    :attr:`PassManager.timing_log`, so repeated instances of the same pass (e.g. the
    iterations of a fixed-point loop) stay distinguishable; :attr:`PassManager.timings`
    remains the backward-compatible by-name aggregate.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..circuit.circuit import QuantumCircuit
from ..circuit.dag import DAGCircuit
from ..exceptions import TranspilerError
from ..obs.tracer import current_tracer

#: Property-set keys that describe the current DAG and go stale when it changes.
#: Transformation passes drop these after a change unless listed in ``preserves``.
ANALYSIS_KEYS = frozenset(
    {
        "commutation_sets",
        "commutation_index",
        "block_list",
        "block_pairs",
        "block_id",
        "is_mapped",
        "schedule",
    }
)


def _dag_stats(dag: DAGCircuit) -> Dict[str, int]:
    """Span-attribute snapshot of a DAG: size, depth, 2q count, SWAP count.

    Traced paths record the before/after delta of these per pass; this is the "where do
    gates, depth and SWAPs actually come from" view the paper's evaluation revolves
    around.  Called only when a tracer is installed, so the untraced hot path never
    pays for it — but traced overhead is gated in CI, hence one fused unsorted-Kahn
    walk computing everything (the DAG's edges *are* the wire adjacencies, so the
    longest path equals wire-frontier depth).
    """
    nodes = dag.nodes
    if not nodes:
        return {"gates": 0, "depth": 0, "two_qubit": 0, "swaps": 0}
    preds = dag._predecessors
    succs = dag._successors
    # Node ids come from a per-DAG counter, so flat lists indexed by id beat dicts.
    size = dag._next_id
    indegree = [0] * size
    level = [0] * size
    ready: List[int] = []
    two_q = 0
    swaps = 0
    for nid, node in nodes.items():
        if len(node.qubits) == 2:
            two_q += 1
            if node.name == "swap":
                swaps += 1
        degree = len(preds[nid])
        if degree:
            indegree[nid] = degree
        else:
            ready.append(nid)
    depth = 0
    idx = 0
    while idx < len(ready):
        nid = ready[idx]
        idx += 1
        best = 0
        for pred in preds[nid]:
            pred_level = level[pred]
            if pred_level > best:
                best = pred_level
        best += 1
        level[nid] = best
        if best > depth:
            depth = best
        for succ in succs[nid]:
            remaining = indegree[succ] - 1
            indegree[succ] = remaining
            if not remaining:
                ready.append(succ)
    if idx != len(nodes):  # pragma: no cover - cycles are rejected at mutation time
        for _ in dag.topological_nodes():  # raises the canonical cycle error
            pass
    return {"gates": len(nodes), "depth": depth, "two_qubit": two_q, "swaps": swaps}


class PropertySet(dict):
    """Shared key/value store passed between transpiler passes.

    Keys fall in two classes: pipeline state that survives DAG rewrites (``layout``,
    ``final_layout``, ``num_swaps``, ...) and DAG-derived analysis results (the keys in
    :data:`ANALYSIS_KEYS`) that are invalidated whenever a transformation changes the DAG.
    """

    def invalidate_analyses(self, preserved: Sequence[str] = ()) -> None:
        """Drop DAG-derived analysis keys, keeping the explicitly preserved ones."""
        for key in ANALYSIS_KEYS.difference(preserved):
            self.pop(key, None)


class TranspilerPass:
    """Base class for all transpiler passes.

    Subclass :class:`AnalysisPass` or :class:`TransformationPass` rather than this class;
    the pass manager uses the distinction to route return values and drive invalidation.
    ``run`` receives the current :class:`DAGCircuit` and the shared :class:`PropertySet`.
    """

    #: Human-readable pass name (defaults to the class name).
    name: str = ""

    #: Analysis keys this pass keeps valid across its own DAG changes (transformations
    #: only).  A key belongs here when the pass patches the analysis incrementally.
    preserves: Tuple[str, ...] = ()

    def __init__(self) -> None:
        if not self.name:
            self.name = type(self).__name__

    def run(self, dag: DAGCircuit, property_set: PropertySet) -> Optional[DAGCircuit]:
        raise NotImplementedError

    def run_circuit(
        self, circuit: QuantumCircuit, property_set: Optional[PropertySet] = None
    ) -> QuantumCircuit:
        """Circuit-in/circuit-out convenience boundary (tests, tools, one-off use).

        Equivalent to running a one-pass :class:`PassManager` against ``circuit`` with an
        optional caller-owned property set.
        """
        props = property_set if property_set is not None else PropertySet()
        dag = DAGCircuit.from_circuit(circuit)
        result = self.run(dag, props)
        if result is None or isinstance(self, AnalysisPass):
            result = dag
        return result.to_circuit()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<{self.name}>"


class AnalysisPass(TranspilerPass):
    """A pass that only inspects the DAG and writes results to the property set.

    ``run`` must leave the DAG untouched and return ``None`` (returning the input DAG is
    tolerated); the pass manager always carries the input DAG forward.
    """


class TransformationPass(TranspilerPass):
    """A pass that rewrites the DAG, either in place or by returning a rebuilt one.

    ``run`` must return a :class:`DAGCircuit`.  When the returned DAG differs from the
    input (different object, or same object with a bumped mutation version) the pass
    manager invalidates every analysis key not listed in ``preserves``.
    """


#: Schedule items are passes or flow controllers.
ScheduleItem = Union[TranspilerPass, "FlowController"]


class FlowController:
    """A container that decides how (and how often) its body of schedule items runs."""

    def __init__(self, passes: Sequence[ScheduleItem]) -> None:
        self.passes: List[ScheduleItem] = list(passes)

    def execute(self, dag: DAGCircuit, manager: "PassManager") -> DAGCircuit:
        raise NotImplementedError

    def _run_body(self, dag: DAGCircuit, manager: "PassManager") -> DAGCircuit:
        for item in self.passes:
            dag = manager._run_item(item, dag)
        return dag

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<{type(self).__name__} {self.passes}>"


class FixedPoint(FlowController):
    """Repeat a body of passes until the DAG reaches a fixed point.

    Convergence is keyed on :meth:`DAGCircuit.fingerprint`: after each iteration the body
    runs again only if the fingerprint changed, up to ``max_iterations``.  This replaces
    hard-coded repeated pass pairs (run-twice-and-hope) with a declared
    converge-until-stable loop.
    """

    def __init__(self, passes: Sequence[ScheduleItem], max_iterations: int = 10) -> None:
        super().__init__(passes)
        if max_iterations < 1:
            raise TranspilerError("FixedPoint needs at least one iteration")
        self.max_iterations = max_iterations

    def execute(self, dag: DAGCircuit, manager: "PassManager") -> DAGCircuit:
        for _ in range(self.max_iterations):
            before = dag.fingerprint()
            dag = self._run_body(dag, manager)
            if dag.fingerprint() == before:
                break
        return dag


class DoWhile(FlowController):
    """Run a body of passes, then repeat while ``condition(property_set)`` holds."""

    def __init__(
        self,
        passes: Sequence[ScheduleItem],
        condition: Callable[[PropertySet], bool],
        max_iterations: int = 100,
    ) -> None:
        super().__init__(passes)
        self.condition = condition
        self.max_iterations = max_iterations

    def execute(self, dag: DAGCircuit, manager: "PassManager") -> DAGCircuit:
        for _ in range(self.max_iterations):
            dag = self._run_body(dag, manager)
            if not self.condition(manager.property_set):
                break
        return dag


class ConditionalController(FlowController):
    """Run a body of passes only when ``condition(property_set)`` holds."""

    def __init__(
        self, passes: Sequence[ScheduleItem], condition: Callable[[PropertySet], bool]
    ) -> None:
        super().__init__(passes)
        self.condition = condition

    def execute(self, dag: DAGCircuit, manager: "PassManager") -> DAGCircuit:
        if self.condition(manager.property_set):
            dag = self._run_body(dag, manager)
        return dag


class PassManager:
    """Run a schedule of passes/flow controllers over one DAG and collect per-pass timing."""

    def __init__(self, passes: Optional[Sequence[ScheduleItem]] = None) -> None:
        self._items: List[ScheduleItem] = list(passes or [])
        self.property_set = PropertySet()
        #: Ordered per-invocation timing entries ``(pass name, elapsed seconds)``.
        self.timing_log: List[Tuple[str, float]] = []
        #: Traced-mode stats memo: ``(dag object, dag.version, stats)``.
        self._stats_memo: Optional[Tuple[DAGCircuit, int, Dict[str, int]]] = None

    def _traced_stats(self, dag: DAGCircuit) -> Dict[str, int]:
        """DAG stats memoised on identity+version (traced runs only)."""
        memo = self._stats_memo
        if memo is not None and memo[0] is dag and memo[1] == dag.version:
            return memo[2]
        stats = _dag_stats(dag)
        self._stats_memo = (dag, dag.version, stats)
        return stats

    def append(self, item: ScheduleItem) -> "PassManager":
        self._items.append(item)
        return self

    def extend(self, items: Sequence[ScheduleItem]) -> "PassManager":
        self._items.extend(items)
        return self

    @property
    def passes(self) -> List[ScheduleItem]:
        return list(self._items)

    def run(self, circuit: QuantumCircuit) -> QuantumCircuit:
        """Run the schedule on a circuit: one conversion in, one conversion out."""
        return self.run_dag(DAGCircuit.from_circuit(circuit)).to_circuit()

    def run_dag(self, dag: DAGCircuit) -> DAGCircuit:
        """Run the schedule directly on a DAG (no conversion at either boundary)."""
        for item in self._items:
            dag = self._run_item(item, dag)
        return dag

    # -- scheduling internals -----------------------------------------------

    def _run_item(self, item: ScheduleItem, dag: DAGCircuit) -> DAGCircuit:
        if isinstance(item, FlowController):
            return item.execute(dag, self)
        return self._run_pass(item, dag)

    def _run_pass(self, pass_: TranspilerPass, dag: DAGCircuit) -> DAGCircuit:
        tracer = current_tracer()
        if tracer is not None:
            return self._run_pass_traced(pass_, dag, tracer)
        version_before = dag.version
        start = time.perf_counter()
        result = pass_.run(dag, self.property_set)
        self.timing_log.append((pass_.name, time.perf_counter() - start))
        return self._check_pass_result(pass_, dag, result, version_before)

    def _run_pass_traced(self, pass_, dag: DAGCircuit, tracer) -> DAGCircuit:
        """Traced twin of :meth:`_run_pass`: one span per pass invocation, carrying the
        DAG delta (gates, depth, 2q count, SWAPs inserted).  ``timing_log`` keeps being
        fed identically, so it remains a compatible flat view of the span tree.

        DAG stats are memoised on ``(dag, version)``: pass N's after-stats are pass
        N+1's before-stats, so the walk runs once per *actual change*, not twice per
        pass — this keeps traced overhead within the CI trace-overhead gate."""
        version_before = dag.version
        before = self._traced_stats(dag)
        kind = "analysis" if isinstance(pass_, AnalysisPass) else "transform"
        with tracer.span(f"pass:{pass_.name}", kind=kind) as span:
            start = time.perf_counter()
            result = pass_.run(dag, self.property_set)
            elapsed = time.perf_counter() - start
            self.timing_log.append((pass_.name, elapsed))
            out = self._check_pass_result(pass_, dag, result, version_before)
            changed = not isinstance(pass_, AnalysisPass) and (
                out is not dag or out.version != version_before
            )
            span.set("changed", changed)
            if changed:
                after = self._traced_stats(out)
                span.set("gates", after["gates"])
                span.set("depth", after["depth"])
                span.set("two_qubit", after["two_qubit"])
                for key in ("gates", "depth", "two_qubit"):
                    span.set(f"d_{key}", after[key] - before[key])
                span.set("swaps_inserted", after["swaps"] - before["swaps"])
        return out

    def _check_pass_result(
        self, pass_: TranspilerPass, dag: DAGCircuit, result, version_before: int
    ) -> DAGCircuit:
        if isinstance(pass_, AnalysisPass):
            if result is not None and result is not dag:
                raise TranspilerError(
                    f"analysis pass {pass_.name} must not replace the DAG"
                )
            if dag.version != version_before:
                raise TranspilerError(f"analysis pass {pass_.name} modified the DAG")
            return dag
        if result is None:
            raise TranspilerError(f"pass {pass_.name} returned None")
        changed = result is not dag or result.version != version_before
        if changed:
            self.property_set.invalidate_analyses(pass_.preserves)
        return result

    # -- timing ---------------------------------------------------------------

    @property
    def timings(self) -> Dict[str, float]:
        """Per-pass-name aggregate of :attr:`timing_log` (backward-compatible view)."""
        out: Dict[str, float] = {}
        for name, elapsed in self.timing_log:
            out[name] = out.get(name, 0.0) + elapsed
        return out

    def total_time(self) -> float:
        return sum(elapsed for _, elapsed in self.timing_log)

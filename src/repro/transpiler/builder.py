"""Staged pipeline builder: named stages + preset optimization levels.

``PipelineBuilder`` composes the :class:`~repro.transpiler.passmanager.PassManager` a
compile runs from six named, individually overridable stages::

    init          logical-circuit decomposition and pre-routing cleanup
    layout        initial qubit placement
    routing       SWAP insertion (from the routing-method registry) + router follow-ups
    post_routing  SWAP lowering and the post-routing optimization loop
    finalize      output verification (coupling-map check)
    schedule      optional lowering to a timed schedule (``options.schedule``)

The stage contents are chosen by the preset optimization level of the options (``O0``
decomposes and routes only; ``O1`` is the paper's Fig. 2 pipeline; ``O2`` deepens the
post-routing fixed-point loop; ``O3`` additionally turns on noise-aware layout/routing
whenever the target carries calibration data).  Any stage can then be inspected,
replaced, or extended before :meth:`PipelineBuilder.build` assembles the manager —
per-scenario pipelines no longer require editing ``transpile()`` itself.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..exceptions import TranspilerError
from ..hardware.target import Target
from .passmanager import FixedPoint, PassManager, ScheduleItem
from .passes.basis import CheckRoutable, Decompose
from .passes.check_map import CheckMap
from .passes.commutation import CommutativeCancellation
from .passes.optimize_1q import Optimize1qGates, RemoveIdentities
from .passes.sabre import SabreLayoutSelection, SabreSwapRouter
from .passes.swap_lowering import SwapLowering
from .passes.unitary_synthesis import UnitarySynthesis
from .registry import RoutingPlan, get_routing

#: Post-routing re-synthesis/cancellation loop cap per level.  ``O1`` keeps the
#: historical cap of 2 (bit-identical to the paper pipeline); ``O2``/``O3`` allow the
#: loop to keep iterating while it still changes the circuit.
LEVEL_FIXED_POINT_ITERATIONS: Dict[str, int] = {"O1": 2, "O2": 4, "O3": 4}

STAGES = ("init", "layout", "routing", "post_routing", "finalize", "schedule")


class PipelineBuilder:
    """Compose a staged compilation pipeline for one (target, options) pair.

    The constructor populates every stage according to the options' preset level and the
    routing method's :class:`~repro.transpiler.registry.RoutingPlan`; callers may then
    rewrite individual stages before building the pass manager::

        builder = PipelineBuilder(target, options)
        builder.override_stage("layout", [MyLayoutPass(target.coupling_map)])
        manager = builder.build()
    """

    STAGES = STAGES

    def __init__(
        self,
        target: Optional[Target] = None,
        options=None,
        *,
        trial_subset: Optional[Sequence[int]] = None,
    ) -> None:
        from ..core.options import TranspileOptions

        self.target = target if target is not None else Target()
        self.options = options if options is not None else TranspileOptions()
        #: Restrict ensemble routing to these global trial indices (server fan-out).
        self.trial_subset = trial_subset
        self.stages: Dict[str, List[ScheduleItem]] = {name: [] for name in STAGES}
        self._populate()

    # -- stage access --------------------------------------------------------

    def stage(self, name: str) -> List[ScheduleItem]:
        """The (mutable) schedule of one named stage."""
        self._check_stage(name)
        return self.stages[name]

    def override_stage(self, name: str, passes: Sequence[ScheduleItem]) -> "PipelineBuilder":
        """Replace a stage's schedule wholesale."""
        self._check_stage(name)
        self.stages[name] = list(passes)
        return self

    def extend_stage(self, name: str, passes: Sequence[ScheduleItem]) -> "PipelineBuilder":
        """Append passes to a stage."""
        self._check_stage(name)
        self.stages[name].extend(passes)
        return self

    def _check_stage(self, name: str) -> None:
        if name not in self.stages:
            raise TranspilerError(f"unknown stage {name!r}; expected one of {STAGES}")

    @property
    def passes(self) -> List[ScheduleItem]:
        """The full flattened schedule, stages in declaration order."""
        return [item for name in STAGES for item in self.stages[name]]

    def build(self) -> PassManager:
        """Assemble a fresh :class:`PassManager` from the current stage contents."""
        return PassManager(self.passes)

    # -- noise-aware resolution ---------------------------------------------

    @property
    def noise_aware(self) -> bool:
        """Whether this pipeline routes on the noise-aware (HA) distance matrix.

        Explicit ``options.noise_aware`` always wins; level ``O3`` additionally opts in
        automatically when the target carries calibration data.
        """
        if self.options.noise_aware:
            return True
        return self.options.level == "O3" and self.target.has_calibration

    # -- stage population ----------------------------------------------------

    def _populate(self) -> None:
        options = self.options
        target = self.target
        method = get_routing(options.routing)

        if method.requires_coupling and not target.has_coupling:
            raise TranspilerError(
                f"routing method {method.name!r} requires a target with a coupling map"
            )
        if options.noise_aware and not target.has_calibration:
            raise TranspilerError("noise_aware routing requires a target with calibration data")
        if options.route_cost == "ns" and not target.has_calibration:
            raise TranspilerError(
                "route_cost='ns' requires a target with calibration data "
                "(gate durations set the SWAP costs)"
            )
        if options.schedule is not None and not target.has_calibration:
            raise TranspilerError(
                f"schedule={options.schedule!r} requires a target with calibration data "
                "(gate durations set the time slots)"
            )

        distance_matrix: Optional[np.ndarray] = None
        if options.route_cost == "ns":
            # Nanosecond-cost routing replaces the distance matrix outright; when O3
            # auto-enables noise awareness, the explicit duration request wins.
            distance_matrix = target.duration_distance_matrix()
        elif self.noise_aware and target.has_calibration:
            distance_matrix = target.noise_distance_matrix()

        plan = method.factory(target, options, distance_matrix=distance_matrix)
        self.ensemble_trials = (
            options.effective_best_of
            if (
                options.effective_best_of > 1
                and method.supports_best_of
                and plan is not None
                and plan.routing_router_cls is not None
            )
            else 1
        )
        self._distance_matrix = distance_matrix
        level = options.level
        optimize = level != "O0"
        final_basis = target.final_basis

        # init: decomposition, plus pre-routing cleanup above O0.
        if optimize:
            self.stages["init"] = [
                Decompose(keep_swaps=True),
                Optimize1qGates(output="u"),
                UnitarySynthesis(),
                CommutativeCancellation(),
                Optimize1qGates(output="u"),
                RemoveIdentities(),
                CheckRoutable(),
            ]
        else:
            self.stages["init"] = [Decompose(keep_swaps=True), CheckRoutable()]

        # layout + routing: contributed by the routing method's plan (None = no routing).
        if plan is not None:
            self._apply_routing_plan(plan)
            lowering = SwapLowering(use_labels=plan.use_swap_labels)
        else:
            lowering = SwapLowering()

        # post_routing: lower SWAPs, then the re-synthesis/cancellation loop above O0.
        self.stages["post_routing"] = [lowering]
        if optimize:
            self.stages["post_routing"] += [
                FixedPoint(
                    [UnitarySynthesis(), CommutativeCancellation()],
                    max_iterations=LEVEL_FIXED_POINT_ITERATIONS[level],
                ),
                Optimize1qGates(output=final_basis),
                RemoveIdentities(),
            ]

        # finalize: verify the routed circuit respects the device.
        if plan is not None and options.check:
            self.stages["finalize"] = [CheckMap(target.coupling_map)]

        # schedule: optional lowering to a timed schedule (analysis only — the DAG,
        # and therefore every golden hash, is identical whether or not this runs).
        if options.schedule is not None:
            # Imported lazily: the schedule pass depends on the transpiler package,
            # which would cycle if pulled in at module import time.
            from ..schedule.passes import ScheduleAnalysis

            self.stages["schedule"] = [
                ScheduleAnalysis(target.calibration, options.schedule)
            ]

    def _apply_routing_plan(self, plan: RoutingPlan) -> None:
        options = self.options
        if self.ensemble_trials > 1:
            # Best-of-N: one combined pass runs layout selection AND routing per
            # trial (the layout refinement is seed-dependent, so it must vary per
            # trial), keeping the winner by the two-qubit/depth/noise estimators.
            from .ensemble import EnsembleRouting

            layout_kwargs = dict(plan.layout_router_kwargs)
            layout_kwargs.pop("distance_matrix", None)
            routing_kwargs = dict(plan.routing_router_kwargs)
            self.stages["layout"] = []
            self.stages["routing"] = [
                EnsembleRouting(
                    self.target.coupling_map,
                    num_trials=self.ensemble_trials,
                    seed=options.seed,
                    layout_iterations=options.layout_iterations,
                    router_cls=plan.routing_router_cls,
                    layout_router_cls=plan.layout_router_cls or SabreSwapRouter,
                    router_kwargs=routing_kwargs,
                    layout_router_kwargs=layout_kwargs,
                    distance_matrix=self._distance_matrix,
                    noise_aware=self.noise_aware and self.target.has_calibration,
                    trial_subset=self.trial_subset,
                ),
                *plan.post_routing,
            ]
            return
        self.stages["layout"] = [
            SabreLayoutSelection(
                self.target.coupling_map,
                iterations=options.layout_iterations,
                seed=options.seed,
                router_cls=plan.layout_router_cls or SabreSwapRouter,
                router_kwargs=dict(plan.layout_router_kwargs),
            )
        ]
        self.stages["routing"] = [plan.routing_pass, *plan.post_routing]

"""The timed-schedule IR: :class:`TimedInstruction` and the immutable :class:`Schedule`.

A schedule is the result of lowering a routed circuit against a device calibration:
every basis gate becomes a timed slot with an integer start and duration in
**nanoseconds**.  Times are quantized to whole nanoseconds (sub-ns calibration
precision is far below physical gate-time uncertainty) so that all schedule arithmetic
— ASAP/ALAP totals, critical-path sums, idle-window widths — is exact integer math:
ASAP and ALAP schedules of the same circuit provably share one total duration, JSON
round-trips are bit-identical, and the content fingerprint is stable across processes
and machines.

The container follows the repo's ``to_dict``/``fingerprint`` idiom (canonical JSON,
sha256), so schedules can ride inside service result payloads and the content-addressed
cache like every other artifact.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..exceptions import ScheduleError

#: Schema version of the serialised form.
SCHEDULE_DICT_VERSION = 1


@dataclass(frozen=True)
class TimedInstruction:
    """One gate occupying ``[start, start + duration)`` on its qubits (times in ns)."""

    name: str
    qubits: Tuple[int, ...]
    start: int
    duration: int
    params: Tuple[float, ...] = ()
    clbits: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "qubits", tuple(int(q) for q in self.qubits))
        object.__setattr__(self, "clbits", tuple(int(c) for c in self.clbits))
        object.__setattr__(self, "params", tuple(float(p) for p in self.params))
        object.__setattr__(self, "start", int(self.start))
        object.__setattr__(self, "duration", int(self.duration))
        if self.start < 0:
            raise ScheduleError(f"instruction {self.name!r} starts before t=0: {self.start}")
        if self.duration < 0:
            raise ScheduleError(f"instruction {self.name!r} has negative duration")

    @property
    def end(self) -> int:
        """First nanosecond after the instruction finishes."""
        return self.start + self.duration

    def to_list(self) -> List:
        """Canonical JSON-safe form: ``[name, qubits, start, duration, params, clbits]``."""
        return [
            self.name, list(self.qubits), self.start, self.duration,
            list(self.params), list(self.clbits),
        ]

    @classmethod
    def from_list(cls, data: List) -> "TimedInstruction":
        name, qubits, start, duration, params, clbits = data
        return cls(
            name=name, qubits=tuple(qubits), start=start, duration=duration,
            params=tuple(params), clbits=tuple(clbits),
        )


@dataclass(frozen=True)
class IdleWindow:
    """A gap on one qubit's timeline between two consecutive instructions (times in ns)."""

    qubit: int
    start: int
    end: int

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass(frozen=True)
class Schedule:
    """Immutable timed schedule of one compiled circuit.

    ``instructions`` keeps the emission (topological) order of the lowering pass: for
    every wire the instructions touching it appear in execution order, which is what the
    per-qubit timelines, the critical path and validation rely on.  All derived views
    are computed lazily and memoised — a schedule is immutable after construction.
    """

    num_qubits: int
    mode: str
    instructions: Tuple[TimedInstruction, ...] = ()
    _timelines: Optional[Dict[int, Tuple[int, ...]]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _critical: Optional[Tuple[int, ...]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        object.__setattr__(self, "instructions", tuple(self.instructions))

    # -- basic queries -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.instructions)

    @property
    def duration(self) -> int:
        """Total schedule duration in nanoseconds (the makespan)."""
        return max((inst.end for inst in self.instructions), default=0)

    @property
    def duration_ns(self) -> int:
        """Alias of :attr:`duration` spelling the unit out."""
        return self.duration

    def _timeline_indices(self) -> Dict[int, Tuple[int, ...]]:
        cached = self._timelines
        if cached is None:
            per_qubit: Dict[int, List[int]] = {q: [] for q in range(self.num_qubits)}
            for index, inst in enumerate(self.instructions):
                for q in inst.qubits:
                    if not 0 <= q < self.num_qubits:
                        raise ScheduleError(
                            f"instruction {inst.name!r} touches qubit {q} outside "
                            f"the {self.num_qubits}-qubit schedule"
                        )
                    per_qubit[q].append(index)
            # Emission order is execution order per wire; sorting by (start, index)
            # keeps that while making the view canonical for externally-built schedules.
            cached = {
                q: tuple(sorted(ids, key=lambda i: (self.instructions[i].start, i)))
                for q, ids in per_qubit.items()
            }
            object.__setattr__(self, "_timelines", cached)
        return cached

    def qubit_timeline(self, qubit: int) -> Tuple[TimedInstruction, ...]:
        """The instructions touching one qubit, in execution order."""
        if not 0 <= qubit < self.num_qubits:
            raise ScheduleError(f"qubit {qubit} outside the {self.num_qubits}-qubit schedule")
        return tuple(self.instructions[i] for i in self._timeline_indices()[qubit])

    def qubit_timelines(self) -> Dict[int, Tuple[TimedInstruction, ...]]:
        """All per-qubit timelines, keyed by qubit index."""
        return {q: self.qubit_timeline(q) for q in range(self.num_qubits)}

    # -- structure -----------------------------------------------------------

    def _wire_predecessors(self) -> List[Tuple[int, ...]]:
        """Per instruction, the indices of its latest predecessor on each wire."""
        last_on_wire: Dict[Tuple[str, int], int] = {}
        preds: List[Tuple[int, ...]] = []
        for index, inst in enumerate(self.instructions):
            wires = [("q", q) for q in inst.qubits] + [("c", c) for c in inst.clbits]
            preds.append(tuple(
                last_on_wire[w] for w in wires if w in last_on_wire
            ))
            for w in wires:
                last_on_wire[w] = index
        return preds

    def critical_path(self) -> Tuple[TimedInstruction, ...]:
        """A longest-duration dependency chain through the schedule.

        Computed structurally over wire dependencies (never by floating-point slot
        matching): the chain's summed durations equal :attr:`duration`, and ties break
        deterministically toward the earliest-emitted instruction.
        """
        cached = self._critical
        if cached is None:
            preds = self._wire_predecessors()
            finish = [0] * len(self.instructions)  # longest path ending at i, inclusive
            best_pred = [-1] * len(self.instructions)
            for i, inst in enumerate(self.instructions):
                longest = 0
                chosen = -1
                for p in preds[i]:
                    if finish[p] > longest:
                        longest, chosen = finish[p], p
                finish[i] = longest + inst.duration
                best_pred[i] = chosen
            chain: List[int] = []
            if self.instructions:
                tail = min(range(len(finish)), key=lambda i: (-finish[i], i))
                while tail != -1:
                    chain.append(tail)
                    tail = best_pred[tail]
                chain.reverse()
            cached = tuple(chain)
            object.__setattr__(self, "_critical", cached)
        return tuple(self.instructions[i] for i in cached)

    def idle_windows(self) -> Tuple[IdleWindow, ...]:
        """Gaps between consecutive instructions on each qubit's timeline.

        Windows before a qubit's first instruction and after its last are excluded: a
        qubit idling in its ground state before first use (or after its final gate)
        accrues no decoherence exposure that matters to the circuit.
        """
        windows: List[IdleWindow] = []
        for q in range(self.num_qubits):
            timeline = self.qubit_timeline(q)
            for previous, current in zip(timeline, timeline[1:]):
                if current.start > previous.end:
                    windows.append(IdleWindow(q, previous.end, current.start))
        return tuple(windows)

    @property
    def total_idle(self) -> int:
        """Summed width (ns) of every idle window across all qubit timelines."""
        return sum(w.duration for w in self.idle_windows())

    def validate(self) -> None:
        """Check timeline consistency, raising :class:`ScheduleError` on violations.

        Verified invariants: no two instructions strictly overlap on any qubit
        timeline, and per-wire execution order is respected (each instruction starts at
        or after its wire predecessor ends).
        """
        for q, timeline in self.qubit_timelines().items():
            for previous, current in zip(timeline, timeline[1:]):
                if current.start < previous.end:
                    raise ScheduleError(
                        f"qubit {q}: {current.name!r}@{current.start} overlaps "
                        f"{previous.name!r} ending at {previous.end}"
                    )
        preds = self._wire_predecessors()
        for i, inst in enumerate(self.instructions):
            for p in preds[i]:
                if inst.start < self.instructions[p].end:
                    raise ScheduleError(
                        f"{inst.name!r}@{inst.start} starts before its dependency "
                        f"{self.instructions[p].name!r} ends at {self.instructions[p].end}"
                    )

    # -- serialization and content addressing --------------------------------

    def to_dict(self) -> Dict:
        """JSON-safe representation; round-trips bit-identically via :meth:`from_dict`.

        ``duration`` is included for consumers that only need the headline number
        (metrics endpoints, reports); it is derived and ignored on load.
        """
        return {
            "version": SCHEDULE_DICT_VERSION,
            "unit": "ns",
            "mode": self.mode,
            "num_qubits": self.num_qubits,
            "duration": self.duration,
            "instructions": [inst.to_list() for inst in self.instructions],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "Schedule":
        return cls(
            num_qubits=int(data["num_qubits"]),
            mode=data.get("mode", "asap"),
            instructions=tuple(
                TimedInstruction.from_list(item) for item in data["instructions"]
            ),
        )

    def fingerprint(self) -> str:
        """Deterministic sha256 content hash (stable across processes and machines)."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

"""Plain-text rendering of timed schedules for the ``repro schedule`` inspector."""

from __future__ import annotations

from typing import List, Optional

from .analysis import DecoherenceReport
from .ir import Schedule, TimedInstruction


def _instruction_label(inst: TimedInstruction) -> str:
    qubits = ",".join(str(q) for q in inst.qubits)
    return f"{inst.name}[{qubits}]"


def format_timeline(schedule: Schedule, max_ops_per_qubit: int = 8) -> str:
    """Per-qubit timeline view: each row lists a qubit's ops as ``name[qubits]@start+dur``."""
    lines: List[str] = [
        f"schedule: mode={schedule.mode} qubits={schedule.num_qubits} "
        f"ops={len(schedule)} duration={schedule.duration}ns idle={schedule.total_idle}ns"
    ]
    for qubit, timeline in schedule.qubit_timelines().items():
        if not timeline:
            continue
        shown = timeline[:max_ops_per_qubit]
        cells = [f"{_instruction_label(i)}@{i.start}+{i.duration}" for i in shown]
        suffix = f" ... (+{len(timeline) - len(shown)} more)" if len(timeline) > len(shown) else ""
        lines.append(f"  q{qubit:<3} {'  '.join(cells)}{suffix}")
    return "\n".join(lines)


def format_critical_path(schedule: Schedule, max_ops: int = 20) -> str:
    """The longest dependency chain, one op per line with its time slot."""
    chain = schedule.critical_path()
    lines = [f"critical path: {len(chain)} ops, {schedule.duration}ns"]
    shown = chain[:max_ops]
    for inst in shown:
        lines.append(f"  t={inst.start:>8}ns  {_instruction_label(inst)}  ({inst.duration}ns)")
    if len(chain) > len(shown):
        lines.append(f"  ... (+{len(chain) - len(shown)} more)")
    return "\n".join(lines)


def format_idle_summary(
    schedule: Schedule, report: Optional[DecoherenceReport] = None
) -> str:
    """Idle-window totals, with decoherence exposure when a report is supplied."""
    windows = schedule.idle_windows()
    lines = [f"idle windows: {len(windows)}, total {schedule.total_idle}ns"]
    if report is not None and report.per_qubit:
        lines.append(f"decoherence exposure: {report.total:.3e}")
        for qubit, exposure in report.worst_qubits(5):
            lines.append(
                f"  q{qubit:<3} idle={report.idle_ns.get(qubit, 0)}ns exposure={exposure:.3e}"
            )
    return "\n".join(lines)

"""``repro.schedule``: the timed-schedule subsystem.

Lowering turns a finished (routed, basis-translated) circuit into an immutable
:class:`Schedule` of integer-nanosecond time slots using the device calibration's gate
durations, under either ASAP or ALAP list scheduling.  On top of the IR sit idle-window
decoherence analysis, plain-text rendering for the CLI inspector, and the schedule-mode
registry shared by every layer that advertises modes.

The :class:`~repro.schedule.passes.ScheduleAnalysis` transpiler pass lives in
``repro.schedule.passes`` and is intentionally *not* imported here: it depends on the
transpiler package, which the options layer (an importer of this package) must not pull
in.  The pipeline builder imports it lazily when a schedule mode is requested.
"""

from .analysis import DecoherenceReport, decoherence_exposure
from .format import format_critical_path, format_idle_summary, format_timeline
from .ir import IdleWindow, Schedule, TimedInstruction
from .lowering import instruction_duration_ns, schedule_circuit, schedule_dag
from .modes import SCHEDULE_MODES, available_schedule_modes, normalize_schedule_mode

__all__ = [
    "DecoherenceReport",
    "IdleWindow",
    "SCHEDULE_MODES",
    "Schedule",
    "TimedInstruction",
    "available_schedule_modes",
    "decoherence_exposure",
    "format_critical_path",
    "format_idle_summary",
    "format_timeline",
    "instruction_duration_ns",
    "normalize_schedule_mode",
    "schedule_circuit",
    "schedule_dag",
]

"""The :class:`ScheduleAnalysis` transpiler pass: lowering as a pipeline stage.

Runs after ``finalize`` (a dedicated ``schedule`` stage in the pipeline builder), when
every gate is a physical basis gate, and writes the resulting :class:`Schedule` to
``property_set["schedule"]``.  Being an :class:`AnalysisPass` it never touches the DAG,
so enabling scheduling cannot perturb compiled output — the golden-hash guarantee for
``schedule=None`` extends to "the circuit bytes are identical either way".
"""

from __future__ import annotations

from ..circuit.dag import DAGCircuit
from ..hardware.calibration import DeviceCalibration
from ..obs.counters import COUNTERS
from ..obs.tracer import current_tracer
from ..transpiler.passmanager import AnalysisPass, PropertySet
from .analysis import decoherence_exposure
from .lowering import schedule_dag
from .modes import normalize_schedule_mode


class ScheduleAnalysis(AnalysisPass):
    """Lower the final DAG to a timed schedule and publish it in the property set."""

    def __init__(self, calibration: DeviceCalibration, mode: str = "asap") -> None:
        super().__init__()
        self.calibration = calibration
        self.mode = normalize_schedule_mode(mode)
        self.name = f"ScheduleAnalysis[{self.mode}]"

    def run(self, dag: DAGCircuit, property_set: PropertySet) -> None:
        schedule = schedule_dag(dag, self.calibration, self.mode)
        report = decoherence_exposure(schedule, self.calibration)
        property_set["schedule"] = schedule

        COUNTERS.inc("schedule.lowering.runs")
        COUNTERS.inc("schedule.instructions", len(schedule))
        COUNTERS.inc("schedule.idle_windows", len(schedule.idle_windows()))
        COUNTERS.inc("schedule.idle_ns_total", schedule.total_idle)

        tracer = current_tracer()
        if tracer is not None:
            with tracer.span(f"schedule:{self.mode}") as span:
                span.set("duration_ns", schedule.duration)
                span.set("instructions", len(schedule))
                span.set("idle_windows", len(schedule.idle_windows()))
                span.set("idle_ns", schedule.total_idle)
                span.set("decoherence_exposure", report.total)

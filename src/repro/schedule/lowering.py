"""Lowering routed circuits to timed schedules (ASAP and ALAP list scheduling).

The lowering stage runs after ``finalize``: at that point every gate in the DAG is a
basis gate on physical qubits, so each one maps directly to a calibration duration.
Both classic list-scheduling disciplines are provided:

* **ASAP** walks the DAG forward, starting every gate the moment all of its wires are
  free — the earliest-start schedule.
* **ALAP** walks the DAG backward, computing each gate's latest finish relative to the
  end of the circuit, then anchors the whole schedule so the last gate ends at the
  makespan — the latest-start schedule.

Because both are longest-path computations over the same integer-nanosecond durations,
they always produce the *same total duration*; they differ only in where slack (idle
time) accumulates, which is exactly what the decoherence-exposure analysis inspects.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..circuit.circuit import QuantumCircuit
from ..circuit.dag import DAGCircuit, DAGNode
from ..exceptions import ScheduleError
from ..hardware.calibration import DeviceCalibration
from .ir import Schedule, TimedInstruction
from .modes import normalize_schedule_mode

#: Wire key: ("q", index) for qubits, ("c", index) for classical bits.
Wire = Tuple[str, int]


def instruction_duration_ns(
    calibration: DeviceCalibration, name: str, qubits: Tuple[int, ...]
) -> int:
    """Duration of one basis gate in whole nanoseconds (calibration stores seconds)."""
    return int(round(calibration.gate_duration(name, qubits) * 1e9))


def _node_wires(node: DAGNode) -> List[Wire]:
    return [("q", q) for q in node.qubits] + [("c", c) for c in node.clbits]


def _check_device(dag: DAGCircuit, calibration: DeviceCalibration) -> None:
    calibration.validate_for(calibration.coupling_map)
    device_qubits = calibration.coupling_map.num_qubits
    if dag.num_qubits > device_qubits:
        raise ScheduleError(
            f"circuit uses {dag.num_qubits} qubits but the calibrated device "
            f"has only {device_qubits}"
        )


def _timed(node: DAGNode, start: int, duration: int) -> TimedInstruction:
    return TimedInstruction(
        name=node.name,
        qubits=node.qubits,
        start=start,
        duration=duration,
        params=tuple(node.gate.params),
        clbits=node.clbits,
    )


def schedule_dag(
    dag: DAGCircuit, calibration: DeviceCalibration, mode: str = "asap"
) -> Schedule:
    """Lower a physical-gate DAG to a :class:`Schedule` under the given discipline.

    The DAG's insertion order is a valid topological linearization (a transpiler
    invariant), so a single forward sweep implements ASAP and a single reverse sweep
    implements ALAP.  Instructions are emitted in insertion order for both modes, which
    keeps serialisation deterministic and mode-independent in everything but start
    times.
    """
    mode = normalize_schedule_mode(mode)
    _check_device(dag, calibration)
    nodes = dag.op_nodes()
    durations = [instruction_duration_ns(calibration, n.name, n.qubits) for n in nodes]

    if mode == "asap":
        ready: Dict[Wire, int] = {}
        starts: List[int] = []
        for node, duration in zip(nodes, durations):
            wires = _node_wires(node)
            start = max((ready.get(w, 0) for w in wires), default=0)
            starts.append(start)
            for w in wires:
                ready[w] = start + duration
    else:  # alap
        # Reverse pass: for each node, the longest chain of durations from its start
        # to the end of the circuit.  Anchoring at the makespan turns that offset into
        # a latest start time; the makespan equals the ASAP one because both are the
        # same longest path over the same integers.
        tail: Dict[Wire, int] = {}
        offsets: List[int] = [0] * len(nodes)
        for index in range(len(nodes) - 1, -1, -1):
            node, duration = nodes[index], durations[index]
            wires = _node_wires(node)
            offset = max((tail.get(w, 0) for w in wires), default=0) + duration
            offsets[index] = offset
            for w in wires:
                tail[w] = offset
        total = max(offsets, default=0)
        starts = [total - offset for offset in offsets]

    schedule = Schedule(
        num_qubits=dag.num_qubits,
        mode=mode,
        instructions=tuple(
            _timed(node, start, duration)
            for node, start, duration in zip(nodes, starts, durations)
        ),
    )
    schedule.validate()
    return schedule


def schedule_circuit(
    circuit: QuantumCircuit, calibration: DeviceCalibration, mode: str = "asap"
) -> Schedule:
    """Convenience wrapper: lower a :class:`QuantumCircuit` directly."""
    return schedule_dag(DAGCircuit.from_circuit(circuit), calibration, mode)

"""The schedule-mode registry: the single source of the supported scheduling modes.

Every layer that advertises or validates a schedule mode — ``TranspileOptions``, the
``repro methods`` CLI subcommand, the server's ``GET /v1/methods`` — derives its list
from :data:`SCHEDULE_MODES`, so adding a mode (or a third-party spelling) never requires
hunting down duplicated string literals.

This module is deliberately import-light (no numpy, no circuit types): the options layer
imports it at validation time.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..exceptions import ScheduleError

#: Supported scheduling modes, name -> one-line description.
SCHEDULE_MODES: Dict[str, str] = {
    "asap": "as-soon-as-possible list scheduling: every gate starts the moment "
            "its operands are free",
    "alap": "as-late-as-possible list scheduling: every gate starts as late as the "
            "critical path allows (same total duration as asap)",
}


def available_schedule_modes() -> Tuple[str, ...]:
    """The registered schedule-mode names, in declaration order."""
    return tuple(SCHEDULE_MODES)


def normalize_schedule_mode(mode: str) -> str:
    """Canonicalise a mode spelling (case-insensitive), raising on unknown modes."""
    candidate = str(mode).strip().lower()
    if candidate not in SCHEDULE_MODES:
        raise ScheduleError(
            f"unknown schedule mode {mode!r}; expected one of {available_schedule_modes()}"
        )
    return candidate

"""Idle-window decoherence analysis over timed schedules.

A qubit sitting idle between gates decoheres at a rate set by its T1 (relaxation) and T2
(dephasing) times.  Weighting every idle window by ``1/T1 + 1/T2`` of the qubit it sits
on gives a dimensionless *decoherence exposure* — a per-qubit and whole-schedule figure
of merit that makes ASAP and ALAP schedules comparable beyond their (identical) total
duration: the discipline that parks slack on long-coherence qubits scores lower.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..hardware.calibration import DeviceCalibration
from .ir import Schedule


@dataclass(frozen=True)
class DecoherenceReport:
    """Idle-time decoherence exposure of one schedule against one calibration."""

    #: Per-qubit exposure: summed idle seconds weighted by that qubit's 1/T1 + 1/T2.
    per_qubit: Dict[int, float]
    #: Per-qubit idle time in nanoseconds.
    idle_ns: Dict[int, int]

    @property
    def total(self) -> float:
        """Whole-schedule exposure (sum over qubits)."""
        return sum(self.per_qubit.values())

    @property
    def total_idle_ns(self) -> int:
        return sum(self.idle_ns.values())

    def worst_qubits(self, count: int = 5) -> Tuple[Tuple[int, float], ...]:
        """The ``count`` most-exposed qubits, highest first (ties by qubit index)."""
        ranked = sorted(self.per_qubit.items(), key=lambda item: (-item[1], item[0]))
        return tuple(ranked[:count])


def decoherence_exposure(
    schedule: Schedule, calibration: DeviceCalibration
) -> DecoherenceReport:
    """Weight every idle window by the decoherence rate of the qubit it sits on.

    Qubits without calibrated T1/T2 contribute their raw idle time with zero weight
    (treated as perfectly coherent) rather than failing the analysis.
    """
    per_qubit: Dict[int, float] = {}
    idle_ns: Dict[int, int] = {}
    for window in schedule.idle_windows():
        q = window.qubit
        idle_ns[q] = idle_ns.get(q, 0) + window.duration
        rate = 0.0
        t1 = calibration.t1.get(q)
        t2 = calibration.t2.get(q)
        if t1:
            rate += 1.0 / t1
        if t2:
            rate += 1.0 / t2
        per_qubit[q] = per_qubit.get(q, 0.0) + window.duration * 1e-9 * rate
    return DecoherenceReport(per_qubit=per_qubit, idle_ns=idle_ns)

"""Statevector simulator.

Supports the unitary part of a circuit plus terminal measurements.  Gate application uses
tensor reshaping, so circuits up to ~20 qubits simulate comfortably; the noise experiments of
Fig. 11 use 4-5 qubit circuits mapped to a 27-qubit device, which are handled by simulating
only the active qubits.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..exceptions import SimulatorError
from ..obs.counters import COUNTERS

_MAX_QUBITS = 22


@lru_cache(maxsize=4096)
def _gate_tensor(token: Tuple[str, Tuple[float, ...]], k: int) -> np.ndarray:
    """Reshaped ``(2,) * 2k`` tensor of a named gate's matrix (shared, read-only)."""
    from ..circuit.gates import _shared_matrix

    # A reshaped view of the shared read-only matrix; inherits non-writeability.
    return _shared_matrix(*token).reshape((2,) * (2 * k))


@lru_cache(maxsize=4096)
def _tensordot_axes(num_qubits: int, qubits: Tuple[int, ...]) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """Precomputed ``(gate axes, state axes)`` pairs for :func:`np.tensordot`."""
    k = len(qubits)
    state_axes = tuple(num_qubits - 1 - q for q in reversed(qubits))
    return tuple(range(k, 2 * k)), state_axes


def _tensor_cache_counters() -> Dict[str, int]:
    gate = _gate_tensor.cache_info()
    axes = _tensordot_axes.cache_info()
    return {
        "hits": gate.hits + axes.hits,
        "misses": gate.misses + axes.misses,
        "size": gate.currsize + axes.currsize,
    }


COUNTERS.register_provider("cache.sim_tensor", _tensor_cache_counters)


def _apply_gate(state: np.ndarray, matrix: np.ndarray, qubits: Sequence[int], num_qubits: int) -> np.ndarray:
    """Apply a k-qubit gate to a statevector (little-endian)."""
    k = len(qubits)
    # Reshape into a tensor with axis j <-> qubit (num_qubits - 1 - j).
    tensor = state.reshape([2] * num_qubits)
    gate_axes, axes = _tensordot_axes(num_qubits, tuple(qubits))
    gate_tensor = matrix.reshape([2] * (2 * k))
    moved = np.tensordot(gate_tensor, tensor, axes=(gate_axes, axes))
    # tensordot puts the gate's output axes first; move them back to their original positions.
    # Output axis j corresponds to original state axis axes[j].
    result = np.moveaxis(moved, list(range(k)), axes)
    return result.reshape(-1)


def _apply_instruction(state: np.ndarray, inst, num_qubits: int) -> np.ndarray:
    """Apply one instruction, serving named gates from the shared tensor cache."""
    gate_obj = inst.gate
    qubits = tuple(inst.qubits)
    k = len(qubits)
    if gate_obj.name == "unitary":
        gate_tensor = gate_obj.matrix().reshape((2,) * (2 * k))
    else:
        gate_tensor = _gate_tensor(gate_obj.cache_token, k)
    tensor = state.reshape([2] * num_qubits)
    gate_axes, axes = _tensordot_axes(num_qubits, qubits)
    moved = np.tensordot(gate_tensor, tensor, axes=(gate_axes, axes))
    result = np.moveaxis(moved, list(range(k)), axes)
    return result.reshape(-1)


class StatevectorSimulator:
    """Ideal statevector simulation of a circuit's unitary part."""

    def __init__(self, max_qubits: int = _MAX_QUBITS) -> None:
        self.max_qubits = max_qubits

    def run(self, circuit: QuantumCircuit, initial_state: Optional[np.ndarray] = None) -> np.ndarray:
        """Final statevector of the circuit (measurements and barriers are ignored)."""
        n = circuit.num_qubits
        if n > self.max_qubits:
            raise SimulatorError(f"circuit too large to simulate ({n} qubits > {self.max_qubits})")
        if initial_state is None:
            state = np.zeros(2 ** n, dtype=complex)
            state[0] = 1.0
        else:
            state = np.asarray(initial_state, dtype=complex).copy()
            if state.shape != (2 ** n,):
                raise SimulatorError("initial state has the wrong dimension")
        for inst in circuit.data:
            if inst.name in ("barrier", "measure"):
                continue
            if inst.name == "reset":
                raise SimulatorError("reset is not supported by the statevector simulator")
            state = _apply_instruction(state, inst, n)
        return state

    def probabilities(self, circuit: QuantumCircuit) -> np.ndarray:
        """Measurement probabilities over the full computational basis."""
        state = self.run(circuit)
        return np.abs(state) ** 2

    def sample_counts(
        self, circuit: QuantumCircuit, shots: int, seed: Optional[int] = None,
        measured_qubits: Optional[Sequence[int]] = None,
    ) -> Dict[str, int]:
        """Sample measurement outcomes (bitstrings are little-endian: qubit 0 is the rightmost)."""
        probs = self.probabilities(circuit)
        rng = np.random.default_rng(seed)
        outcomes = rng.choice(len(probs), size=shots, p=probs / probs.sum())
        if measured_qubits is None:
            if circuit.has_measurements():
                measured_qubits = sorted(
                    {inst.qubits[0] for inst in circuit.data if inst.name == "measure"}
                )
            else:
                measured_qubits = list(range(circuit.num_qubits))
        counts: Dict[str, int] = {}
        for outcome in outcomes:
            bits = "".join(
                "1" if (outcome >> q) & 1 else "0" for q in reversed(list(measured_qubits))
            )
            counts[bits] = counts.get(bits, 0) + 1
        return counts


def active_qubit_subcircuit(
    circuit: QuantumCircuit, include: Optional[Sequence[int]] = None
) -> Tuple[QuantumCircuit, List[int]]:
    """Restrict a circuit to the qubits it actually touches (for simulating routed circuits).

    ``include`` lists extra qubits (e.g. measured but otherwise idle wires) to keep in the
    reduced circuit even though no gate acts on them.
    """
    active = sorted(set(circuit.active_qubits()) | set(include or ()))
    if not active:
        return QuantumCircuit(1, circuit.num_clbits, circuit.name), [0]
    mapping = {q: i for i, q in enumerate(active)}
    reduced = QuantumCircuit(len(active), circuit.num_clbits, circuit.name)
    for inst in circuit.data:
        qubits = tuple(mapping[q] for q in inst.qubits)
        if inst.name == "barrier":
            reduced.barrier(*qubits)
        else:
            reduced.append(inst.gate.copy(), qubits, inst.clbits)
    return reduced, active

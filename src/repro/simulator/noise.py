"""Stochastic Pauli + readout noise model and noisy sampling (paper Sec. VI-D, Fig. 11).

The paper runs its success-rate experiment on the Qiskit Aer simulator with a noise model
generated from ``ibmq_montreal`` calibration data.  Here the equivalent noise model is built
from the synthetic calibration in :mod:`repro.hardware.calibration`:

* every one- and two-qubit gate is followed, with probability equal to the calibrated error
  rate, by a uniformly random non-identity Pauli on its qubits (depolarizing channel);
* every measured qubit is flipped with its calibrated readout error probability.

Sampling uses Monte-Carlo noise realisations: a configurable number of randomly drawn noisy
circuits are simulated exactly and the requested shots are distributed among them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..circuit.gates import gate as make_gate
from ..exceptions import SimulatorError
from ..hardware.calibration import DeviceCalibration
from .statevector import StatevectorSimulator, active_qubit_subcircuit

_PAULIS = ("x", "y", "z")


@dataclass
class NoiseModel:
    """Gate and readout error probabilities derived from device calibration."""

    calibration: DeviceCalibration
    scale: float = 1.0

    def gate_error(self, name: str, qubits: Tuple[int, ...]) -> float:
        if name in ("barrier", "measure", "reset") or not qubits:
            return 0.0
        return min(1.0, self.scale * self.calibration.gate_error(name, qubits))

    def readout_error(self, qubit: int) -> float:
        return min(1.0, self.scale * self.calibration.readout_error[qubit])

    @classmethod
    def from_calibration(cls, calibration: DeviceCalibration, scale: float = 1.0) -> "NoiseModel":
        return cls(calibration=calibration, scale=scale)


class NoisySimulator:
    """Monte-Carlo noisy simulation of routed circuits."""

    def __init__(
        self,
        noise_model: NoiseModel,
        *,
        realizations: int = 256,
        seed: Optional[int] = None,
    ) -> None:
        self.noise_model = noise_model
        self.realizations = realizations
        self.seed = seed
        self._ideal = StatevectorSimulator()

    # ------------------------------------------------------------------

    def _inject_noise(
        self, circuit: QuantumCircuit, physical_qubits: Sequence[int], rng: np.random.Generator
    ) -> QuantumCircuit:
        """One random noisy realisation of the circuit (gate errors only)."""
        noisy = circuit.copy_empty()
        for inst in circuit.data:
            if inst.name == "barrier":
                noisy.barrier(*inst.qubits)
                continue
            noisy.append(inst.gate.copy(), inst.qubits, inst.clbits)
            if inst.name in ("measure", "reset") or not inst.gate.is_unitary:
                continue
            error = self.noise_model.gate_error(
                inst.name, tuple(physical_qubits[q] for q in inst.qubits)
            )
            if error <= 0.0:
                continue
            if rng.random() < error:
                for q in inst.qubits:
                    pauli = _PAULIS[rng.integers(3)]
                    noisy.append(make_gate(pauli), (q,))
        return noisy

    def _apply_readout_error(
        self,
        counts: Dict[str, int],
        measured_physical: Sequence[int],
        rng: np.random.Generator,
    ) -> Dict[str, int]:
        flipped: Dict[str, int] = {}
        error_probs = [self.noise_model.readout_error(p) for p in measured_physical]
        for bitstring, count in counts.items():
            bits = list(bitstring)
            for _ in range(count):
                out = bits.copy()
                # bitstring is printed with the highest-index measured qubit first.
                for position, prob in enumerate(reversed(error_probs)):
                    if prob > 0 and rng.random() < prob:
                        out[position] = "1" if out[position] == "0" else "0"
                key = "".join(out)
                flipped[key] = flipped.get(key, 0) + 1
        return flipped

    # ------------------------------------------------------------------

    def run(
        self,
        circuit: QuantumCircuit,
        shots: int = 8192,
        *,
        measured_qubits: Optional[Sequence[int]] = None,
    ) -> Dict[str, int]:
        """Sample noisy measurement outcomes of a routed (physical) circuit.

        ``measured_qubits`` are physical qubit indices; they default to the circuit's measured
        qubits, or all active qubits when the circuit has no measurements.
        """
        rng = np.random.default_rng(self.seed)
        reduced, active = active_qubit_subcircuit(circuit, include=measured_qubits)
        mapping = {phys: idx for idx, phys in enumerate(active)}
        if measured_qubits is None:
            if circuit.has_measurements():
                measured_qubits = sorted(
                    {inst.qubits[0] for inst in circuit.data if inst.name == "measure"}
                )
            else:
                measured_qubits = list(active)
        for q in measured_qubits:
            if q not in mapping:
                raise SimulatorError(f"measured qubit {q} is not touched by the circuit")
        measured_local = [mapping[q] for q in measured_qubits]

        realizations = max(1, min(self.realizations, shots))
        base_shots = shots // realizations
        remainder = shots - base_shots * realizations
        total_counts: Dict[str, int] = {}
        for r in range(realizations):
            n_shots = base_shots + (1 if r < remainder else 0)
            if n_shots == 0:
                continue
            noisy = self._inject_noise(reduced, active, rng)
            counts = self._ideal.sample_counts(
                noisy, n_shots, seed=int(rng.integers(2 ** 31)), measured_qubits=measured_local
            )
            for key, value in counts.items():
                total_counts[key] = total_counts.get(key, 0) + value
        return self._apply_readout_error(total_counts, measured_qubits, rng)

    # ------------------------------------------------------------------

    def success_rate(
        self,
        circuit: QuantumCircuit,
        shots: int = 8192,
        *,
        expected: Optional[str] = None,
        measured_qubits: Optional[Sequence[int]] = None,
    ) -> float:
        """Fraction of shots that return the ideal (noise-free) most likely outcome."""
        reduced, active = active_qubit_subcircuit(circuit, include=measured_qubits)
        mapping = {phys: idx for idx, phys in enumerate(active)}
        if measured_qubits is None:
            if circuit.has_measurements():
                measured_qubits = sorted(
                    {inst.qubits[0] for inst in circuit.data if inst.name == "measure"}
                )
            else:
                measured_qubits = list(active)
        if expected is None:
            ideal_counts = self._ideal.sample_counts(
                reduced, 4096, seed=1, measured_qubits=[mapping[q] for q in measured_qubits]
            )
            expected = max(ideal_counts, key=ideal_counts.get)
        counts = self.run(circuit, shots, measured_qubits=measured_qubits)
        return counts.get(expected, 0) / float(shots)

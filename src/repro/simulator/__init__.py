"""Statevector simulation and the synthetic-calibration noise model."""

from .noise import NoiseModel, NoisySimulator
from .statevector import StatevectorSimulator, active_qubit_subcircuit

__all__ = ["NoiseModel", "NoisySimulator", "StatevectorSimulator", "active_qubit_subcircuit"]

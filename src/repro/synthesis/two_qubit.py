"""Two-qubit unitary analysis and synthesis (Weyl/KAK decomposition).

This module provides the machinery behind the paper's *two-qubit block re-synthesis*
optimization (Sec. III and IV-D):

* :func:`weyl_coordinates` — fast canonical (Weyl-chamber) coordinates of a 4x4 unitary.
* :func:`cnot_count` — the minimal number of CNOTs needed to implement a 4x4 unitary
  (0, 1, 2 or 3), which is what the NASSC cost function's ``C2q`` term is built on.
* :func:`weyl_decompose` — full KAK decomposition ``U = phase * K1 . A(a,b,c) . K2`` with
  explicit single-qubit local factors.
* :class:`TwoQubitSynthesizer` — re-synthesis of an arbitrary two-qubit unitary into a
  circuit with the minimal number of CNOTs plus single-qubit gates, used by the
  ``UnitarySynthesis`` transpiler pass.

The synthesizer is self-validating: every produced circuit is checked against the target
unitary (up to global phase) before being returned, and a guaranteed-correct (but possibly
4-CNOT) fallback is used if the optimal template cannot be matched numerically.
"""

from __future__ import annotations

import cmath
import itertools
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..exceptions import SynthesisError
from .linalg import (
    MAGIC_BASIS,
    PAULI_I,
    PAULI_X,
    PAULI_Y,
    PAULI_Z,
    is_unitary,
    kron_factor_4x4,
)
from .one_qubit import u_params_from_matrix

_B = MAGIC_BASIS
_BD = MAGIC_BASIS.conj().T
_HALF_PI = math.pi / 2.0
_QUARTER_PI = math.pi / 4.0
_ATOL = 1e-7
_CLASS_ATOL = 1e-6

# Diagonal representations of XX, YY, ZZ in the magic basis; the columns of _F.
_PAULI_PAIRS = [np.kron(PAULI_X, PAULI_X), np.kron(PAULI_Y, PAULI_Y), np.kron(PAULI_Z, PAULI_Z)]
_F = np.column_stack([np.real(np.diag(_BD @ pp @ _B)) for pp in _PAULI_PAIRS])
_F_PINV = np.linalg.pinv(_F)

_RNG = np.random.default_rng(20220521)


def canonical_matrix(a: float, b: float, c: float) -> np.ndarray:
    """The canonical two-qubit interaction ``A(a,b,c) = exp(i(a XX + b YY + c ZZ))``."""
    mat = np.eye(4, dtype=complex)
    for coeff, pauli_pair in zip((a, b, c), _PAULI_PAIRS):
        mat = (math.cos(coeff) * np.eye(4) + 1j * math.sin(coeff) * pauli_pair) @ mat
    return mat


# ---------------------------------------------------------------------------
# Coordinates and CNOT counting
# ---------------------------------------------------------------------------

def _det_normalize(unitary: np.ndarray) -> Tuple[np.ndarray, float]:
    """Scale a U(4) matrix into SU(4); returns the matrix and the removed phase."""
    det = np.linalg.det(unitary)
    phase = cmath.phase(det) / 4.0
    return unitary * cmath.exp(-1j * phase), phase


def _raw_coordinates_from_phases(d: np.ndarray) -> Tuple[float, float, float]:
    """Solve ``F x = d`` for the (non-canonical) interaction coefficients."""
    x = _F_PINV @ d
    return float(x[0]), float(x[1]), float(x[2])


def _mod_half_pi(value: float) -> float:
    value = math.fmod(value, _HALF_PI)
    if value < 0:
        value += _HALF_PI
    if _HALF_PI - value < 1e-9:
        value = 0.0
    return value


def canonicalize_coordinates(coords: Sequence[float]) -> Tuple[float, float, float]:
    """Reduce interaction coefficients into the Weyl chamber.

    The reduction uses only class-preserving moves: shifting any coordinate by pi/2,
    flipping the signs of any two coordinates, and permuting the coordinates.  The canonical
    region is ``x >= y >= z >= 0``, ``x + y <= pi/2`` and (``x <= pi/4`` when ``z ~ 0``).
    """
    x, y, z = (_mod_half_pi(v) for v in coords)
    for _ in range(32):
        x, y, z = sorted((_mod_half_pi(x), _mod_half_pi(y), _mod_half_pi(z)), reverse=True)
        if x + y > _HALF_PI + 1e-9:
            x, y = _HALF_PI - y, _HALF_PI - x
            continue
        if z < _CLASS_ATOL and x > _QUARTER_PI + 1e-9:
            x = _HALF_PI - x
            continue
        break
    x, y, z = sorted((x, y, z), reverse=True)
    return float(x), float(y), float(z)


def weyl_coordinates(unitary: np.ndarray) -> Tuple[float, float, float]:
    """Canonical Weyl-chamber coordinates of a two-qubit unitary (fast, eigenvalues only)."""
    unitary = np.asarray(unitary, dtype=complex)
    if unitary.shape != (4, 4) or not is_unitary(unitary, tol=1e-6):
        raise SynthesisError("weyl_coordinates expects a 4x4 unitary")
    su4, _ = _det_normalize(unitary)
    up = _BD @ su4 @ _B
    m2 = up.T @ up
    eigvals = np.linalg.eigvals(m2)
    d = np.angle(eigvals) / 2.0
    total = float(np.sum(d))
    d[0] -= math.pi * round(total / math.pi)
    coords = _raw_coordinates_from_phases(d)
    return canonicalize_coordinates(coords)


def cnot_count_from_coordinates(coords: Sequence[float], atol: float = _CLASS_ATOL) -> int:
    """Minimal CNOT count for a unitary whose canonical coordinates are ``coords``."""
    x, y, z = canonicalize_coordinates(coords)
    if x < atol and y < atol and z < atol:
        return 0
    if abs(x - _QUARTER_PI) < atol and y < atol and z < atol:
        return 1
    if z < atol:
        return 2
    return 3


def cnot_count(unitary: np.ndarray, atol: float = _CLASS_ATOL) -> int:
    """Minimal number of CNOT gates required to implement a two-qubit unitary."""
    return cnot_count_from_coordinates(weyl_coordinates(unitary), atol)


# ---------------------------------------------------------------------------
# Full KAK decomposition
# ---------------------------------------------------------------------------

@dataclass
class WeylDecomposition:
    """``U = exp(i*phase) * kron(k1_q1, k1_q0) @ A(a,b,c) @ kron(k2_q1, k2_q0)``."""

    coords: Tuple[float, float, float]
    k1_q0: np.ndarray
    k1_q1: np.ndarray
    k2_q0: np.ndarray
    k2_q1: np.ndarray
    phase: float

    @property
    def k1(self) -> np.ndarray:
        return np.kron(self.k1_q1, self.k1_q0)

    @property
    def k2(self) -> np.ndarray:
        return np.kron(self.k2_q1, self.k2_q0)

    def matrix(self) -> np.ndarray:
        return cmath.exp(1j * self.phase) * (
            self.k1 @ canonical_matrix(*self.coords) @ self.k2
        )

    def cnot_count(self) -> int:
        return cnot_count_from_coordinates(self.coords)


def _orthogonal_diagonalize(m2: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Diagonalise a complex symmetric unitary ``M2 = P D P^T`` with real orthogonal ``P``."""
    for attempt in range(64):
        if attempt == 0:
            weights = (1.0, 0.0)
        elif attempt == 1:
            weights = (0.0, 1.0)
        else:
            weights = tuple(_RNG.normal(size=2))
        combo = weights[0] * m2.real + weights[1] * m2.imag
        combo = (combo + combo.T) / 2.0
        _, p = np.linalg.eigh(combo)
        diag = p.T @ m2 @ p
        if np.allclose(diag - np.diag(np.diag(diag)), 0.0, atol=1e-9):
            if np.linalg.det(p) < 0:
                p = p.copy()
                p[:, 0] = -p[:, 0]
                diag = p.T @ m2 @ p
            return p, np.diag(diag)
    raise SynthesisError("failed to orthogonally diagonalise M2")


def weyl_decompose(unitary: np.ndarray, *, canonicalize: bool = True) -> WeylDecomposition:
    """Full KAK/Weyl decomposition of a two-qubit unitary with explicit local factors."""
    unitary = np.asarray(unitary, dtype=complex)
    if unitary.shape != (4, 4) or not is_unitary(unitary, tol=1e-6):
        raise SynthesisError("weyl_decompose expects a 4x4 unitary")
    su4, phase = _det_normalize(unitary)
    up = _BD @ su4 @ _B
    m2 = up.T @ up
    p, eigvals = _orthogonal_diagonalize(m2)
    d = np.angle(eigvals) / 2.0
    total = float(np.sum(d))
    d[0] -= math.pi * round(total / math.pi)
    coords = list(_raw_coordinates_from_phases(d))

    ap = np.diag(np.exp(1j * d))
    o2 = p.T
    o1 = up @ p @ np.diag(np.exp(-1j * d))
    if np.max(np.abs(o1.imag)) > 1e-6:
        raise SynthesisError("KAK decomposition produced a non-real left orthogonal factor")
    o1 = o1.real

    k1 = _B @ o1 @ _BD
    k2 = _B @ o2 @ _BD

    # Sanity: reconstruct before canonicalisation.
    a_mat = _B @ ap @ _BD
    recon = cmath.exp(1j * phase) * (k1 @ a_mat @ k2)
    if not np.allclose(recon, unitary, atol=1e-6):
        raise SynthesisError("KAK decomposition failed verification")

    if canonicalize:
        k1, k2, coords, phase = _canonicalize_decomposition(k1, k2, coords, phase)

    g1, k1_q1, k1_q0 = kron_factor_4x4(k1)
    g2, k2_q1, k2_q0 = kron_factor_4x4(k2)
    phase = phase + cmath.phase(g1) + cmath.phase(g2)

    decomposition = WeylDecomposition(
        coords=(float(coords[0]), float(coords[1]), float(coords[2])),
        k1_q0=k1_q0,
        k1_q1=k1_q1,
        k2_q0=k2_q0,
        k2_q1=k2_q1,
        phase=float(phase),
    )
    if not np.allclose(decomposition.matrix(), unitary, atol=1e-6):
        raise SynthesisError("canonicalised KAK decomposition failed verification")
    return decomposition


_SINGLE_QUBIT_CLIFFORDS = {
    "s": np.array([[1, 0], [0, 1j]], dtype=complex),
    "sdg": np.array([[1, 0], [0, -1j]], dtype=complex),
    "rx+": np.array(
        [[math.cos(_QUARTER_PI), -1j * math.sin(_QUARTER_PI)],
         [-1j * math.sin(_QUARTER_PI), math.cos(_QUARTER_PI)]], dtype=complex
    ),
    "rx-": np.array(
        [[math.cos(_QUARTER_PI), 1j * math.sin(_QUARTER_PI)],
         [1j * math.sin(_QUARTER_PI), math.cos(_QUARTER_PI)]], dtype=complex
    ),
}


def _canonicalize_decomposition(
    k1: np.ndarray, k2: np.ndarray, coords: List[float], phase: float
) -> Tuple[np.ndarray, np.ndarray, List[float], float]:
    """Move the interaction coefficients into the Weyl chamber, updating the local factors."""
    paulis = [PAULI_X, PAULI_Y, PAULI_Z]

    def shift_mod(index: int) -> None:
        nonlocal phase
        k = math.floor(coords[index] / _HALF_PI + 1e-12)
        remainder = coords[index] - k * _HALF_PI
        if remainder >= _HALF_PI - 1e-12:
            k += 1
            remainder -= _HALF_PI
        if k == 0:
            return
        coords[index] = max(remainder, 0.0) if abs(remainder) < 1e-12 else remainder
        pauli = paulis[index]
        if k % 2 == 1:
            local = np.kron(pauli, pauli)
            nonlocal_update(local, None)
        phase += k * _HALF_PI  # exp(i*k*pi/2 * PP) = (i)^k (PP)^k contributes to the phase

    def nonlocal_update(left: Optional[np.ndarray], right: Optional[np.ndarray]) -> None:
        nonlocal k1, k2
        if left is not None:
            k1 = k1 @ left
        if right is not None:
            k2 = right @ k2

    def swap_coords(i: int, j: int) -> None:
        # Conjugating local that permutes the Pauli pair i <-> j while fixing the third.
        nonlocal k1, k2
        if {i, j} == {0, 1}:
            conj = _SINGLE_QUBIT_CLIFFORDS["s"]
            conj_dg = _SINGLE_QUBIT_CLIFFORDS["sdg"]
            # A(a,b,c) = (Sdg x Sdg) A(b,a,c) (S x S)
            k1 = k1 @ np.kron(conj_dg, conj_dg)
            k2 = np.kron(conj, conj) @ k2
        elif {i, j} == {1, 2}:
            v = _SINGLE_QUBIT_CLIFFORDS["rx+"]
            v_dg = _SINGLE_QUBIT_CLIFFORDS["rx-"]
            # A(a,b,c) = (V x V) A(a,c,b) (Vdg x Vdg)
            k1 = k1 @ np.kron(v, v)
            k2 = np.kron(v_dg, v_dg) @ k2
        elif {i, j} == {0, 2}:
            h = np.array([[1, 1], [1, -1]], dtype=complex) / math.sqrt(2)
            # A(a,b,c) = (H x H) A(c,b,a) (H x H)
            k1 = k1 @ np.kron(h, h)
            k2 = np.kron(h, h) @ k2
        coords[i], coords[j] = coords[j], coords[i]

    def flip_pair(i: int, j: int) -> None:
        # Conjugation by the Pauli that anticommutes with pair i and pair j (the third Pauli).
        nonlocal k1, k2
        third = 3 - i - j
        pauli = paulis[third]
        local = np.kron(np.eye(2, dtype=complex), pauli)
        k1 = k1 @ local
        k2 = local @ k2
        coords[i] = -coords[i]
        coords[j] = -coords[j]

    def sort_desc() -> None:
        for i in range(3):
            for j in range(i + 1, 3):
                if coords[j] > coords[i] + 1e-12:
                    swap_coords(i, j)

    for _ in range(32):
        for idx in range(3):
            if coords[idx] < -1e-12 or coords[idx] >= _HALF_PI - 1e-12:
                # Shift into [0, pi/2) by multiples of pi/2.
                shift_mod(idx)
        sort_desc()
        if coords[0] + coords[1] > _HALF_PI + 1e-9:
            flip_pair(0, 1)
            continue
        if coords[2] < _CLASS_ATOL and coords[0] > _QUARTER_PI + 1e-9:
            flip_pair(0, 2)
            continue
        break
    sort_desc()
    for idx in range(3):
        if abs(coords[idx]) < 1e-9:
            coords[idx] = 0.0
    return k1, k2, coords, phase


# ---------------------------------------------------------------------------
# Synthesis
# ---------------------------------------------------------------------------

_CX_MATRIX = np.array(
    [[1, 0, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0], [0, 1, 0, 0]], dtype=complex
)


def _core_identity(coords: Tuple[float, float, float]) -> List[QuantumCircuit]:
    return [QuantumCircuit(2, name="core0")]


def _core_single_cx(coords: Tuple[float, float, float]) -> List[QuantumCircuit]:
    circ = QuantumCircuit(2, name="core1")
    circ.cx(0, 1)
    return [circ]


def _core_two_cx(coords: Tuple[float, float, float]) -> List[QuantumCircuit]:
    x, y, _ = coords
    cores = []
    for first, second in ((x, y), (y, x)):
        for s1, s2 in itertools.product((-1.0, 1.0), repeat=2):
            circ = QuantumCircuit(2, name="core2")
            circ.cx(0, 1)
            circ.rx(s1 * 2.0 * first, 0)
            circ.rz(s2 * 2.0 * second, 1)
            circ.cx(0, 1)
            cores.append(circ)
    return cores


class _ThreeCXTemplate:
    """Vatan-Williams style three-CNOT template with a cached angle convention.

    The template structure is fixed; the exact affine relation between the canonical
    coordinates and the three middle rotation angles is discovered numerically on first use
    (by matching the template's own canonical coordinates against a probe target) and cached.
    """

    _cached_variant: Optional[Tuple[int, Tuple[int, ...], Tuple[float, ...], Tuple[float, ...]]] = None

    @staticmethod
    def _build(structure: int, angles: Tuple[float, float, float]) -> QuantumCircuit:
        t1, t2, t3 = angles
        circ = QuantumCircuit(2, name="core3")
        if structure == 0:
            circ.cx(1, 0)
            circ.rz(t1, 0)
            circ.ry(t2, 1)
            circ.cx(0, 1)
            circ.ry(t3, 1)
            circ.cx(1, 0)
        else:
            circ.cx(0, 1)
            circ.rz(t1, 1)
            circ.ry(t2, 0)
            circ.cx(1, 0)
            circ.ry(t3, 0)
            circ.cx(0, 1)
        return circ

    @classmethod
    def _variants(cls):
        perms = list(itertools.permutations(range(3)))
        signs = list(itertools.product((1.0, -1.0), repeat=3))
        offsets = list(itertools.product((_HALF_PI, -_HALF_PI), repeat=3))
        for structure in (0, 1):
            for perm in perms:
                for sign in signs:
                    for offset in offsets:
                        yield structure, perm, sign, offset

    @classmethod
    def _angles_for(cls, coords, perm, sign, offset) -> Tuple[float, float, float]:
        picked = [coords[perm[0]], coords[perm[1]], coords[perm[2]]]
        return tuple(s * 2.0 * v + o for s, v, o in zip(sign, picked, offset))

    @classmethod
    def candidates(cls, coords: Tuple[float, float, float]) -> List[QuantumCircuit]:
        """Template circuits to try for the given target coordinates (cached variant first)."""
        results: List[QuantumCircuit] = []
        if cls._cached_variant is not None:
            structure, perm, sign, offset = cls._cached_variant
            results.append(cls._build(structure, cls._angles_for(coords, perm, sign, offset)))
            return results
        # First use: search for a variant that reproduces two generic probe classes, cache it.
        probes = [(0.31, 0.23, 0.11), (0.52, 0.17, 0.05)]
        for structure, perm, sign, offset in cls._variants():
            matched = True
            for probe in probes:
                circ = cls._build(structure, cls._angles_for(probe, perm, sign, offset))
                try:
                    found = weyl_coordinates(circ.to_matrix())
                except SynthesisError:
                    matched = False
                    break
                if not np.allclose(found, canonicalize_coordinates(probe), atol=1e-6):
                    matched = False
                    break
            if matched:
                cls._cached_variant = (structure, perm, sign, offset)
                return cls.candidates(coords)
        return results


def _core_fallback(coords: Tuple[float, float, float]) -> QuantumCircuit:
    """Exact construction of ``A(x,y,z)`` with 4 CNOTs — always correct, used as a fallback."""
    x, y, z = coords
    circ = QuantumCircuit(2, name="core_fallback")
    # exp(i(x XX + z ZZ)) = CX (Rx(-2x) on q0)(Rz(-2z) on q1) CX
    circ.cx(0, 1)
    circ.rx(-2.0 * x, 0)
    circ.rz(-2.0 * z, 1)
    circ.cx(0, 1)
    # exp(i y YY) = (S x S) . CX (Rx(-2y) on q0) CX . (Sdg x Sdg)
    circ.sdg(0)
    circ.sdg(1)
    circ.cx(0, 1)
    circ.rx(-2.0 * y, 0)
    circ.cx(0, 1)
    circ.s(0)
    circ.s(1)
    return circ


@dataclass
class SynthesisResult:
    """Outcome of two-qubit synthesis."""

    circuit: QuantumCircuit
    cnot_count: int
    optimal: bool
    global_phase: float


class TwoQubitSynthesizer:
    """Re-synthesise arbitrary two-qubit unitaries into CNOT + single-qubit gates."""

    def __init__(self, atol: float = 1e-6) -> None:
        self.atol = atol

    # -- public API ---------------------------------------------------------

    def synthesize(self, unitary: np.ndarray) -> SynthesisResult:
        """Return a two-qubit circuit implementing ``unitary`` up to global phase."""
        unitary = np.asarray(unitary, dtype=complex)
        decomposition = weyl_decompose(unitary)
        target_count = decomposition.cnot_count()
        coords = decomposition.coords

        candidate_cores: List[QuantumCircuit] = []
        if target_count == 0:
            candidate_cores.extend(_core_identity(coords))
        elif target_count == 1:
            candidate_cores.extend(_core_single_cx(coords))
        elif target_count == 2:
            candidate_cores.extend(_core_two_cx(coords))
        else:
            candidate_cores.extend(_ThreeCXTemplate.candidates(coords))

        for core in candidate_cores:
            built = self._assemble(unitary, core, decomposition)
            if built is not None:
                return SynthesisResult(
                    circuit=built[0],
                    cnot_count=core.cx_count(),
                    optimal=core.cx_count() == target_count,
                    global_phase=built[1],
                )

        # Guaranteed fallback: synthesise A(a,b,c) exactly and sandwich with the local factors.
        fallback = _core_fallback(coords)
        built = self._assemble(unitary, fallback, decomposition)
        if built is None:
            raise SynthesisError("two-qubit synthesis fallback failed verification")
        return SynthesisResult(
            circuit=built[0],
            cnot_count=fallback.cx_count(),
            optimal=fallback.cx_count() == target_count,
            global_phase=built[1],
        )

    def cnot_cost(self, unitary: np.ndarray) -> int:
        """Minimal CNOT count of a unitary (no circuit construction)."""
        return cnot_count(unitary)

    # -- internals ----------------------------------------------------------

    def _assemble(
        self,
        target: np.ndarray,
        core: QuantumCircuit,
        dec_target: Optional[WeylDecomposition] = None,
    ) -> Optional[Tuple[QuantumCircuit, float]]:
        """Wrap ``core`` with single-qubit locals so the result implements ``target``."""
        try:
            core_matrix = core.to_matrix()
            if dec_target is None:
                dec_target = weyl_decompose(target)
            dec_core = weyl_decompose(core_matrix)
        except SynthesisError:
            return None
        if not np.allclose(dec_target.coords, dec_core.coords, atol=1e-5):
            return None

        left = dec_target.k1 @ dec_core.k1.conj().T
        right = dec_core.k2.conj().T @ dec_target.k2
        phase = dec_target.phase - dec_core.phase
        candidate = cmath.exp(1j * phase) * (left @ core_matrix @ right)
        if not np.allclose(candidate, target, atol=5e-6):
            return None

        try:
            g_l, left_q1, left_q0 = kron_factor_4x4(left)
            g_r, right_q1, right_q0 = kron_factor_4x4(right)
        except SynthesisError:
            return None
        phase += cmath.phase(g_l) + cmath.phase(g_r)

        circuit = QuantumCircuit(2, name="synth2q")
        self._append_1q(circuit, right_q0, 0)
        self._append_1q(circuit, right_q1, 1)
        for inst in core.data:
            circuit.append(inst.gate.copy(), inst.qubits)
        self._append_1q(circuit, left_q0, 0)
        self._append_1q(circuit, left_q1, 1)

        # Final verification of the emitted circuit (up to global phase).
        emitted = circuit.to_matrix()
        overlap = np.trace(emitted.conj().T @ target) / 4.0
        if abs(abs(overlap) - 1.0) > 1e-5:
            return None
        return circuit, float(phase)

    @staticmethod
    def _append_1q(circuit: QuantumCircuit, matrix: np.ndarray, qubit: int) -> None:
        theta, phi, lam, _ = u_params_from_matrix(matrix)
        if abs(theta) < 1e-9 and abs(phi + lam) < 1e-9:
            return
        circuit.u(theta, phi, lam, qubit)


def synthesize_two_qubit(unitary: np.ndarray) -> QuantumCircuit:
    """Convenience wrapper returning only the synthesised circuit."""
    return TwoQubitSynthesizer().synthesize(unitary).circuit

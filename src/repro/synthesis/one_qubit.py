"""Single-qubit unitary synthesis (ZYZ Euler angles and the {rz, sx, x} hardware basis).

This is the machinery behind the ``Optimize1qGates`` pass: runs of adjacent single-qubit
gates are multiplied together and re-synthesised into at most three basis rotations.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..exceptions import SynthesisError
from .linalg import global_phase_between, is_unitary

_ATOL = 1e-9


@dataclass(frozen=True)
class EulerAngles:
    """ZYZ Euler decomposition ``U = exp(i*phase) * Rz(phi) * Ry(theta) * Rz(lam)``."""

    theta: float
    phi: float
    lam: float
    phase: float

    def as_u_params(self) -> Tuple[float, float, float, float]:
        """Return ``(theta, phi, lam, gamma)`` such that ``U = exp(i*gamma) * u(theta, phi, lam)``.

        The ``u`` gate defined in :mod:`repro.circuit.gates` equals
        ``exp(i*(phi+lam)/2) * Rz(phi) * Ry(theta) * Rz(lam)``.
        """
        gamma = self.phase - (self.phi + self.lam) / 2.0
        return self.theta, self.phi, self.lam, gamma


def _rz_matrix(theta: float) -> np.ndarray:
    return np.array(
        [[cmath.exp(-1j * theta / 2.0), 0], [0, cmath.exp(1j * theta / 2.0)]], dtype=complex
    )


def _ry_matrix(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array([[c, -s], [s, c]], dtype=complex)


#: Memoised decompositions keyed on the exact matrix bytes.  Runs of identical
#: single-qubit products recur heavily across optimization-loop iterations and circuits;
#: ``EulerAngles`` is frozen, so sharing the result is safe and bit-identical.
_ZYZ_CACHE: dict = {}
_ZYZ_CACHE_LIMIT = 100000


def zyz_decompose(matrix: np.ndarray) -> EulerAngles:
    """ZYZ Euler angles of an arbitrary 2x2 unitary."""
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.shape != (2, 2) or not is_unitary(matrix, tol=1e-7):
        raise SynthesisError("zyz_decompose expects a 2x2 unitary matrix")
    key = matrix.tobytes()
    cached = _ZYZ_CACHE.get(key)
    if cached is not None:
        return cached
    angles = _zyz_decompose_uncached(matrix)
    if len(_ZYZ_CACHE) < _ZYZ_CACHE_LIMIT:
        _ZYZ_CACHE[key] = angles
    return angles


def _zyz_decompose_uncached(matrix: np.ndarray) -> EulerAngles:
    det = np.linalg.det(matrix)
    phase = 0.5 * cmath.phase(det)
    su2 = matrix * cmath.exp(-1j * phase)

    # su2 = [[cos(t/2) e^{-i(phi+lam)/2}, -sin(t/2) e^{-i(phi-lam)/2}],
    #        [sin(t/2) e^{ i(phi-lam)/2},  cos(t/2) e^{ i(phi+lam)/2}]]
    abs00 = min(1.0, abs(su2[0, 0]))
    theta = 2.0 * math.acos(abs00)
    if abs(su2[0, 0]) > _ATOL and abs(su2[1, 0]) > _ATOL:
        phi_plus_lam = 2.0 * cmath.phase(su2[1, 1])
        phi_minus_lam = 2.0 * cmath.phase(su2[1, 0])
        phi = (phi_plus_lam + phi_minus_lam) / 2.0
        lam = (phi_plus_lam - phi_minus_lam) / 2.0
    elif abs(su2[1, 0]) <= _ATOL:
        # theta ~ 0: only the sum phi + lam is defined.
        theta = 0.0
        phi = 2.0 * cmath.phase(su2[1, 1])
        lam = 0.0
    else:
        # theta ~ pi: only the difference phi - lam is defined.
        theta = math.pi
        phi = 2.0 * cmath.phase(su2[1, 0])
        lam = 0.0

    reconstructed = cmath.exp(1j * phase) * (
        _rz_matrix(phi) @ _ry_matrix(theta) @ _rz_matrix(lam)
    )
    correction = global_phase_between(matrix, reconstructed)
    if correction is None or abs(correction) > 1e-6:
        # Re-derive the phase directly if the determinant branch was off by pi.
        correction = global_phase_between(
            matrix, _rz_matrix(phi) @ _ry_matrix(theta) @ _rz_matrix(lam)
        )
        if correction is None:
            raise SynthesisError("ZYZ decomposition failed to reproduce the unitary")
        phase = correction
    else:
        phase += correction

    return EulerAngles(theta=theta, phi=phi, lam=lam, phase=phase)


def u_params_from_matrix(matrix: np.ndarray) -> Tuple[float, float, float, float]:
    """Parameters ``(theta, phi, lam, gamma)`` with ``U = exp(i*gamma) * u(theta, phi, lam)``."""
    return zyz_decompose(matrix).as_u_params()


def _normalize_angle(angle: float) -> float:
    """Map an angle into ``(-pi, pi]``."""
    angle = math.fmod(angle, 2.0 * math.pi)
    if angle <= -math.pi:
        angle += 2.0 * math.pi
    elif angle > math.pi:
        angle -= 2.0 * math.pi
    return angle


def synthesize_zsx(matrix: np.ndarray, tol: float = 1e-10) -> List[Tuple[str, Tuple[float, ...]]]:
    """Synthesise a 2x2 unitary into the ``{rz, sx, x}`` hardware basis.

    Returns a list of ``(gate_name, params)`` tuples whose product equals the input up to a
    global phase, using at most two ``sx`` gates (the standard ZSXZSXZ form):

    ``U ~ Rz(phi + pi) . SX . Rz(theta + pi) . SX . Rz(lam)``
    """
    angles = zyz_decompose(matrix)
    theta = _normalize_angle(angles.theta)
    phi = _normalize_angle(angles.phi)
    lam = _normalize_angle(angles.lam)

    ops: List[Tuple[str, Tuple[float, ...]]] = []

    def add_rz(angle: float) -> None:
        angle = _normalize_angle(angle)
        if abs(angle) > tol:
            ops.append(("rz", (angle,)))

    if abs(theta) <= tol or abs(abs(theta) - 2.0 * math.pi) <= tol:
        # Pure phase rotation.
        add_rz(phi + lam)
    else:
        # General case (the ZSXZSXZ identity, derived in the tests):
        #   Rz(phi+pi) . SX . Rz(theta+pi) . SX . Rz(lam)  ==  Rz(phi) Ry(theta) Rz(lam)
        # up to a global phase.  The list below is in circuit (application) order.
        seq: List[Tuple[str, Tuple[float, ...]]] = [
            ("rz", (_normalize_angle(lam),)),
            ("sx", ()),
            ("rz", (_normalize_angle(theta + math.pi),)),
            ("sx", ()),
            ("rz", (_normalize_angle(phi + math.pi),)),
        ]
        ops = [op for op in seq if not (op[0] == "rz" and abs(op[1][0]) <= tol)]

    return ops


def matrix_of_ops(ops: List[Tuple[str, Tuple[float, ...]]]) -> np.ndarray:
    """Multiply a list of ``(name, params)`` ops (applied left-to-right) into a 2x2 matrix."""
    from ..circuit.gates import Gate

    total = np.eye(2, dtype=complex)
    for name, params in ops:
        total = Gate(name, params).matrix() @ total
    return total


def synthesis_error(matrix: np.ndarray, ops: List[Tuple[str, Tuple[float, ...]]]) -> float:
    """Frobenius distance (up to global phase) between a matrix and a synthesised sequence."""
    approx = matrix_of_ops(ops)
    phase = global_phase_between(matrix, approx)
    if phase is None:
        return float("inf")
    return float(np.linalg.norm(matrix - np.exp(1j * phase) * approx))

"""Unitary synthesis: single-qubit Euler decompositions and two-qubit Weyl/KAK synthesis."""

from .linalg import (
    MAGIC_BASIS,
    allclose_up_to_global_phase,
    closest_unitary,
    fidelity_distance,
    global_phase_between,
    is_unitary,
    kron_factor_4x4,
)
from .one_qubit import EulerAngles, synthesize_zsx, u_params_from_matrix, zyz_decompose
from .two_qubit import (
    SynthesisResult,
    TwoQubitSynthesizer,
    WeylDecomposition,
    canonical_matrix,
    canonicalize_coordinates,
    cnot_count,
    cnot_count_from_coordinates,
    synthesize_two_qubit,
    weyl_coordinates,
    weyl_decompose,
)

__all__ = [
    "MAGIC_BASIS",
    "allclose_up_to_global_phase",
    "closest_unitary",
    "fidelity_distance",
    "global_phase_between",
    "is_unitary",
    "kron_factor_4x4",
    "EulerAngles",
    "synthesize_zsx",
    "u_params_from_matrix",
    "zyz_decompose",
    "SynthesisResult",
    "TwoQubitSynthesizer",
    "WeylDecomposition",
    "canonical_matrix",
    "canonicalize_coordinates",
    "cnot_count",
    "cnot_count_from_coordinates",
    "synthesize_two_qubit",
    "weyl_coordinates",
    "weyl_decompose",
]

"""Linear-algebra helpers shared by the synthesis routines."""

from __future__ import annotations

import cmath
import math
from typing import Optional, Tuple

import numpy as np

from ..exceptions import SynthesisError

#: Magic (Bell) basis transformation used by the Weyl/KAK decomposition.
MAGIC_BASIS = (1.0 / math.sqrt(2.0)) * np.array(
    [
        [1, 0, 0, 1j],
        [0, 1j, 1, 0],
        [0, 1j, -1, 0],
        [1, 0, 0, -1j],
    ],
    dtype=complex,
)

PAULI_X = np.array([[0, 1], [1, 0]], dtype=complex)
PAULI_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
PAULI_Z = np.array([[1, 0], [0, -1]], dtype=complex)
PAULI_I = np.eye(2, dtype=complex)


#: Default relative tolerance of :func:`numpy.allclose`.  Every scalar fast path that
#: replicates an ``allclose`` predicate (here, ``optimize_1q``, ``commutation``) imports
#: this single constant so the tolerance contract cannot silently diverge.
ALLCLOSE_RTOL = 1.0e-5


def is_unitary(matrix: np.ndarray, tol: float = 1e-9) -> bool:
    """True if the matrix is unitary within tolerance."""
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    if matrix.shape == (2, 2):
        # Scalar 2x2 path (the single-qubit synthesis hot loop): same product, same
        # ``allclose`` predicate (|x - y| <= atol + rtol*|y| against the identity),
        # without the ~50us ufunc dispatch of the array route.
        a, b = complex(matrix[0, 0]), complex(matrix[0, 1])
        c, d = complex(matrix[1, 0]), complex(matrix[1, 1])
        p00 = a * a.conjugate() + b * b.conjugate()
        p01 = a * c.conjugate() + b * d.conjugate()
        p11 = c * c.conjugate() + d * d.conjugate()
        diag_tol = tol + ALLCLOSE_RTOL
        # The (1, 0) product entry is exactly conj(p01), so |p01| covers both.
        return (
            abs(p00 - 1.0) <= diag_tol
            and abs(p11 - 1.0) <= diag_tol
            and abs(p01) <= tol
        )
    ident = np.eye(matrix.shape[0])
    return bool(np.allclose(matrix @ matrix.conj().T, ident, atol=tol))


def global_phase_between(target: np.ndarray, candidate: np.ndarray) -> Optional[float]:
    """Phase ``gamma`` such that ``target ~= exp(i*gamma) * candidate``, or None."""
    target = np.asarray(target, dtype=complex)
    candidate = np.asarray(candidate, dtype=complex)
    if target.shape != candidate.shape:
        return None
    # Use the largest-magnitude entry of candidate to estimate the relative phase.
    idx = np.unravel_index(np.argmax(np.abs(candidate)), candidate.shape)
    if abs(candidate[idx]) < 1e-12:
        return None
    phase = target[idx] / candidate[idx]
    if abs(abs(phase) - 1.0) > 1e-6:
        return None
    return float(np.angle(phase))


def allclose_up_to_global_phase(a: np.ndarray, b: np.ndarray, tol: float = 1e-7) -> bool:
    """True if ``a`` equals ``b`` up to a global phase."""
    phase = global_phase_between(a, b)
    if phase is None:
        return False
    return bool(np.allclose(a, np.exp(1j * phase) * b, atol=tol))


def closest_unitary(matrix: np.ndarray) -> np.ndarray:
    """Project a nearly-unitary matrix onto the unitary group (polar decomposition)."""
    v, _, wh = np.linalg.svd(matrix)
    return v @ wh


def kron_factor_4x4(matrix: np.ndarray, tol: float = 1e-6) -> Tuple[complex, np.ndarray, np.ndarray]:
    """Factor a 4x4 matrix as ``g * kron(A, B)``.

    In the little-endian convention used by this package, a product operator acting with
    ``B`` on qubit 0 and ``A`` on qubit 1 has matrix ``kron(A, B)``.  Raises
    :class:`SynthesisError` if the matrix is not (close to) a product operator.
    """
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.shape != (4, 4):
        raise SynthesisError("kron_factor_4x4 expects a 4x4 matrix")
    # Rearrange M[2*i1+i0, 2*j1+j0] -> R[(i1,j1), (i0,j0)] and find the best rank-1 factor.
    reshaped = matrix.reshape(2, 2, 2, 2).transpose(0, 2, 1, 3).reshape(4, 4)
    u, s, vh = np.linalg.svd(reshaped)
    if s[1] > tol * max(s[0], 1.0):
        raise SynthesisError("matrix is not a tensor product of single-qubit operators")
    a = u[:, 0].reshape(2, 2) * math.sqrt(s[0])
    b = vh[0, :].reshape(2, 2) * math.sqrt(s[0])
    # Normalise so that A and B are unitary and the residual scale goes to the global factor.
    norm_a = np.sqrt(abs(np.linalg.det(a)))
    norm_b = np.sqrt(abs(np.linalg.det(b)))
    if norm_a < 1e-12 or norm_b < 1e-12:
        raise SynthesisError("degenerate tensor factor")
    a_unit = a / norm_a
    b_unit = b / norm_b
    g = complex(norm_a * norm_b)
    # Absorb any residual phase mismatch into g.
    approx = g * np.kron(a_unit, b_unit)
    phase = global_phase_between(matrix, approx)
    if phase is None:
        raise SynthesisError("tensor factorisation failed")
    g *= cmath.exp(1j * phase)
    if not np.allclose(matrix, g * np.kron(a_unit, b_unit), atol=1e-6):
        raise SynthesisError("tensor factorisation verification failed")
    return g, a_unit, b_unit


def random_special_unitary(dim: int, rng: np.random.Generator) -> np.ndarray:
    """Haar-ish random SU(dim) matrix (used only for numerical probing)."""
    mat = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    q, r = np.linalg.qr(mat)
    q = q * (np.diag(r) / np.abs(np.diag(r)))
    det = np.linalg.det(q)
    return q * det ** (-1.0 / dim)


def fidelity_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Distance ``1 - |tr(A^dag B)| / dim`` (0 when equal up to global phase)."""
    a = np.asarray(a, dtype=complex)
    b = np.asarray(b, dtype=complex)
    dim = a.shape[0]
    return float(1.0 - abs(np.trace(a.conj().T @ b)) / dim)

"""Synthetic device calibration data.

The paper's noise-aware experiments (Sec. IV-G and VI-D) use the calibration data of the
real ``ibmq_montreal`` device.  That data is not available offline, so this module generates
a deterministic synthetic calibration with error-rate distributions matching the values IBM
published for the Falcon family (CNOT error around 0.6-1.5e-2, single-qubit error around
2-5e-4, readout error around 1-3e-2).  Only *relative* link quality matters for the HA
distance matrix and for the success-rate comparison, which the synthetic data preserves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..exceptions import CalibrationError
from .coupling import CouplingMap
from .topologies import montreal_coupling_map

#: Default measurement duration (seconds) used when a calibration carries no per-qubit
#: readout timing — the middle of the 1-5 us range IBM publishes for the Falcon family.
DEFAULT_MEASURE_DURATION = 3.0e-6


@dataclass
class DeviceCalibration:
    """Per-qubit and per-link calibration properties of a device."""

    coupling_map: CouplingMap
    cx_error: Dict[Tuple[int, int], float] = field(default_factory=dict)
    cx_duration: Dict[Tuple[int, int], float] = field(default_factory=dict)
    single_qubit_error: Dict[int, float] = field(default_factory=dict)
    single_qubit_duration: Dict[int, float] = field(default_factory=dict)
    readout_error: Dict[int, float] = field(default_factory=dict)
    t1: Dict[int, float] = field(default_factory=dict)
    t2: Dict[int, float] = field(default_factory=dict)
    #: Per-qubit measurement duration (seconds).  Optional: qubits without an entry
    #: fall back to :data:`DEFAULT_MEASURE_DURATION`, so pre-existing calibrations keep
    #: working and the schedule IR has a forward-compatible slot for dynamic circuits.
    measure_duration: Dict[int, float] = field(default_factory=dict)

    def _edge_key(self, a: int, b: int) -> Tuple[int, int]:
        return (min(a, b), max(a, b))

    def cx_error_rate(self, a: int, b: int) -> float:
        """CNOT error rate of a physical link."""
        return self.cx_error[self._edge_key(a, b)]

    def cx_gate_time(self, a: int, b: int) -> float:
        """CNOT duration (seconds) of a physical link."""
        return self.cx_duration[self._edge_key(a, b)]

    def gate_error(self, name: str, qubits: Tuple[int, ...]) -> float:
        """Error rate of an arbitrary basis gate application.

        Two-qubit gates on pairs that are not device links (possible for circuits that have
        not been routed yet) fall back to the device-average CNOT error.
        """
        if len(qubits) == 2:
            key = self._edge_key(*qubits)
            if key in self.cx_error:
                return self.cx_error[key]
            return self.average_cx_error()
        if len(qubits) == 1:
            return self.single_qubit_error[qubits[0]]
        # Multi-qubit gates are decomposed before execution; treat as the max link error.
        return max(self.cx_error.values())

    def average_cx_error(self) -> float:
        return float(np.mean(list(self.cx_error.values())))

    def average_cx_duration(self) -> float:
        """Device-mean CNOT duration (seconds)."""
        return float(np.mean(list(self.cx_duration.values())))

    def measure_duration_for(self, qubit: int) -> float:
        """Measurement duration (seconds) of a qubit, with the device default fallback."""
        return self.measure_duration.get(qubit, DEFAULT_MEASURE_DURATION)

    def gate_duration(self, name: str, qubits: Tuple[int, ...]) -> float:
        """Duration (seconds) of an arbitrary basis-gate application.

        Mirrors :meth:`gate_error`'s fallback behaviour: two-qubit gates on pairs that
        are not device links (possible for circuits that have not been routed yet) use
        the device-average CNOT duration.  Directive pseudo-gates (``barrier``) take no
        time; ``measure``/``reset`` use the per-qubit measurement duration.
        """
        if name == "barrier":
            return 0.0
        if name in ("measure", "reset"):
            return max(self.measure_duration_for(q) for q in qubits) if qubits else 0.0
        if len(qubits) == 2:
            key = self._edge_key(*qubits)
            if key in self.cx_duration:
                return self.cx_duration[key]
            if not self.cx_duration:
                raise CalibrationError(
                    "calibration has no cx_duration entries; cannot time two-qubit gates"
                )
            return self.average_cx_duration()
        if len(qubits) == 1:
            q = qubits[0]
            if q not in self.single_qubit_duration:
                raise CalibrationError(
                    f"calibration has no single_qubit_duration entry for qubit {q}"
                )
            return self.single_qubit_duration[q]
        # Multi-qubit gates are decomposed before execution; bound by the slowest link.
        return max(self.cx_duration.values()) if self.cx_duration else 0.0

    def validate_for(self, coupling_map: CouplingMap) -> None:
        """Check this calibration can time every gate a routed circuit may contain.

        Raises a :class:`~repro.exceptions.CalibrationError` listing *all* missing
        ``cx_duration`` edges and ``single_qubit_duration`` qubits at once (instead of
        the bare ``KeyError`` that :meth:`cx_gate_time` would raise on first use).
        """
        missing_edges = [
            edge for edge in coupling_map.edges
            if self._edge_key(*edge) not in self.cx_duration
        ]
        missing_qubits = [
            q for q in range(coupling_map.num_qubits)
            if q not in self.single_qubit_duration
        ]
        if not missing_edges and not missing_qubits:
            return
        problems = []
        if missing_edges:
            shown = ", ".join(str(e) for e in missing_edges[:8])
            suffix = ", ..." if len(missing_edges) > 8 else ""
            problems.append(
                f"{len(missing_edges)} coupling edge(s) without cx_duration: {shown}{suffix}"
            )
        if missing_qubits:
            shown = ", ".join(str(q) for q in missing_qubits[:16])
            suffix = ", ..." if len(missing_qubits) > 16 else ""
            problems.append(
                f"{len(missing_qubits)} qubit(s) without single_qubit_duration: "
                f"{shown}{suffix}"
            )
        raise CalibrationError(
            "calibration cannot time this device: " + "; ".join(problems)
        )

    def best_qubit(self) -> int:
        """Qubit with the lowest readout error (used by layout heuristics)."""
        return min(self.readout_error, key=self.readout_error.get)

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict:
        """JSON-safe representation (used to ship calibrations to service-layer workers)."""

        def _edge_map(mapping: Dict[Tuple[int, int], float]) -> list:
            return [[a, b, value] for (a, b), value in sorted(mapping.items())]

        def _qubit_map(mapping: Dict[int, float]) -> list:
            return [[q, value] for q, value in sorted(mapping.items())]

        return {
            "coupling_map": self.coupling_map.to_dict(),
            "cx_error": _edge_map(self.cx_error),
            "cx_duration": _edge_map(self.cx_duration),
            "single_qubit_error": _qubit_map(self.single_qubit_error),
            "single_qubit_duration": _qubit_map(self.single_qubit_duration),
            "readout_error": _qubit_map(self.readout_error),
            "t1": _qubit_map(self.t1),
            "t2": _qubit_map(self.t2),
            "measure_duration": _qubit_map(self.measure_duration),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "DeviceCalibration":
        """Rebuild a calibration from :meth:`to_dict` output."""
        return cls(
            coupling_map=CouplingMap.from_dict(data["coupling_map"]),
            cx_error={(a, b): v for a, b, v in data["cx_error"]},
            cx_duration={(a, b): v for a, b, v in data["cx_duration"]},
            single_qubit_error={q: v for q, v in data["single_qubit_error"]},
            single_qubit_duration={q: v for q, v in data["single_qubit_duration"]},
            readout_error={q: v for q, v in data["readout_error"]},
            t1={q: v for q, v in data["t1"]},
            t2={q: v for q, v in data["t2"]},
            # Absent in dicts serialised before measurement timing existed.
            measure_duration={q: v for q, v in data.get("measure_duration", [])},
        )


def synthetic_calibration(
    coupling_map: CouplingMap,
    seed: Optional[int] = 1234,
    *,
    cx_error_range: Tuple[float, float] = (6e-3, 1.5e-2),
    cx_duration_range: Tuple[float, float] = (2.5e-7, 5.5e-7),
    sq_error_range: Tuple[float, float] = (2e-4, 5e-4),
    readout_error_range: Tuple[float, float] = (1e-2, 3e-2),
) -> DeviceCalibration:
    """Generate deterministic synthetic calibration data for any coupling map."""
    rng = np.random.default_rng(seed)
    calib = DeviceCalibration(coupling_map=coupling_map)
    for a, b in coupling_map.edges:
        calib.cx_error[(a, b)] = float(rng.uniform(*cx_error_range))
        calib.cx_duration[(a, b)] = float(rng.uniform(*cx_duration_range))
    for q in range(coupling_map.num_qubits):
        calib.single_qubit_error[q] = float(rng.uniform(*sq_error_range))
        calib.single_qubit_duration[q] = 3.5e-8
        calib.readout_error[q] = float(rng.uniform(*readout_error_range))
        calib.t1[q] = float(rng.uniform(8e-5, 1.5e-4))
        calib.t2[q] = float(rng.uniform(5e-5, 1.2e-4))
        calib.measure_duration[q] = DEFAULT_MEASURE_DURATION
    return calib


def fake_montreal_calibration(seed: int = 20211215) -> DeviceCalibration:
    """Synthetic stand-in for the ``FakeMontreal`` calibration shipped with the paper artifact."""
    return synthetic_calibration(montreal_coupling_map(), seed=seed)

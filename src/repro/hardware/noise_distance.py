"""Noise-aware distance matrices (the HA heuristic of Niu et al., paper Eq. 3).

Both SABRE and NASSC can be made noise-aware by replacing the hop-count distance matrix
``D`` with a weighted combination of CNOT error rate, SWAP execution time and hop count::

    D_noise[i][j] = alpha1 * eps[i][j] + alpha2 * T[i][j] + alpha3 * D[i][j]

The per-edge terms are normalised over the device and accumulated along shortest paths so
that the matrix remains a metric usable by the routing heuristics.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx
import numpy as np

from .calibration import DeviceCalibration
from .coupling import CouplingMap


def hop_distance_matrix(coupling_map: CouplingMap) -> np.ndarray:
    """Plain shortest-path hop-count distance matrix."""
    return coupling_map.distance_matrix().copy()


def noise_aware_distance_matrix(
    calibration: DeviceCalibration,
    alpha1: float = 0.5,
    alpha2: float = 0.0,
    alpha3: float = 0.5,
) -> np.ndarray:
    """HA-style distance matrix combining error rate, gate time and hop count.

    The paper uses ``alpha1 = 0.5, alpha2 = 0.0, alpha3 = 0.5`` (Sec. IV-G).  Each per-edge
    quantity is normalised by its device-wide maximum before being combined, then the
    resulting edge weights are accumulated with an all-pairs shortest path.
    """
    coupling = calibration.coupling_map
    errors = np.array([calibration.cx_error[edge] for edge in coupling.edges])
    durations = np.array([calibration.cx_duration[edge] for edge in coupling.edges])
    max_error = float(errors.max()) if errors.size else 1.0
    max_duration = float(durations.max()) if durations.size else 1.0

    graph = nx.Graph()
    graph.add_nodes_from(range(coupling.num_qubits))
    for (a, b), err, dur in zip(coupling.edges, errors, durations):
        weight = (
            alpha1 * (err / max_error)
            + alpha2 * (dur / max_duration)
            + alpha3 * 1.0
        )
        graph.add_edge(a, b, weight=float(weight))

    num = coupling.num_qubits
    matrix = np.full((num, num), np.inf)
    lengths = dict(nx.all_pairs_dijkstra_path_length(graph, weight="weight"))
    for src, targets in lengths.items():
        for dst, value in targets.items():
            matrix[src, dst] = value
    return matrix


def swap_error_on_edge(calibration: DeviceCalibration, a: int, b: int) -> float:
    """Approximate error of a SWAP on a link (three CNOTs)."""
    eps = calibration.cx_error_rate(a, b)
    return 1.0 - (1.0 - eps) ** 3


def swap_duration_on_edge(calibration: DeviceCalibration, a: int, b: int) -> float:
    """Duration (seconds) of a SWAP on a link: three back-to-back CNOTs."""
    return 3.0 * calibration.cx_gate_time(a, b)


def duration_distance_matrix(
    calibration: DeviceCalibration, alpha_duration: float = 0.7
) -> np.ndarray:
    """Duration-aware routing distance: the nanosecond extension of the HA matrix.

    Routing on this matrix scores SWAP candidates by the *time* the inserted SWAPs cost
    on their specific links rather than by unit hop count — the paper's "not all SWAPs
    have the same cost" argument applied to latency instead of error rate.  Each edge is
    weighted by its normalised CNOT duration blended with the unit hop term
    (``alpha_duration`` on the duration, the remainder on hops, mirroring Eq. 3 with
    ``alpha1 = 0``), so slow links are avoided without abandoning shortest-hop routing.

    The default weight comes from a sweep over the tracked evaluation grid
    (``linear_25 + montreal`` x the quick table suite, sabre / O1 / seed 0): weights
    below ~0.6 track hop routing too closely to exploit fast links, while 0.7 shortens
    the ASAP critical path on 9 of the 14 grid cases with the smallest total-duration
    regression on the rest (see ``duration_cost_summary`` in the benchmark report).
    """
    return noise_aware_distance_matrix(
        calibration, alpha1=0.0, alpha2=alpha_duration, alpha3=1.0 - alpha_duration
    )

"""The :class:`Target`: one immutable description of the device being compiled for.

Historically every layer of the system shipped the same loose bundle of device kwargs
around (``coupling_map``, ``calibration``, ``noise_aware``, ``final_basis``, ...).  The
``Target`` replaces that bundle with a single JSON-round-trippable object, mirroring the
device-target design Qiskit converged on for exactly the same pressure: one place that
answers "what device am I compiling for?" for the pipeline builder, the routing plugins,
the batch service's content-addressed cache, and the CLI.

A target is immutable after construction; derived data (the noise-aware distance matrix)
is built lazily and memoised, so passing one target through a whole batch of compiles
never recomputes device analysis.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..exceptions import ReproError
from .calibration import DeviceCalibration, synthetic_calibration
from .coupling import CouplingMap
from .noise_distance import duration_distance_matrix, noise_aware_distance_matrix
from .topologies import get_topology


@dataclass(frozen=True, eq=False)
class Target:
    """Immutable, serialisable description of a compilation target.

    Parameters
    ----------
    coupling_map:
        Device connectivity.  ``None`` describes an abstract all-to-all target (no
        routing constraint; only ``routing="none"`` pipelines accept it).
    calibration:
        Optional per-qubit/per-link calibration data.  Required for noise-aware routing;
        its presence is what lets optimization level ``O3`` switch on noise-aware layout.
    final_basis:
        Single-qubit basis of the compiled output (``"zsx"`` or ``"u"``).
    name:
        Display name; defaults to the coupling map's name.
    """

    coupling_map: Optional[CouplingMap] = None
    calibration: Optional[DeviceCalibration] = None
    final_basis: str = "zsx"
    name: str = ""
    _noise_distance: Optional[np.ndarray] = field(
        default=None, init=False, repr=False, compare=False
    )
    _duration_distance: Optional[np.ndarray] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.coupling_map is None and self.calibration is not None:
            object.__setattr__(self, "coupling_map", self.calibration.coupling_map)
        if not self.name:
            derived = self.coupling_map.name if self.coupling_map is not None else "abstract"
            object.__setattr__(self, "name", derived)

    # -- construction --------------------------------------------------------

    @classmethod
    def from_topology(
        cls,
        topology: str,
        num_qubits: int = 25,
        *,
        calibrated: bool = False,
        calibration_seed: Optional[int] = 1234,
        final_basis: str = "zsx",
    ) -> "Target":
        """Build a target for one of the named evaluation topologies.

        ``calibrated=True`` attaches the deterministic synthetic calibration (the same
        data the noise-aware CLI path has always used).
        """
        coupling = get_topology(topology, num_qubits)
        calibration = synthetic_calibration(coupling, seed=calibration_seed) if calibrated else None
        return cls(coupling_map=coupling, calibration=calibration, final_basis=final_basis)

    # -- basic queries -------------------------------------------------------

    @property
    def num_qubits(self) -> Optional[int]:
        return self.coupling_map.num_qubits if self.coupling_map is not None else None

    @property
    def has_coupling(self) -> bool:
        return self.coupling_map is not None

    @property
    def has_calibration(self) -> bool:
        return self.calibration is not None

    def distance_matrix(self) -> np.ndarray:
        """Hop-count all-pairs distance matrix of the device (cached by the coupling map)."""
        if self.coupling_map is None:
            raise ReproError("target has no coupling map")
        return self.coupling_map.distance_matrix()

    def noise_distance_matrix(self) -> np.ndarray:
        """The HA noise-aware distance matrix, built lazily from the calibration and memoised."""
        if self.calibration is None:
            raise ReproError(f"target {self.name!r} has no calibration data")
        if self._noise_distance is None:
            object.__setattr__(
                self, "_noise_distance", noise_aware_distance_matrix(self.calibration)
            )
        return self._noise_distance

    def duration_distance_matrix(self) -> np.ndarray:
        """The nanosecond-cost routing distance matrix, built lazily and memoised.

        Used by ``TranspileOptions(route_cost="ns")`` pipelines: SWAP candidates are
        scored by the duration-weighted distance of the links they would cross.
        """
        if self.calibration is None:
            raise ReproError(f"target {self.name!r} has no calibration data")
        if self._duration_distance is None:
            object.__setattr__(
                self, "_duration_distance", duration_distance_matrix(self.calibration)
            )
        return self._duration_distance

    # -- serialization and content addressing --------------------------------

    def to_dict(self) -> Dict:
        """JSON-safe representation; round-trips through :meth:`from_dict`."""
        return {
            "name": self.name,
            "final_basis": self.final_basis,
            "coupling_map": self.coupling_map.to_dict() if self.coupling_map else None,
            "calibration": self.calibration.to_dict() if self.calibration else None,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "Target":
        coupling = data.get("coupling_map")
        calibration = data.get("calibration")
        return cls(
            coupling_map=CouplingMap.from_dict(coupling) if coupling else None,
            calibration=DeviceCalibration.from_dict(calibration) if calibration else None,
            final_basis=data.get("final_basis", "zsx"),
            name=data.get("name", ""),
        )

    def content_dict(self) -> Dict:
        """Canonical content of the target (everything that can influence compiled output).

        The display-only ``name`` is excluded: two targets describing the same device
        compare equal and fingerprint identically whatever they are called.
        """
        data = self.to_dict()
        del data["name"]
        return data

    def fingerprint(self) -> str:
        """Deterministic sha256 content hash (stable across processes and machines)."""
        canonical = json.dumps(self.content_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # -- equality ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Target):
            return NotImplemented
        return self.content_dict() == other.content_dict()

    def __hash__(self) -> int:
        return hash(self.fingerprint())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        qubits = self.num_qubits if self.num_qubits is not None else "?"
        calibrated = "calibrated" if self.has_calibration else "uncalibrated"
        return f"Target(name={self.name!r}, qubits={qubits}, {calibrated}, basis={self.final_basis!r})"

"""Hardware models: coupling maps, the paper's evaluation topologies, and calibration data."""

from .coupling import CouplingMap
from .topologies import (
    MONTREAL_EDGES,
    fully_connected_coupling_map,
    evaluation_devices,
    get_topology,
    grid_coupling_map,
    heavy_hex_coupling_map,
    linear_coupling_map,
    montreal_coupling_map,
)
from .calibration import DeviceCalibration, fake_montreal_calibration, synthetic_calibration
from .noise_distance import (
    duration_distance_matrix,
    hop_distance_matrix,
    noise_aware_distance_matrix,
    swap_duration_on_edge,
    swap_error_on_edge,
)
from .target import Target

__all__ = [
    "CouplingMap",
    "MONTREAL_EDGES",
    "fully_connected_coupling_map",
    "evaluation_devices",
    "get_topology",
    "grid_coupling_map",
    "heavy_hex_coupling_map",
    "linear_coupling_map",
    "montreal_coupling_map",
    "DeviceCalibration",
    "fake_montreal_calibration",
    "synthetic_calibration",
    "duration_distance_matrix",
    "hop_distance_matrix",
    "noise_aware_distance_matrix",
    "swap_duration_on_edge",
    "swap_error_on_edge",
    "Target",
]

"""Device coupling maps and distance matrices.

The routing algorithms consult a :class:`CouplingMap` for qubit adjacency and the
all-pairs shortest-path distance matrix ``D`` used by both the SABRE and the NASSC cost
functions (Eq. 1 and 2 of the paper).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..exceptions import CouplingError


class CouplingMap:
    """Undirected qubit connectivity graph of a quantum device."""

    def __init__(self, edges: Iterable[Tuple[int, int]], num_qubits: Optional[int] = None,
                 name: str = "device") -> None:
        edge_set: Set[Tuple[int, int]] = set()
        max_qubit = -1
        for a, b in edges:
            a, b = int(a), int(b)
            if a == b:
                raise CouplingError(f"self-loop edge ({a}, {b}) is not allowed")
            edge_set.add((min(a, b), max(a, b)))
            max_qubit = max(max_qubit, a, b)
        self.name = name
        self.num_qubits = int(num_qubits) if num_qubits is not None else max_qubit + 1
        if self.num_qubits <= max_qubit:
            raise CouplingError("num_qubits smaller than the largest edge endpoint")
        self._edges: Tuple[Tuple[int, int], ...] = tuple(sorted(edge_set))
        self._adjacency: Dict[int, Set[int]] = {q: set() for q in range(self.num_qubits)}
        for a, b in self._edges:
            self._adjacency[a].add(b)
            self._adjacency[b].add(a)
        self._distance: Optional[np.ndarray] = None
        self._flat_adjacency: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._adjacency_matrix: Optional[np.ndarray] = None

    # ------------------------------------------------------------------

    @property
    def edges(self) -> Tuple[Tuple[int, int], ...]:
        return self._edges

    def neighbors(self, qubit: int) -> List[int]:
        self._check_qubit(qubit)
        return sorted(self._adjacency[qubit])

    def degree(self, qubit: int) -> int:
        self._check_qubit(qubit)
        return len(self._adjacency[qubit])

    def is_connected(self, a: int, b: int) -> bool:
        """True if qubits ``a`` and ``b`` share an edge."""
        self._check_qubit(a)
        self._check_qubit(b)
        return b in self._adjacency[a]

    def adjacency_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """CSR-style flat adjacency ``(indptr, indices)`` (cached).

        The neighbours of qubit ``q`` are ``indices[indptr[q]:indptr[q + 1]]``, sorted
        ascending — the array form of :meth:`neighbors` the routing hot loop iterates
        without building per-call lists.
        """
        if self._flat_adjacency is None:
            indptr = np.zeros(self.num_qubits + 1, dtype=np.intp)
            chunks = []
            for q in range(self.num_qubits):
                neighbors = sorted(self._adjacency[q])
                indptr[q + 1] = indptr[q] + len(neighbors)
                chunks.extend(neighbors)
            indices = np.asarray(chunks, dtype=np.intp)
            indptr.flags.writeable = False
            indices.flags.writeable = False
            self._flat_adjacency = (indptr, indices)
        return self._flat_adjacency

    def adjacency_matrix(self) -> np.ndarray:
        """Dense boolean adjacency matrix (cached, read-only)."""
        if self._adjacency_matrix is None:
            matrix = np.zeros((self.num_qubits, self.num_qubits), dtype=bool)
            for a, b in self._edges:
                matrix[a, b] = matrix[b, a] = True
            matrix.flags.writeable = False
            self._adjacency_matrix = matrix
        return self._adjacency_matrix

    def _check_qubit(self, qubit: int) -> None:
        if not 0 <= qubit < self.num_qubits:
            raise CouplingError(f"qubit {qubit} out of range for {self.num_qubits}-qubit device")

    # ------------------------------------------------------------------

    def distance_matrix(self) -> np.ndarray:
        """All-pairs shortest-path distances (BFS per qubit, cached)."""
        if self._distance is None:
            dist = np.full((self.num_qubits, self.num_qubits), np.inf)
            for start in range(self.num_qubits):
                dist[start, start] = 0
                frontier = [start]
                level = 0
                seen = {start}
                while frontier:
                    level += 1
                    next_frontier = []
                    for node in frontier:
                        for nb in self._adjacency[node]:
                            if nb not in seen:
                                seen.add(nb)
                                dist[start, nb] = level
                                next_frontier.append(nb)
                    frontier = next_frontier
            self._distance = dist
        return self._distance

    def distance(self, a: int, b: int) -> float:
        """Shortest-path distance between two physical qubits."""
        self._check_qubit(a)
        self._check_qubit(b)
        return float(self.distance_matrix()[a, b])

    def is_fully_connected_graph(self) -> bool:
        """True if the device graph is connected (every qubit reachable from every other)."""
        return bool(np.isfinite(self.distance_matrix()).all())

    def diameter(self) -> int:
        dist = self.distance_matrix()
        finite = dist[np.isfinite(dist)]
        return int(finite.max()) if finite.size else 0

    def shortest_path(self, a: int, b: int) -> List[int]:
        """One shortest path between two qubits (BFS with parent tracking)."""
        self._check_qubit(a)
        self._check_qubit(b)
        if a == b:
            return [a]
        parents: Dict[int, int] = {a: a}
        frontier = [a]
        while frontier:
            next_frontier = []
            for node in frontier:
                for nb in sorted(self._adjacency[node]):
                    if nb not in parents:
                        parents[nb] = node
                        if nb == b:
                            path = [b]
                            while path[-1] != a:
                                path.append(parents[path[-1]])
                            return list(reversed(path))
                        next_frontier.append(nb)
            frontier = next_frontier
        raise CouplingError(f"no path between qubits {a} and {b}")

    def subgraph_is_valid_for(self, num_circuit_qubits: int) -> bool:
        """True if a circuit with ``num_circuit_qubits`` logical qubits fits on the device."""
        return num_circuit_qubits <= self.num_qubits

    # ------------------------------------------------------------------

    def to_dict(self) -> Dict:
        """JSON-safe representation (used by the service layer's job specs)."""
        return {
            "name": self.name,
            "num_qubits": self.num_qubits,
            "edges": [list(edge) for edge in self._edges],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "CouplingMap":
        """Rebuild a coupling map from :meth:`to_dict` output."""
        return cls(
            [tuple(edge) for edge in data["edges"]],
            num_qubits=data["num_qubits"],
            name=data.get("name", "device"),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"CouplingMap(name={self.name!r}, qubits={self.num_qubits}, edges={len(self._edges)})"

"""Factory functions for the device topologies evaluated in the paper.

The paper evaluates three coupling maps (Fig. 10): the 27-qubit ``ibmq_montreal`` heavy-hex
device, a 25-qubit linear-nearest-neighbour chain, and a 5x5 2D grid.  A fully-connected
map is also provided (used as the "no routing needed" reference).
"""

from __future__ import annotations

from typing import List, Tuple

from .coupling import CouplingMap

#: Edge list of the 27-qubit IBM Falcon (heavy-hex) device ``ibmq_montreal``.
MONTREAL_EDGES: Tuple[Tuple[int, int], ...] = (
    (0, 1), (1, 2), (1, 4), (2, 3), (3, 5), (4, 7), (5, 8), (6, 7), (7, 10),
    (8, 9), (8, 11), (10, 12), (11, 14), (12, 13), (12, 15), (13, 14), (14, 16),
    (15, 18), (16, 19), (17, 18), (18, 21), (19, 20), (19, 22), (21, 23),
    (22, 25), (23, 24), (24, 25), (25, 26),
)


def montreal_coupling_map() -> CouplingMap:
    """The 27-qubit heavy-hex coupling map of ``ibmq_montreal``."""
    return CouplingMap(MONTREAL_EDGES, num_qubits=27, name="ibmq_montreal")


def linear_coupling_map(num_qubits: int = 25) -> CouplingMap:
    """Linear nearest-neighbour chain (the paper uses 25 qubits)."""
    edges = [(i, i + 1) for i in range(num_qubits - 1)]
    return CouplingMap(edges, num_qubits=num_qubits, name=f"linear_{num_qubits}")


def grid_coupling_map(rows: int = 5, cols: int = 5) -> CouplingMap:
    """2D grid topology (the paper uses a 5x5 grid)."""
    edges: List[Tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            q = r * cols + c
            if c + 1 < cols:
                edges.append((q, q + 1))
            if r + 1 < rows:
                edges.append((q, q + cols))
    return CouplingMap(edges, num_qubits=rows * cols, name=f"grid_{rows}x{cols}")


def fully_connected_coupling_map(num_qubits: int) -> CouplingMap:
    """All-to-all connectivity (no SWAPs ever needed)."""
    edges = [(i, j) for i in range(num_qubits) for j in range(i + 1, num_qubits)]
    return CouplingMap(edges, num_qubits=num_qubits, name=f"full_{num_qubits}")


def heavy_hex_coupling_map(distance: int = 3) -> CouplingMap:
    """A generic IBM-style heavy-hex lattice (alias for montreal at the default size)."""
    if distance == 3:
        return montreal_coupling_map()
    raise NotImplementedError("only the 27-qubit heavy-hex (distance 3) lattice is provided")


def _grid_for(num_qubits: int) -> CouplingMap:
    side = max(2, int(round(num_qubits ** 0.5)))
    return grid_coupling_map(side, side)


#: The one table of named topologies: canonical name, aliases, build function, and the
#: discovery metadata the server's ``GET /v1/targets`` endpoint serves.  Both
#: :func:`get_topology` and :data:`TOPOLOGY_CATALOG` derive from it, so adding an entry
#: here is the whole job of adding a topology.  ``sizable`` marks topologies that honour
#: the ``num_qubits`` argument.
_TOPOLOGIES: Tuple[dict, ...] = (
    {"topology": "montreal", "aliases": ("ibmq_montreal",), "num_qubits": 27,
     "sizable": False, "build": lambda n: montreal_coupling_map(),
     "description": "IBMQ Montreal 27-qubit heavy-hex lattice"},
    {"topology": "linear", "aliases": (), "num_qubits": 25,
     "sizable": True, "build": linear_coupling_map,
     "description": "linear nearest-neighbour chain"},
    {"topology": "grid", "aliases": (), "num_qubits": 25,
     "sizable": True, "build": _grid_for,
     "description": "square 2D grid (side = round(sqrt(n)))"},
    {"topology": "full", "aliases": ("fully_connected",), "num_qubits": 25,
     "sizable": True, "build": fully_connected_coupling_map,
     "description": "fully connected (no routing constraint)"},
)

#: JSON-safe discovery view of :data:`_TOPOLOGIES` (no build callables).
TOPOLOGY_CATALOG: Tuple[dict, ...] = tuple(
    {key: (list(value) if isinstance(value, tuple) else value)
     for key, value in entry.items() if key != "build"}
    for entry in _TOPOLOGIES
)


def get_topology(name: str, num_qubits: int = 25) -> CouplingMap:
    """Look up a topology by name: ``montreal``, ``linear``, ``grid`` or ``full``."""
    key = name.lower()
    for entry in _TOPOLOGIES:
        if key == entry["topology"] or key in entry["aliases"]:
            return entry["build"](num_qubits)
    raise ValueError(f"unknown topology {name!r}")


def evaluation_devices() -> dict:
    """Name -> coupling map of the tracked evaluation grid (one definition).

    This is the device axis of both the perf trajectory (``BENCH_transpile.json``,
    emitted by ``benchmarks/test_pass_pipeline.py``) and the golden O1 bit-identity
    harness (``benchmarks/gen_golden_hashes.py`` / ``tests/transpiler/test_golden_o1.py``);
    all three consume this helper so the grids can never drift apart.
    """
    return {
        "linear_25": linear_coupling_map(25),
        "montreal": montreal_coupling_map(),
    }

"""``python -m repro`` — transpilation service CLI (see :mod:`repro.service.cli`).

Offline subcommands (``transpile``, ``table``, ``ablation``, ``noise``, ``cache``) run
through the batch executor; ``serve`` starts the online HTTP job service
(:mod:`repro.server`) and ``submit`` compiles through a running server via
:mod:`repro.client`.
"""

import sys

from .service.cli import main

if __name__ == "__main__":
    sys.exit(main())

/* Inner scoring kernel of the SABRE/NASSC routers (see repro/nativeext/__init__.py).
 *
 * front_ext_sums: given the device distance matrix and the (rows x cols) tables of
 * post-swap physical indices, accumulate each row's front-window and extended-window
 * distance sums.  The accumulation order is per row, ascending column, starting from
 * 0.0 — exactly the order of the pure-numpy fallback's column-by-column loop — so with
 * IEEE doubles and no reassociation (-O2, never -ffast-math) the results are
 * bit-identical to the numpy path.
 */

#include <stdint.h>

void front_ext_sums(const double *distance, int64_t n,
                    const int64_t *mapped_a, const int64_t *mapped_b,
                    int64_t rows, int64_t cols, int64_t front_cols,
                    double *front_out, double *ext_out)
{
    int64_t r, c;
    for (r = 0; r < rows; ++r) {
        const int64_t *ra = mapped_a + r * cols;
        const int64_t *rb = mapped_b + r * cols;
        double front = 0.0;
        double ext = 0.0;
        for (c = 0; c < front_cols; ++c) {
            front += distance[ra[c] * n + rb[c]];
        }
        for (; c < cols; ++c) {
            ext += distance[ra[c] * n + rb[c]];
        }
        front_out[r] = front;
        ext_out[r] = ext;
    }
}

"""Optional native build of the router's inner scoring kernel.

The hot loop of SABRE/NASSC candidate scoring is a per-row sequential sum over a
fancy-indexed distance table (:mod:`repro.transpiler.passes.sabre`).  This package
provides :func:`front_ext_sums`, a single dispatch point with two implementations:

* a pure-numpy fallback (always available; the default), and
* a small C kernel (``kernels.c``) compiled on demand with the system C compiler and
  loaded through :mod:`ctypes` — no build-time dependency, no pip install.

Both paths accumulate per row in ascending column order starting from ``0.0``, so their
float64 results are **bit-identical**; the golden-hash suite runs under both in CI.

Selection is environment-driven, read once at import time:

``REPRO_NATIVE=1``
    Compile (if needed) and use the native kernel; fall back silently to numpy if no
    compiler is available.  :func:`native_status` reports what actually happened, and
    tests/CI assert on it so a broken toolchain cannot silently fake coverage.
``REPRO_NATIVE=0`` (or unset)
    Pure numpy.

The compiled shared object is cached under the user's cache directory keyed by the
source hash, so recompilation happens only when ``kernels.c`` changes.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from typing import Optional, Tuple

import numpy as np

#: Environment variable selecting the implementation (read at import).
NATIVE_ENV = "REPRO_NATIVE"

_SOURCE_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)), "kernels.c")

_native_fn = None
_status = "disabled"


def native_requested() -> bool:
    """True when ``REPRO_NATIVE`` asks for the native kernel."""
    return os.environ.get(NATIVE_ENV, "0") not in ("", "0", "false", "no")


def native_active() -> bool:
    """True when the native kernel is loaded and serving :func:`front_ext_sums`."""
    return _native_fn is not None


def native_status() -> str:
    """``"active"``, ``"disabled"``, or ``"failed: <reason>"`` (build/load diagnosis)."""
    return _status


def _cache_dir() -> str:
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(base, "repro-native")


def _find_compiler() -> Optional[str]:
    for name in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if not name:
            continue
        for directory in os.environ.get("PATH", "").split(os.pathsep):
            candidate = os.path.join(directory, name)
            if os.path.isfile(candidate) and os.access(candidate, os.X_OK):
                return name
    return None


def build_native_library(force: bool = False) -> str:
    """Compile ``kernels.c`` into a cached shared object and return its path.

    Raises ``RuntimeError`` when no C compiler is available or compilation fails.
    The object file name is keyed by the source hash, so edits recompile and
    concurrent builders race benignly (last ``os.replace`` wins, same content).
    """
    with open(_SOURCE_PATH, "rb") as handle:
        source = handle.read()
    digest = hashlib.sha256(source).hexdigest()[:16]
    directory = _cache_dir()
    library_path = os.path.join(directory, f"repro_kernels_{digest}.so")
    if os.path.exists(library_path) and not force:
        return library_path
    compiler = _find_compiler()
    if compiler is None:
        raise RuntimeError("no C compiler found (tried $CC, cc, gcc, clang)")
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(suffix=".so", dir=directory)
    os.close(fd)
    try:
        # -O2 without -ffast-math keeps IEEE addition order; see kernels.c.
        command = [compiler, "-O2", "-shared", "-fPIC", "-o", tmp_path, _SOURCE_PATH]
        proc = subprocess.run(
            command, capture_output=True, text=True, timeout=120, check=False
        )
        if proc.returncode != 0:
            raise RuntimeError(
                f"native kernel compilation failed: {' '.join(command)}\n{proc.stderr}"
            )
        os.replace(tmp_path, library_path)
    finally:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
    return library_path


def _load_native():
    library_path = build_native_library()
    lib = ctypes.CDLL(library_path)
    fn = lib.front_ext_sums
    fn.restype = None
    fn.argtypes = [
        ctypes.POINTER(ctypes.c_double),  # distance (n x n, C-contiguous)
        ctypes.c_int64,                   # n
        ctypes.POINTER(ctypes.c_int64),   # mapped_a (rows x cols)
        ctypes.POINTER(ctypes.c_int64),   # mapped_b
        ctypes.c_int64,                   # rows
        ctypes.c_int64,                   # cols
        ctypes.c_int64,                   # front_cols
        ctypes.POINTER(ctypes.c_double),  # front_out (rows)
        ctypes.POINTER(ctypes.c_double),  # ext_out (rows)
    ]
    return fn


def numpy_front_ext_sums(
    distance: np.ndarray, mapped_a: np.ndarray, mapped_b: np.ndarray, front_cols: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Pure-numpy reference: one fancy-indexed gather + sequential column sums.

    Sequential (not pairwise) accumulation keeps the result bit-identical to the
    historical per-gate scalar loop even for non-integer (noise-aware) distance
    matrices, where pairwise summation could differ in the last ulp and flip a
    1e-12 tie-break.
    """
    table = distance[mapped_a, mapped_b]
    rows, cols = table.shape
    front = np.zeros(rows)
    for column in range(front_cols):
        front += table[:, column]
    ext = np.zeros(rows)
    for column in range(front_cols, cols):
        ext += table[:, column]
    return front, ext


def native_front_ext_sums(
    distance: np.ndarray, mapped_a: np.ndarray, mapped_b: np.ndarray, front_cols: int
) -> Tuple[np.ndarray, np.ndarray]:
    """C-kernel implementation (requires a successful :func:`build_native_library`)."""
    rows, cols = mapped_a.shape
    a = np.ascontiguousarray(mapped_a, dtype=np.int64)
    b = np.ascontiguousarray(mapped_b, dtype=np.int64)
    dist = distance  # routers hold C-contiguous float64 matrices already
    if not (dist.flags["C_CONTIGUOUS"] and dist.dtype == np.float64):
        dist = np.ascontiguousarray(dist, dtype=np.float64)
    front = np.empty(rows)
    ext = np.empty(rows)
    double_p = ctypes.POINTER(ctypes.c_double)
    int64_p = ctypes.POINTER(ctypes.c_int64)
    _native_fn(
        dist.ctypes.data_as(double_p),
        ctypes.c_int64(dist.shape[0]),
        a.ctypes.data_as(int64_p),
        b.ctypes.data_as(int64_p),
        ctypes.c_int64(rows),
        ctypes.c_int64(cols),
        ctypes.c_int64(front_cols),
        front.ctypes.data_as(double_p),
        ext.ctypes.data_as(double_p),
    )
    return front, ext


def front_ext_sums(
    distance: np.ndarray, mapped_a: np.ndarray, mapped_b: np.ndarray, front_cols: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-row (front, extended) distance sums — THE router scoring kernel.

    ``mapped_a``/``mapped_b`` are (rows x cols) integer tables of physical qubit
    indices; column ``c < front_cols`` belongs to the front window, the rest to the
    extended window.  Returns two float64 arrays of length ``rows``.  Dispatches to
    the native kernel when active, else the numpy fallback; both are bit-identical.
    """
    if _native_fn is not None and mapped_a.size:
        return native_front_ext_sums(distance, mapped_a, mapped_b, front_cols)
    return numpy_front_ext_sums(distance, mapped_a, mapped_b, front_cols)


if native_requested():
    try:
        _native_fn = _load_native()
        _status = "active"
    except Exception as exc:  # noqa: BLE001 - degrade to numpy, report via native_status
        _native_fn = None
        _status = f"failed: {exc}"
else:
    _status = "disabled"

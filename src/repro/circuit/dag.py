"""Directed-acyclic-graph (DAG) view of a quantum circuit.

The routing algorithms (SABRE and NASSC) and the commutation analysis pass both operate on
the DAG representation described in Sec. IV-B of the paper: each node is a gate, and an edge
``i -> j`` means gate ``i`` must execute before gate ``j`` because they share a wire.

Since the pass-framework refactor the DAG is also the canonical IR of the whole transpiler:
:class:`~repro.transpiler.passmanager.PassManager` converts a circuit to a DAG exactly once
on entry and back exactly once on exit, and every pass consumes and produces ``DAGCircuit``
objects.  To support in-place rewriting the DAG offers a mutation API
(:meth:`DAGCircuit.substitute_node`, :meth:`DAGCircuit.substitute_node_with_ops`,
:meth:`DAGCircuit.remove_op_node`, :meth:`DAGCircuit.apply_operation_back`) that maintains
two invariants:

* ``_insertion_order`` is always a valid topological linearization (new nodes are spliced
  into the slot of the node they replace, whose wires they must be confined to), so
  :meth:`to_circuit` is O(n) with no Kahn traversal; and
* every mutation bumps :attr:`version`, which lets the pass manager detect "this pass
  changed nothing" without diffing and lets :meth:`fingerprint` memoise its hash — the key
  the fixed-point pass scheduler converges on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..exceptions import CircuitError
from .circuit import Instruction, QuantumCircuit
from .gates import Gate


@dataclass
class DAGNode:
    """A single operation node in the DAG."""

    node_id: int
    gate: Gate
    qubits: Tuple[int, ...]
    clbits: Tuple[int, ...] = ()

    @property
    def name(self) -> str:
        return self.gate.name

    @property
    def num_qubits(self) -> int:
        return len(self.qubits)

    def is_two_qubit(self) -> bool:
        return len(self.qubits) == 2 and self.gate.is_unitary

    def to_instruction(self) -> Instruction:
        return Instruction(self.gate, self.qubits, self.clbits)

    def __hash__(self) -> int:
        return self.node_id

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DAGNode) and other.node_id == self.node_id

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"DAGNode({self.node_id}, {self.gate.name}, {self.qubits})"


class DAGCircuit:
    """Dependency DAG over the instructions of a :class:`QuantumCircuit`.

    The DAG keeps wire-level ordering: for every qubit (and classical bit) the sequence of
    nodes touching that wire is recorded, and edges connect consecutive nodes on a wire.
    """

    def __init__(self, num_qubits: int, num_clbits: int = 0, name: str = "dag") -> None:
        self.num_qubits = num_qubits
        self.num_clbits = num_clbits
        self.name = name
        self.metadata: Dict[str, object] = {}
        self.nodes: Dict[int, DAGNode] = {}
        self._successors: Dict[int, Set[int]] = {}
        self._predecessors: Dict[int, Set[int]] = {}
        self._wire_order: Dict[Tuple[str, int], List[int]] = {
            ("q", q): [] for q in range(num_qubits)
        }
        for c in range(num_clbits):
            self._wire_order[("c", c)] = []
        self._next_id = 0
        self._insertion_order: List[int] = []
        self._version = 0
        self._fingerprint: Optional[int] = None
        self._fingerprint_version = -1

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_circuit(cls, circuit: QuantumCircuit) -> "DAGCircuit":
        dag = cls(circuit.num_qubits, circuit.num_clbits, circuit.name)
        dag.metadata = dict(circuit.metadata)
        for inst in circuit.data:
            dag.add_node(inst.gate, inst.qubits, inst.clbits)
        return dag

    def copy_empty_like(self, name: Optional[str] = None) -> "DAGCircuit":
        """Empty DAG with the same registers, name and metadata (used by rebuild passes)."""
        out = DAGCircuit(self.num_qubits, self.num_clbits, name or self.name)
        out.metadata = dict(self.metadata)
        return out

    def add_node(
        self, gate: Gate, qubits: Sequence[int], clbits: Sequence[int] = ()
    ) -> DAGNode:
        """Append an operation to the end of the DAG (after all current ops on its wires)."""
        qubits = tuple(int(q) for q in qubits)
        clbits = tuple(int(c) for c in clbits)
        for q in qubits:
            if not 0 <= q < self.num_qubits:
                raise CircuitError(f"qubit {q} out of range")
        if gate.is_unitary and gate.name != "barrier" and len(qubits) != gate.num_qubits:
            raise CircuitError(
                f"gate '{gate.name}' acts on {gate.num_qubits} qubits, got {len(qubits)}"
            )
        node = DAGNode(self._next_id, gate, qubits, clbits)
        self._next_id += 1
        self.nodes[node.node_id] = node
        self._successors[node.node_id] = set()
        self._predecessors[node.node_id] = set()
        self._insertion_order.append(node.node_id)
        for wire in self._wires(node):
            order = self._wire_order[wire]
            if order:
                prev = order[-1]
                self._successors[prev].add(node.node_id)
                self._predecessors[node.node_id].add(prev)
            order.append(node.node_id)
        self._version += 1
        return node

    #: Qiskit-style alias for :meth:`add_node`.
    apply_operation_back = add_node

    @staticmethod
    def _node_wires(node: DAGNode) -> List[Tuple[str, int]]:
        return [("q", q) for q in node.qubits] + [("c", c) for c in node.clbits]

    def _wires(self, node: DAGNode) -> List[Tuple[str, int]]:
        return self._node_wires(node)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def version(self) -> int:
        """Monotone mutation counter; unchanged version means an unchanged DAG."""
        return self._version

    def node(self, node_id: int) -> DAGNode:
        return self.nodes[node_id]

    def has_node(self, node_id: int) -> bool:
        return node_id in self.nodes

    def op_nodes(self, name: Optional[str] = None) -> List[DAGNode]:
        """All nodes in linearized (insertion) order, optionally filtered by gate name."""
        if len(self._insertion_order) != len(self.nodes):
            # Compact out lazily-deleted ids so repeated traversals stay O(n).
            self._insertion_order = [i for i in self._insertion_order if i in self.nodes]
        nodes = [self.nodes[i] for i in self._insertion_order]
        if name is None:
            return nodes
        return [n for n in nodes if n.name == name]

    def two_qubit_nodes(self) -> List[DAGNode]:
        return [n for n in self.op_nodes() if n.is_two_qubit()]

    def successors(self, node: DAGNode) -> List[DAGNode]:
        return [self.nodes[i] for i in sorted(self._successors[node.node_id]) if i in self.nodes]

    def predecessors(self, node: DAGNode) -> List[DAGNode]:
        return [self.nodes[i] for i in sorted(self._predecessors[node.node_id]) if i in self.nodes]

    def in_degree(self, node: DAGNode) -> int:
        return len(self._predecessors[node.node_id])

    def front_layer(self) -> List[DAGNode]:
        """Nodes with no unexecuted predecessors (the paper's "executable gates")."""
        return [n for n in self.op_nodes() if not self._predecessors[n.node_id]]

    def wire_nodes(self, qubit: int) -> List[DAGNode]:
        """Nodes on a qubit wire, in execution order."""
        return [self.nodes[i] for i in self._wire_order[("q", qubit)] if i in self.nodes]

    def topological_nodes(self) -> Iterator[DAGNode]:
        """Kahn topological order, stable with respect to insertion order."""
        indegree = {nid: len(preds) for nid, preds in self._predecessors.items() if nid in self.nodes}
        ready = [nid for nid in self._insertion_order if nid in self.nodes and indegree[nid] == 0]
        ready_set = set(ready)
        emitted = 0
        idx = 0
        ready = list(ready)
        while idx < len(ready):
            nid = ready[idx]
            idx += 1
            emitted += 1
            yield self.nodes[nid]
            for succ in sorted(self._successors[nid]):
                if succ not in indegree:
                    continue
                indegree[succ] -= 1
                if indegree[succ] == 0 and succ not in ready_set:
                    ready.append(succ)
                    ready_set.add(succ)
        if emitted != len(self.nodes):
            raise CircuitError("cycle detected in DAG")

    def descendants(self, node: DAGNode) -> Set[int]:
        """All node ids reachable from ``node`` (excluding itself)."""
        seen: Set[int] = set()
        stack = list(self._successors[node.node_id])
        while stack:
            nid = stack.pop()
            if nid in seen or nid not in self.nodes:
                continue
            seen.add(nid)
            stack.extend(self._successors[nid])
        return seen

    def fingerprint(self) -> int:
        """Hash of the linearized circuit content, memoised by :attr:`version`.

        Two DAGs with equal fingerprints hold the same gate sequence (names, parameters,
        labels, wires) in the same linear order.  The fixed-point flow controller keys its
        convergence check on this value, so an unchanged optimization-loop iteration is
        detected in O(1) after the first (cached) computation.
        """
        if self._fingerprint is None or self._fingerprint_version != self._version:
            content = tuple(
                (
                    n.gate.name,
                    n.gate.params,
                    n.gate.label,
                    n.qubits,
                    n.clbits,
                    # Explicit-matrix gates carry their content in the matrix, not params.
                    n.gate._matrix.tobytes() if n.gate.name == "unitary" else None,
                )
                for n in self.op_nodes()
            )
            self._fingerprint = hash((self.num_qubits, self.num_clbits, content))
            self._fingerprint_version = self._version
        return self._fingerprint

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def remove_node(self, node: DAGNode) -> None:
        """Remove an operation, reconnecting its predecessors to its successors per wire."""
        nid = node.node_id
        if nid not in self.nodes:
            raise CircuitError(f"node {nid} not in DAG")
        for wire in self._wires(node):
            order = self._wire_order[wire]
            pos = order.index(nid)
            prev_id = order[pos - 1] if pos > 0 else None
            next_id = order[pos + 1] if pos + 1 < len(order) else None
            order.pop(pos)
            if prev_id is not None:
                self._successors[prev_id].discard(nid)
            if next_id is not None:
                self._predecessors[next_id].discard(nid)
            if prev_id is not None and next_id is not None:
                self._successors[prev_id].add(next_id)
                self._predecessors[next_id].add(prev_id)
        # Drop any remaining bookkeeping for the removed node.
        for succ in self._successors.pop(nid, set()):
            self._predecessors.get(succ, set()).discard(nid)
        for pred in self._predecessors.pop(nid, set()):
            self._successors.get(pred, set()).discard(nid)
        del self.nodes[nid]
        self._version += 1

    #: Qiskit-style alias for :meth:`remove_node`.
    remove_op_node = remove_node

    def substitute_node(self, node: DAGNode, gate: Gate) -> DAGNode:
        """Replace a node's gate in place (same wires, same position, same node id)."""
        if node.node_id not in self.nodes:
            raise CircuitError(f"node {node.node_id} not in DAG")
        if gate.is_unitary and gate.name != "barrier" and gate.num_qubits != len(node.qubits):
            raise CircuitError(
                f"cannot substitute '{gate.name}' ({gate.num_qubits} qubits) for a node on "
                f"{len(node.qubits)} qubits"
            )
        node.gate = gate
        self._version += 1
        return node

    def substitute_node_with_ops(
        self, node: DAGNode, ops: Sequence[Instruction]
    ) -> List[DAGNode]:
        """Replace one node by a sequence of operations confined to the node's wires.

        The replacement occupies exactly the removed node's slot in the linearization and in
        every per-wire order, so the invariant that ``_insertion_order`` is a topological
        order is preserved.  Each op must act only on wires the removed node acts on.
        """
        nid = node.node_id
        if nid not in self.nodes:
            raise CircuitError(f"node {nid} not in DAG")
        node_qubits = set(node.qubits)
        node_clbits = set(node.clbits)
        for inst in ops:
            if not set(inst.qubits) <= node_qubits or not set(inst.clbits) <= node_clbits:
                raise CircuitError(
                    f"replacement op '{inst.name}' on {inst.qubits} leaves the wires of the "
                    f"substituted node {node.qubits}"
                )

        new_nodes: List[DAGNode] = []
        for inst in ops:
            fresh = DAGNode(self._next_id, inst.gate, inst.qubits, inst.clbits)
            self._next_id += 1
            self.nodes[fresh.node_id] = fresh
            self._successors[fresh.node_id] = set()
            self._predecessors[fresh.node_id] = set()
            new_nodes.append(fresh)

        order_idx = self._insertion_order.index(nid)
        self._insertion_order[order_idx : order_idx + 1] = [n.node_id for n in new_nodes]

        for wire in self._wires(node):
            order = self._wire_order[wire]
            pos = order.index(nid)
            sub = [n.node_id for n in new_nodes if wire in self._wires(n)]
            prev_id = order[pos - 1] if pos > 0 else None
            next_id = order[pos + 1] if pos + 1 < len(order) else None
            order[pos : pos + 1] = sub
            chain = ([prev_id] if prev_id is not None else []) + sub + (
                [next_id] if next_id is not None else []
            )
            for a, b in zip(chain, chain[1:]):
                self._successors[a].add(b)
                self._predecessors[b].add(a)

        # Disconnect and drop the replaced node.
        for succ in self._successors.pop(nid, set()):
            self._predecessors.get(succ, set()).discard(nid)
        for pred in self._predecessors.pop(nid, set()):
            self._successors.get(pred, set()).discard(nid)
        del self.nodes[nid]
        self._version += 1
        return new_nodes

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------

    def to_circuit(self) -> QuantumCircuit:
        """Linearize back to a circuit.

        Emission follows ``_insertion_order``, which the mutation API keeps topologically
        valid, so conversion is a single O(n) sweep and — crucially for reproducibility —
        deterministic: the emitted instruction order equals the order in which operations
        were appended/substituted, exactly matching the list-of-instructions semantics the
        passes had before the DAG became the canonical IR.
        """
        circuit = QuantumCircuit(self.num_qubits, self.num_clbits, self.name)
        circuit.metadata = dict(self.metadata)
        data = circuit.data
        for node in self.op_nodes():
            if node.name == "barrier":
                circuit.barrier(*node.qubits)
            else:
                # Every node was validated when it entered the DAG; skip re-validation.
                data.append(Instruction.trusted(node.gate.copy(), node.qubits, node.clbits))
        return circuit

    def count_ops(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for node in self.nodes.values():
            counts[node.name] = counts.get(node.name, 0) + 1
        return counts

    def count_gate(self, name: str) -> int:
        return sum(1 for node in self.nodes.values() if node.name == name)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"DAGCircuit(qubits={self.num_qubits}, nodes={len(self.nodes)})"


class ExecutionFrontier:
    """Incremental front-layer tracker used by the routing passes.

    Routing repeatedly asks "which gates are currently executable?" and "resolve this gate".
    Rebuilding the front layer from scratch each time would be quadratic, so this helper keeps
    the remaining in-degree of every unresolved node and exposes O(out-degree) resolution.
    """

    def __init__(self, dag: DAGCircuit) -> None:
        self.dag = dag
        self._remaining_pred: Dict[int, int] = {
            nid: len(dag._predecessors[nid]) for nid in dag.nodes
        }
        self._front: List[DAGNode] = [
            dag.nodes[nid]
            for nid in dag._insertion_order
            if nid in dag.nodes and self._remaining_pred[nid] == 0
        ]
        self._resolved: Set[int] = set()
        self._version = 0
        # The input DAG is never mutated while a frontier walks it, so the sorted
        # successor lists (consulted once per resolve and per lookahead visit) are
        # computed at most once per node.
        self._sorted_successors: Dict[int, List[int]] = {}

    @property
    def version(self) -> int:
        """Monotone counter bumped on every :meth:`resolve`.

        The lookahead result is a pure function of the resolved/front state, so callers
        issuing several queries between resolutions (e.g. a router inserting a run of
        SWAPs without executing a gate) can reuse the previous answer while the version
        is unchanged.
        """
        return self._version

    def _successors_sorted(self, node_id: int) -> List[int]:
        cached = self._sorted_successors.get(node_id)
        if cached is None:
            cached = sorted(self.dag._successors[node_id])
            self._sorted_successors[node_id] = cached
        return cached

    @property
    def front(self) -> List[DAGNode]:
        return list(self._front)

    def is_done(self) -> bool:
        return not self._front

    def num_remaining(self) -> int:
        return len(self.dag.nodes) - len(self._resolved)

    def resolve(self, node: DAGNode) -> List[DAGNode]:
        """Mark a front-layer node as executed; returns newly executable nodes."""
        if node not in self._front:
            raise CircuitError(f"node {node.node_id} is not currently executable")
        self._front.remove(node)
        self._resolved.add(node.node_id)
        self._version += 1
        newly: List[DAGNode] = []
        for succ_id in self._successors_sorted(node.node_id):
            if succ_id not in self._remaining_pred:
                continue
            self._remaining_pred[succ_id] -= 1
            if self._remaining_pred[succ_id] == 0 and succ_id not in self._resolved:
                succ = self.dag.nodes[succ_id]
                self._front.append(succ)
                newly.append(succ)
        return newly

    def lookahead(self, size: int, *, two_qubit_only: bool = True) -> List[DAGNode]:
        """The "extended layer": up to ``size`` closest successors of the front layer.

        Traversal is breadth-first from the current front layer through unresolved nodes.
        """
        result: List[DAGNode] = []
        visited: Set[int] = {n.node_id for n in self._front}
        queue: List[int] = []
        for node in self._front:
            queue.extend(self._successors_sorted(node.node_id))
        idx = 0
        while idx < len(queue) and len(result) < size:
            nid = queue[idx]
            idx += 1
            if nid in visited or nid in self._resolved or nid not in self.dag.nodes:
                continue
            visited.add(nid)
            node = self.dag.nodes[nid]
            if not two_qubit_only or node.is_two_qubit():
                result.append(node)
            queue.extend(self._successors_sorted(nid))
        return result


class StreamingDAG:
    """Windowed dependency frontier over an instruction *stream*.

    Presents the :class:`ExecutionFrontier` protocol (``front`` / ``is_done`` /
    ``resolve`` / ``lookahead`` / ``version``) that the routers walk, but never holds the
    whole circuit: at most ``window_gates`` unresolved operations are admitted from the
    source iterator at a time, and :meth:`resolve` deletes the retired node's
    node/edge/wire bookkeeping before admitting replacements, so peak memory is
    O(window + wires), not O(gates).

    Dependency edges are the same wire edges :meth:`DAGCircuit.add_node` builds: each
    admitted operation depends on the *live* tail of every wire it touches (tails whose
    node has already been resolved impose no constraint).  Predecessors are deduplicated
    exactly like ``DAGCircuit``'s predecessor *sets*, so a two-qubit gate sharing both
    wires with one predecessor counts it once.  Successor lists are naturally sorted and
    unique (ids increase monotonically and each edge is recorded once), matching the
    ``sorted(...)`` traversal order of :class:`ExecutionFrontier` — when the window covers
    the whole circuit the two walks are step-for-step identical, which is what makes
    whole-window streaming bit-identical to in-memory routing.

    :meth:`lookahead` admits extra gates on demand (up to ``lookahead_spill`` times the
    window) when the BFS for the extended layer would otherwise run out of admitted
    successors before collecting ``size`` gates — without this, a narrow window would
    starve the router's lookahead and silently change routing decisions.  The spill cap
    keeps memory bounded even for streams almost devoid of two-qubit gates.

    :meth:`resolve` keeps retirement order-faithful the same way: a node is not retired
    while it is still the live tail of one of its wires (its wire successor would later
    be admitted with no predecessors and join the front out of order), pulling the
    source as needed within the same spill allowance.

    The walk can diverge from the full-DAG frontier only when a cap binds: a wire that
    idles for more than ``max_live_gates`` operations (spill cap reached while its
    successor is still unread), or an operation with no predecessors that first appears
    beyond the initial window fill.  Layered circuits where every qubit stays active
    within the window — the paper's benchmark class — never hit either case.
    """

    def __init__(
        self,
        instructions: Iterable[Instruction],
        num_qubits: int,
        num_clbits: int = 0,
        *,
        window_gates: int = 4096,
        lookahead_spill: int = 4,
        name: str = "stream",
    ) -> None:
        if window_gates < 1:
            raise CircuitError(f"window_gates must be >= 1, got {window_gates}")
        if lookahead_spill < 1:
            raise CircuitError(f"lookahead_spill must be >= 1, got {lookahead_spill}")
        self.num_qubits = num_qubits
        self.num_clbits = num_clbits
        self.name = name
        self.window_gates = window_gates
        self.max_live_gates = window_gates * lookahead_spill
        self._source = iter(instructions)
        self._source_done = False
        self.nodes: Dict[int, DAGNode] = {}
        self._successors: Dict[int, List[int]] = {}
        self._remaining_pred: Dict[int, int] = {}
        self._wire_tail: Dict[Tuple[str, int], int] = {}
        self._front: List[DAGNode] = []
        self._next_id = 0
        self._version = 0
        self.admitted = 0
        self.retired = 0
        self._fill()

    # -- admission ---------------------------------------------------------

    def _fill(self) -> None:
        """Top the live window back up to ``window_gates`` from the source."""
        self._fill_to(self.window_gates)

    def _fill_to(self, target_live: int) -> None:
        while not self._source_done and len(self.nodes) < target_live:
            inst = next(self._source, None)
            if inst is None:
                self._source_done = True
                return
            self._admit(inst)

    def _admit(self, inst: Instruction) -> DAGNode:
        qubits = inst.qubits
        for q in qubits:
            if not 0 <= q < self.num_qubits:
                raise CircuitError(f"qubit {q} out of range")
        node = DAGNode(self._next_id, inst.gate, qubits, inst.clbits)
        self._next_id += 1
        pred_ids: Set[int] = set()
        for wire in DAGCircuit._node_wires(node):
            tail = self._wire_tail.get(wire)
            # A stale tail (already resolved and deleted) imposes no constraint; live
            # node ids are unique so a dead id can never alias a live node.
            if tail is not None and tail in self.nodes:
                pred_ids.add(tail)
            self._wire_tail[wire] = node.node_id
        self.nodes[node.node_id] = node
        self._successors[node.node_id] = []
        self._remaining_pred[node.node_id] = len(pred_ids)
        for pid in pred_ids:
            self._successors[pid].append(node.node_id)
        if not pred_ids:
            self._front.append(node)
        self.admitted += 1
        return node

    # -- ExecutionFrontier protocol ---------------------------------------

    @property
    def version(self) -> int:
        return self._version

    @property
    def front(self) -> List[DAGNode]:
        return list(self._front)

    def is_done(self) -> bool:
        if self._front:
            return False
        # Live non-front nodes can't exist with an empty front (every live node's
        # remaining predecessors are live), so an empty front means an empty window.
        self._fill()
        return not self._front

    def num_remaining(self) -> int:
        """Live (admitted, unresolved) operations; the unread tail is not counted."""
        return len(self.nodes)

    def resolve(self, node: DAGNode) -> List[DAGNode]:
        """Retire an executed front node, reclaim its state, and refill the window.

        Before the node is retired, the source is pulled (up to ``max_live_gates``)
        until the node is no longer the live tail of any of its wires.  This keeps
        retirement order-faithful to the full DAG: the node's wire successors get
        admitted — and therefore unlocked *by this resolve*, in sorted-successor
        order — rather than joining the front later at admission time, which would
        reorder the front layer and change scoring ties downstream.
        """
        if node not in self._front:
            raise CircuitError(f"node {node.node_id} is not currently executable")
        wires = list(DAGCircuit._node_wires(node))
        while (
            not self._source_done
            and len(self.nodes) < self.max_live_gates
            and any(self._wire_tail.get(wire) == node.node_id for wire in wires)
        ):
            self._fill_to(min(self.max_live_gates, len(self.nodes) + self.window_gates))
        self._front.remove(node)
        self._version += 1
        nid = node.node_id
        succs = self._successors.pop(nid)
        del self.nodes[nid]
        del self._remaining_pred[nid]
        self.retired += 1
        newly: List[DAGNode] = []
        for sid in succs:
            self._remaining_pred[sid] -= 1
            if self._remaining_pred[sid] == 0:
                succ = self.nodes[sid]
                self._front.append(succ)
                newly.append(succ)
        self._fill()
        return newly

    def lookahead(self, size: int, *, two_qubit_only: bool = True) -> List[DAGNode]:
        """Extended layer over the live window (same BFS as :class:`ExecutionFrontier`).

        A full-DAG BFS can reach gates *beyond* the admitted window in fewer hops than
        many admitted gates, so matching it takes more than having ``size`` results: the
        BFS is only complete if it never traversed a node whose successor list may still
        grow — a live *wire tail*, whose next wire neighbour has not been admitted yet.
        Whenever the BFS touches such a node (and the source has more gates), more gates
        are admitted (up to ``max_live_gates``) and the BFS restarts.  Within the spill
        allowance the result is therefore identical to the whole-circuit extended layer.
        """
        while True:
            if self._source_done:
                tails: Set[int] = set()
            else:
                tails = {tid for tid in self._wire_tail.values() if tid in self.nodes}
            incomplete = False
            result: List[DAGNode] = []
            visited: Set[int] = {n.node_id for n in self._front}
            queue: List[int] = []
            for node in self._front:
                if node.node_id in tails:
                    incomplete = True
                queue.extend(self._successors[node.node_id])
            idx = 0
            while idx < len(queue) and len(result) < size:
                nid = queue[idx]
                idx += 1
                if nid in visited or nid not in self.nodes:
                    continue
                visited.add(nid)
                if nid in tails:
                    incomplete = True
                node = self.nodes[nid]
                if not two_qubit_only or node.is_two_qubit():
                    result.append(node)
                queue.extend(self._successors[nid])
            if not incomplete or len(self.nodes) >= self.max_live_gates:
                return result
            self._fill_to(min(self.max_live_gates, len(self.nodes) + self.window_gates))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"StreamingDAG(window={self.window_gates}, live={len(self.nodes)}, "
            f"retired={self.retired})"
        )

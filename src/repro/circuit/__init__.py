"""Quantum circuit intermediate representation (gates, circuits, DAGs, OpenQASM I/O)."""

from .gates import Gate, GateSpec, GATE_SPECS, HARDWARE_BASIS, SELF_INVERSE_GATES, gate, unitary_gate
from .circuit import Instruction, QuantumCircuit, expand_gate_matrix
from .dag import DAGCircuit, DAGNode, ExecutionFrontier, StreamingDAG
from .random import random_circuit, random_circuit_stream, random_cx_circuit, random_unitary
from . import qasm

__all__ = [
    "Gate",
    "GateSpec",
    "GATE_SPECS",
    "HARDWARE_BASIS",
    "SELF_INVERSE_GATES",
    "gate",
    "unitary_gate",
    "Instruction",
    "QuantumCircuit",
    "expand_gate_matrix",
    "DAGCircuit",
    "DAGNode",
    "ExecutionFrontier",
    "StreamingDAG",
    "random_circuit",
    "random_circuit_stream",
    "random_cx_circuit",
    "random_unitary",
    "qasm",
]

"""Random circuit generation used by tests and property-based checks."""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

import numpy as np

from .circuit import Instruction, QuantumCircuit
from .gates import gate as make_gate

_ONE_QUBIT_GATES = ("x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx")
_ONE_QUBIT_ROTATIONS = ("rx", "ry", "rz")
_TWO_QUBIT_GATES = ("cx", "cz", "swap")
_TWO_QUBIT_ROTATIONS = ("cp", "crx", "rzz")


def random_circuit(
    num_qubits: int,
    depth: int,
    seed: Optional[int] = None,
    *,
    two_qubit_prob: float = 0.5,
    gate_names: Optional[Sequence[str]] = None,
) -> QuantumCircuit:
    """Generate a random circuit with roughly ``depth`` layers.

    Each layer places gates on a random partition of the qubits; two-qubit gates are chosen
    with probability ``two_qubit_prob`` whenever at least two unused qubits remain.
    """
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits, name=f"random_{num_qubits}x{depth}")
    for _ in range(depth):
        available = list(range(num_qubits))
        rng.shuffle(available)
        while available:
            if len(available) >= 2 and rng.random() < two_qubit_prob:
                q0, q1 = available.pop(), available.pop()
                name = rng.choice(_TWO_QUBIT_GATES + _TWO_QUBIT_ROTATIONS)
                if gate_names is not None and name not in gate_names:
                    name = "cx"
                if name in _TWO_QUBIT_ROTATIONS:
                    theta = float(rng.uniform(0, 2 * np.pi))
                    getattr(circuit, name)(theta, q0, q1)
                else:
                    getattr(circuit, name)(q0, q1)
            else:
                q = available.pop()
                if rng.random() < 0.5:
                    name = rng.choice(_ONE_QUBIT_ROTATIONS)
                    theta = float(rng.uniform(0, 2 * np.pi))
                    getattr(circuit, name)(theta, q)
                else:
                    name = rng.choice(_ONE_QUBIT_GATES)
                    getattr(circuit, name)(q)
    return circuit


def random_circuit_stream(
    num_qubits: int,
    num_gates: int,
    seed: Optional[int] = None,
    *,
    two_qubit_prob: float = 0.5,
) -> Iterator[Instruction]:
    """Lazily generate ``num_gates`` random instructions in O(1) memory.

    Generator counterpart of :func:`random_circuit` for million-gate synthesis: the
    memory benchmarks feed it straight into a :class:`~repro.circuit.dag.StreamingDAG`
    without ever holding a gate list.  Gates are drawn per-instruction (a random CNOT
    pair with probability ``two_qubit_prob``, otherwise a random single-qubit gate), so
    every prefix of the stream is itself a valid circuit and all qubits stay active, which
    keeps narrow routing windows faithful to the full dependency frontier.
    """
    if num_qubits < 2:
        raise ValueError(f"random_circuit_stream needs >= 2 qubits, got {num_qubits}")
    rng = np.random.default_rng(seed)
    one_qubit = _ONE_QUBIT_GATES
    for _ in range(num_gates):
        if rng.random() < two_qubit_prob:
            control, target = rng.choice(num_qubits, size=2, replace=False)
            yield Instruction(make_gate("cx"), (int(control), int(target)))
        else:
            q = int(rng.integers(num_qubits))
            if rng.random() < 0.5:
                name = str(rng.choice(_ONE_QUBIT_ROTATIONS))
                theta = float(rng.uniform(0, 2 * np.pi))
                yield Instruction(make_gate(name, theta), (q,))
            else:
                yield Instruction(make_gate(str(rng.choice(one_qubit))), (q,))


def random_cx_circuit(num_qubits: int, num_cx: int, seed: Optional[int] = None) -> QuantumCircuit:
    """A circuit of ``num_cx`` CNOTs between random qubit pairs (routing stress test)."""
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits, name=f"random_cx_{num_qubits}")
    for _ in range(num_cx):
        control, target = rng.choice(num_qubits, size=2, replace=False)
        circuit.cx(int(control), int(target))
    return circuit


def random_unitary(dim: int, seed: Optional[int] = None) -> np.ndarray:
    """Haar-random unitary matrix of the given dimension (QR of a Ginibre matrix)."""
    rng = np.random.default_rng(seed)
    mat = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    q, r = np.linalg.qr(mat)
    phases = np.diag(r) / np.abs(np.diag(r))
    return q * phases

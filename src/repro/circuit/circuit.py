"""Quantum circuit container.

A :class:`QuantumCircuit` is an ordered list of :class:`Instruction` objects applied to a
fixed register of qubits and classical bits.  It provides the builder interface used by the
benchmark generators, the metrics the paper reports (CNOT count, depth), and conversion to a
full unitary matrix for small circuits (used by the equivalence-checking tests).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import CircuitError
from .gates import Gate, gate as make_gate, unitary_gate


@dataclass(frozen=True)
class Instruction:
    """A gate application bound to specific qubits (and classical bits for measurements)."""

    gate: Gate
    qubits: Tuple[int, ...]
    clbits: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "qubits", tuple(int(q) for q in self.qubits))
        object.__setattr__(self, "clbits", tuple(int(c) for c in self.clbits))
        if len(set(self.qubits)) != len(self.qubits):
            raise CircuitError(f"duplicate qubit arguments in {self.gate.name}{self.qubits}")
        if self.gate.name not in ("barrier",) and self.gate.is_unitary:
            if len(self.qubits) != self.gate.num_qubits:
                raise CircuitError(
                    f"gate '{self.gate.name}' acts on {self.gate.num_qubits} qubits, "
                    f"got {len(self.qubits)}"
                )

    @classmethod
    def trusted(
        cls, gate_obj: Gate, qubits: Tuple[int, ...], clbits: Tuple[int, ...] = ()
    ) -> "Instruction":
        """Validation-free constructor for already-checked operations.

        Used on conversion hot paths (e.g. :meth:`DAGCircuit.to_circuit`) where the
        operation was validated when it first entered the IR; ``qubits``/``clbits`` must
        already be int tuples.
        """
        inst = object.__new__(cls)
        object.__setattr__(inst, "gate", gate_obj)
        object.__setattr__(inst, "qubits", qubits)
        object.__setattr__(inst, "clbits", clbits)
        return inst

    @property
    def name(self) -> str:
        return self.gate.name

    @property
    def num_qubits(self) -> int:
        return len(self.qubits)

    def copy(self) -> "Instruction":
        return Instruction(self.gate.copy(), self.qubits, self.clbits)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{self.gate!r} @ {self.qubits}"


class QuantumCircuit:
    """An ordered quantum circuit over ``num_qubits`` qubits and ``num_clbits`` classical bits."""

    def __init__(self, num_qubits: int, num_clbits: int = 0, name: str = "circuit") -> None:
        if num_qubits < 0 or num_clbits < 0:
            raise CircuitError("register sizes must be non-negative")
        self.num_qubits = int(num_qubits)
        self.num_clbits = int(num_clbits)
        self.name = name
        self.data: List[Instruction] = []
        self.metadata: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def append(self, gate_obj: Gate, qubits: Sequence[int], clbits: Sequence[int] = ()) -> Instruction:
        """Append a gate to the circuit and return the created instruction."""
        qubits = tuple(int(q) for q in qubits)
        clbits = tuple(int(c) for c in clbits)
        for q in qubits:
            if not 0 <= q < self.num_qubits:
                raise CircuitError(f"qubit index {q} out of range for {self.num_qubits} qubits")
        for c in clbits:
            if not 0 <= c < self.num_clbits:
                raise CircuitError(f"clbit index {c} out of range for {self.num_clbits} clbits")
        inst = Instruction(gate_obj, qubits, clbits)
        self.data.append(inst)
        return inst

    def append_instruction(self, inst: Instruction) -> Instruction:
        """Append an existing instruction (re-validated against this circuit's registers)."""
        return self.append(inst.gate, inst.qubits, inst.clbits)

    def extend(self, instructions: Iterable[Instruction]) -> None:
        for inst in instructions:
            self.append_instruction(inst)

    # -- named builder methods ------------------------------------------------

    def _std(self, name: str, qubits: Sequence[int], *params: float) -> Instruction:
        return self.append(make_gate(name, *params), qubits)

    def id(self, q: int) -> Instruction:
        return self._std("id", [q])

    def x(self, q: int) -> Instruction:
        return self._std("x", [q])

    def y(self, q: int) -> Instruction:
        return self._std("y", [q])

    def z(self, q: int) -> Instruction:
        return self._std("z", [q])

    def h(self, q: int) -> Instruction:
        return self._std("h", [q])

    def s(self, q: int) -> Instruction:
        return self._std("s", [q])

    def sdg(self, q: int) -> Instruction:
        return self._std("sdg", [q])

    def t(self, q: int) -> Instruction:
        return self._std("t", [q])

    def tdg(self, q: int) -> Instruction:
        return self._std("tdg", [q])

    def sx(self, q: int) -> Instruction:
        return self._std("sx", [q])

    def sxdg(self, q: int) -> Instruction:
        return self._std("sxdg", [q])

    def rx(self, theta: float, q: int) -> Instruction:
        return self._std("rx", [q], theta)

    def ry(self, theta: float, q: int) -> Instruction:
        return self._std("ry", [q], theta)

    def rz(self, theta: float, q: int) -> Instruction:
        return self._std("rz", [q], theta)

    def p(self, theta: float, q: int) -> Instruction:
        return self._std("p", [q], theta)

    def u(self, theta: float, phi: float, lam: float, q: int) -> Instruction:
        return self._std("u", [q], theta, phi, lam)

    def cx(self, control: int, target: int) -> Instruction:
        return self._std("cx", [control, target])

    def cy(self, control: int, target: int) -> Instruction:
        return self._std("cy", [control, target])

    def cz(self, control: int, target: int) -> Instruction:
        return self._std("cz", [control, target])

    def ch(self, control: int, target: int) -> Instruction:
        return self._std("ch", [control, target])

    def cp(self, theta: float, control: int, target: int) -> Instruction:
        return self._std("cp", [control, target], theta)

    def crx(self, theta: float, control: int, target: int) -> Instruction:
        return self._std("crx", [control, target], theta)

    def cry(self, theta: float, control: int, target: int) -> Instruction:
        return self._std("cry", [control, target], theta)

    def crz(self, theta: float, control: int, target: int) -> Instruction:
        return self._std("crz", [control, target], theta)

    def rxx(self, theta: float, q0: int, q1: int) -> Instruction:
        return self._std("rxx", [q0, q1], theta)

    def ryy(self, theta: float, q0: int, q1: int) -> Instruction:
        return self._std("ryy", [q0, q1], theta)

    def rzz(self, theta: float, q0: int, q1: int) -> Instruction:
        return self._std("rzz", [q0, q1], theta)

    def swap(self, q0: int, q1: int, label: Optional[str] = None) -> Instruction:
        if label is not None:
            return self.append(make_gate("swap").with_label(label), [q0, q1])
        return self._std("swap", [q0, q1])

    def iswap(self, q0: int, q1: int) -> Instruction:
        return self._std("iswap", [q0, q1])

    def ccx(self, c0: int, c1: int, target: int) -> Instruction:
        return self._std("ccx", [c0, c1, target])

    def cswap(self, control: int, q0: int, q1: int) -> Instruction:
        return self._std("cswap", [control, q0, q1])

    def unitary(self, matrix: np.ndarray, qubits: Sequence[int], label: Optional[str] = None) -> Instruction:
        return self.append(unitary_gate(matrix, label), qubits)

    def measure(self, qubit: int, clbit: int) -> Instruction:
        return self.append(make_gate("measure"), [qubit], [clbit])

    def measure_all(self) -> None:
        """Measure every qubit into the classical bit of the same index (growing the creg)."""
        if self.num_clbits < self.num_qubits:
            self.num_clbits = self.num_qubits
        for q in range(self.num_qubits):
            self.measure(q, q)

    def reset(self, qubit: int) -> Instruction:
        return self.append(make_gate("reset"), [qubit])

    def barrier(self, *qubits: int) -> Instruction:
        qs = tuple(qubits) if qubits else tuple(range(self.num_qubits))
        inst = Instruction(make_gate("barrier"), qs)
        self.data.append(inst)
        return inst

    # ------------------------------------------------------------------
    # Inspection and metrics
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.data)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.data)

    def size(self) -> int:
        """Number of operations excluding barriers."""
        return sum(1 for inst in self.data if inst.name != "barrier")

    def count_ops(self) -> Dict[str, int]:
        """Histogram of operation names."""
        counts: Dict[str, int] = {}
        for inst in self.data:
            counts[inst.name] = counts.get(inst.name, 0) + 1
        return counts

    def num_nonlocal_gates(self) -> int:
        """Number of gates acting on two or more qubits (excluding barriers)."""
        return sum(
            1 for inst in self.data if inst.name != "barrier" and len(inst.qubits) >= 2
        )

    def count_gate(self, name: str) -> int:
        return sum(1 for inst in self.data if inst.name == name)

    def cx_count(self) -> int:
        """Number of CNOT gates — the paper's primary cost metric."""
        return self.count_gate("cx")

    def depth(self, *, two_qubit_only: bool = False) -> int:
        """Circuit depth (critical-path length over qubit and classical wires).

        Barriers synchronise the wires they touch but do not count as a layer, matching the
        Qiskit depth definition used by the paper's Table II.
        """
        qubit_level = [0] * self.num_qubits
        clbit_level = [0] * self.num_clbits
        depth = 0
        for inst in self.data:
            start = 0
            for q in inst.qubits:
                wire_level = qubit_level[q]
                if wire_level > start:
                    start = wire_level
            for c in inst.clbits:
                wire_level = clbit_level[c]
                if wire_level > start:
                    start = wire_level
            if inst.name != "barrier" and not (two_qubit_only and len(inst.qubits) < 2):
                start += 1
            for q in inst.qubits:
                qubit_level[q] = start
            for c in inst.clbits:
                clbit_level[c] = start
            if start > depth:
                depth = start
        return depth

    def two_qubit_pairs(self) -> List[Tuple[int, int]]:
        """Ordered list of qubit pairs touched by each two-qubit gate."""
        return [
            (inst.qubits[0], inst.qubits[1])
            for inst in self.data
            if len(inst.qubits) == 2 and inst.name != "barrier"
        ]

    def active_qubits(self) -> List[int]:
        used = set()
        for inst in self.data:
            used.update(inst.qubits)
        return sorted(used)

    def has_measurements(self) -> bool:
        return any(inst.name == "measure" for inst in self.data)

    # ------------------------------------------------------------------
    # Transformation helpers
    # ------------------------------------------------------------------

    def copy(self, name: Optional[str] = None) -> "QuantumCircuit":
        out = QuantumCircuit(self.num_qubits, self.num_clbits, name or self.name)
        out.data = [inst.copy() for inst in self.data]
        out.metadata = dict(self.metadata)
        return out

    def copy_empty(self, name: Optional[str] = None) -> "QuantumCircuit":
        out = QuantumCircuit(self.num_qubits, self.num_clbits, name or self.name)
        out.metadata = dict(self.metadata)
        return out

    def inverse(self) -> "QuantumCircuit":
        """Inverse circuit (requires all operations to be unitary)."""
        out = self.copy_empty(f"{self.name}_dg")
        for inst in reversed(self.data):
            if inst.name == "barrier":
                out.barrier(*inst.qubits)
                continue
            if not inst.gate.is_unitary:
                raise CircuitError("cannot invert a circuit containing measurements/resets")
            out.append(inst.gate.inverse(), inst.qubits)
        return out

    def compose(self, other: "QuantumCircuit", qubits: Optional[Sequence[int]] = None) -> "QuantumCircuit":
        """Return a new circuit with ``other`` appended, optionally remapped onto ``qubits``."""
        if qubits is None:
            qubits = list(range(other.num_qubits))
        qubits = [int(q) for q in qubits]
        if len(qubits) != other.num_qubits:
            raise CircuitError("qubit mapping length must equal the composed circuit's width")
        out = self.copy()
        for inst in other.data:
            mapped = tuple(qubits[q] for q in inst.qubits)
            if inst.name == "barrier":
                out.barrier(*mapped)
            else:
                out.append(inst.gate.copy(), mapped, inst.clbits)
        return out

    def remap_qubits(self, mapping: Dict[int, int], num_qubits: Optional[int] = None) -> "QuantumCircuit":
        """Return a circuit with every qubit index ``q`` replaced by ``mapping[q]``."""
        width = num_qubits if num_qubits is not None else self.num_qubits
        out = QuantumCircuit(width, self.num_clbits, self.name)
        out.metadata = dict(self.metadata)
        for inst in self.data:
            mapped = tuple(mapping[q] for q in inst.qubits)
            if inst.name == "barrier":
                out.barrier(*mapped)
            else:
                out.append(inst.gate.copy(), mapped, inst.clbits)
        return out

    def to_dag(self):
        """DAG view of the circuit (the transpiler's canonical IR).

        This conversion and :meth:`DAGCircuit.to_circuit` form the only circuit<->DAG
        boundary of the pass framework: ``PassManager.run`` converts exactly once on entry
        and once on exit, and every pass in between is DAG-in/DAG-out.
        """
        from .dag import DAGCircuit

        return DAGCircuit.from_circuit(self)

    def without_directives(self) -> "QuantumCircuit":
        """Copy with measurements, resets and barriers removed (unitary part only)."""
        out = self.copy_empty()
        for inst in self.data:
            if inst.gate.is_unitary and inst.name != "barrier":
                out.append(inst.gate.copy(), inst.qubits)
        return out

    def reverse_ops(self) -> "QuantumCircuit":
        """Circuit with the instruction order reversed (used by reverse-traversal layout)."""
        out = self.copy_empty(f"{self.name}_rev")
        for inst in reversed(self.data):
            out.data.append(inst.copy())
        return out

    # ------------------------------------------------------------------
    # Unitary extraction (small circuits only)
    # ------------------------------------------------------------------

    def to_matrix(self, max_qubits: int = 10) -> np.ndarray:
        """Full unitary of the circuit (little-endian).  Only for small circuits."""
        if self.num_qubits > max_qubits:
            raise CircuitError(
                f"refusing to build a dense unitary on {self.num_qubits} qubits (> {max_qubits})"
            )
        dim = 2 ** self.num_qubits
        total = np.eye(dim, dtype=complex)
        for inst in self.data:
            if inst.name == "barrier":
                continue
            if not inst.gate.is_unitary:
                raise CircuitError("circuit contains non-unitary operations")
            total = expanded_gate_matrix(inst.gate, inst.qubits, self.num_qubits) @ total
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"QuantumCircuit(name={self.name!r}, qubits={self.num_qubits}, "
            f"ops={len(self.data)}, cx={self.cx_count()})"
        )


def expand_gate_matrix(
    gate_matrix: np.ndarray, qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Embed a ``k``-qubit gate matrix into the full ``num_qubits`` Hilbert space.

    ``qubits[j]`` carries bit ``j`` of the gate's little-endian basis index.
    """
    qubits = tuple(int(q) for q in qubits)
    k = len(qubits)
    dim = 2 ** num_qubits
    if gate_matrix.shape != (2 ** k, 2 ** k):
        raise CircuitError("gate matrix size does not match the number of qubits")
    full = np.zeros((dim, dim), dtype=complex)
    rest = [q for q in range(num_qubits) if q not in qubits]
    for rest_bits in range(2 ** len(rest)):
        base = 0
        for j, q in enumerate(rest):
            if (rest_bits >> j) & 1:
                base |= 1 << q
        indices = []
        for g in range(2 ** k):
            i = base
            for j, q in enumerate(qubits):
                if (g >> j) & 1:
                    i |= 1 << q
            indices.append(i)
        idx = np.array(indices)
        full[np.ix_(idx, idx)] = gate_matrix
    return full


@lru_cache(maxsize=8192)
def _expanded_named_matrix(
    token: Tuple[str, Tuple[float, ...]], qubits: Tuple[int, ...], num_qubits: int
) -> np.ndarray:
    from .gates import _shared_matrix

    expanded = expand_gate_matrix(_shared_matrix(*token), qubits, num_qubits)
    expanded.flags.writeable = False
    return expanded


#: Largest Hilbert space whose embeddings are worth retaining: the commutation fallback
#: works on joint supports of at most 4 qubits and block matrices live on 2.  Larger
#: expansions (one-off ``to_matrix`` calls on big circuits) are megabytes each and would
#: pin gigabytes in a long-lived process, so they stay transient.
_EXPANDED_CACHE_MAX_QUBITS = 4


def expanded_gate_matrix(gate_obj: Gate, qubits: Sequence[int], num_qubits: int) -> np.ndarray:
    """Embedded full-space matrix of a gate application, cached for small spaces.

    Keyed on the gate's interned :attr:`~repro.circuit.gates.Gate.cache_token` plus the
    wire pattern, so repeated expansions of identical applications (commutation checks,
    block-matrix products) are served as shared **read-only** arrays.  Explicit-matrix
    ``unitary`` gates have no content token, and embeddings beyond
    ``_EXPANDED_CACHE_MAX_QUBITS`` qubits are too large to retain; both are expanded
    uncached.
    """
    if gate_obj.name == "unitary" or num_qubits > _EXPANDED_CACHE_MAX_QUBITS:
        return expand_gate_matrix(gate_obj.matrix(), qubits, num_qubits)
    return _expanded_named_matrix(
        gate_obj.cache_token, tuple(int(q) for q in qubits), num_qubits
    )

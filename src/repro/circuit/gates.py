"""Gate definitions and unitary matrices.

Conventions
-----------
* Qubit ordering is little-endian (the Qiskit convention): for an instruction applied to
  qubits ``(q0, q1)``, the matrix acts on basis states indexed ``2*b(q1) + b(q0)``.
  Consequently ``CX`` with control ``q0`` and target ``q1`` has the matrix
  ``[[1,0,0,0],[0,0,0,1],[0,0,1,0],[0,1,0,0]]``.
* All rotation gates use the physics convention ``R_P(theta) = exp(-i * theta / 2 * P)``.
* The hardware basis set used throughout the evaluation is ``{id, rz, sx, x, cx}``
  (the IBM Q basis cited by the paper).
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import CircuitError
from ..obs.counters import COUNTERS

#: Gates natively supported by the simulated hardware backend.
HARDWARE_BASIS: Tuple[str, ...] = ("id", "rz", "sx", "x", "cx")

#: Self-inverse gates recognised by commutative cancellation (paper Sec. III).
#: ``ch``/``cswap`` are self-inverse too (controls of self-inverse bases) and are listed
#: so :meth:`Gate.inverse` covers every named gate.
SELF_INVERSE_GATES: Tuple[str, ...] = (
    "h", "x", "y", "z", "cx", "cy", "cz", "ch", "swap", "cswap", "ccx", "id",
)

_SQ2 = 1.0 / math.sqrt(2.0)


def _u_matrix(theta: float, phi: float, lam: float) -> np.ndarray:
    """Matrix of the generic single-qubit gate U(theta, phi, lambda)."""
    cos = math.cos(theta / 2.0)
    sin = math.sin(theta / 2.0)
    return np.array(
        [
            [cos, -cmath.exp(1j * lam) * sin],
            [cmath.exp(1j * phi) * sin, cmath.exp(1j * (phi + lam)) * cos],
        ],
        dtype=complex,
    )


def _controlled(base: np.ndarray) -> np.ndarray:
    """Controlled version of a single-qubit matrix, control = first qubit (little-endian)."""
    out = np.eye(4, dtype=complex)
    # Control qubit is the first argument -> bit 0.  The |control=1> subspace is indices 1, 3.
    out[1, 1] = base[0, 0]
    out[1, 3] = base[0, 1]
    out[3, 1] = base[1, 0]
    out[3, 3] = base[1, 1]
    return out


# ---------------------------------------------------------------------------
# Static matrices
# ---------------------------------------------------------------------------

_ID = np.eye(2, dtype=complex)
_X = np.array([[0, 1], [1, 0]], dtype=complex)
_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
_Z = np.array([[1, 0], [0, -1]], dtype=complex)
_H = np.array([[_SQ2, _SQ2], [_SQ2, -_SQ2]], dtype=complex)
_S = np.array([[1, 0], [0, 1j]], dtype=complex)
_SDG = np.array([[1, 0], [0, -1j]], dtype=complex)
_T = np.array([[1, 0], [0, cmath.exp(1j * math.pi / 4)]], dtype=complex)
_TDG = np.array([[1, 0], [0, cmath.exp(-1j * math.pi / 4)]], dtype=complex)
_SX = 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex)
_SXDG = 0.5 * np.array([[1 - 1j, 1 + 1j], [1 + 1j, 1 - 1j]], dtype=complex)

_CX = _controlled(_X)
_CY = _controlled(_Y)
_CZ = _controlled(_Z)
_CH = _controlled(_H)
_SWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
)
_ISWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1j, 0], [0, 1j, 0, 0], [0, 0, 0, 1]], dtype=complex
)
_DCX = np.array(
    [[1, 0, 0, 0], [0, 0, 0, 1], [0, 1, 0, 0], [0, 0, 1, 0]], dtype=complex
)


def _ccx_matrix() -> np.ndarray:
    """Toffoli: controls are qubits 0 and 1, target is qubit 2 (little-endian)."""
    mat = np.eye(8, dtype=complex)
    # Indices where bit0 = bit1 = 1: 3 (011) and 7 (111); the gate flips bit 2 between them.
    mat[3, 3] = 0.0
    mat[7, 7] = 0.0
    mat[3, 7] = 1.0
    mat[7, 3] = 1.0
    return mat


def _cswap_matrix() -> np.ndarray:
    """Fredkin: control is qubit 0, swapped qubits are 1 and 2 (little-endian)."""
    mat = np.eye(8, dtype=complex)
    # Control bit0 = 1 and bits (1,2) differ: indices 3 (011) and 5 (101) are exchanged.
    mat[3, 3] = 0.0
    mat[5, 5] = 0.0
    mat[3, 5] = 1.0
    mat[5, 3] = 1.0
    return mat


_CCX = _ccx_matrix()
_CSWAP = _cswap_matrix()


# ---------------------------------------------------------------------------
# Parameterised matrices
# ---------------------------------------------------------------------------

def _rx(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def _ry(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array([[c, -s], [s, c]], dtype=complex)


def _rz(theta: float) -> np.ndarray:
    return np.array(
        [[cmath.exp(-1j * theta / 2.0), 0], [0, cmath.exp(1j * theta / 2.0)]], dtype=complex
    )


def _p(theta: float) -> np.ndarray:
    return np.array([[1, 0], [0, cmath.exp(1j * theta)]], dtype=complex)


def _rxx(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    mat = np.eye(4, dtype=complex) * c
    mat[0, 3] = mat[3, 0] = mat[1, 2] = mat[2, 1] = -1j * s
    return mat


def _ryy(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    mat = np.eye(4, dtype=complex) * c
    mat[0, 3] = mat[3, 0] = 1j * s
    mat[1, 2] = mat[2, 1] = -1j * s
    return mat


def _rzz(theta: float) -> np.ndarray:
    e_m = cmath.exp(-1j * theta / 2.0)
    e_p = cmath.exp(1j * theta / 2.0)
    return np.diag([e_m, e_p, e_p, e_m]).astype(complex)


# ---------------------------------------------------------------------------
# Gate specification table
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class GateSpec:
    """Static description of a named gate type."""

    name: str
    num_qubits: int
    num_params: int
    matrix_fn: Optional[Callable[..., np.ndarray]]
    is_directive: bool = False

    def matrix(self, params: Sequence[float]) -> np.ndarray:
        if self.matrix_fn is None:
            raise CircuitError(f"gate '{self.name}' has no unitary matrix")
        if len(params) != self.num_params:
            raise CircuitError(
                f"gate '{self.name}' expects {self.num_params} parameter(s), got {len(params)}"
            )
        return self.matrix_fn(*params)


GATE_SPECS: Dict[str, GateSpec] = {
    "id": GateSpec("id", 1, 0, lambda: _ID.copy()),
    "x": GateSpec("x", 1, 0, lambda: _X.copy()),
    "y": GateSpec("y", 1, 0, lambda: _Y.copy()),
    "z": GateSpec("z", 1, 0, lambda: _Z.copy()),
    "h": GateSpec("h", 1, 0, lambda: _H.copy()),
    "s": GateSpec("s", 1, 0, lambda: _S.copy()),
    "sdg": GateSpec("sdg", 1, 0, lambda: _SDG.copy()),
    "t": GateSpec("t", 1, 0, lambda: _T.copy()),
    "tdg": GateSpec("tdg", 1, 0, lambda: _TDG.copy()),
    "sx": GateSpec("sx", 1, 0, lambda: _SX.copy()),
    "sxdg": GateSpec("sxdg", 1, 0, lambda: _SXDG.copy()),
    "rx": GateSpec("rx", 1, 1, _rx),
    "ry": GateSpec("ry", 1, 1, _ry),
    "rz": GateSpec("rz", 1, 1, _rz),
    "p": GateSpec("p", 1, 1, _p),
    "u1": GateSpec("u1", 1, 1, _p),
    "u2": GateSpec("u2", 1, 2, lambda phi, lam: _u_matrix(math.pi / 2.0, phi, lam)),
    "u3": GateSpec("u3", 1, 3, _u_matrix),
    "u": GateSpec("u", 1, 3, _u_matrix),
    "cx": GateSpec("cx", 2, 0, lambda: _CX.copy()),
    "cy": GateSpec("cy", 2, 0, lambda: _CY.copy()),
    "cz": GateSpec("cz", 2, 0, lambda: _CZ.copy()),
    "ch": GateSpec("ch", 2, 0, lambda: _CH.copy()),
    "swap": GateSpec("swap", 2, 0, lambda: _SWAP.copy()),
    "iswap": GateSpec("iswap", 2, 0, lambda: _ISWAP.copy()),
    "dcx": GateSpec("dcx", 2, 0, lambda: _DCX.copy()),
    "cp": GateSpec("cp", 2, 1, lambda theta: _controlled(_p(theta))),
    "cu1": GateSpec("cu1", 2, 1, lambda theta: _controlled(_p(theta))),
    "crx": GateSpec("crx", 2, 1, lambda theta: _controlled(_rx(theta))),
    "cry": GateSpec("cry", 2, 1, lambda theta: _controlled(_ry(theta))),
    "crz": GateSpec("crz", 2, 1, lambda theta: _controlled(_rz(theta))),
    "rxx": GateSpec("rxx", 2, 1, _rxx),
    "ryy": GateSpec("ryy", 2, 1, _ryy),
    "rzz": GateSpec("rzz", 2, 1, _rzz),
    "ccx": GateSpec("ccx", 3, 0, lambda: _CCX.copy()),
    "cswap": GateSpec("cswap", 3, 0, lambda: _CSWAP.copy()),
    "measure": GateSpec("measure", 1, 0, None, is_directive=True),
    "reset": GateSpec("reset", 1, 0, None, is_directive=True),
    "barrier": GateSpec("barrier", 0, 0, None, is_directive=True),
    # A gate defined only by its explicit unitary matrix (used by synthesis passes).
    "unitary": GateSpec("unitary", 0, 0, None),
}

#: Names of the non-unitary directive pseudo-gates (hot-path set lookup for
#: :attr:`Gate.is_unitary`, which the routers and estimators query per gate per step).
_DIRECTIVE_NAMES = frozenset(
    name for name, spec in GATE_SPECS.items() if spec.is_directive
)

_INVERSE_NAME: Dict[str, str] = {
    "s": "sdg",
    "sdg": "s",
    "t": "tdg",
    "tdg": "t",
    "sx": "sxdg",
    "sxdg": "sx",
}

_NEGATE_PARAM_INVERSE = {
    "rx", "ry", "rz", "p", "u1", "cp", "cu1", "crx", "cry", "crz", "rxx", "ryy", "rzz",
}


@lru_cache(maxsize=4096)
def _shared_matrix(name: str, params: Tuple[float, ...]) -> np.ndarray:
    """Shared per-``(name, params)`` matrix cache (read-only arrays).

    Every :meth:`Gate.matrix` call for a named gate is served from here, so synthesis,
    commutation checks and the simulator stop re-allocating identical 2x2/4x4 arrays.
    The arrays are marked non-writeable: callers that need a private mutable copy must
    take one explicitly.
    """
    matrix = GATE_SPECS[name].matrix(params)
    matrix.flags.writeable = False
    return matrix


def _matrix_cache_counters() -> Dict[str, int]:
    info = _shared_matrix.cache_info()
    return {"hits": info.hits, "misses": info.misses, "size": info.currsize}


COUNTERS.register_provider("cache.gate_matrix", _matrix_cache_counters)


@dataclass
class Gate:
    """A concrete gate: a named operation with bound parameters.

    ``matrix`` is available for every unitary gate.  Gates named ``unitary`` carry an
    explicit matrix (produced by the synthesis passes) instead of a formula.

    Parameterless standard gates built through :func:`gate` are *interned flyweights*:
    ``gate("x") is gate("x")``.  Interned instances are immutable (attribute assignment
    raises) and :meth:`copy` returns the instance itself.
    """

    name: str
    params: Tuple[float, ...] = ()
    _matrix: Optional[np.ndarray] = field(default=None, repr=False, compare=False)
    label: Optional[str] = None

    #: Class-level defaults so instances stay mutable during ``__init__``; interned
    #: singletons flip ``_interned`` (via ``object.__setattr__``) after construction.
    _interned = False

    def __setattr__(self, key: str, value) -> None:
        if self._interned:
            raise CircuitError(
                f"interned gate '{self.name}' is immutable; build a fresh Gate instead"
            )
        object.__setattr__(self, key, value)

    def __post_init__(self) -> None:
        if self.name not in GATE_SPECS:
            raise CircuitError(f"unknown gate '{self.name}'")
        self.params = tuple(float(p) for p in self.params)
        spec = GATE_SPECS[self.name]
        if self.name != "unitary" and not spec.is_directive and len(self.params) != spec.num_params:
            raise CircuitError(
                f"gate '{self.name}' expects {spec.num_params} parameter(s), got {len(self.params)}"
            )
        if self.name == "unitary":
            if self._matrix is None:
                raise CircuitError("a 'unitary' gate requires an explicit matrix")
            self._matrix = np.asarray(self._matrix, dtype=complex)
            dim = self._matrix.shape[0]
            if self._matrix.shape != (dim, dim) or dim & (dim - 1):
                raise CircuitError("unitary gate matrix must be square with power-of-two size")

    # -- basic properties ---------------------------------------------------

    @property
    def spec(self) -> GateSpec:
        return GATE_SPECS[self.name]

    @property
    def num_qubits(self) -> int:
        if self.name == "unitary":
            return int(round(math.log2(self._matrix.shape[0])))
        if self.name == "barrier":
            raise CircuitError("barrier has no fixed qubit count")
        return self.spec.num_qubits

    @property
    def is_directive(self) -> bool:
        return self.name in _DIRECTIVE_NAMES

    @property
    def is_unitary(self) -> bool:
        return self.name not in _DIRECTIVE_NAMES

    @property
    def is_self_inverse(self) -> bool:
        return self.name in SELF_INVERSE_GATES

    @property
    def cache_token(self) -> Tuple[str, Tuple[float, ...]]:
        """Stable identity key for memoisation tables keyed on gate content.

        Computed once per instance (and once *ever* for interned flyweights); callers
        that used to rebuild ``(name, rounded params)`` tuples per lookup should key on
        this instead.  Explicit-matrix ``unitary`` gates have no content token and raise.
        """
        token = self.__dict__.get("_token")
        if token is None:
            if self.name == "unitary":
                raise CircuitError("explicit-matrix 'unitary' gates have no cache token")
            token = (self.name, self.params)
            object.__setattr__(self, "_token", token)
        return token

    # -- matrices and inverses ----------------------------------------------

    def matrix(self) -> np.ndarray:
        """Unitary matrix of the gate (little-endian qubit ordering).

        Named gates are served from the shared per-``(name, params)`` cache and are
        **read-only**; take ``.copy()`` for a private mutable array.
        """
        if self.name == "unitary":
            return self._matrix.copy()
        return _shared_matrix(self.name, self.params)

    def inverse(self) -> "Gate":
        """Return a gate implementing the inverse unitary."""
        if self.is_directive:
            raise CircuitError(f"cannot invert directive '{self.name}'")
        if self.name == "unitary":
            return Gate("unitary", (), self._matrix.conj().T)
        if self.name in SELF_INVERSE_GATES:
            return gate(self.name, *self.params)
        if self.name in _INVERSE_NAME:
            return gate(_INVERSE_NAME[self.name])
        if self.name in _NEGATE_PARAM_INVERSE:
            return Gate(self.name, tuple(-p for p in self.params))
        if self.name in ("u", "u3"):
            theta, phi, lam = self.params
            return Gate(self.name, (-theta, -lam, -phi))
        if self.name == "u2":
            phi, lam = self.params
            return Gate("u3", (-math.pi / 2.0, -lam, -phi))
        if self.name in ("iswap", "dcx"):
            return Gate("unitary", (), self.matrix().conj().T)
        raise CircuitError(f"no inverse rule for gate '{self.name}'")

    def copy(self) -> "Gate":
        if self._interned:
            # Flyweights are immutable, so sharing the instance is always safe.
            return self
        mat = None if self._matrix is None else self._matrix.copy()
        return Gate(self.name, self.params, mat, self.label)

    def with_label(self, label: Optional[str]) -> "Gate":
        """A fresh (non-interned) instance of this gate carrying ``label``.

        The replacement for mutating ``gate.label`` in place, which interned flyweights
        forbid.
        """
        mat = None if self._matrix is None else self._matrix.copy()
        return Gate(self.name, self.params, mat, label)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        if self.params:
            args = ", ".join(f"{p:.4g}" for p in self.params)
            return f"Gate({self.name}({args}))"
        return f"Gate({self.name})"


# Convenience constructors -----------------------------------------------------------------

#: Interned flyweight instances of the parameterless standard gates, keyed by name.
_INTERNED_GATES: Dict[str, Gate] = {}


def _intern(name: str) -> Gate:
    instance = _INTERNED_GATES.get(name)
    if instance is None:
        instance = Gate(name, ())
        instance.cache_token  # materialise the memo key while still mutable
        object.__setattr__(instance, "_interned", True)
        _INTERNED_GATES[name] = instance
    return instance


def gate(name: str, *params: float) -> Gate:
    """Build a standard gate by name, e.g. ``gate('rz', 0.5)``.

    Parameterless gates are interned: ``gate('x') is gate('x')``.  The returned flyweight
    is immutable; construct ``Gate(name, (), None, label)`` directly when a labelled
    (mutable) instance is needed.
    """
    if not params and name != "unitary" and name in GATE_SPECS:
        return _intern(name)
    return Gate(name, tuple(params))


def unitary_gate(matrix: np.ndarray, label: Optional[str] = None) -> Gate:
    """Build an explicit-matrix gate (used by the re-synthesis passes)."""
    return Gate("unitary", (), np.asarray(matrix, dtype=complex), label)


def standard_gate_names() -> Tuple[str, ...]:
    """Names of all built-in gates."""
    return tuple(GATE_SPECS)

"""Minimal OpenQASM 2.0 reader and writer.

Covers the subset of OpenQASM 2.0 used by the benchmark suites the paper draws from
(QASMBench / RevLib exports): ``qreg``/``creg`` declarations, the standard ``qelib1.inc``
gate set, parameter expressions built from numbers and ``pi``, ``measure``, ``barrier``,
and user-defined ``gate`` blocks (which are inlined during parsing).
"""

from __future__ import annotations

import ast
import math
import os
import re
import threading
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..exceptions import QASMError
from .circuit import Instruction, QuantumCircuit
from .gates import GATE_SPECS, Gate, gate as make_gate

_KNOWN_ALIASES = {
    "cnot": "cx",
    "toffoli": "ccx",
    "u0": "id",
    "phase": "p",
}


# ---------------------------------------------------------------------------
# Expression evaluation
# ---------------------------------------------------------------------------

_ALLOWED_FUNCS = {"sin": math.sin, "cos": math.cos, "tan": math.tan, "exp": math.exp,
                  "ln": math.log, "sqrt": math.sqrt}

#: CPython 3.11 keeps the AST constructor's recursion-depth bookkeeping in shared
#: module state, so concurrent ``ast.parse`` calls from thread-pool workers (the
#: server's QASM parsing path) can race into ``SystemError: AST constructor recursion
#: depth mismatch``.  Parameter expressions are tiny, so serialising the parse is free.
_AST_PARSE_LOCK = threading.Lock()


def _eval_expr(text: str, bindings: Optional[Dict[str, float]] = None) -> float:
    """Safely evaluate a QASM parameter expression."""
    bindings = bindings or {}
    try:
        with _AST_PARSE_LOCK:
            tree = ast.parse(text, mode="eval")
    except SyntaxError as exc:
        raise QASMError(f"invalid parameter expression: {text!r}") from exc

    def walk(node: ast.AST) -> float:
        if isinstance(node, ast.Expression):
            return walk(node.body)
        if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
            return float(node.value)
        if isinstance(node, ast.Name):
            if node.id == "pi":
                return math.pi
            if node.id in bindings:
                return bindings[node.id]
            raise QASMError(f"unknown identifier {node.id!r} in expression {text!r}")
        if isinstance(node, ast.BinOp):
            left, right = walk(node.left), walk(node.right)
            if isinstance(node.op, ast.Add):
                return left + right
            if isinstance(node.op, ast.Sub):
                return left - right
            if isinstance(node.op, ast.Mult):
                return left * right
            if isinstance(node.op, ast.Div):
                return left / right
            if isinstance(node.op, ast.Pow):
                return left ** right
            raise QASMError(f"unsupported operator in {text!r}")
        if isinstance(node, ast.UnaryOp):
            value = walk(node.operand)
            if isinstance(node.op, ast.USub):
                return -value
            if isinstance(node.op, ast.UAdd):
                return value
            raise QASMError(f"unsupported unary operator in {text!r}")
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            func = _ALLOWED_FUNCS.get(node.func.id)
            if func is None or len(node.args) != 1:
                raise QASMError(f"unsupported function call in {text!r}")
            return func(walk(node.args[0]))
        raise QASMError(f"unsupported expression construct in {text!r}")

    return walk(tree)


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------

@dataclass
class _GateDef:
    """A user-defined gate block from the QASM source."""

    name: str
    params: List[str]
    qubits: List[str]
    body: List[str]


_STATEMENT_RE = re.compile(r"[^;{}]+;|[^;{}]+(?=\{)|\{|\}")


def _strip_comments(text: str) -> str:
    lines = []
    for line in text.splitlines():
        if "//" in line:
            line = line.split("//", 1)[0]
        lines.append(line)
    return "\n".join(lines)


def _split_operands(arg_text: str) -> List[str]:
    return [a.strip() for a in arg_text.split(",") if a.strip()]


class _QASMParser:
    def __init__(self, text: str) -> None:
        self.text = _strip_comments(text)
        self.qregs: Dict[str, Tuple[int, int]] = {}  # name -> (offset, size)
        self.cregs: Dict[str, Tuple[int, int]] = {}
        self.gate_defs: Dict[str, _GateDef] = {}
        self.num_qubits = 0
        self.num_clbits = 0

    def parse(self) -> QuantumCircuit:
        statements = self._tokenize()
        instructions: List[Tuple[str, List[float], List[int], List[int]]] = []
        i = 0
        while i < len(statements):
            stmt = statements[i].strip()
            i += 1
            if not stmt or stmt.startswith("OPENQASM") or stmt.startswith("include"):
                continue
            if stmt.startswith("qreg") or stmt.startswith("creg"):
                self._declare_register(stmt)
                continue
            if stmt.startswith("gate ") or stmt == "gate":
                i = self._parse_gate_def(statements, i - 1)
                continue
            if stmt in ("{", "}"):
                continue
            instructions.extend(self._parse_operation(stmt))

        circuit = QuantumCircuit(self.num_qubits, self.num_clbits, "qasm_circuit")
        for name, params, qubits, clbits in instructions:
            if name == "barrier":
                circuit.barrier(*qubits)
            elif name == "measure":
                circuit.measure(qubits[0], clbits[0])
            else:
                circuit.append(Gate(name, tuple(params)), qubits)
        return circuit

    # -- helpers -----------------------------------------------------------

    def _tokenize(self) -> List[str]:
        tokens = []
        for match in _STATEMENT_RE.finditer(self.text):
            token = match.group(0).strip()
            if token.endswith(";"):
                token = token[:-1].strip()
            if token:
                tokens.append(token)
        return tokens

    def _declare_register(self, stmt: str) -> None:
        match = re.match(r"(qreg|creg)\s+(\w+)\s*\[\s*(\d+)\s*\]", stmt)
        if not match:
            raise QASMError(f"malformed register declaration: {stmt!r}")
        kind, name, size = match.group(1), match.group(2), int(match.group(3))
        if kind == "qreg":
            self.qregs[name] = (self.num_qubits, size)
            self.num_qubits += size
        else:
            self.cregs[name] = (self.num_clbits, size)
            self.num_clbits += size

    def _parse_gate_def(self, statements: List[str], start: int) -> int:
        header = statements[start].strip()
        match = re.match(r"gate\s+(\w+)\s*(\(([^)]*)\))?\s*(.*)", header, re.S)
        if not match:
            raise QASMError(f"malformed gate definition: {header!r}")
        name = match.group(1)
        params = _split_operands(match.group(3) or "")
        qubits = _split_operands(match.group(4) or "")
        body: List[str] = []
        i = start + 1
        if i < len(statements) and statements[i] == "{":
            i += 1
        depth = 1
        while i < len(statements) and depth > 0:
            stmt = statements[i]
            if stmt == "{":
                depth += 1
            elif stmt == "}":
                depth -= 1
            else:
                body.append(stmt)
            i += 1
        self.gate_defs[name] = _GateDef(name, params, qubits, body)
        return i

    def _resolve_qubit(self, operand: str) -> List[int]:
        operand = operand.strip()
        match = re.match(r"(\w+)\s*\[\s*(\d+)\s*\]$", operand)
        if match:
            reg, idx = match.group(1), int(match.group(2))
            if reg in self.qregs:
                offset, size = self.qregs[reg]
                if idx >= size:
                    raise QASMError(f"qubit index out of range: {operand}")
                return [offset + idx]
            if reg in self.cregs:
                offset, size = self.cregs[reg]
                if idx >= size:
                    raise QASMError(f"clbit index out of range: {operand}")
                return [offset + idx]
            raise QASMError(f"unknown register {reg!r}")
        if operand in self.qregs:
            offset, size = self.qregs[operand]
            return [offset + i for i in range(size)]
        if operand in self.cregs:
            offset, size = self.cregs[operand]
            return [offset + i for i in range(size)]
        raise QASMError(f"unknown operand {operand!r}")

    def _parse_operation(self, stmt: str) -> List[Tuple[str, List[float], List[int], List[int]]]:
        if stmt.startswith("measure"):
            match = re.match(r"measure\s+(.+?)\s*->\s*(.+)", stmt)
            if not match:
                raise QASMError(f"malformed measure: {stmt!r}")
            qubits = self._resolve_qubit(match.group(1))
            clbits = self._resolve_qubit(match.group(2))
            if len(qubits) != len(clbits):
                raise QASMError(f"measure register size mismatch: {stmt!r}")
            return [("measure", [], [q], [c]) for q, c in zip(qubits, clbits)]
        if stmt.startswith("barrier"):
            operands = _split_operands(stmt[len("barrier"):])
            qubits: List[int] = []
            for op in operands:
                qubits.extend(self._resolve_qubit(op))
            return [("barrier", [], qubits, [])]
        if stmt.startswith("if"):
            raise QASMError("classical control ('if') is not supported")

        match = re.match(r"(\w+)\s*(\(([^)]*)\))?\s*(.*)", stmt, re.S)
        if not match:
            raise QASMError(f"malformed statement: {stmt!r}")
        name = match.group(1)
        param_text = match.group(3) or ""
        operand_text = match.group(4) or ""
        params = [_eval_expr(p) for p in _split_operands(param_text)]
        operand_groups = [self._resolve_qubit(op) for op in _split_operands(operand_text)]
        return self._expand_call(name, params, operand_groups, stmt)

    def _expand_call(
        self,
        name: str,
        params: List[float],
        operand_groups: List[List[int]],
        stmt: str,
    ) -> List[Tuple[str, List[float], List[int], List[int]]]:
        name = _KNOWN_ALIASES.get(name, name)
        # Broadcast register operands (e.g. `h q;`) over their elements.
        sizes = {len(g) for g in operand_groups if len(g) > 1}
        if len(sizes) > 1:
            raise QASMError(f"inconsistent register broadcast in {stmt!r}")
        repeat = sizes.pop() if sizes else 1
        results: List[Tuple[str, List[float], List[int], List[int]]] = []
        for rep in range(repeat):
            qubits = [g[rep] if len(g) > 1 else g[0] for g in operand_groups]
            if name in GATE_SPECS and name not in ("measure", "barrier", "unitary"):
                results.append((name, params, qubits, []))
            elif name in self.gate_defs:
                results.extend(self._inline_gate_def(self.gate_defs[name], params, qubits))
            else:
                raise QASMError(f"unknown gate {name!r} in statement {stmt!r}")
        return results

    def _inline_gate_def(
        self, gate_def: _GateDef, params: List[float], qubits: List[int]
    ) -> List[Tuple[str, List[float], List[int], List[int]]]:
        if len(params) != len(gate_def.params):
            raise QASMError(f"gate {gate_def.name!r} expects {len(gate_def.params)} params")
        if len(qubits) != len(gate_def.qubits):
            raise QASMError(f"gate {gate_def.name!r} expects {len(gate_def.qubits)} qubits")
        param_binding = dict(zip(gate_def.params, params))
        qubit_binding = dict(zip(gate_def.qubits, qubits))
        results: List[Tuple[str, List[float], List[int], List[int]]] = []
        for stmt in gate_def.body:
            match = re.match(r"(\w+)\s*(\(([^)]*)\))?\s*(.*)", stmt, re.S)
            if not match:
                raise QASMError(f"malformed statement in gate body: {stmt!r}")
            name = match.group(1)
            if name == "barrier":
                continue
            inner_params = [
                _eval_expr(p, param_binding) for p in _split_operands(match.group(3) or "")
            ]
            inner_qubit_names = _split_operands(match.group(4) or "")
            try:
                inner_qubits = [qubit_binding[qn] for qn in inner_qubit_names]
            except KeyError as exc:
                raise QASMError(f"unknown qubit {exc} in gate body of {gate_def.name!r}") from exc
            resolved = _KNOWN_ALIASES.get(name, name)
            if resolved in GATE_SPECS and resolved not in ("measure", "barrier", "unitary"):
                results.append((resolved, inner_params, inner_qubits, []))
            elif resolved in self.gate_defs:
                results.extend(
                    self._inline_gate_def(self.gate_defs[resolved], inner_params, inner_qubits)
                )
            else:
                raise QASMError(f"unknown gate {name!r} inside gate {gate_def.name!r}")
        return results


def loads(text: str) -> QuantumCircuit:
    """Parse OpenQASM 2.0 source text into a :class:`QuantumCircuit`."""
    return _QASMParser(text).parse()


def load(path: str) -> QuantumCircuit:
    """Parse an OpenQASM 2.0 file."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())


# ---------------------------------------------------------------------------
# Streaming ingest
# ---------------------------------------------------------------------------

def _iter_statement_tokens(lines: Iterable[str]) -> Iterator[str]:
    """Incremental version of :meth:`_QASMParser._tokenize`.

    Consumes raw source lines one at a time and yields the same statement tokens the
    batch tokenizer produces (``;``-terminated statements with the terminator stripped,
    plus bare ``{`` / ``}`` tokens), holding only the current incomplete statement in
    memory.
    """
    buffer = ""
    for line in lines:
        if "//" in line:
            line = line.split("//", 1)[0]
        buffer += line if line.endswith("\n") else line + "\n"
        while True:
            match = re.search(r"[;{}]", buffer)
            if match is None:
                break
            char = buffer[match.start()]
            pre = buffer[: match.start()].strip()
            buffer = buffer[match.end():]
            if char == ";":
                if pre:
                    yield pre
            elif char == "{":
                if pre:
                    yield pre
                yield "{"
            else:
                yield "}"


class QASMStreamReader:
    """Incremental OpenQASM 2.0 reader: instructions without the full AST in memory.

    Wraps any iterable of source lines (an open file, a socket wrapped in
    ``io.TextIOWrapper``, ``text.splitlines(keepends=True)``, ...) and exposes the
    parsed operations as a lazy instruction stream.  Register declarations and ``gate``
    definitions must precede their first use, which every QASM 2.0 emitter satisfies
    (the spec's "declare before use" rule), so the header can be parsed from the stream
    prefix while the gate body is still unread.

    Parsing reuses the exact statement machinery of :class:`_QASMParser`, so a streamed
    parse accepts the same dialect and produces the same operations as :func:`loads` —
    ``tests/circuit/test_qasm.py`` pins the equivalence.
    """

    def __init__(self, lines: Iterable[str], name: str = "qasm_stream") -> None:
        self.name = name
        self._parser = _QASMParser("")
        self._tokens = _iter_statement_tokens(lines)
        self._pending: List[Tuple[str, List[float], List[int], List[int]]] = []
        self._header_done = False
        self._exhausted = False

    # -- header --------------------------------------------------------------

    @property
    def num_qubits(self) -> int:
        self._ensure_header()
        return self._parser.num_qubits

    @property
    def num_clbits(self) -> int:
        self._ensure_header()
        return self._parser.num_clbits

    def _ensure_header(self) -> None:
        """Parse declarations up to (and including buffering) the first operation."""
        if self._header_done:
            return
        while not self._pending and not self._exhausted:
            self._advance()
        self._header_done = True

    # -- statement pump ------------------------------------------------------

    def _advance(self) -> None:
        """Consume source statements until one operation batch is pending (or EOF)."""
        parser = self._parser
        for stmt in self._tokens:
            stmt = stmt.strip()
            if not stmt or stmt.startswith("OPENQASM") or stmt.startswith("include"):
                continue
            if stmt.startswith("qreg") or stmt.startswith("creg"):
                parser._declare_register(stmt)
                continue
            if stmt.startswith("gate ") or stmt == "gate":
                self._collect_gate_def(stmt)
                continue
            if stmt in ("{", "}"):
                continue
            self._pending = parser._parse_operation(stmt)
            if self._pending:
                return
        self._exhausted = True

    def _collect_gate_def(self, header: str) -> None:
        """Buffer one ``gate`` block's tokens and hand them to the batch parser."""
        collected = [header]
        depth = 0
        opened = False
        for token in self._tokens:
            collected.append(token)
            if token == "{":
                depth += 1
                opened = True
            elif token == "}":
                depth -= 1
            if opened and depth == 0:
                break
        else:
            raise QASMError(f"unterminated gate definition: {header!r}")
        self._parser._parse_gate_def(collected, 0)

    # -- instruction stream ---------------------------------------------------

    def instructions(self) -> Iterator[Instruction]:
        """Lazily yield every operation in source order as an :class:`Instruction`."""
        self._ensure_header()
        while True:
            while self._pending:
                name, params, qubits, clbits = self._pending.pop(0)
                if name == "barrier":
                    yield Instruction(make_gate("barrier"), tuple(qubits))
                elif name == "measure":
                    yield Instruction(make_gate("measure"), tuple(qubits), tuple(clbits))
                else:
                    yield Instruction(Gate(name, tuple(params)), tuple(qubits), tuple(clbits))
            if self._exhausted:
                return
            self._advance()

    def __iter__(self) -> Iterator[Instruction]:
        return self.instructions()

    def batches(self, batch_size: int) -> Iterator[List[Instruction]]:
        """Yield instructions grouped into lists of at most ``batch_size``."""
        if batch_size < 1:
            raise QASMError(f"batch_size must be >= 1, got {batch_size}")
        batch: List[Instruction] = []
        for inst in self.instructions():
            batch.append(inst)
            if len(batch) >= batch_size:
                yield batch
                batch = []
        if batch:
            yield batch


def loads_stream(text: str, name: str = "qasm_stream") -> QASMStreamReader:
    """Streaming reader over in-memory QASM text (one parse state, lazy operations)."""
    return QASMStreamReader(text.splitlines(keepends=True), name=name)


def load_stream(path: Union[str, "os.PathLike"]) -> QASMStreamReader:
    """Streaming reader over a QASM file; the file is read line by line, never whole.

    The underlying handle is closed when the instruction stream is exhausted or the
    reader is garbage-collected.
    """
    handle = open(os.fspath(path), "r", encoding="utf-8")
    base = os.path.basename(os.fspath(path))
    name = base[:-5] if base.endswith(".qasm") else base
    return QASMStreamReader(handle, name=name or "qasm_stream")


# ---------------------------------------------------------------------------
# Emission
# ---------------------------------------------------------------------------

def header_lines(num_qubits: int, num_clbits: int = 0) -> List[str]:
    """The OpenQASM 2.0 preamble emitted by :func:`dumps` for the given registers."""
    lines = ["OPENQASM 2.0;", 'include "qelib1.inc";', f"qreg q[{num_qubits}];"]
    if num_clbits:
        lines.append(f"creg c[{num_clbits}];")
    return lines


def instruction_line(inst: Instruction) -> str:
    """One instruction rendered exactly as :func:`dumps` renders it (no newline)."""
    if inst.name == "barrier":
        operands = ",".join(f"q[{q}]" for q in inst.qubits)
        return f"barrier {operands};"
    if inst.name == "measure":
        return f"measure q[{inst.qubits[0]}] -> c[{inst.clbits[0]}];"
    if inst.name == "unitary":
        raise QASMError("explicit-matrix gates cannot be serialised to OpenQASM 2.0")
    params = ""
    if inst.gate.params:
        params = "(" + ",".join(repr(p) for p in inst.gate.params) + ")"
    operands = ",".join(f"q[{q}]" for q in inst.qubits)
    return f"{inst.name}{params} {operands};"


def dumps(circuit: QuantumCircuit) -> str:
    """Serialise a circuit to OpenQASM 2.0 (gates must be in the standard named set)."""
    lines = header_lines(circuit.num_qubits, circuit.num_clbits)
    lines.extend(instruction_line(inst) for inst in circuit.data)
    return "\n".join(lines) + "\n"


def dump(circuit: QuantumCircuit, path: str) -> None:
    """Write a circuit to an OpenQASM 2.0 file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(circuit))
